//! The ring broadcast of paper Listings 1 & 5, three ways — reproducing
//! the Fig. 1 timeline comparison:
//!
//! 1. **MPI non-blocking p2p** (Listing 1): each dependent ring step needs
//!    the CPU, which is busy computing — steps start late.
//! 2. **Staging offload with the Group primitives**: the DPU progresses
//!    the ring, but every hop pays the extra staging copy.
//! 3. **Proposed (cross-GVMI) offload with the Group primitives**
//!    (Listing 5): the DPU progresses the ring at host-transfer speed.
//!
//! ```bash
//! cargo run --release --example ring_broadcast
//! ```

use bluefield_offload::dpu::{DataPath, Offload, OffloadConfig};
use bluefield_offload::mpi::{Mpi, MpiConfig};
use bluefield_offload::net::{ClusterBuilder, ClusterSpec, Inbox};
use bluefield_offload::sim::SimDelta;
use std::sync::{Arc, Mutex};

const RANKS: usize = 4;
const LEN: u64 = 256 * 1024;
const COMPUTE_MS: u64 = 5;

/// Returns (per-rank data-arrival times in µs, total time µs).
fn run_mpi_listing1() -> (Vec<f64>, f64) {
    let arrivals = Arc::new(Mutex::new(vec![0.0f64; RANKS]));
    let a2 = Arc::clone(&arrivals);
    let report = ClusterBuilder::new(ClusterSpec::new(RANKS, 1), 7)
        .run_hosts(move |rank, ctx, cluster| {
            let mpi = Mpi::new(rank, ctx.clone(), cluster.clone(), MpiConfig::default());
            let fab = cluster.fabric().clone();
            let ep = cluster.host_ep(rank);
            let buf = fab.alloc(ep, LEN);
            if rank == 0 {
                fab.fill_pattern(ep, buf, LEN, 9).unwrap();
            }
            let right = (rank + 1) % RANKS;
            // Listing 1: each rank drives its step with MPI_Test between
            // compute slices.
            if rank == 0 {
                let s = mpi.isend(buf, LEN, right, 4);
                mpi.compute_with_test(SimDelta::from_ms(COMPUTE_MS), SimDelta::from_us(250), s);
                mpi.wait(s);
            } else {
                let r = mpi.irecv(buf, LEN, rank - 1, 4);
                mpi.compute_with_test(SimDelta::from_ms(COMPUTE_MS), SimDelta::from_us(250), r);
                mpi.wait(r);
                a2.lock().unwrap()[rank] = mpi.ctx().now().as_us_f64();
                if right != 0 {
                    let s = mpi.isend(buf, LEN, right, 4);
                    mpi.wait(s);
                }
            }
            assert!(fab.verify_pattern(ep, buf, LEN, 9).unwrap());
        })
        .unwrap();
    let a = arrivals.lock().unwrap().clone();
    (a, report.end_time.as_us_f64())
}

fn run_offload(path: DataPath) -> (Vec<f64>, f64) {
    let cfg = match path {
        DataPath::Gvmi => OffloadConfig::proposed(),
        DataPath::Staging => OffloadConfig::staging(),
    };
    let proxy_cfg = cfg.clone();
    let arrivals = Arc::new(Mutex::new(vec![0.0f64; RANKS]));
    let a2 = Arc::clone(&arrivals);
    let report = ClusterBuilder::new(ClusterSpec::new(RANKS, 1), 7)
        .run(
            move |rank, ctx, cluster| {
                let inbox = Inbox::new();
                let off = Offload::init(rank, ctx, cluster, &inbox, cfg.clone());
                let fab = off.cluster().fabric().clone();
                let ep = off.cluster().host_ep(rank);
                let buf = fab.alloc(ep, LEN);
                if rank == 0 {
                    fab.fill_pattern(ep, buf, LEN, 9).unwrap();
                }
                let left = (rank + RANKS - 1) % RANKS;
                let right = (rank + 1) % RANKS;
                // Listing 5: record the whole pattern, then offload it.
                let g = off.group_start();
                if rank == 0 {
                    off.group_send(g, buf, LEN, right, 4);
                } else {
                    off.group_recv(g, buf, LEN, left, 4);
                    off.group_barrier(g);
                    if right != 0 {
                        off.group_send(g, buf, LEN, right, 4);
                    }
                }
                off.group_end(g);
                off.group_call(g);
                // Overlap with compute — zero CPU intervention needed.
                off.ctx().compute(SimDelta::from_ms(COMPUTE_MS));
                off.group_wait(g).expect("group offload failed");
                if rank != 0 {
                    a2.lock().unwrap()[rank] = off.ctx().now().as_us_f64();
                }
                assert!(fab.verify_pattern(ep, buf, LEN, 9).unwrap());
                off.finalize();
            },
            Some(bluefield_offload::dpu::proxy_fn(proxy_cfg)),
        )
        .unwrap();
    let a = arrivals.lock().unwrap().clone();
    (a, report.end_time.as_us_f64())
}

fn main() {
    println!("Ring broadcast of {LEN} B over {RANKS} ranks, {COMPUTE_MS} ms compute per rank\n");
    let (mpi_arr, mpi_total) = run_mpi_listing1();
    let (stg_arr, stg_total) = run_offload(DataPath::Staging);
    let (gvmi_arr, gvmi_total) = run_offload(DataPath::Gvmi);
    println!("completion per rank (us into the run):");
    println!(
        "{:>6} {:>14} {:>14} {:>14}",
        "rank", "MPI (case 1)", "Staging (2)", "GVMI (3)"
    );
    for r in 1..RANKS {
        println!(
            "{:>6} {:>14.1} {:>14.1} {:>14.1}",
            r, mpi_arr[r], stg_arr[r], gvmi_arr[r]
        );
    }
    println!("\ntotal: MPI {mpi_total:.1}us | staging {stg_total:.1}us | GVMI {gvmi_total:.1}us");
    println!("\nFig. 1's story: with MPI p2p the dependent steps wait for the CPU to poll;");
    println!("both offloads progress during compute, and GVMI completes each hop earlier");
    println!("than staging (no store-and-forward copy into DPU memory).");
}
