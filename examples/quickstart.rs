//! Quickstart: the ping-pong of paper Listing 3, written with the Basic
//! offload primitives on a two-node simulated cluster.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Each rank offloads a send and a receive to its DPU proxy, computes
//! while the DPU moves the data, and then waits. The printout shows that
//! the transfer finished during the compute phase (the waits are free).

use bluefield_offload::dpu::{Offload, OffloadConfig};
use bluefield_offload::net::{ClusterBuilder, ClusterSpec, Inbox};
use bluefield_offload::sim::SimDelta;

fn main() {
    let spec = ClusterSpec::new(2, 1); // two nodes, one rank each
    let report = ClusterBuilder::new(spec, 42)
        .run(
            |rank, ctx, cluster| {
                // Init_Offload()
                let inbox = Inbox::new();
                let off = Offload::init(rank, ctx, cluster, &inbox, OffloadConfig::proposed());
                let fab = off.cluster().fabric().clone();
                let ep = off.cluster().host_ep(rank);

                // void *sbuf, *rbuf; size_t size = 1024;
                let size = 1024;
                let sbuf = fab.alloc(ep, size);
                let rbuf = fab.alloc(ep, size);
                fab.fill_pattern(ep, sbuf, size, 100 + rank as u64).unwrap();

                let peer = 1 - rank;
                // Send_Offload(sbuf, size, &req, peer, tag);
                let sreq = off.send_offload(sbuf, size, peer, 3);
                // Recv_Offload(rbuf, size, &req, peer, tag);
                let rreq = off.recv_offload(rbuf, size, peer, 3);

                // Overlap: the DPU progresses the exchange while we compute.
                off.ctx().compute(SimDelta::from_us(500));

                // Wait(&req);
                let t0 = off.ctx().now();
                off.wait(sreq);
                off.wait(rreq);
                let wait_us = (off.ctx().now() - t0).as_us_f64();

                assert!(
                    fab.verify_pattern(ep, rbuf, size, 100 + peer as u64).unwrap(),
                    "payload must match the peer's pattern"
                );
                println!(
                    "rank {rank}: exchange complete at t={:.1}us; time spent in Wait: {wait_us:.3}us",
                    off.ctx().now().as_us_f64()
                );

                // Finalize_Offload();
                off.finalize();
            },
            Some(bluefield_offload::dpu::proxy_fn(OffloadConfig::proposed())),
        )
        .expect("simulation completes");

    println!(
        "\nsimulated time: {:.1}us over {} events; GVMI writes by proxies: {}",
        report.end_time.as_us_f64(),
        report.events,
        report.stats.counter("offload.proxy.gvmi_writes"),
    );
    println!("The waits are ~0us: the DPU finished the exchange during compute.");
}
