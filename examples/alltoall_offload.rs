//! Scatter-destination `MPI_Ialltoall` under all three runtimes — the
//! micro-benchmark behind paper Figs. 13–14 — on a small cluster.
//!
//! ```bash
//! cargo run --release --example alltoall_offload
//! ```

use bluefield_offload::apps::{ialltoall_overlap, Runtime};

fn main() {
    let (nodes, ppn, block) = (4, 8, 64 * 1024u64);
    println!(
        "Ialltoall overlap: {nodes} nodes x {ppn} ppn, {}KiB blocks\n",
        block >> 10
    );
    println!(
        "{:>9} {:>12} {:>12} {:>9}",
        "runtime", "pure comm", "overall", "overlap"
    );
    for rt in [Runtime::Intel, Runtime::blues(), Runtime::proposed()] {
        let label = rt.label();
        let r = ialltoall_overlap(nodes, ppn, block, 2, 4, rt, 29);
        println!(
            "{label:>9} {:>10.1}us {:>10.1}us {:>8.1}%",
            r.pure_us,
            r.overall_us,
            r.overlap_pct()
        );
    }
    println!("\nBoth DPU offloads hide the exchange behind compute; the proposed");
    println!("GVMI path also has the lower pure latency (no staging hop), which");
    println!("is exactly the Fig. 13/14 result.");
}
