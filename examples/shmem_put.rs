//! One-sided SHMEM-style communication over the offload framework —
//! demonstrating the paper's claim that the primitives are
//! programming-model agnostic (OpenSHMEM is its second named model).
//!
//! Every PE puts a slice of its symmetric heap into its right neighbour
//! and gets one from its left neighbour, all executed by the DPU proxies
//! with zero target-side CPU involvement.
//!
//! ```bash
//! cargo run --release --example shmem_put
//! ```

use bluefield_offload::dpu::{OffloadConfig, Shmem};
use bluefield_offload::net::{ClusterBuilder, ClusterSpec, Inbox};
use bluefield_offload::sim::SimDelta;

fn main() {
    let spec = ClusterSpec::new(2, 2);
    let report = ClusterBuilder::new(spec, 21)
        .run(
            |rank, ctx, cluster| {
                let inbox = Inbox::new();
                let shm = Shmem::init(
                    rank,
                    ctx,
                    cluster,
                    &inbox,
                    OffloadConfig::proposed(),
                    1 << 20,
                );
                let fab = shm.offload().cluster().fabric().clone();
                let n = shm.n_pes();
                let me = shm.rank();

                // Symmetric allocations happen in the same order on every PE.
                let outbox = shm.sym_alloc(64 * 1024);
                let inbox_slot = shm.sym_alloc(64 * 1024);
                let pulled = shm.sym_alloc(64 * 1024);

                fab.fill_pattern(shm.endpoint(), shm.local_addr(outbox), 64 * 1024, me as u64)
                    .unwrap();

                // One-sided put to the right neighbour; it never calls in.
                shm.put((me + 1) % n, inbox_slot, outbox, 64 * 1024);
                shm.quiet();

                // Give every PE's put time to land, then pull the left
                // neighbour's outbox with a one-sided get.
                shm.offload().ctx().compute(SimDelta::from_us(200));
                let left = (me + n - 1) % n;
                let r = shm.get(left, pulled, outbox, 64 * 1024);
                shm.wait(r);

                assert!(fab
                    .verify_pattern(
                        shm.endpoint(),
                        shm.local_addr(inbox_slot),
                        64 * 1024,
                        left as u64
                    )
                    .unwrap());
                assert!(fab
                    .verify_pattern(
                        shm.endpoint(),
                        shm.local_addr(pulled),
                        64 * 1024,
                        left as u64
                    )
                    .unwrap());
                println!("PE {me}: put+get verified (neighbour {left}'s pattern received twice)");
                shm.finalize();
            },
            Some(bluefield_offload::dpu::proxy_fn(OffloadConfig::proposed())),
        )
        .unwrap();
    println!(
        "\nproxy puts: {}, proxy gets: {}, simulated time {:.1}us",
        report.stats.counter("offload.proxy.puts"),
        report.stats.counter("offload.proxy.gets"),
        report.end_time.as_us_f64()
    );
}
