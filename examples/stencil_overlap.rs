//! 3-D stencil halo exchange with offloaded point-to-point (the paper's
//! §VIII-A benchmark), comparing IntelMPI against the proposed framework
//! on a small cluster.
//!
//! ```bash
//! cargo run --release --example stencil_overlap
//! ```

use bluefield_offload::apps::{stencil3d, Runtime};

fn main() {
    let (nodes, ppn, grid) = (4, 8, 256u64);
    println!("3DStencil: {grid}^3 grid on {nodes} nodes x {ppn} ppn\n");
    for rt in [Runtime::Intel, Runtime::proposed()] {
        let label = rt.label();
        let r = stencil3d(nodes, ppn, grid, 3, 1, rt, 17);
        println!(
            "{label:>9}: pure comm {:>8.1}us | compute {:>8.1}us | overall {:>8.1}us | overlap {:>5.1}%",
            r.pure_us,
            r.compute_us,
            r.overall_us,
            r.overlap_pct()
        );
    }
    println!("\nThe proposed runtime offloads inter-node halos to the DPU proxies;");
    println!("intra-node faces stay on host MPI, which is why overlap tops out");
    println!("below 100% (the paper reports ~78%).");
}
