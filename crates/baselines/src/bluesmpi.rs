//! The BluesMPI baseline: staging-based DPU offload of specific
//! non-blocking collectives (references \[8\] and \[9\] in the paper).
//!
//! Faithful properties:
//!
//! * **Mechanism**: staging — the DPU worker RDMA-READs the payload into
//!   its own memory, then forwards it (one extra hop vs. cross-GVMI;
//!   paper Figs. 4 and 6). Implemented by running the offload framework's
//!   group engine with [`offload::DataPath::Staging`].
//! * **Coverage**: only `MPI_Ialltoall`, `MPI_Ibcast`, `MPI_Iallgather` —
//!   no point-to-point offload (the paper's 3DStencil comparison therefore
//!   runs BluesMPI-less).
//! * **Cold start**: the paper found BluesMPI "has a lot of degradation in
//!   performance ... for the first several iterations" when benchmarks
//!   don't warm up (§VIII-D, Fig. 16c). We model the worker bring-up /
//!   staging-pool population cost as a per-pattern penalty on the first
//!   `cold_start_calls` invocations.

use std::cell::RefCell;
use std::collections::HashMap;

use offload::{GroupRequest, Offload, OffloadConfig};
use rdma::{ClusterCtx, Inbox, VAddr};
use simnet::{ProcessCtx, SimDelta};

/// Cold-start model parameters.
#[derive(Clone, Debug)]
pub struct BluesConfig {
    /// How many invocations of each distinct collective pattern pay the
    /// bring-up penalty.
    pub cold_start_calls: u64,
    /// Penalty per cold invocation (worker launch, staging pool growth).
    pub cold_start_penalty: SimDelta,
}

impl Default for BluesConfig {
    fn default() -> Self {
        BluesConfig {
            cold_start_calls: 3,
            // The paper measured "a lot of degradation ... for the first
            // several iterations" at application level — large enough to
            // make unwarmed BluesMPI the slowest library in P3DFFT.
            cold_start_penalty: SimDelta::from_ms(2),
        }
    }
}

/// The offload configuration BluesMPI's workers must be launched with.
pub fn bluesmpi_proxy_config() -> OffloadConfig {
    OffloadConfig::staging()
}

/// A non-blocking collective in flight.
#[derive(Clone, Copy, Debug)]
pub struct BluesReq(GroupRequest);

/// BluesMPI library instance for one rank.
pub struct BluesMpi {
    off: Offload,
    cfg: BluesConfig,
    /// Group request per distinct pattern signature.
    patterns: RefCell<HashMap<PatternKey, GroupRequest>>,
    /// Invocation counts per collective *kind* (cold-start accounting:
    /// worker bring-up and staging-pool growth happen per collective type,
    /// not per buffer set).
    kind_calls: RefCell<HashMap<&'static str, u64>>,
}

#[derive(PartialEq, Eq, Hash, Clone, Copy)]
enum PatternKey {
    Alltoall {
        sendbuf: u64,
        recvbuf: u64,
        block: u64,
    },
    /// `members` participates in the key: the same root/buffer used over a
    /// different sub-communicator is a different pattern.
    Bcast {
        members: u64,
        root: usize,
        addr: u64,
        len: u64,
    },
    Allgather {
        buf: u64,
        block: u64,
    },
}

/// Stable hash of a member list (same construction as minimpi's).
fn members_hash(members: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &m in members {
        h ^= m as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl BluesMpi {
    /// Attach to the inbox. The cluster's proxies must run
    /// [`bluesmpi_proxy_config`].
    pub fn attach(
        rank: usize,
        ctx: ProcessCtx,
        cluster: ClusterCtx,
        inbox: &Inbox,
        cfg: BluesConfig,
    ) -> Self {
        BluesMpi {
            off: Offload::init(rank, ctx, cluster, inbox, bluesmpi_proxy_config()),
            cfg,
            patterns: RefCell::new(HashMap::new()),
            kind_calls: RefCell::new(HashMap::new()),
        }
    }

    /// The underlying offload engine (for finalize and introspection).
    pub fn offload(&self) -> &Offload {
        &self.off
    }

    /// Shut the library down.
    pub fn finalize(&self) {
        self.off.finalize();
    }

    fn charge_cold_start(&self, kind: &'static str) -> bool {
        let calls = {
            let mut k = self.kind_calls.borrow_mut();
            let c = k.entry(kind).or_insert(0);
            *c += 1;
            *c
        };
        let cold = calls <= self.cfg.cold_start_calls;
        if cold {
            self.off.ctx().stat_incr("bluesmpi.cold_calls", 1);
            self.off.ctx().sleep(self.cfg.cold_start_penalty);
        }
        cold
    }

    fn cached_pattern(
        &self,
        key: PatternKey,
        record: impl FnOnce(&Offload) -> GroupRequest,
    ) -> GroupRequest {
        let existing = self.patterns.borrow().get(&key).copied();
        match existing {
            Some(g) => g,
            None => {
                let g = record(&self.off);
                self.patterns.borrow_mut().insert(key, g);
                g
            }
        }
    }

    /// `MPI_Ialltoall` offloaded with staging (the collective BluesMPI
    /// \[8\] supports). The caller's self-block is copied locally at call time.
    pub fn ialltoall(&self, sendbuf: VAddr, recvbuf: VAddr, block: u64) -> BluesReq {
        let key = PatternKey::Alltoall {
            sendbuf: sendbuf.0,
            recvbuf: recvbuf.0,
            block,
        };
        let g = self.cached_pattern(key, |off| off.record_alltoall(sendbuf, recvbuf, block));
        self.charge_cold_start("alltoall");
        // Self block.
        let fab = self.off.cluster().fabric().clone();
        if fab.moves_bytes() {
            let ep = self.off.cluster().host_ep(self.off.rank());
            let me = self.off.rank() as u64;
            let data = fab
                .read_bytes(ep, sendbuf.offset(me * block), block)
                .expect("self block");
            fab.write_bytes(ep, recvbuf.offset(me * block), &data)
                .expect("self block");
        }
        self.off.group_call(g);
        BluesReq(g)
    }

    /// `MPI_Ibcast` offloaded with staging (binomial tree of ordered group
    /// steps — the reference \[9\] large-message offload).
    pub fn ibcast(&self, root: usize, addr: VAddr, len: u64) -> BluesReq {
        let members: Vec<usize> = (0..self.off.size()).collect();
        self.ibcast_among(&members, root, addr, len)
    }

    /// `MPI_Ibcast` over a sub-communicator (`members`, root at position
    /// `root_pos`), e.g. an HPL process row.
    pub fn ibcast_among(
        &self,
        members: &[usize],
        root_pos: usize,
        addr: VAddr,
        len: u64,
    ) -> BluesReq {
        let key = PatternKey::Bcast {
            members: members_hash(members),
            root: root_pos,
            addr: addr.0,
            len,
        };
        let g = self.cached_pattern(key, |off| {
            off.record_bcast_binomial(members, root_pos, addr, len, 0)
        });
        self.charge_cold_start("bcast");
        self.off.group_call(g);
        BluesReq(g)
    }

    /// `MPI_Iallgather` offloaded with staging (ring of ordered steps).
    pub fn iallgather(&self, buf: VAddr, block: u64) -> BluesReq {
        let key = PatternKey::Allgather { buf: buf.0, block };
        let g = self.cached_pattern(key, |off| off.record_allgather_ring(buf, block));
        self.charge_cold_start("allgather");
        self.off.group_call(g);
        BluesReq(g)
    }

    /// Wait for a collective to finish.
    pub fn wait(&self, r: BluesReq) {
        self.off.group_wait(r.0).expect("group offload failed");
    }

    /// Non-blocking completion check.
    pub fn test(&self, r: BluesReq) -> bool {
        self.off.group_test(r.0)
    }
}
