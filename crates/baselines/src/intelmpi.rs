//! The "IntelMPI" baseline: a well-tuned, host-progress MPI.
//!
//! This is `minimpi` used directly — non-blocking collectives are staged
//! p2p schedules progressed only inside MPI calls, exactly the baseline
//! behaviour the paper compares against (Intel MPI 2021 with
//! `MPI_Test`-driven progress). The thin wrapper exists so benchmark
//! harnesses can name the library and so algorithm choices are pinned in
//! one place.

use minimpi::{Mpi, MpiConfig, Req};
use rdma::{ClusterCtx, Inbox, VAddr};
use simnet::ProcessCtx;

/// Host-based MPI baseline for one rank.
pub struct IntelMpi {
    mpi: Mpi,
}

impl IntelMpi {
    /// Attach to the given inbox (coexists with other engines).
    pub fn attach(rank: usize, ctx: ProcessCtx, cluster: ClusterCtx, inbox: &Inbox) -> Self {
        IntelMpi {
            mpi: Mpi::attach(rank, ctx, cluster, inbox, MpiConfig::default()),
        }
    }

    /// Standalone instance with a private inbox.
    pub fn new(rank: usize, ctx: ProcessCtx, cluster: ClusterCtx) -> Self {
        IntelMpi {
            mpi: Mpi::new(rank, ctx, cluster, MpiConfig::default()),
        }
    }

    /// The underlying MPI (p2p, blocking collectives, reductions).
    pub fn mpi(&self) -> &Mpi {
        &self.mpi
    }

    /// Non-blocking all-to-all: scatter-destination schedule.
    pub fn ialltoall(&self, sendbuf: VAddr, recvbuf: VAddr, block: u64) -> Req {
        self.mpi.ialltoall(sendbuf, recvbuf, block)
    }

    /// Non-blocking broadcast: binomial tree (Intel's strongest Ibcast in
    /// the paper's comparison).
    pub fn ibcast(&self, root: usize, addr: VAddr, len: u64) -> Req {
        self.mpi.ibcast(root, addr, len)
    }

    /// Non-blocking ring broadcast (the HPL-1ring algorithm expressed as a
    /// schedule; still host-progressed).
    pub fn iring_bcast(&self, root: usize, addr: VAddr, len: u64) -> Req {
        self.mpi.iring_bcast(root, addr, len)
    }

    /// Wait on a request.
    pub fn wait(&self, r: Req) {
        self.mpi.wait(r);
    }

    /// Test a request (drives host progress — the Listing 1 pattern).
    pub fn test(&self, r: Req) -> bool {
        self.mpi.test(r)
    }
}
