//! # baselines — the systems the paper compares against
//!
//! * [`IntelMpi`] — a tuned host-progress MPI (the `minimpi` crate used
//!   directly): non-blocking collectives advance only inside MPI calls.
//! * [`BluesMpi`] — staging-based DPU offload of `Ialltoall` / `Ibcast` /
//!   `Iallgather` only, with the cold-start behaviour the paper observed
//!   at application level (§VIII-D).
//!
//! Both are exercised head-to-head with the proposed framework by the
//! `workloads` and `bench-harness` crates.

#![warn(missing_docs)]

mod bluesmpi;
mod intelmpi;

pub use bluesmpi::{bluesmpi_proxy_config, BluesConfig, BluesMpi, BluesReq};
pub use intelmpi::IntelMpi;
