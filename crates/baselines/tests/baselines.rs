//! Baseline correctness and characteristic behaviour.

use baselines::{bluesmpi_proxy_config, BluesConfig, BluesMpi, IntelMpi};
use rdma::{ClusterBuilder, ClusterSpec, Inbox};
use simnet::SimDelta;

fn run_blues(
    nodes: usize,
    ppn: usize,
    cfg: BluesConfig,
    f: impl Fn(&BluesMpi) + Send + Sync + 'static,
) -> simnet::Report {
    let spec = ClusterSpec::new(nodes, ppn);
    ClusterBuilder::new(spec, 31)
        .run(
            move |rank, ctx, cluster| {
                let inbox = Inbox::new();
                let blues = BluesMpi::attach(rank, ctx, cluster, &inbox, cfg.clone());
                f(&blues);
                blues.finalize();
            },
            Some(offload::proxy_fn(bluesmpi_proxy_config())),
        )
        .unwrap()
}

#[test]
fn bluesmpi_ialltoall_is_correct() {
    run_blues(2, 2, BluesConfig::default(), |blues| {
        let off = blues.offload();
        let fab = off.cluster().fabric().clone();
        let p = off.size();
        let me = off.rank();
        let ep = off.cluster().host_ep(me);
        let block = 8192u64;
        let sendbuf = fab.alloc(ep, block * p as u64);
        let recvbuf = fab.alloc(ep, block * p as u64);
        for d in 0..p {
            fab.fill_pattern(
                ep,
                sendbuf.offset(d as u64 * block),
                block,
                (me * 10 + d) as u64,
            )
            .unwrap();
        }
        let r = blues.ialltoall(sendbuf, recvbuf, block);
        blues.wait(r);
        for s in 0..p {
            assert!(
                fab.verify_pattern(
                    ep,
                    recvbuf.offset(s as u64 * block),
                    block,
                    (s * 10 + me) as u64
                )
                .unwrap(),
                "rank {me} block from {s}"
            );
        }
    });
}

#[test]
fn bluesmpi_ibcast_is_correct() {
    run_blues(3, 1, BluesConfig::default(), |blues| {
        let off = blues.offload();
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let len = 64 * 1024;
        let buf = fab.alloc(ep, len);
        if off.rank() == 1 {
            fab.fill_pattern(ep, buf, len, 3).unwrap();
        }
        let r = blues.ibcast(1, buf, len);
        blues.wait(r);
        assert!(fab.verify_pattern(ep, buf, len, 3).unwrap());
    });
}

#[test]
fn bluesmpi_iallgather_is_correct() {
    run_blues(2, 2, BluesConfig::default(), |blues| {
        let off = blues.offload();
        let fab = off.cluster().fabric().clone();
        let p = off.size();
        let me = off.rank();
        let ep = off.cluster().host_ep(me);
        let block = 4096u64;
        let buf = fab.alloc(ep, block * p as u64);
        fab.fill_pattern(ep, buf.offset(me as u64 * block), block, me as u64 + 70)
            .unwrap();
        let r = blues.iallgather(buf, block);
        blues.wait(r);
        for s in 0..p {
            assert!(fab
                .verify_pattern(ep, buf.offset(s as u64 * block), block, s as u64 + 70)
                .unwrap());
        }
    });
}

#[test]
fn bluesmpi_cold_start_fades_with_warmup() {
    // First calls pay the bring-up penalty; warmed-up calls don't.
    use std::sync::Mutex;
    let times: std::sync::Arc<Mutex<Vec<f64>>> = Default::default();
    let t2 = std::sync::Arc::clone(&times);
    let report = run_blues(2, 1, BluesConfig::default(), move |blues| {
        let off = blues.offload();
        let fab = off.cluster().fabric().clone();
        let p = off.size();
        let ep = off.cluster().host_ep(off.rank());
        let block = 16 * 1024u64;
        let sendbuf = fab.alloc(ep, block * p as u64);
        let recvbuf = fab.alloc(ep, block * p as u64);
        for i in 0..6 {
            let t0 = off.ctx().now();
            let r = blues.ialltoall(sendbuf, recvbuf, block);
            blues.wait(r);
            if off.rank() == 0 {
                t2.lock().unwrap().push((off.ctx().now() - t0).as_us_f64());
                let _ = i;
            }
        }
    });
    let times = times.lock().unwrap();
    assert_eq!(times.len(), 6);
    let cold_avg = (times[0] + times[1] + times[2]) / 3.0;
    let warm_avg = (times[4] + times[5]) / 2.0;
    assert!(
        cold_avg > warm_avg + 300.0,
        "cold {cold_avg}us should exceed warm {warm_avg}us by the penalty"
    );
    // 3 cold calls per rank x 2 ranks.
    assert_eq!(report.stats.counter("bluesmpi.cold_calls"), 6);
}

#[test]
fn bluesmpi_uses_staging_mechanism() {
    let report = run_blues(2, 1, BluesConfig::default(), |blues| {
        let off = blues.offload();
        let fab = off.cluster().fabric().clone();
        let p = off.size();
        let ep = off.cluster().host_ep(off.rank());
        let block = 32 * 1024u64;
        let sendbuf = fab.alloc(ep, block * p as u64);
        let recvbuf = fab.alloc(ep, block * p as u64);
        let r = blues.ialltoall(sendbuf, recvbuf, block);
        blues.wait(r);
    });
    // Group sends each pull into staging (read) then forward (write).
    assert!(report.stats.counter("offload.proxy.staging_reads") > 0);
    assert_eq!(
        report.stats.counter("offload.proxy.group_writes"),
        report.stats.counter("offload.proxy.staging_reads")
    );
    assert_eq!(report.stats.counter("offload.proxy.gvmi_writes"), 0);
    assert_eq!(
        report.stats.counter("rdma.reg.cross"),
        0,
        "no cross-GVMI in staging"
    );
}

#[test]
fn intelmpi_collectives_delegate_correctly() {
    let spec = ClusterSpec::new(2, 2);
    ClusterBuilder::new(spec, 33)
        .run_hosts(|rank, ctx, cluster| {
            let impi = IntelMpi::new(rank, ctx, cluster.clone());
            let fab = cluster.fabric().clone();
            let ep = cluster.host_ep(rank);
            let len = 16 * 1024;
            let buf = fab.alloc(ep, len);
            if rank == 0 {
                fab.fill_pattern(ep, buf, len, 12).unwrap();
            }
            let r = impi.ibcast(0, buf, len);
            // Poll with compute slices, Listing-1 style.
            while !impi.test(r) {
                impi.mpi().ctx().compute(SimDelta::from_us(5));
            }
            assert!(fab.verify_pattern(ep, buf, len, 12).unwrap());
        })
        .unwrap();
}
