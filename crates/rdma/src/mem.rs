//! Simulated virtual memory.
//!
//! Every endpoint (host process or DPU proxy) owns an [`AddressSpace`]: a
//! bump allocator handing out virtual address ranges backed by real byte
//! buffers. RDMA operations move actual bytes between address spaces, so
//! data-integrity tests can verify transfers end-to-end, and registration
//! checks enforce the same bounds rules as `ibv_reg_mr`.

use std::collections::BTreeMap;

/// A virtual address within one endpoint's address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct VAddr(pub u64);

impl VAddr {
    /// Address `off` bytes past this one.
    pub fn offset(self, off: u64) -> VAddr {
        VAddr(self.0 + off)
    }
}

/// Base of the first allocation. Nonzero so a default/null `VAddr` is never
/// a valid buffer address.
const HEAP_BASE: u64 = 0x1000;

/// Page size used for registration-cost accounting (4 KiB, like the real
/// IOMMU path).
pub const PAGE_SIZE: u64 = 4096;

/// Backing of one region: real byte storage, or a bounds-checked
/// placeholder for timing-only runs (no bytes materialized).
#[derive(Debug)]
enum Region {
    Real(Vec<u8>),
    Virtual(u64),
}

impl Region {
    fn len(&self) -> u64 {
        match self {
            Region::Real(v) => v.len() as u64,
            Region::Virtual(n) => *n,
        }
    }
}

/// One endpoint's memory: allocated regions keyed by base address.
#[derive(Default, Debug)]
pub struct AddressSpace {
    regions: BTreeMap<u64, Region>,
    next: u64,
}

/// Errors from address-space accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The address is not inside any allocated region.
    Unmapped {
        /// The offending address.
        addr: VAddr,
    },
    /// The access starts inside a region but runs past its end.
    OutOfBounds {
        /// Start of the access.
        addr: VAddr,
        /// Length of the access.
        len: u64,
    },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::Unmapped { addr } => write!(f, "unmapped address {:#x}", addr.0),
            MemError::OutOfBounds { addr, len } => {
                write!(f, "access [{:#x}, +{len}) crosses region end", addr.0)
            }
        }
    }
}

impl std::error::Error for MemError {}

impl AddressSpace {
    /// Empty address space.
    pub fn new() -> Self {
        AddressSpace {
            regions: BTreeMap::new(),
            next: HEAP_BASE,
        }
    }

    /// Allocate `len` bytes (zero-filled). Zero-length allocations are
    /// allowed and return a unique, non-dereferenceable address.
    pub fn alloc(&mut self, len: u64) -> VAddr {
        self.alloc_region(Region::Real(vec![0u8; len as usize]), len)
    }

    /// Allocate a *virtual* region: bounds-checked like a real one, but no
    /// bytes are materialized. Reads return zeros; writes and pattern
    /// operations are validated no-ops. Used by timing-only benchmark runs
    /// so multi-gigabyte application buffers cost nothing.
    pub fn alloc_virtual(&mut self, len: u64) -> VAddr {
        self.alloc_region(Region::Virtual(len), len)
    }

    fn alloc_region(&mut self, region: Region, len: u64) -> VAddr {
        let base = self.next;
        // Keep an unmapped guard gap between regions so off-by-one accesses
        // fault instead of silently landing in a neighbour.
        self.next = base + len.max(1) + PAGE_SIZE;
        self.regions.insert(base, region);
        VAddr(base)
    }

    /// Find the region containing `addr` and the offset within it.
    fn locate(&self, addr: VAddr) -> Result<(u64, u64), MemError> {
        let (base, region) = self
            .regions
            .range(..=addr.0)
            .next_back()
            .ok_or(MemError::Unmapped { addr })?;
        let off = addr.0 - base;
        if off >= region.len() && !(off == 0 && region.len() == 0) {
            return Err(MemError::Unmapped { addr });
        }
        Ok((*base, off))
    }

    /// Check that `[addr, addr+len)` lies within a single region.
    pub fn check_range(&self, addr: VAddr, len: u64) -> Result<(), MemError> {
        if len == 0 {
            return Ok(());
        }
        let (base, off) = self.locate(addr)?;
        let region_len = self.regions[&base].len();
        if off + len > region_len {
            return Err(MemError::OutOfBounds { addr, len });
        }
        Ok(())
    }

    /// Read `len` bytes starting at `addr`.
    pub fn read(&self, addr: VAddr, len: u64) -> Result<Vec<u8>, MemError> {
        self.check_range(addr, len)?;
        if len == 0 {
            return Ok(Vec::new());
        }
        let (base, off) = self.locate(addr)?;
        Ok(match &self.regions[&base] {
            Region::Real(buf) => buf[off as usize..(off + len) as usize].to_vec(),
            Region::Virtual(_) => vec![0u8; len as usize],
        })
    }

    /// Write `data` starting at `addr`.
    pub fn write(&mut self, addr: VAddr, data: &[u8]) -> Result<(), MemError> {
        self.check_range(addr, data.len() as u64)?;
        if data.is_empty() {
            return Ok(());
        }
        let (base, off) = self.locate(addr)?;
        match self.regions.get_mut(&base).expect("located region exists") {
            Region::Real(buf) => buf[off as usize..off as usize + data.len()].copy_from_slice(data),
            Region::Virtual(_) => {}
        }
        Ok(())
    }

    /// Read a little-endian u64 (for counters).
    pub fn read_u64(&self, addr: VAddr) -> Result<u64, MemError> {
        let bytes = self.read(addr, 8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Write a little-endian u64 (for counters).
    pub fn write_u64(&mut self, addr: VAddr, v: u64) -> Result<(), MemError> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Fill `[addr, addr+len)` with a deterministic pattern derived from
    /// `seed` (used by data-integrity tests).
    pub fn fill_pattern(&mut self, addr: VAddr, len: u64, seed: u64) -> Result<(), MemError> {
        let data: Vec<u8> = pattern(seed).take(len as usize).collect();
        self.write(addr, &data)
    }

    /// Check `[addr, addr+len)` matches the pattern for `seed`. Virtual
    /// regions trivially verify (timing-only runs never check contents).
    pub fn verify_pattern(&self, addr: VAddr, len: u64, seed: u64) -> Result<bool, MemError> {
        self.check_range(addr, len)?;
        if len == 0 {
            return Ok(true);
        }
        let (base, off) = self.locate(addr)?;
        match &self.regions[&base] {
            Region::Real(buf) => Ok(buf[off as usize..(off + len) as usize]
                .iter()
                .copied()
                .eq(pattern(seed).take(len as usize))),
            Region::Virtual(_) => Ok(true),
        }
    }

    /// CRC32 (IEEE) of `[addr, addr+len)`. Virtual regions hash their
    /// zero-fill, so timing-only runs stay consistent end to end.
    pub fn crc32(&self, addr: VAddr, len: u64) -> Result<u32, MemError> {
        let data = self.read(addr, len)?;
        Ok(crc32(&data))
    }

    /// Number of pages spanned by `[addr, addr+len)` (registration cost).
    pub fn pages_spanned(addr: VAddr, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = addr.0 / PAGE_SIZE;
        let last = (addr.0 + len - 1) / PAGE_SIZE;
        last - first + 1
    }
}

/// CRC32 (IEEE 802.3 polynomial, reflected) over `data`. Bitwise — the
/// buffers the integrity layer hashes are small faces, not gigabytes.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Deterministic byte pattern generator.
fn pattern(seed: u64) -> impl Iterator<Item = u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    std::iter::from_fn(move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        Some((state >> 24) as u8)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut asp = AddressSpace::new();
        let a = asp.alloc(64);
        asp.write(a, &[1, 2, 3, 4]).unwrap();
        assert_eq!(asp.read(a, 4).unwrap(), vec![1, 2, 3, 4]);
        // Untouched tail is zero-filled.
        assert_eq!(asp.read(a.offset(4), 4).unwrap(), vec![0; 4]);
    }

    #[test]
    fn distinct_allocations_do_not_alias() {
        let mut asp = AddressSpace::new();
        let a = asp.alloc(16);
        let b = asp.alloc(16);
        assert_ne!(a, b);
        asp.write(a, &[0xAA; 16]).unwrap();
        assert_eq!(asp.read(b, 16).unwrap(), vec![0; 16]);
    }

    #[test]
    fn unmapped_access_faults() {
        let asp = AddressSpace::new();
        assert_eq!(
            asp.read(VAddr(0x10), 1),
            Err(MemError::Unmapped { addr: VAddr(0x10) })
        );
    }

    #[test]
    fn cross_region_access_faults() {
        let mut asp = AddressSpace::new();
        let a = asp.alloc(8);
        let err = asp.read(a, 9).unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds { .. }));
        // The guard gap after the region is unmapped.
        assert!(matches!(
            asp.read(a.offset(8), 1).unwrap_err(),
            MemError::Unmapped { .. }
        ));
    }

    #[test]
    fn interior_offset_access_works() {
        let mut asp = AddressSpace::new();
        let a = asp.alloc(32);
        asp.write(a.offset(8), &[9, 9]).unwrap();
        assert_eq!(asp.read(a.offset(8), 2).unwrap(), vec![9, 9]);
    }

    #[test]
    fn u64_counter_roundtrip() {
        let mut asp = AddressSpace::new();
        let a = asp.alloc(8);
        asp.write_u64(a, 0xDEAD_BEEF_1234).unwrap();
        assert_eq!(asp.read_u64(a).unwrap(), 0xDEAD_BEEF_1234);
    }

    #[test]
    fn pattern_fill_and_verify() {
        let mut asp = AddressSpace::new();
        let a = asp.alloc(1000);
        asp.fill_pattern(a, 1000, 42).unwrap();
        assert!(asp.verify_pattern(a, 1000, 42).unwrap());
        assert!(!asp.verify_pattern(a, 1000, 43).unwrap());
    }

    #[test]
    fn zero_length_operations() {
        let mut asp = AddressSpace::new();
        let a = asp.alloc(0);
        assert_eq!(asp.read(a, 0).unwrap(), Vec::<u8>::new());
        asp.write(a, &[]).unwrap();
        assert!(asp.check_range(a, 0).is_ok());
    }

    #[test]
    fn crc32_known_vector_and_sensitivity() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        let mut asp = AddressSpace::new();
        let a = asp.alloc(256);
        asp.fill_pattern(a, 256, 3).unwrap();
        let base = asp.crc32(a, 256).unwrap();
        // A single flipped byte must change the checksum.
        let mut bytes = asp.read(a, 256).unwrap();
        bytes[100] ^= 0x40;
        asp.write(a, &bytes).unwrap();
        assert_ne!(asp.crc32(a, 256).unwrap(), base);
    }

    #[test]
    fn pages_spanned_accounting() {
        assert_eq!(AddressSpace::pages_spanned(VAddr(0), 1), 1);
        assert_eq!(AddressSpace::pages_spanned(VAddr(0), 4096), 1);
        assert_eq!(AddressSpace::pages_spanned(VAddr(0), 4097), 2);
        assert_eq!(AddressSpace::pages_spanned(VAddr(4095), 2), 2);
        assert_eq!(AddressSpace::pages_spanned(VAddr(0), 0), 0);
        assert_eq!(AddressSpace::pages_spanned(VAddr(8192), 8192), 2);
    }
}
