//! Identifiers, wire messages, and errors of the RDMA layer.

use std::fmt;

use simnet::Payload;

use crate::mem::MemError;

/// Endpoint identifier: one host process or one DPU proxy attached to the
/// fabric.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EpId(pub(crate) u32);

impl EpId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// Guest Virtual Machine Identifier owned by a DPU endpoint. Host processes
/// register buffers *against* a proxy's GVMI-ID so the proxy can later
/// cross-register and transfer on their behalf.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GvmiId(pub(crate) u32);

/// A memory-registration key. Depending on how it was produced it acts as
/// an `lkey`/`rkey` (plain IB registration), an `mkey` (host-side GVMI
/// registration) or an `mkey2` (DPU-side cross-registration).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MrKey(pub(crate) u64);

impl MrKey {
    /// A key that never validates (real keys start at 1). Used as a
    /// placeholder where a protocol field is unused (e.g. staging-path
    /// group entries carry no mkey).
    pub const fn invalid() -> MrKey {
        MrKey(0)
    }

    /// The raw key value, for observability tooling (flight-recorder
    /// dumps) that must serialize keys without access to fabric state.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild a key from its [`raw`](MrKey::raw) value. Only meant for
    /// replaying recorded event streams; a fabricated key does not
    /// validate against any real registration.
    pub const fn from_raw(raw: u64) -> MrKey {
        MrKey(raw)
    }
}

impl fmt::Debug for MrKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mr{:#x}", self.0)
    }
}

/// Completion-queue entry delivered to the poster of a signaled operation.
#[derive(Debug)]
pub struct Cqe {
    /// Work-request id supplied at post time.
    pub wrid: u64,
}

/// A two-sided packet (control message or eager data).
pub struct Packet {
    /// Sending endpoint.
    pub src: EpId,
    /// Modelled wire size in bytes.
    pub bytes: u64,
    /// Caller-defined body.
    pub body: Payload,
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Packet")
            .field("src", &self.src)
            .field("bytes", &self.bytes)
            .finish_non_exhaustive()
    }
}

/// Everything the fabric deposits into process mailboxes.
#[derive(Debug)]
pub enum NetMsg {
    /// Completion of a signaled RDMA operation (to the poster).
    Cqe(Cqe),
    /// A two-sided packet (to the destination endpoint's process).
    Packet(Packet),
    /// Delivery notification requested on an RDMA write (models the remote
    /// side observing a counter/flag that the write updated).
    Notify(Payload),
}

/// Errors raised by fabric operations.
#[derive(Debug)]
pub enum RdmaError {
    /// Underlying memory access fault.
    Mem(MemError),
    /// Key does not exist or was deregistered.
    BadKey(MrKey),
    /// Key exists but does not belong to the given endpoint.
    KeyEndpointMismatch(MrKey),
    /// Key exists but `[addr, addr+len)` is outside its registered range.
    KeyRangeMismatch(MrKey),
    /// A GVMI operation referenced the wrong GVMI-ID.
    WrongGvmi {
        /// GVMI the key was registered against.
        expected: GvmiId,
        /// GVMI supplied by the caller.
        got: GvmiId,
    },
    /// Operation requires a DPU endpoint (e.g. cross-registration).
    NotDpu(EpId),
    /// Cross-registration requires a host-side GVMI `mkey`.
    NotGvmiKey(MrKey),
    /// The poster is not allowed to use this key as a local key (plain
    /// lkeys are owner-only; `mkey2`s are usable only by the proxy that
    /// cross-registered them).
    PosterCannotUseKey(MrKey),
    /// The calling process does not own the endpoint it is driving.
    WrongProcess(EpId),
}

impl From<MemError> for RdmaError {
    fn from(e: MemError) -> Self {
        RdmaError::Mem(e)
    }
}

impl fmt::Display for RdmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdmaError::Mem(e) => write!(f, "memory fault: {e}"),
            RdmaError::BadKey(k) => write!(f, "unknown or deregistered key {k:?}"),
            RdmaError::KeyEndpointMismatch(k) => write!(f, "key {k:?} belongs to another endpoint"),
            RdmaError::KeyRangeMismatch(k) => write!(f, "access outside registered range of {k:?}"),
            RdmaError::WrongGvmi { expected, got } => {
                write!(
                    f,
                    "GVMI mismatch: key registered for {expected:?}, got {got:?}"
                )
            }
            RdmaError::NotDpu(ep) => write!(f, "{ep:?} is not a DPU endpoint"),
            RdmaError::NotGvmiKey(k) => write!(f, "{k:?} is not a GVMI mkey"),
            RdmaError::PosterCannotUseKey(k) => write!(f, "poster may not use key {k:?}"),
            RdmaError::WrongProcess(ep) => {
                write!(f, "calling process does not own endpoint {ep:?}")
            }
        }
    }
}

impl std::error::Error for RdmaError {}
