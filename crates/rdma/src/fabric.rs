//! The fabric: endpoints, registration tables, routing and transfer timing.
//!
//! [`Fabric`] is a cheap-to-clone handle shared by every simulated process.
//! All operations that consume CPU time (posting, registering) must be
//! called by the process that owns the acting endpoint. Those costs are
//! charged to a per-endpoint *CPU timeline* (a busy-until reservation, not
//! a thread sleep): successive operations of one endpoint chain after each
//! other, and a transfer's wire activity starts only when its posting work
//! ends on that timeline. This keeps the timing model exact while letting
//! the simulation avoid a scheduler round-trip per posted operation, and it
//! never pollutes the `compute()` accounting used by overlap metrics.
//!
//! Byte movement happens eagerly at post time (the source is snapshotted),
//! while *observability* is event-driven: completions and delivery
//! notifications arrive as [`NetMsg`] mailbox messages at the modelled
//! times. This matches how the upper layers use RDMA (nothing reads a
//! destination buffer before a completion/counter says it is there).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use simnet::{Payload, Pid, ProcessCtx, ResourceId, SimDelta, SimTime, Simulation};

use crate::mem::{AddressSpace, VAddr};
use crate::model::{ClusterSpec, DeviceClass};
use crate::types::{Cqe, EpId, GvmiId, MrKey, NetMsg, Packet, RdmaError};

struct Endpoint {
    pid: Pid,
    node: usize,
    class: DeviceClass,
    mem: AddressSpace,
    gvmi: Option<GvmiId>,
    /// End of the last CPU-charged operation on this endpoint (posting,
    /// registration, protocol handling). New charges chain after it.
    cpu_busy: SimTime,
}

enum MrKind {
    /// Plain `ibv_reg_mr`: lkey for the owner, rkey for remotes.
    Ib,
    /// Host-side registration against a proxy's GVMI-ID (an `mkey`).
    Gvmi { gvmi: GvmiId },
    /// DPU-side cross-registration (an `mkey2`): lets `owner_dpu` post
    /// transfers whose source bytes live in `host_ep`'s memory.
    Cross { owner_dpu: EpId, host_ep: EpId },
}

struct MrEntry {
    ep: EpId,
    addr: VAddr,
    len: u64,
    kind: MrKind,
    valid: bool,
}

struct NodeRes {
    host_tx: ResourceId,
    host_rx: ResourceId,
    /// Control lane of the host port: small messages arbitrate here
    /// (per-message handling only), never behind bulk serialization.
    host_rx_ctrl: ResourceId,
    dpu_tx: ResourceId,
    dpu_rx: ResourceId,
    /// Control lane of the DPU port — the ARM per-message handling rate
    /// that halves small-message bandwidth into the DPU (paper Fig. 3).
    dpu_rx_ctrl: ResourceId,
    pcie_h2d: ResourceId,
    pcie_d2h: ResourceId,
}

struct World {
    spec: ClusterSpec,
    eps: Vec<Endpoint>,
    nodes: Vec<NodeRes>,
    mrs: BTreeMap<u64, MrEntry>,
    next_key: u64,
    next_gvmi: u32,
    /// Latest packet delivery per `(from, to)` endpoint pair. Two-sided
    /// packets between one pair share a QP and must never overtake each
    /// other, even when the control-lane/bulk-lane split would allow it.
    pair_order: BTreeMap<(EpId, EpId), SimTime>,
    /// Extra per-transfer delivery delay, drawn uniformly from
    /// `[0, delivery_jitter]`. Used by the schedule explorer to perturb
    /// event interleavings; the same-QP FIFO clamp in `send_packet` runs
    /// *after* jitter, so packet reorderings stay protocol-legal.
    delivery_jitter: SimDelta,
    /// Data-plane fault injection (bit flips, torn writes, payload drops).
    payload_faults: PayloadFaultPlan,
    /// Dedicated splitmix64 stream for payload faults; advanced only when
    /// the plan is armed, so clean runs never consume randomness.
    payload_rng: u64,
}

/// Data-plane fault plan: corruptions applied to the payload of RDMA
/// WRITE/READ operations as the bytes move between address spaces. All
/// rates are permille per transfer; faults fire only in byte-moving runs
/// (`ClusterSpec::move_bytes`) — timing-only runs carry no payloads to
/// corrupt. The upper layers arm this from their `FaultPlan` and pair it
/// with end-to-end CRC verification.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PayloadFaultPlan {
    /// Permille of transfers with one byte flipped at a random offset.
    pub flip_pm: u16,
    /// Permille of transfers landing torn: only a random prefix of the
    /// payload is written, the tail keeps the destination's old bytes.
    pub torn_pm: u16,
    /// Permille of transfers whose payload is dropped entirely on the
    /// wire (the operation still "completes" — silent data loss).
    pub drop_pm: u16,
    /// Seed of the fault stream.
    pub seed: u64,
}

impl PayloadFaultPlan {
    /// True when any payload fault can fire.
    pub fn armed(&self) -> bool {
        self.flip_pm > 0 || self.torn_pm > 0 || self.drop_pm > 0
    }
}

/// What the fault roll decided for one transfer.
enum PayloadFault {
    None,
    Drop,
    /// Write only the first `n` bytes.
    Torn(u64),
    /// Flip one bit in the byte at this offset.
    Flip(u64),
}

/// Handle to the simulated RDMA fabric. Clone freely; all clones share one
/// world. **Do not** hold other locks while calling into the fabric.
#[derive(Clone)]
pub struct Fabric {
    inner: Arc<Mutex<World>>,
}

/// Messages up to this size use the port's *control lane*: InfiniBand
/// interleaves at MTU granularity (with virtual-lane arbitration), so a
/// small control packet never waits behind megabytes of queued bulk data.
/// Its serialization time applies as pure latency, while the receiver's
/// per-message handling still rate-limits the lane — which is what caps
/// small-message throughput into the DPU's ARM cores (paper Fig. 3).
const SMALL_MSG_BYPASS: u64 = 8192;

/// How a transfer is routed, decided from the poster, the buffer owner and
/// the destination.
struct PathPlan {
    /// Pure latency (wire, PCIe, shared memory) ahead of delivery.
    latency: SimDelta,
    /// Serialization time of the payload on the narrowest link.
    serialize: SimDelta,
    /// Transmit-side FIFO to reserve, if any.
    tx: Option<ResourceId>,
    /// Receive-side FIFO to reserve, if any.
    rx: Option<ResourceId>,
    /// Per-message receive handling added to the rx reservation.
    rx_overhead: SimDelta,
    /// Control lane for a small message (per-message handling reserved
    /// there instead of the bulk FIFOs); `None` for bulk transfers or
    /// resource-free paths.
    ctrl_lane: Option<ResourceId>,
    /// Small message: interleaves with bulk traffic instead of queueing
    /// in the port FIFOs.
    small: bool,
}

impl Fabric {
    /// Create the fabric and its per-node resources.
    pub fn new(sim: &mut Simulation, spec: ClusterSpec) -> Fabric {
        let mut nodes = Vec::with_capacity(spec.nodes);
        for n in 0..spec.nodes {
            nodes.push(NodeRes {
                host_tx: sim.create_resource(format!("node{n}.host_nic.tx")),
                host_rx: sim.create_resource(format!("node{n}.host_nic.rx")),
                host_rx_ctrl: sim.create_resource(format!("node{n}.host_nic.rx_ctrl")),
                dpu_tx: sim.create_resource(format!("node{n}.dpu_nic.tx")),
                dpu_rx: sim.create_resource(format!("node{n}.dpu_nic.rx")),
                dpu_rx_ctrl: sim.create_resource(format!("node{n}.dpu_nic.rx_ctrl")),
                pcie_h2d: sim.create_resource(format!("node{n}.pcie.h2d")),
                pcie_d2h: sim.create_resource(format!("node{n}.pcie.d2h")),
            });
        }
        Fabric {
            inner: Arc::new(Mutex::new(World {
                spec,
                eps: Vec::new(),
                nodes,
                mrs: BTreeMap::new(),
                next_key: 1,
                next_gvmi: 1,
                pair_order: BTreeMap::new(),
                delivery_jitter: SimDelta::ZERO,
                payload_faults: PayloadFaultPlan::default(),
                payload_rng: 0,
            })),
        }
    }

    /// Attach an endpoint for `pid` on `node`. DPU endpoints are assigned a
    /// GVMI-ID at creation (the paper generates it once per protection
    /// domain inside `Init_Offload`).
    pub fn add_endpoint(&self, pid: Pid, node: usize, class: DeviceClass) -> EpId {
        let mut w = self.inner.lock();
        assert!(node < w.spec.nodes, "node out of range");
        let gvmi = match class {
            DeviceClass::Dpu => {
                let id = GvmiId(w.next_gvmi);
                w.next_gvmi += 1;
                Some(id)
            }
            DeviceClass::Host => None,
        };
        let id = EpId(w.eps.len() as u32);
        w.eps.push(Endpoint {
            pid,
            node,
            class,
            mem: AddressSpace::new(),
            gvmi,
            cpu_busy: SimTime::ZERO,
        });
        id
    }

    /// Enable delivery-delay jitter: every transfer is delayed by an extra
    /// uniform amount in `[0, jitter]` drawn from the simulation RNG. Zero
    /// (the default) disables it. This perturbs schedules without breaking
    /// same-QP FIFO ordering — see the schedule explorer in `checker`.
    pub fn set_delivery_jitter(&self, jitter: SimDelta) {
        self.inner.lock().delivery_jitter = jitter;
    }

    /// Arm data-plane payload faults. Set-once: the first armed plan wins,
    /// so every rank's `Init_Offload` can install the run's plan without
    /// resetting the fault stream mid-run. An unarmed plan is a no-op.
    pub fn set_payload_faults(&self, plan: PayloadFaultPlan) {
        if !plan.armed() {
            return;
        }
        let mut w = self.inner.lock();
        if w.payload_faults.armed() {
            return;
        }
        w.payload_faults = plan;
        // splitmix64 init, offset so seed 0 still produces a live stream.
        w.payload_rng = plan.seed ^ 0x9E37_79B9_7F4A_7C15;
    }

    /// The cluster spec this fabric was built with.
    pub fn spec(&self) -> ClusterSpec {
        self.inner.lock().spec.clone()
    }

    /// Whether transfers move real bytes (see `ClusterSpec::move_bytes`).
    pub fn moves_bytes(&self) -> bool {
        self.inner.lock().spec.move_bytes
    }

    /// Process driving `ep`.
    pub fn pid_of(&self, ep: EpId) -> Pid {
        self.inner.lock().eps[ep.index()].pid
    }

    /// Node hosting `ep`.
    pub fn node_of(&self, ep: EpId) -> usize {
        self.inner.lock().eps[ep.index()].node
    }

    /// Device class of `ep`.
    pub fn class_of(&self, ep: EpId) -> DeviceClass {
        self.inner.lock().eps[ep.index()].class
    }

    /// GVMI-ID of a DPU endpoint.
    pub fn gvmi_of(&self, ep: EpId) -> Option<GvmiId> {
        self.inner.lock().eps[ep.index()].gvmi
    }

    // ---- memory management (no modelled cost: test/benchmark setup) ----

    /// Allocate `len` zeroed bytes in `ep`'s address space.
    ///
    /// In timing-only runs (`move_bytes == false`), allocations above
    /// 64 KiB become *virtual* regions: bounds-checked but not backed by
    /// bytes, so huge application buffers cost no host RAM. Small buffers
    /// stay real because eager messages and scalar reductions carry data
    /// even in timing-only runs.
    pub fn alloc(&self, ep: EpId, len: u64) -> VAddr {
        let mut w = self.inner.lock();
        if !w.spec.move_bytes && len > 64 * 1024 {
            w.eps[ep.index()].mem.alloc_virtual(len)
        } else {
            w.eps[ep.index()].mem.alloc(len)
        }
    }

    /// Raw write into `ep`'s memory.
    pub fn write_bytes(&self, ep: EpId, addr: VAddr, data: &[u8]) -> Result<(), RdmaError> {
        Ok(self.inner.lock().eps[ep.index()].mem.write(addr, data)?)
    }

    /// Raw read from `ep`'s memory.
    pub fn read_bytes(&self, ep: EpId, addr: VAddr, len: u64) -> Result<Vec<u8>, RdmaError> {
        Ok(self.inner.lock().eps[ep.index()].mem.read(addr, len)?)
    }

    /// Fill with a deterministic pattern (data-integrity tests).
    pub fn fill_pattern(
        &self,
        ep: EpId,
        addr: VAddr,
        len: u64,
        seed: u64,
    ) -> Result<(), RdmaError> {
        Ok(self.inner.lock().eps[ep.index()]
            .mem
            .fill_pattern(addr, len, seed)?)
    }

    /// Verify a deterministic pattern (data-integrity tests).
    pub fn verify_pattern(
        &self,
        ep: EpId,
        addr: VAddr,
        len: u64,
        seed: u64,
    ) -> Result<bool, RdmaError> {
        Ok(self.inner.lock().eps[ep.index()]
            .mem
            .verify_pattern(addr, len, seed)?)
    }

    /// CRC32 of `[addr, addr+len)` in `ep`'s memory (end-to-end payload
    /// integrity). Virtual regions hash their zero-fill.
    pub fn crc32(&self, ep: EpId, addr: VAddr, len: u64) -> Result<u32, RdmaError> {
        Ok(self.inner.lock().eps[ep.index()].mem.crc32(addr, len)?)
    }

    /// Read a little-endian u64 (counters).
    pub fn read_u64(&self, ep: EpId, addr: VAddr) -> Result<u64, RdmaError> {
        Ok(self.inner.lock().eps[ep.index()].mem.read_u64(addr)?)
    }

    /// Write a little-endian u64 (counters).
    pub fn write_u64(&self, ep: EpId, addr: VAddr, v: u64) -> Result<(), RdmaError> {
        Ok(self.inner.lock().eps[ep.index()].mem.write_u64(addr, v)?)
    }

    // ---- registration ----

    /// Plain IB registration of `ep`'s own buffer. Returns a key usable as
    /// this endpoint's lkey and as a remote rkey. Charges the modelled
    /// registration cost to the calling process.
    pub fn reg_mr(
        &self,
        ctx: &ProcessCtx,
        ep: EpId,
        addr: VAddr,
        len: u64,
    ) -> Result<MrKey, RdmaError> {
        let (key, cost) = {
            let mut w = self.inner.lock();
            let e = &w.eps[ep.index()];
            if e.pid != ctx.pid() {
                return Err(RdmaError::WrongProcess(ep));
            }
            e.mem.check_range(addr, len)?;
            let cost = w.spec.model.reg_cost(addr, len);
            let key = w.insert_mr(ep, addr, len, MrKind::Ib);
            w.charge_cpu(ep, ctx.now(), cost);
            (key, cost)
        };
        ctx.stat_incr("rdma.reg.ib", 1);
        ctx.stat_time("rdma.reg.time", cost);
        Ok(key)
    }

    /// Host-side GVMI registration: expose `ep`'s buffer to the proxy that
    /// owns `gvmi`. Returns the `mkey` that must be shipped to that proxy.
    pub fn reg_mr_gvmi(
        &self,
        ctx: &ProcessCtx,
        ep: EpId,
        addr: VAddr,
        len: u64,
        gvmi: GvmiId,
    ) -> Result<MrKey, RdmaError> {
        let (key, cost) = {
            let mut w = self.inner.lock();
            let e = &w.eps[ep.index()];
            if e.pid != ctx.pid() {
                return Err(RdmaError::WrongProcess(ep));
            }
            e.mem.check_range(addr, len)?;
            if !w.eps.iter().any(|e| e.gvmi == Some(gvmi)) {
                return Err(RdmaError::WrongGvmi {
                    expected: gvmi,
                    got: gvmi,
                });
            }
            let cost = w.spec.model.reg_cost(addr, len);
            let key = w.insert_mr(ep, addr, len, MrKind::Gvmi { gvmi });
            w.charge_cpu(ep, ctx.now(), cost);
            (key, cost)
        };
        ctx.stat_incr("rdma.reg.gvmi", 1);
        ctx.stat_time("rdma.reg.gvmi.time", cost);
        Ok(key)
    }

    /// DPU-side cross-registration: the proxy turns a host `mkey` into an
    /// `mkey2` it can use as a local key for transfers out of host memory.
    /// Must be called by the DPU endpoint owning `gvmi`.
    pub fn cross_reg(
        &self,
        ctx: &ProcessCtx,
        dpu_ep: EpId,
        addr: VAddr,
        len: u64,
        mkey: MrKey,
        gvmi: GvmiId,
    ) -> Result<MrKey, RdmaError> {
        let (key, cost) = {
            let mut w = self.inner.lock();
            let e = &w.eps[dpu_ep.index()];
            if e.pid != ctx.pid() {
                return Err(RdmaError::WrongProcess(dpu_ep));
            }
            if e.class != DeviceClass::Dpu {
                return Err(RdmaError::NotDpu(dpu_ep));
            }
            if e.gvmi != Some(gvmi) {
                return Err(RdmaError::WrongGvmi {
                    expected: e.gvmi.expect("dpu endpoints always have a gvmi"),
                    got: gvmi,
                });
            }
            let entry = w
                .mrs
                .get(&mkey.0)
                .filter(|m| m.valid)
                .ok_or(RdmaError::BadKey(mkey))?;
            let MrKind::Gvmi { gvmi: key_gvmi } = entry.kind else {
                return Err(RdmaError::NotGvmiKey(mkey));
            };
            if key_gvmi != gvmi {
                return Err(RdmaError::WrongGvmi {
                    expected: key_gvmi,
                    got: gvmi,
                });
            }
            if addr.0 < entry.addr.0 || addr.0 + len > entry.addr.0 + entry.len {
                return Err(RdmaError::KeyRangeMismatch(mkey));
            }
            let host_ep = entry.ep;
            let cost = w.spec.model.cross_reg_cost(addr, len);
            let key = w.insert_mr(
                host_ep,
                addr,
                len,
                MrKind::Cross {
                    owner_dpu: dpu_ep,
                    host_ep,
                },
            );
            w.charge_cpu(dpu_ep, ctx.now(), cost);
            (key, cost)
        };
        ctx.stat_incr("rdma.reg.cross", 1);
        ctx.stat_time("rdma.reg.cross.time", cost);
        Ok(key)
    }

    /// Invalidate a key.
    pub fn dereg(&self, key: MrKey) -> Result<(), RdmaError> {
        let mut w = self.inner.lock();
        let entry = w.mrs.get_mut(&key.0).ok_or(RdmaError::BadKey(key))?;
        if !entry.valid {
            return Err(RdmaError::BadKey(key));
        }
        entry.valid = false;
        Ok(())
    }

    // ---- data movement ----

    /// One-sided RDMA Write of `len` bytes.
    ///
    /// * `poster` — endpoint whose CPU posts the work request (charged the
    ///   class-specific posting overhead).
    /// * `local` — `(endpoint owning the source bytes, address, key)`. The
    ///   key must be the poster's own lkey, or an `mkey2` the poster
    ///   cross-registered over that host buffer (the GVMI data path).
    /// * `remote` — destination `(endpoint, address, rkey)`.
    /// * `signal` — if `Some(wrid)`, a [`NetMsg::Cqe`] is delivered to the
    ///   poster once the write completes (delivery + ack latency).
    /// * `notify` — optional `(pid, payload)` delivered as
    ///   [`NetMsg::Notify`] at data-arrival time; models the remote side
    ///   observing the written flag/counter.
    ///
    /// Returns the modelled delivery time.
    #[allow(clippy::too_many_arguments)]
    pub fn rdma_write(
        &self,
        ctx: &ProcessCtx,
        poster: EpId,
        local: (EpId, VAddr, MrKey),
        remote: (EpId, VAddr, MrKey),
        len: u64,
        signal: Option<u64>,
        notify: Option<(Pid, Payload)>,
    ) -> Result<SimTime, RdmaError> {
        let (local_ep, local_addr, lkey) = local;
        let (remote_ep, remote_addr, rkey) = remote;
        let (plan, post_end, poster_pid, ack, faulted) = {
            let mut w = self.inner.lock();
            if w.eps[poster.index()].pid != ctx.pid() {
                return Err(RdmaError::WrongProcess(poster));
            }
            w.check_local_key(poster, local_ep, local_addr, lkey, len)?;
            w.check_remote_key(remote_ep, remote_addr, rkey, len)?;
            // Move the bytes now; they become observable at delivery time.
            let faulted = if w.spec.move_bytes {
                w.move_payload((local_ep, local_addr), (remote_ep, remote_addr), len)?
            } else {
                w.eps[local_ep.index()].mem.check_range(local_addr, len)?;
                w.eps[remote_ep.index()].mem.check_range(remote_addr, len)?;
                false
            };
            let plan = w.plan_path(poster, local_ep, remote_ep, len);
            let post = w.spec.model.post_overhead(w.eps[poster.index()].class);
            let post_end = w.charge_cpu(poster, ctx.now(), post);
            (
                plan,
                post_end,
                w.eps[poster.index()].pid,
                w.spec.model.ack_latency,
                faulted,
            )
        };
        if faulted {
            ctx.stat_incr("rdma.fault.payload", 1);
        }
        ctx.stat_incr("rdma.write.count", 1);
        ctx.stat_incr("rdma.write.bytes", len);
        let deliver = self.execute_plan(ctx, &plan, post_end);
        if let Some((pid, payload)) = notify {
            ctx.deliver_at(pid, deliver, Box::new(NetMsg::Notify(payload)));
        }
        if let Some(wrid) = signal {
            ctx.deliver_at(
                poster_pid,
                deliver + ack,
                Box::new(NetMsg::Cqe(Cqe { wrid })),
            );
        }
        Ok(deliver)
    }

    /// One-sided RDMA Read of `len` bytes from `remote` into `local`.
    /// `local` must be the poster's own registered buffer. The CQE (if
    /// `signal`) arrives when the data lands locally.
    pub fn rdma_read(
        &self,
        ctx: &ProcessCtx,
        poster: EpId,
        local: (EpId, VAddr, MrKey),
        remote: (EpId, VAddr, MrKey),
        len: u64,
        signal: Option<u64>,
    ) -> Result<SimTime, RdmaError> {
        let (local_ep, local_addr, lkey) = local;
        let (remote_ep, remote_addr, rkey) = remote;
        let (plan, start, poster_pid, faulted) = {
            let mut w = self.inner.lock();
            if w.eps[poster.index()].pid != ctx.pid() {
                return Err(RdmaError::WrongProcess(poster));
            }
            w.check_local_key(poster, local_ep, local_addr, lkey, len)?;
            w.check_remote_key(remote_ep, remote_addr, rkey, len)?;
            let faulted = if w.spec.move_bytes {
                w.move_payload((remote_ep, remote_addr), (local_ep, local_addr), len)?
            } else {
                w.eps[remote_ep.index()].mem.check_range(remote_addr, len)?;
                w.eps[local_ep.index()].mem.check_range(local_addr, len)?;
                false
            };
            // Data flows remote -> local: plan with roles swapped. The read
            // request itself costs one extra wire traversal before the
            // remote NIC can start streaming data back.
            let plan = w.plan_path(remote_ep, remote_ep, local_ep, len);
            let post = w.spec.model.post_overhead(w.eps[poster.index()].class);
            let post_end = w.charge_cpu(poster, ctx.now(), post);
            let start = post_end + plan.latency;
            (plan, start, w.eps[poster.index()].pid, faulted)
        };
        if faulted {
            ctx.stat_incr("rdma.fault.payload", 1);
        }
        ctx.stat_incr("rdma.read.count", 1);
        ctx.stat_incr("rdma.read.bytes", len);
        let deliver = self.execute_plan(ctx, &plan, start);
        if let Some(wrid) = signal {
            ctx.deliver_at(poster_pid, deliver, Box::new(NetMsg::Cqe(Cqe { wrid })));
        }
        Ok(deliver)
    }

    /// Two-sided packet: `body` is delivered as [`NetMsg::Packet`] to the
    /// process driving `to` after the modelled traversal of `bytes`.
    /// This is the control-message and eager-data primitive.
    pub fn send_packet(
        &self,
        ctx: &ProcessCtx,
        from: EpId,
        to: EpId,
        bytes: u64,
        body: Payload,
    ) -> Result<SimTime, RdmaError> {
        let (plan, post_end, to_pid) = {
            let mut w = self.inner.lock();
            if w.eps[from.index()].pid != ctx.pid() {
                return Err(RdmaError::WrongProcess(from));
            }
            let plan = w.plan_path(from, from, to, bytes);
            let post = w.spec.model.post_overhead(w.eps[from.index()].class);
            let post_end = w.charge_cpu(from, ctx.now(), post);
            (plan, post_end, w.eps[to.index()].pid)
        };
        ctx.stat_incr("rdma.packet.count", 1);
        ctx.stat_incr("rdma.packet.bytes", bytes);
        let mut deliver = self.execute_plan(ctx, &plan, post_end);
        {
            // Same-QP FIFO: a later packet between the same endpoints can
            // never arrive before an earlier one.
            let mut w = self.inner.lock();
            let last = w.pair_order.entry((from, to)).or_insert(SimTime::ZERO);
            if deliver <= *last {
                deliver = *last + SimDelta::from_ps(1);
            }
            *last = deliver;
        }
        ctx.deliver_at(
            to_pid,
            deliver,
            Box::new(NetMsg::Packet(Packet {
                src: from,
                bytes,
                body,
            })),
        );
        Ok(deliver)
    }

    /// Reserve the planned resources, starting no earlier than `earliest`
    /// (the end of the poster's CPU work), and return the delivery time.
    /// Small messages skip the FIFOs (see [`SMALL_MSG_BYPASS`]).
    fn execute_plan(&self, ctx: &ProcessCtx, plan: &PathPlan, earliest: SimTime) -> SimTime {
        let jitter = self.inner.lock().delivery_jitter;
        let earliest = if jitter > SimDelta::ZERO {
            earliest + SimDelta::from_ps(ctx.gen_range(jitter.as_ps() + 1))
        } else {
            earliest
        };
        if plan.small {
            // Small messages arbitrate on the control lane: they pay their
            // own serialization and per-message handling there (so a
            // stream of them is still wire/handler rate-limited) but never
            // wait behind bulk transfers.
            let arrive = earliest + plan.latency;
            return match plan.ctrl_lane {
                Some(lane) => {
                    ctx.reserve_from(lane, arrive, plan.serialize + plan.rx_overhead)
                        .1
                }
                None => arrive + plan.serialize + plan.rx_overhead,
            };
        }
        let tx_start = match plan.tx {
            Some(tx) => ctx.reserve_from(tx, earliest, plan.serialize).0,
            None => earliest,
        };
        let arrive = tx_start + plan.latency;
        match plan.rx {
            Some(rx) => {
                let (_, rx_end) = ctx.reserve_from(rx, arrive, plan.serialize + plan.rx_overhead);
                rx_end
            }
            None => arrive + plan.serialize + plan.rx_overhead,
        }
    }

    /// Charge protocol-handling CPU time to `ep`'s timeline (e.g. the ARM
    /// cost of interpreting one proxy queue entry). Subsequent posts of
    /// this endpoint start after the charged work. Returns the end instant.
    pub fn charge_cpu(
        &self,
        ctx: &ProcessCtx,
        ep: EpId,
        dur: SimDelta,
    ) -> Result<SimTime, RdmaError> {
        let mut w = self.inner.lock();
        if w.eps[ep.index()].pid != ctx.pid() {
            return Err(RdmaError::WrongProcess(ep));
        }
        Ok(w.charge_cpu(ep, ctx.now(), dur))
    }

    /// The instant `ep`'s CPU timeline becomes free (diagnostics/tests).
    pub fn cpu_available(&self, ep: EpId) -> SimTime {
        self.inner.lock().eps[ep.index()].cpu_busy
    }
}

impl World {
    /// Next draw of the payload-fault stream (splitmix64).
    fn payload_next(&mut self) -> u64 {
        self.payload_rng = self.payload_rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.payload_rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Roll a permille chance; a rate of 0 consumes no randomness (so
    /// arming one fault class leaves the others' streams untouched).
    fn payload_chance(&mut self, pm: u16) -> bool {
        pm > 0 && self.payload_next() % 1000 < pm as u64
    }

    /// Decide the fault (if any) for one payload of `len` bytes.
    fn payload_roll(&mut self, len: u64) -> PayloadFault {
        if !self.payload_faults.armed() || len == 0 {
            return PayloadFault::None;
        }
        let plan = self.payload_faults;
        if self.payload_chance(plan.drop_pm) {
            PayloadFault::Drop
        } else if self.payload_chance(plan.torn_pm) {
            PayloadFault::Torn(self.payload_next() % len)
        } else if self.payload_chance(plan.flip_pm) {
            PayloadFault::Flip(self.payload_next() % len)
        } else {
            PayloadFault::None
        }
    }

    /// Move one payload from `src` to `dst`, applying the rolled fault.
    /// Returns true when a fault fired (for stats). Both ranges are
    /// validated even on the faulted paths, so a drop never masks a
    /// protocol-level addressing bug.
    fn move_payload(
        &mut self,
        src: (EpId, VAddr),
        dst: (EpId, VAddr),
        len: u64,
    ) -> Result<bool, crate::mem::MemError> {
        let mut data = self.eps[src.0.index()].mem.read(src.1, len)?;
        self.eps[dst.0.index()].mem.check_range(dst.1, len)?;
        match self.payload_roll(len) {
            PayloadFault::None => {
                self.eps[dst.0.index()].mem.write(dst.1, &data)?;
                Ok(false)
            }
            PayloadFault::Drop => Ok(true),
            PayloadFault::Torn(prefix) => {
                data.truncate(prefix as usize);
                self.eps[dst.0.index()].mem.write(dst.1, &data)?;
                Ok(true)
            }
            PayloadFault::Flip(off) => {
                data[off as usize] ^= 0x40;
                self.eps[dst.0.index()].mem.write(dst.1, &data)?;
                Ok(true)
            }
        }
    }

    /// Charge `dur` of CPU time to `ep`, chaining after any prior charge.
    /// Returns the instant the work finishes.
    fn charge_cpu(&mut self, ep: EpId, now: SimTime, dur: SimDelta) -> SimTime {
        let e = &mut self.eps[ep.index()];
        let start = e.cpu_busy.max(now);
        e.cpu_busy = start + dur;
        e.cpu_busy
    }

    fn insert_mr(&mut self, ep: EpId, addr: VAddr, len: u64, kind: MrKind) -> MrKey {
        let key = MrKey(self.next_key);
        self.next_key += 1;
        self.mrs.insert(
            key.0,
            MrEntry {
                ep,
                addr,
                len,
                kind,
                valid: true,
            },
        );
        key
    }

    fn check_local_key(
        &self,
        poster: EpId,
        local_ep: EpId,
        addr: VAddr,
        key: MrKey,
        len: u64,
    ) -> Result<(), RdmaError> {
        let entry = self
            .mrs
            .get(&key.0)
            .filter(|m| m.valid)
            .ok_or(RdmaError::BadKey(key))?;
        if entry.ep != local_ep {
            return Err(RdmaError::KeyEndpointMismatch(key));
        }
        if addr.0 < entry.addr.0 || addr.0 + len > entry.addr.0 + entry.len {
            return Err(RdmaError::KeyRangeMismatch(key));
        }
        match entry.kind {
            MrKind::Ib => {
                if poster != local_ep {
                    return Err(RdmaError::PosterCannotUseKey(key));
                }
                Ok(())
            }
            MrKind::Cross { owner_dpu, host_ep } => {
                if poster != owner_dpu || local_ep != host_ep {
                    return Err(RdmaError::PosterCannotUseKey(key));
                }
                Ok(())
            }
            // A raw mkey is only an input to cross-registration; it cannot
            // drive a transfer.
            MrKind::Gvmi { .. } => Err(RdmaError::PosterCannotUseKey(key)),
        }
    }

    fn check_remote_key(
        &self,
        remote_ep: EpId,
        addr: VAddr,
        key: MrKey,
        len: u64,
    ) -> Result<(), RdmaError> {
        let entry = self
            .mrs
            .get(&key.0)
            .filter(|m| m.valid)
            .ok_or(RdmaError::BadKey(key))?;
        if entry.ep != remote_ep {
            return Err(RdmaError::KeyEndpointMismatch(key));
        }
        if !matches!(entry.kind, MrKind::Ib) {
            return Err(RdmaError::PosterCannotUseKey(key));
        }
        if addr.0 < entry.addr.0 || addr.0 + len > entry.addr.0 + entry.len {
            return Err(RdmaError::KeyRangeMismatch(key));
        }
        Ok(())
    }

    /// Decide the route for a payload of `bytes` whose source bytes live at
    /// `src_owner`, posted by `poster`, destined for `dst`.
    fn plan_path(&self, poster: EpId, src_owner: EpId, dst: EpId, bytes: u64) -> PathPlan {
        let m = &self.spec.model;
        let p = &self.eps[poster.index()];
        let s = &self.eps[src_owner.index()];
        let d = &self.eps[dst.index()];
        // The BlueField's DRAM throttles anything staged through DPU
        // memory: payloads read out of, or written into, a DPU endpoint.
        let dpu_mem_cap = |mut bw: u64| {
            if s.class == DeviceClass::Dpu || d.class == DeviceClass::Dpu {
                bw = bw.min(m.dpu_mem_bandwidth);
            }
            bw
        };
        if s.node == d.node {
            // Intra-node.
            if s.class == d.class {
                // Host-host (or dpu-dpu) same node: shared memory copy.
                return PathPlan {
                    latency: m.shm_latency,
                    serialize: SimDelta::for_bytes(bytes, dpu_mem_cap(m.shm_bandwidth)),
                    tx: None,
                    rx: None,
                    rx_overhead: SimDelta::ZERO,
                    ctrl_lane: None,
                    small: bytes <= SMALL_MSG_BYPASS,
                };
            }
            // Host <-> DPU: PCIe hop.
            let res = &self.nodes[s.node];
            let pcie = if s.class == DeviceClass::Host {
                res.pcie_h2d
            } else {
                res.pcie_d2h
            };
            return PathPlan {
                latency: m.pcie_latency,
                serialize: SimDelta::for_bytes(bytes, dpu_mem_cap(m.pcie_bandwidth)),
                tx: Some(pcie),
                rx: None,
                rx_overhead: m.rx_overhead(d.class),
                ctrl_lane: None,
                small: bytes <= SMALL_MSG_BYPASS,
            };
        }
        // Cross-node: transmit on the poster's port, receive on the
        // destination's port.
        let mut latency = m.wire_latency;
        let mut bw = dpu_mem_cap(m.net_bandwidth);
        if s.class != p.class {
            // GVMI path: the DPU port DMAs the payload out of host memory
            // across PCIe while transmitting.
            latency += m.pcie_latency;
            bw = bw.min(m.pcie_bandwidth);
        }
        let tx = match p.class {
            DeviceClass::Host => self.nodes[p.node].host_tx,
            DeviceClass::Dpu => self.nodes[p.node].dpu_tx,
        };
        let rx = match d.class {
            DeviceClass::Host => self.nodes[d.node].host_rx,
            DeviceClass::Dpu => self.nodes[d.node].dpu_rx,
        };
        let ctrl_lane = match d.class {
            DeviceClass::Host => self.nodes[d.node].host_rx_ctrl,
            DeviceClass::Dpu => self.nodes[d.node].dpu_rx_ctrl,
        };
        PathPlan {
            latency,
            serialize: SimDelta::for_bytes(bytes, bw),
            tx: Some(tx),
            rx: Some(rx),
            rx_overhead: m.rx_overhead(d.class),
            ctrl_lane: Some(ctrl_lane),
            small: bytes <= SMALL_MSG_BYPASS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NicModel;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Two nodes, 1 rank + 1 proxy each; run `f` as a single driver process
    /// that owns every endpoint (fine for fabric-level unit tests).
    fn with_driver<F>(f: F) -> simnet::Report
    where
        F: FnOnce(ProcessCtx, Fabric, Vec<EpId>) + Send + 'static,
    {
        let spec = ClusterSpec::new(2, 1);
        let mut sim = Simulation::new(1);
        let fabric = Fabric::new(&mut sim, spec);
        let f2 = fabric.clone();
        sim.spawn("driver", move |ctx| {
            let h0 = f2.add_endpoint(ctx.pid(), 0, DeviceClass::Host);
            let h1 = f2.add_endpoint(ctx.pid(), 1, DeviceClass::Host);
            let d0 = f2.add_endpoint(ctx.pid(), 0, DeviceClass::Dpu);
            let d1 = f2.add_endpoint(ctx.pid(), 1, DeviceClass::Dpu);
            f(ctx, f2, vec![h0, h1, d0, d1]);
        });
        sim.run().unwrap()
    }

    #[test]
    fn rdma_write_moves_bytes_and_completes() {
        with_driver(|ctx, fab, eps| {
            let (h0, h1) = (eps[0], eps[1]);
            let src = fab.alloc(h0, 1024);
            let dst = fab.alloc(h1, 1024);
            fab.fill_pattern(h0, src, 1024, 7).unwrap();
            let lkey = fab.reg_mr(&ctx, h0, src, 1024).unwrap();
            let rkey = fab.reg_mr(&ctx, h1, dst, 1024).unwrap();
            let t0 = ctx.now();
            fab.rdma_write(
                &ctx,
                h0,
                (h0, src, lkey),
                (h1, dst, rkey),
                1024,
                Some(99),
                None,
            )
            .unwrap();
            let msg = ctx.recv();
            let net = msg.downcast::<NetMsg>().unwrap();
            match *net {
                NetMsg::Cqe(Cqe { wrid }) => assert_eq!(wrid, 99),
                other => panic!("expected CQE, got {other:?}"),
            }
            assert!(fab.verify_pattern(h1, dst, 1024, 7).unwrap());
            let elapsed = ctx.now() - t0;
            // post + wire + serialize + rx + ack: on the order of 2-3 us.
            assert!(
                elapsed.as_us_f64() > 1.0 && elapsed.as_us_f64() < 10.0,
                "{elapsed}"
            );
        });
    }

    #[test]
    fn gvmi_cross_registration_data_path() {
        with_driver(|ctx, fab, eps| {
            let (h0, h1, d0) = (eps[0], eps[1], eps[2]);
            let gvmi = fab.gvmi_of(d0).unwrap();
            let src = fab.alloc(h0, 4096);
            let dst = fab.alloc(h1, 4096);
            fab.fill_pattern(h0, src, 4096, 11).unwrap();
            // Host registers against the proxy's GVMI -> mkey.
            let mkey = fab.reg_mr_gvmi(&ctx, h0, src, 4096, gvmi).unwrap();
            // Raw mkey cannot drive a transfer.
            let rkey = fab.reg_mr(&ctx, h1, dst, 4096).unwrap();
            let err = fab
                .rdma_write(&ctx, d0, (h0, src, mkey), (h1, dst, rkey), 4096, None, None)
                .unwrap_err();
            assert!(matches!(err, RdmaError::PosterCannotUseKey(_)), "{err}");
            // Proxy cross-registers -> mkey2, then transfers host memory.
            let mkey2 = fab.cross_reg(&ctx, d0, src, 4096, mkey, gvmi).unwrap();
            fab.rdma_write(
                &ctx,
                d0,
                (h0, src, mkey2),
                (h1, dst, rkey),
                4096,
                Some(1),
                None,
            )
            .unwrap();
            let _ = ctx.recv();
            assert!(fab.verify_pattern(h1, dst, 4096, 11).unwrap());
        });
    }

    #[test]
    fn cross_reg_validates_gvmi_and_owner() {
        with_driver(|ctx, fab, eps| {
            let (h0, d0, d1) = (eps[0], eps[2], eps[3]);
            let g0 = fab.gvmi_of(d0).unwrap();
            let g1 = fab.gvmi_of(d1).unwrap();
            let src = fab.alloc(h0, 64);
            let mkey = fab.reg_mr_gvmi(&ctx, h0, src, 64, g0).unwrap();
            // Wrong proxy: d1 does not own g0.
            let err = fab.cross_reg(&ctx, d1, src, 64, mkey, g0).unwrap_err();
            assert!(matches!(err, RdmaError::WrongGvmi { .. }), "{err}");
            // Wrong gvmi for the mkey.
            let err = fab.cross_reg(&ctx, d1, src, 64, mkey, g1).unwrap_err();
            assert!(matches!(err, RdmaError::WrongGvmi { .. }), "{err}");
            // Host endpoints cannot cross-register.
            let err = fab.cross_reg(&ctx, h0, src, 64, mkey, g0).unwrap_err();
            assert!(
                matches!(err, RdmaError::NotDpu(_) | RdmaError::WrongGvmi { .. }),
                "{err}"
            );
        });
    }

    #[test]
    fn lkey_is_owner_only() {
        with_driver(|ctx, fab, eps| {
            let (h0, h1) = (eps[0], eps[1]);
            let a0 = fab.alloc(h0, 64);
            let a1 = fab.alloc(h1, 64);
            let k0 = fab.reg_mr(&ctx, h0, a0, 64).unwrap();
            let k1 = fab.reg_mr(&ctx, h1, a1, 64).unwrap();
            // h1 posting with h0's buffer as local must fail.
            let err = fab
                .rdma_write(&ctx, h1, (h0, a0, k0), (h1, a1, k1), 64, None, None)
                .unwrap_err();
            assert!(matches!(err, RdmaError::PosterCannotUseKey(_)), "{err}");
        });
    }

    #[test]
    fn key_range_is_enforced() {
        with_driver(|ctx, fab, eps| {
            let (h0, h1) = (eps[0], eps[1]);
            let src = fab.alloc(h0, 128);
            let dst = fab.alloc(h1, 128);
            let lkey = fab.reg_mr(&ctx, h0, src, 64).unwrap(); // only first 64 B
            let rkey = fab.reg_mr(&ctx, h1, dst, 128).unwrap();
            let err = fab
                .rdma_write(&ctx, h0, (h0, src, lkey), (h1, dst, rkey), 128, None, None)
                .unwrap_err();
            assert!(matches!(err, RdmaError::KeyRangeMismatch(_)), "{err}");
        });
    }

    #[test]
    fn dereg_invalidates_key() {
        with_driver(|ctx, fab, eps| {
            let (h0, h1) = (eps[0], eps[1]);
            let src = fab.alloc(h0, 64);
            let dst = fab.alloc(h1, 64);
            let lkey = fab.reg_mr(&ctx, h0, src, 64).unwrap();
            let rkey = fab.reg_mr(&ctx, h1, dst, 64).unwrap();
            fab.dereg(lkey).unwrap();
            let err = fab
                .rdma_write(&ctx, h0, (h0, src, lkey), (h1, dst, rkey), 64, None, None)
                .unwrap_err();
            assert!(matches!(err, RdmaError::BadKey(_)), "{err}");
            assert!(matches!(fab.dereg(lkey).unwrap_err(), RdmaError::BadKey(_)));
        });
    }

    #[test]
    fn packet_delivery_carries_body() {
        let spec = ClusterSpec::new(2, 1);
        let mut sim = Simulation::new(3);
        let fabric = Fabric::new(&mut sim, spec);
        let got = Arc::new(AtomicU64::new(0));
        let got2 = Arc::clone(&got);
        let f_rx = fabric.clone();
        let rx_ep_slot = Arc::new(Mutex::new(None));
        let rx_slot2 = Arc::clone(&rx_ep_slot);
        let rx_pid = sim.spawn("rx", move |ctx| {
            let ep = f_rx.add_endpoint(ctx.pid(), 1, DeviceClass::Host);
            *rx_slot2.lock() = Some(ep);
            let msg = ctx.recv().downcast::<NetMsg>().unwrap();
            match *msg {
                NetMsg::Packet(p) => {
                    assert_eq!(p.bytes, 256);
                    got2.store(*p.body.downcast::<u64>().unwrap(), Ordering::SeqCst);
                }
                other => panic!("unexpected {other:?}"),
            }
        });
        let f_tx = fabric.clone();
        sim.spawn("tx", move |ctx| {
            let ep = f_tx.add_endpoint(ctx.pid(), 0, DeviceClass::Host);
            // Let the receiver register its endpoint first.
            ctx.yield_now();
            let to = rx_ep_slot.lock().expect("rx registered");
            assert_eq!(f_tx.pid_of(to), rx_pid);
            f_tx.send_packet(&ctx, ep, to, 256, Box::new(4242u64))
                .unwrap();
        });
        sim.run().unwrap();
        assert_eq!(got.load(Ordering::SeqCst), 4242);
    }

    #[test]
    fn host_to_dpu_is_slower_than_host_to_host_for_small_messages() {
        // Reproduces the *shape* of paper Fig. 3 at the fabric level.
        fn measure(dst_is_dpu: bool) -> f64 {
            let spec = ClusterSpec::new(2, 1);
            let mut sim = Simulation::new(5);
            let fabric = Fabric::new(&mut sim, spec);
            let f2 = fabric.clone();
            let elapsed = Arc::new(Mutex::new(0.0f64));
            let e2 = Arc::clone(&elapsed);
            sim.spawn("driver", move |ctx| {
                let src = f2.add_endpoint(ctx.pid(), 0, DeviceClass::Host);
                let dst = f2.add_endpoint(
                    ctx.pid(),
                    1,
                    if dst_is_dpu {
                        DeviceClass::Dpu
                    } else {
                        DeviceClass::Host
                    },
                );
                let sa = f2.alloc(src, 4096);
                let da = f2.alloc(dst, 4096);
                let lkey = f2.reg_mr(&ctx, src, sa, 4096).unwrap();
                let rkey = f2.reg_mr(&ctx, dst, da, 4096).unwrap();
                let t0 = ctx.now();
                // Window of 64 back-to-back writes; wait for the last CQE.
                for i in 0..64 {
                    let signal = if i == 63 { Some(i) } else { None };
                    f2.rdma_write(
                        &ctx,
                        src,
                        (src, sa, lkey),
                        (dst, da, rkey),
                        4096,
                        signal,
                        None,
                    )
                    .unwrap();
                }
                loop {
                    let msg = ctx.recv().downcast::<NetMsg>().unwrap();
                    if matches!(*msg, NetMsg::Cqe(_)) {
                        break;
                    }
                }
                *e2.lock() = (ctx.now() - t0).as_us_f64();
            });
            sim.run().unwrap();
            let v = *elapsed.lock();
            v
        }
        let host = measure(false);
        let dpu = measure(true);
        let ratio = host / dpu; // effective bandwidth ratio dpu/host
        assert!(
            ratio < 0.75,
            "host-to-DPU should reach well under 75% of host-host bandwidth, got {ratio}"
        );
    }

    #[test]
    fn payload_faults_corrupt_writes_and_crc_detects() {
        with_driver(|ctx, fab, eps| {
            let (h0, h1) = (eps[0], eps[1]);
            // Drop every payload: destination keeps its old bytes while
            // the operation still "completes" — silent loss by design.
            fab.set_payload_faults(PayloadFaultPlan {
                drop_pm: 1000,
                ..Default::default()
            });
            // Second arm attempt must be ignored (set-once).
            fab.set_payload_faults(PayloadFaultPlan {
                flip_pm: 1000,
                ..Default::default()
            });
            let src = fab.alloc(h0, 512);
            let dst = fab.alloc(h1, 512);
            fab.fill_pattern(h0, src, 512, 7).unwrap();
            let want = fab.crc32(h0, src, 512).unwrap();
            let lkey = fab.reg_mr(&ctx, h0, src, 512).unwrap();
            let rkey = fab.reg_mr(&ctx, h1, dst, 512).unwrap();
            fab.rdma_write(
                &ctx,
                h0,
                (h0, src, lkey),
                (h1, dst, rkey),
                512,
                Some(1),
                None,
            )
            .unwrap();
            let _ = ctx.recv();
            assert!(!fab.verify_pattern(h1, dst, 512, 7).unwrap());
            assert_ne!(fab.crc32(h1, dst, 512).unwrap(), want);
        });
    }

    #[test]
    fn unarmed_payload_plan_is_inert() {
        with_driver(|ctx, fab, eps| {
            let (h0, h1) = (eps[0], eps[1]);
            fab.set_payload_faults(PayloadFaultPlan::default());
            let src = fab.alloc(h0, 256);
            let dst = fab.alloc(h1, 256);
            fab.fill_pattern(h0, src, 256, 9).unwrap();
            let lkey = fab.reg_mr(&ctx, h0, src, 256).unwrap();
            let rkey = fab.reg_mr(&ctx, h1, dst, 256).unwrap();
            fab.rdma_write(
                &ctx,
                h0,
                (h0, src, lkey),
                (h1, dst, rkey),
                256,
                Some(1),
                None,
            )
            .unwrap();
            let _ = ctx.recv();
            assert!(fab.verify_pattern(h1, dst, 256, 9).unwrap());
            assert_eq!(
                fab.crc32(h1, dst, 256).unwrap(),
                fab.crc32(h0, src, 256).unwrap()
            );
        });
    }

    #[test]
    fn rdma_read_pulls_bytes() {
        with_driver(|ctx, fab, eps| {
            let (h0, h1) = (eps[0], eps[1]);
            let remote = fab.alloc(h1, 512);
            let local = fab.alloc(h0, 512);
            fab.fill_pattern(h1, remote, 512, 21).unwrap();
            let lkey = fab.reg_mr(&ctx, h0, local, 512).unwrap();
            let rkey = fab.reg_mr(&ctx, h1, remote, 512).unwrap();
            fab.rdma_read(
                &ctx,
                h0,
                (h0, local, lkey),
                (h1, remote, rkey),
                512,
                Some(5),
            )
            .unwrap();
            let msg = ctx.recv().downcast::<NetMsg>().unwrap();
            assert!(matches!(*msg, NetMsg::Cqe(Cqe { wrid: 5 })));
            assert!(fab.verify_pattern(h0, local, 512, 21).unwrap());
        });
    }

    #[test]
    fn notify_arrives_at_delivery_time() {
        with_driver(|ctx, fab, eps| {
            let (h0, h1) = (eps[0], eps[1]);
            let src = fab.alloc(h0, 64);
            let dst = fab.alloc(h1, 64);
            let lkey = fab.reg_mr(&ctx, h0, src, 64).unwrap();
            let rkey = fab.reg_mr(&ctx, h1, dst, 64).unwrap();
            let me = ctx.pid();
            let deliver = fab
                .rdma_write(
                    &ctx,
                    h0,
                    (h0, src, lkey),
                    (h1, dst, rkey),
                    64,
                    None,
                    Some((me, Box::new("arrived"))),
                )
                .unwrap();
            let msg = ctx.recv().downcast::<NetMsg>().unwrap();
            match *msg {
                NetMsg::Notify(p) => assert_eq!(*p.downcast::<&str>().unwrap(), "arrived"),
                other => panic!("unexpected {other:?}"),
            }
            assert_eq!(ctx.now(), deliver);
        });
    }

    #[test]
    fn registration_cost_scales_with_size() {
        // Registration charges the endpoint's CPU timeline; a big buffer
        // occupies it for much longer than a small one.
        with_driver(|ctx, fab, eps| {
            let h0 = eps[0];
            let small = fab.alloc(h0, 4096);
            let big = fab.alloc(h0, 1 << 20);
            fab.reg_mr(&ctx, h0, small, 4096).unwrap();
            let t_small = fab.cpu_available(h0) - ctx.now();
            fab.reg_mr(&ctx, h0, big, 1 << 20).unwrap();
            let t_total = fab.cpu_available(h0) - ctx.now();
            let t_big = t_total - t_small;
            assert!(t_big > t_small * 2, "big reg {t_big} vs small {t_small}");
        });
    }

    #[test]
    fn cpu_charges_delay_subsequent_transfers() {
        with_driver(|ctx, fab, eps| {
            let (h0, h1) = (eps[0], eps[1]);
            let src = fab.alloc(h0, 64);
            let dst = fab.alloc(h1, 64);
            let lkey = fab.reg_mr(&ctx, h0, src, 64).unwrap();
            let rkey = fab.reg_mr(&ctx, h1, dst, 64).unwrap();
            // Baseline delivery time.
            let base = fab
                .rdma_write(&ctx, h0, (h0, src, lkey), (h1, dst, rkey), 64, None, None)
                .unwrap();
            // Stack a big CPU charge; the next post must chain after it.
            fab.charge_cpu(&ctx, h0, SimDelta::from_us(500)).unwrap();
            let delayed = fab
                .rdma_write(&ctx, h0, (h0, src, lkey), (h1, dst, rkey), 64, None, None)
                .unwrap();
            assert!(
                delayed - base >= SimDelta::from_us(499),
                "second write should be pushed past the CPU charge: {base} -> {delayed}"
            );
        });
    }

    #[test]
    fn wrong_process_is_rejected() {
        let spec = ClusterSpec::new(1, 2).with_model(NicModel::default());
        let mut sim = Simulation::new(9);
        let fabric = Fabric::new(&mut sim, spec);
        let f1 = fabric.clone();
        let ep_slot = Arc::new(Mutex::new(None));
        let slot2 = Arc::clone(&ep_slot);
        sim.spawn("owner", move |ctx| {
            let ep = f1.add_endpoint(ctx.pid(), 0, DeviceClass::Host);
            f1.alloc(ep, 64);
            *slot2.lock() = Some(ep);
            ctx.sleep(SimDelta::from_us(10));
        });
        let f2 = fabric.clone();
        sim.spawn("intruder", move |ctx| {
            ctx.yield_now();
            let ep = ep_slot.lock().expect("owner registered");
            let addr = f2.alloc(ep, 64);
            let err = f2.reg_mr(&ctx, ep, addr, 64).unwrap_err();
            assert!(matches!(err, RdmaError::WrongProcess(_)), "{err}");
        });
        sim.run().unwrap();
    }
}
