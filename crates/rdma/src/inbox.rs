//! Per-process message routing.
//!
//! A simulated process has a single simnet mailbox, but may run several
//! protocol engines at once (e.g. the mini-MPI library *and* the offload
//! framework in the same application rank). [`Inbox`] demultiplexes
//! incoming [`NetMsg`]s into per-engine [`Channel`]s using registered
//! predicates, so one engine's blocking wait never swallows another
//! engine's completions.
//!
//! `Inbox` is process-local (it lives on the process thread and is not
//! `Send`); create it inside the process closure.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use simnet::ProcessCtx;

use crate::types::NetMsg;

struct ChannelState {
    pred: Box<dyn Fn(&NetMsg) -> bool>,
    queue: VecDeque<NetMsg>,
}

struct InboxInner {
    channels: Vec<ChannelState>,
    dropped: u64,
}

/// Demultiplexer over the process mailbox.
#[derive(Clone)]
pub struct Inbox {
    inner: Rc<RefCell<InboxInner>>,
}

impl Default for Inbox {
    fn default() -> Self {
        Inbox::new()
    }
}

impl Inbox {
    /// An inbox with no channels.
    pub fn new() -> Self {
        Inbox {
            inner: Rc::new(RefCell::new(InboxInner {
                channels: Vec::new(),
                dropped: 0,
            })),
        }
    }

    /// Register a channel claiming every message for which `pred` is true.
    /// Channels are consulted in registration order.
    pub fn channel(&self, pred: impl Fn(&NetMsg) -> bool + 'static) -> Channel {
        let mut inner = self.inner.borrow_mut();
        inner.channels.push(ChannelState {
            pred: Box::new(pred),
            queue: VecDeque::new(),
        });
        Channel {
            inbox: self.clone(),
            idx: inner.channels.len() - 1,
        }
    }

    /// Route one raw mailbox payload.
    fn route(&self, payload: simnet::Payload) {
        let msg = match payload.downcast::<NetMsg>() {
            Ok(m) => *m,
            Err(_) => {
                self.inner.borrow_mut().dropped += 1;
                return;
            }
        };
        let mut inner = self.inner.borrow_mut();
        for ch in &mut inner.channels {
            if (ch.pred)(&msg) {
                ch.queue.push_back(msg);
                return;
            }
        }
        inner.dropped += 1;
    }

    /// Drain everything currently in the process mailbox into channels.
    pub fn pump(&self, ctx: &ProcessCtx) {
        while let Some(p) = ctx.try_recv() {
            self.route(p);
        }
    }

    /// Messages that matched no channel (should stay zero in correct code).
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }
}

/// One engine's view of the inbox.
#[derive(Clone)]
pub struct Channel {
    inbox: Inbox,
    idx: usize,
}

impl Channel {
    /// Non-blocking: next message claimed by this channel, if any.
    pub fn try_next(&self, ctx: &ProcessCtx) -> Option<NetMsg> {
        self.inbox.pump(ctx);
        self.inbox.inner.borrow_mut().channels[self.idx]
            .queue
            .pop_front()
    }

    /// Blocking: wait until this channel has a message. Messages for other
    /// channels arriving in the meantime are queued for them, not lost.
    pub fn next_blocking(&self, ctx: &ProcessCtx) -> NetMsg {
        loop {
            if let Some(m) = self.try_next(ctx) {
                return m;
            }
            // Block for one raw message and route it; it may be ours.
            let p = ctx.recv();
            self.inbox.route(p);
        }
    }

    /// Number of messages queued for this channel (after a pump).
    pub fn len(&self, ctx: &ProcessCtx) -> usize {
        self.inbox.pump(ctx);
        self.inbox.inner.borrow().channels[self.idx].queue.len()
    }

    /// Whether the channel is empty (after a pump).
    pub fn is_empty(&self, ctx: &ProcessCtx) -> bool {
        self.len(ctx) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Cqe, NetMsg};
    use simnet::{SimDelta, Simulation};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn cqe(wrid: u64) -> Box<NetMsg> {
        Box::new(NetMsg::Cqe(Cqe { wrid }))
    }

    #[test]
    fn messages_route_to_matching_channel() {
        let mut sim = Simulation::new(0);
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        let rx = sim.spawn("rx", move |ctx| {
            let inbox = Inbox::new();
            let low = inbox.channel(|m| matches!(m, NetMsg::Cqe(c) if c.wrid < 100));
            let high = inbox.channel(|m| matches!(m, NetMsg::Cqe(c) if c.wrid >= 100));
            // Wait on `high` even though a `low` message arrives first.
            let m = high.next_blocking(&ctx);
            assert!(matches!(m, NetMsg::Cqe(Cqe { wrid: 150 })));
            // The low message was preserved.
            let m = low.try_next(&ctx).expect("low message kept");
            assert!(matches!(m, NetMsg::Cqe(Cqe { wrid: 1 })));
            seen2.store(1, Ordering::SeqCst);
        });
        sim.spawn("tx", move |ctx| {
            ctx.deliver(rx, SimDelta::from_ns(10), cqe(1));
            ctx.deliver(rx, SimDelta::from_ns(20), cqe(150));
        });
        sim.run().unwrap();
        assert_eq!(seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn unmatched_messages_are_counted() {
        let mut sim = Simulation::new(0);
        let rx = sim.spawn("rx", move |ctx| {
            let inbox = Inbox::new();
            let ch = inbox.channel(|_| false); // claims nothing
            ctx.sleep(SimDelta::from_ns(100));
            assert!(ch.try_next(&ctx).is_none());
            assert_eq!(inbox.dropped(), 1);
        });
        sim.spawn("tx", move |ctx| {
            ctx.deliver(rx, SimDelta::from_ns(10), cqe(7));
        });
        sim.run().unwrap();
    }

    #[test]
    fn first_matching_channel_wins() {
        let mut sim = Simulation::new(0);
        let rx = sim.spawn("rx", move |ctx| {
            let inbox = Inbox::new();
            let a = inbox.channel(|_| true);
            let b = inbox.channel(|_| true);
            ctx.sleep(SimDelta::from_ns(100));
            assert!(a.try_next(&ctx).is_some());
            assert!(b.try_next(&ctx).is_none());
        });
        sim.spawn("tx", move |ctx| {
            ctx.deliver(rx, SimDelta::from_ns(10), cqe(7));
        });
        sim.run().unwrap();
    }
}
