//! Cluster construction helper.
//!
//! Upper layers (MPI, offload framework, workloads) all need the same
//! boilerplate: a [`Simulation`], a [`Fabric`], one host process per rank,
//! and optionally proxy processes on each DPU. [`ClusterBuilder`] wires
//! that up and hands every process a [`ClusterCtx`] with the full roster.

use std::sync::{Arc, OnceLock};

use simnet::{EventSink, Pid, ProcessCtx, Report, SimDelta, SimError, SimTime, Simulation};

use crate::fabric::Fabric;
use crate::model::{ClusterSpec, DeviceClass};
use crate::types::EpId;

/// Shared roster: who is where. Cheap to clone.
#[derive(Clone)]
pub struct ClusterCtx {
    inner: Arc<Roster>,
}

struct Roster {
    spec: ClusterSpec,
    fabric: Fabric,
    host_pids: Vec<Pid>,
    host_eps: Vec<EpId>,
    proxy_pids: Vec<Vec<Pid>>,
    proxy_eps: Vec<Vec<EpId>>,
}

impl ClusterCtx {
    /// The fabric handle.
    pub fn fabric(&self) -> &Fabric {
        &self.inner.fabric
    }

    /// The cluster spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.inner.spec
    }

    /// Number of host ranks.
    pub fn world_size(&self) -> usize {
        self.inner.host_eps.len()
    }

    /// Endpoint of host `rank`.
    pub fn host_ep(&self, rank: usize) -> EpId {
        self.inner.host_eps[rank]
    }

    /// Pid of host `rank`.
    pub fn host_pid(&self, rank: usize) -> Pid {
        self.inner.host_pids[rank]
    }

    /// Number of proxies per DPU that were spawned (zero if none).
    pub fn proxies_per_dpu(&self) -> usize {
        self.inner.proxy_eps.first().map_or(0, |v| v.len())
    }

    /// Endpoint of proxy `idx` on `node`.
    pub fn proxy_ep(&self, node: usize, idx: usize) -> EpId {
        self.inner.proxy_eps[node][idx]
    }

    /// Pid of proxy `idx` on `node`.
    pub fn proxy_pid(&self, node: usize, idx: usize) -> Pid {
        self.inner.proxy_pids[node][idx]
    }

    /// The proxy endpoint serving `rank`, using the paper's mapping
    /// `proxy_local_rank = host_rank % num_proxies_per_dpu` on the rank's
    /// own node.
    pub fn proxy_for_rank(&self, rank: usize) -> EpId {
        let node = self.inner.spec.node_of_rank(rank);
        let idx = rank % self.proxies_per_dpu().max(1);
        self.proxy_ep(node, idx)
    }
}

/// Builds and runs a simulated cluster.
pub struct ClusterBuilder {
    spec: ClusterSpec,
    seed: u64,
    trace: bool,
    time_limit: Option<SimTime>,
    stack_size: Option<usize>,
    event_sink: Option<EventSink>,
    delivery_jitter: Option<SimDelta>,
    threads: Option<usize>,
}

impl ClusterBuilder {
    /// A builder for `spec`, seeding the simulation RNG with `seed`.
    pub fn new(spec: ClusterSpec, seed: u64) -> Self {
        ClusterBuilder {
            spec,
            seed,
            trace: false,
            time_limit: None,
            stack_size: None,
            event_sink: None,
            delivery_jitter: None,
            threads: None,
        }
    }

    /// Collect a trace during the run.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Abort if virtual time exceeds `limit`.
    pub fn with_time_limit(mut self, limit: SimTime) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Override the per-process stack size.
    pub fn with_stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = Some(bytes);
        self
    }

    /// Install a structured-event observer (see [`simnet::EventSink`]);
    /// protocol layers publish their events through `ProcessCtx::emit`.
    pub fn with_event_sink(mut self, sink: EventSink) -> Self {
        self.event_sink = Some(sink);
        self
    }

    /// Add uniform `[0, jitter]` delivery-delay jitter to every fabric
    /// transfer (see [`Fabric::set_delivery_jitter`]).
    pub fn with_delivery_jitter(mut self, jitter: SimDelta) -> Self {
        self.delivery_jitter = Some(jitter);
        self
    }

    /// Worker threads for the simulation engine, overriding the
    /// `SIMNET_THREADS` environment variable (default 1).
    ///
    /// `1` runs the classic single-threaded event loop, byte-for-byte as
    /// before. Anything larger routes the whole cluster through the
    /// sharded conservative-lookahead runtime — pinned to a single
    /// shard, because the fabric arbitrates global state (same-QP FIFO
    /// order, per-endpoint CPU timelines, the payload-fault RNG) under
    /// one lock and reserves receive-side FIFOs from the sender's
    /// context, none of which survives a by-node split. Results are
    /// identical either way; see DESIGN.md §16 for what each engine
    /// does and does not parallelize.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "thread count must be at least 1");
        self.threads = Some(threads);
        self
    }

    /// Spawn `nodes × ppn` host processes running `host_fn(rank, ctx,
    /// cluster)`, and — if `proxy_fn` is given — `proxies_per_dpu` proxy
    /// processes per node running `proxy_fn(node, idx, ctx, cluster)`.
    /// Returns the simulation report.
    pub fn run<H, P>(self, host_fn: H, proxy_fn: Option<P>) -> Result<Report, SimError>
    where
        H: Fn(usize, ProcessCtx, ClusterCtx) + Send + Sync + 'static,
        P: Fn(usize, usize, ProcessCtx, ClusterCtx) + Send + Sync + 'static,
    {
        let threads = self
            .threads
            .or_else(|| {
                std::env::var(simnet::SIMNET_THREADS_ENV)
                    .ok()
                    .and_then(|v| v.trim().parse().ok())
            })
            .filter(|&n| n >= 1)
            .unwrap_or(1);
        let mut sim = Simulation::new(self.seed);
        if self.trace {
            sim.enable_trace();
        }
        if let Some(limit) = self.time_limit {
            sim.set_time_limit(limit);
        }
        if let Some(bytes) = self.stack_size {
            sim.set_stack_size(bytes);
        }
        if let Some(sink) = self.event_sink {
            sim.set_event_sink(sink);
        }
        if threads > 1 {
            sim.set_threads(threads);
        }
        let roster: Arc<OnceLock<ClusterCtx>> = Arc::new(OnceLock::new());
        let host_fn = Arc::new(host_fn);

        // Spawn every process before creating the fabric: the first spawn
        // fixes the engine, and with worker threads the whole cluster
        // lands on shard 0 of the sharded runtime — the fabric's per-node
        // FIFO resources must be created afterwards so they live on the
        // shard every process runs on. Pid and endpoint numbering are
        // independent, so the classic path is unchanged by the reorder.
        let mut host_pids = Vec::new();
        for rank in 0..self.spec.world_size() {
            let roster2 = Arc::clone(&roster);
            let host_fn2 = Arc::clone(&host_fn);
            let body = move |ctx| {
                let cluster = roster2.get().expect("roster set before run").clone();
                host_fn2(rank, ctx, cluster);
            };
            host_pids.push(if threads > 1 {
                sim.spawn_on(0, format!("rank{rank}"), body)
            } else {
                sim.spawn(format!("rank{rank}"), body)
            });
        }

        let mut proxy_pids = vec![Vec::new(); self.spec.nodes];
        if let Some(proxy_fn) = proxy_fn {
            let proxy_fn = Arc::new(proxy_fn);
            for (node, node_pids) in proxy_pids.iter_mut().enumerate() {
                for idx in 0..self.spec.proxies_per_dpu {
                    let roster2 = Arc::clone(&roster);
                    let proxy_fn2 = Arc::clone(&proxy_fn);
                    let body = move |ctx| {
                        let cluster = roster2.get().expect("roster set before run").clone();
                        proxy_fn2(node, idx, ctx, cluster);
                    };
                    node_pids.push(if threads > 1 {
                        sim.spawn_on(0, format!("proxy{node}.{idx}"), body)
                    } else {
                        sim.spawn(format!("proxy{node}.{idx}"), body)
                    });
                }
            }
        }

        let fabric = Fabric::new(&mut sim, self.spec.clone());
        if let Some(jitter) = self.delivery_jitter {
            fabric.set_delivery_jitter(jitter);
        }
        let mut host_eps = Vec::new();
        for (rank, &pid) in host_pids.iter().enumerate() {
            host_eps.push(fabric.add_endpoint(
                pid,
                self.spec.node_of_rank(rank),
                DeviceClass::Host,
            ));
        }
        let mut proxy_eps = vec![Vec::new(); self.spec.nodes];
        for (node, pids) in proxy_pids.iter().enumerate() {
            for &pid in pids {
                proxy_eps[node].push(fabric.add_endpoint(pid, node, DeviceClass::Dpu));
            }
        }

        let ctx = ClusterCtx {
            inner: Arc::new(Roster {
                spec: self.spec,
                fabric,
                host_pids,
                host_eps,
                proxy_pids,
                proxy_eps,
            }),
        };
        roster.set(ctx).ok().expect("roster set exactly once");
        sim.run()
    }

    /// Convenience: run with host processes only.
    pub fn run_hosts<H>(self, host_fn: H) -> Result<Report, SimError>
    where
        H: Fn(usize, ProcessCtx, ClusterCtx) + Send + Sync + 'static,
    {
        self.run(host_fn, None::<fn(usize, usize, ProcessCtx, ClusterCtx)>)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimDelta;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawns_ranks_and_proxies() {
        let spec = ClusterSpec::new(2, 4).with_proxies(2);
        let ranks = Arc::new(AtomicUsize::new(0));
        let proxies = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&ranks);
        let p2 = Arc::clone(&proxies);
        ClusterBuilder::new(spec, 1)
            .run(
                move |rank, _ctx, cluster| {
                    assert!(rank < cluster.world_size());
                    r2.fetch_add(1, Ordering::SeqCst);
                },
                Some(
                    move |_node: usize, _idx: usize, _ctx: ProcessCtx, _cluster: ClusterCtx| {
                        p2.fetch_add(1, Ordering::SeqCst);
                    },
                ),
            )
            .unwrap();
        assert_eq!(ranks.load(Ordering::SeqCst), 8);
        assert_eq!(proxies.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn proxy_mapping_follows_paper_formula() {
        let spec = ClusterSpec::new(2, 8).with_proxies(4);
        ClusterBuilder::new(spec, 1)
            .run(
                |rank, _ctx, cluster| {
                    let ep = cluster.proxy_for_rank(rank);
                    let node = cluster.spec().node_of_rank(rank);
                    let expected = cluster.proxy_ep(node, rank % 4);
                    assert_eq!(ep, expected);
                },
                Some(|_n: usize, _i: usize, _c: ProcessCtx, _cl: ClusterCtx| {}),
            )
            .unwrap();
    }

    #[test]
    fn worker_threads_are_not_observable() {
        // The same cluster at 1 (classic engine) and 4 (sharded runtime)
        // worker threads: end time, event count, trace and every
        // non-engine counter must match exactly.
        let run = |threads| {
            let spec = ClusterSpec::new(2, 2);
            ClusterBuilder::new(spec, 21)
                .with_threads(threads)
                .with_trace()
                .run_hosts(|rank, ctx, cluster| {
                    let fab = cluster.fabric().clone();
                    let ep = cluster.host_ep(rank);
                    let p = cluster.world_size();
                    let peer = (rank + 1) % p;
                    fab.send_packet(&ctx, ep, cluster.host_ep(peer), 256, Box::new(rank))
                        .unwrap();
                    let _ = ctx.recv();
                    ctx.trace(format!("done.{rank}"));
                })
                .unwrap()
        };
        let classic = run(1);
        let sharded = run(4);
        assert_eq!(classic.end_time, sharded.end_time);
        assert_eq!(classic.events, sharded.events);
        assert_eq!(
            classic.trace.as_ref().unwrap().render(),
            sharded.trace.as_ref().unwrap().render()
        );
        let counters = |r: &Report| {
            r.stats
                .counters()
                .filter(|(k, _)| !k.starts_with("simnet.sharded."))
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
        };
        assert_eq!(counters(&classic), counters(&sharded));
    }

    #[test]
    fn ranks_can_exchange_packets() {
        let spec = ClusterSpec::new(2, 1);
        let report = ClusterBuilder::new(spec, 7)
            .run_hosts(|rank, ctx, cluster| {
                let fab = cluster.fabric();
                if rank == 0 {
                    fab.send_packet(
                        &ctx,
                        cluster.host_ep(0),
                        cluster.host_ep(1),
                        128,
                        Box::new(3u32),
                    )
                    .unwrap();
                } else {
                    let msg = ctx.recv().downcast::<crate::types::NetMsg>().unwrap();
                    match *msg {
                        crate::types::NetMsg::Packet(p) => {
                            assert_eq!(*p.body.downcast::<u32>().unwrap(), 3)
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                    assert!(ctx.now() > SimTime::ZERO + SimDelta::from_ns(100));
                }
            })
            .unwrap();
        assert!(report.end_time > SimTime::ZERO);
    }
}
