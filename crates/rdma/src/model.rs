//! Performance model of the simulated cluster.
//!
//! All knobs live in [`NicModel`]; [`ClusterSpec`] adds the shape of the
//! cluster (nodes, processes per node, proxies per DPU). The defaults are
//! calibrated so that the *relative* effects the paper measures appear with
//! roughly the paper's magnitudes:
//!
//! - DPU ARM cores post and handle messages ~2.2× slower than host cores
//!   (paper Fig. 2/3: near-equal latency, ≈½ small-message bandwidth).
//! - Staging adds a PCIe store-and-forward hop (paper Figs. 4 and 6).
//! - Memory registration costs grow with buffer size (paper Fig. 5).

use simnet::SimDelta;

use crate::mem::{AddressSpace, VAddr};

/// Whether an endpoint runs on the host CPU or on the DPU's ARM cores.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DeviceClass {
    /// Host Xeon core, served by the node's ConnectX HCA.
    Host,
    /// BlueField ARM core, served by the DPU's own port.
    Dpu,
}

/// Tunable performance parameters. Times are virtual; bandwidths are in
/// bytes per second of virtual time.
#[derive(Clone, Debug)]
pub struct NicModel {
    /// CPU time for a host core to post one work request.
    pub host_post: SimDelta,
    /// CPU time for a DPU ARM core to post one work request.
    pub dpu_post: SimDelta,
    /// Per-message receive-side handling charged on the host NIC.
    pub host_rx_overhead: SimDelta,
    /// Per-message receive-side handling charged on the DPU NIC (ARM-driven,
    /// hence larger: this halves small-message bandwidth into the DPU).
    pub dpu_rx_overhead: SimDelta,
    /// One-way wire + switch latency between any two nodes.
    pub wire_latency: SimDelta,
    /// Network port bandwidth (HDR-class).
    pub net_bandwidth: u64,
    /// Extra latency when the NIC must DMA the payload across PCIe (GVMI
    /// reads of host memory, staging writes into DPU memory).
    pub pcie_latency: SimDelta,
    /// PCIe bandwidth between host memory and the DPU.
    pub pcie_bandwidth: u64,
    /// Bandwidth of the DPU's own DRAM (BlueField-2's DDR4 is far slower
    /// than host memory). Any transfer whose payload is read from or
    /// written into DPU memory — i.e. both hops of the staging path — is
    /// clamped to this; cross-GVMI transfers source host memory and are
    /// not.
    pub dpu_mem_bandwidth: u64,
    /// Latency of an intra-node host-to-host (shared memory) transfer.
    pub shm_latency: SimDelta,
    /// Bandwidth of intra-node host-to-host copies.
    pub shm_bandwidth: u64,
    /// Fixed cost of an `ibv_reg_mr`-style registration on the host.
    pub reg_base: SimDelta,
    /// Additional registration cost per 4 KiB page on the host.
    pub reg_per_page: SimDelta,
    /// Fixed cost of a cross-GVMI registration on the DPU.
    pub cross_reg_base: SimDelta,
    /// Additional cross-registration cost per 4 KiB page on the DPU.
    pub cross_reg_per_page: SimDelta,
    /// Completion (ack) latency back to the poster after delivery.
    pub ack_latency: SimDelta,
}

impl NicModel {
    /// Calibration for the paper's testbed class: ConnectX-6 HCA +
    /// BlueField-2 DPU per node, HDR InfiniBand.
    pub fn bluefield2() -> Self {
        NicModel {
            host_post: SimDelta::from_ns(150),
            dpu_post: SimDelta::from_ns(330),
            host_rx_overhead: SimDelta::from_ns(30),
            dpu_rx_overhead: SimDelta::from_ns(230),
            wire_latency: SimDelta::from_ns(800),
            net_bandwidth: 24_000_000_000,
            pcie_latency: SimDelta::from_ns(500),
            pcie_bandwidth: 22_000_000_000,
            dpu_mem_bandwidth: 14_000_000_000,
            shm_latency: SimDelta::from_ns(250),
            shm_bandwidth: 38_000_000_000,
            reg_base: SimDelta::from_ns(1_500),
            reg_per_page: SimDelta::from_ns(30),
            cross_reg_base: SimDelta::from_ns(2_100),
            cross_reg_per_page: SimDelta::from_ns(40),
            ack_latency: SimDelta::from_ns(800),
        }
    }

    /// Projection for the paper's stated future work: BlueField-3 with
    /// NDR InfiniBand. Roughly 2× faster ARM cores (Cortex-A78 vs A72),
    /// 400 Gb/s ports, PCIe Gen5 and DDR5 on the DPU.
    pub fn bluefield3() -> Self {
        NicModel {
            host_post: SimDelta::from_ns(150),
            dpu_post: SimDelta::from_ns(180),
            host_rx_overhead: SimDelta::from_ns(30),
            dpu_rx_overhead: SimDelta::from_ns(110),
            wire_latency: SimDelta::from_ns(700),
            net_bandwidth: 48_000_000_000,
            pcie_latency: SimDelta::from_ns(450),
            pcie_bandwidth: 50_000_000_000,
            dpu_mem_bandwidth: 34_000_000_000,
            shm_latency: SimDelta::from_ns(250),
            shm_bandwidth: 38_000_000_000,
            reg_base: SimDelta::from_ns(1_300),
            reg_per_page: SimDelta::from_ns(25),
            cross_reg_base: SimDelta::from_ns(1_600),
            cross_reg_per_page: SimDelta::from_ns(28),
            ack_latency: SimDelta::from_ns(700),
        }
    }

    /// Posting overhead for a device class.
    pub fn post_overhead(&self, class: DeviceClass) -> SimDelta {
        match class {
            DeviceClass::Host => self.host_post,
            DeviceClass::Dpu => self.dpu_post,
        }
    }

    /// Receive-side per-message overhead for a device class.
    pub fn rx_overhead(&self, class: DeviceClass) -> SimDelta {
        match class {
            DeviceClass::Host => self.host_rx_overhead,
            DeviceClass::Dpu => self.dpu_rx_overhead,
        }
    }

    /// Host registration cost for a buffer.
    pub fn reg_cost(&self, addr: VAddr, len: u64) -> SimDelta {
        self.reg_base + self.reg_per_page * AddressSpace::pages_spanned(addr, len)
    }

    /// DPU cross-registration cost for a buffer.
    pub fn cross_reg_cost(&self, addr: VAddr, len: u64) -> SimDelta {
        self.cross_reg_base + self.cross_reg_per_page * AddressSpace::pages_spanned(addr, len)
    }
}

impl Default for NicModel {
    fn default() -> Self {
        NicModel::bluefield2()
    }
}

/// Shape of the simulated cluster.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Host processes (MPI ranks) per node.
    pub ppn: usize,
    /// Proxy/worker processes per DPU.
    pub proxies_per_dpu: usize,
    /// Performance parameters.
    pub model: NicModel,
    /// Whether transfers move actual bytes between address spaces.
    /// Integrity tests keep this on (the default); large-scale benchmark
    /// runs turn it off to avoid gigabytes of host-side memcpy while the
    /// timing model stays identical.
    pub move_bytes: bool,
}

impl ClusterSpec {
    /// A cluster of `nodes` × `ppn` ranks with the default model and one
    /// proxy per DPU for every 8 host ranks (minimum 1).
    pub fn new(nodes: usize, ppn: usize) -> Self {
        assert!(nodes > 0 && ppn > 0, "cluster must have at least one rank");
        ClusterSpec {
            nodes,
            ppn,
            proxies_per_dpu: (ppn / 8).max(1),
            model: NicModel::default(),
            move_bytes: true,
        }
    }

    /// Disable actual byte movement (timing-only runs).
    pub fn without_byte_movement(mut self) -> Self {
        self.move_bytes = false;
        self
    }

    /// Override the number of proxies per DPU.
    pub fn with_proxies(mut self, proxies: usize) -> Self {
        assert!(proxies > 0, "need at least one proxy per DPU");
        self.proxies_per_dpu = proxies;
        self
    }

    /// Override the performance model.
    pub fn with_model(mut self, model: NicModel) -> Self {
        self.model = model;
        self
    }

    /// Total number of host ranks.
    pub fn world_size(&self) -> usize {
        self.nodes * self.ppn
    }

    /// Node that hosts `rank`.
    pub fn node_of_rank(&self, rank: usize) -> usize {
        rank / self.ppn
    }

    /// Local index of `rank` on its node.
    pub fn local_rank(&self, rank: usize) -> usize {
        rank % self.ppn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let m = NicModel::default();
        assert!(m.dpu_post > m.host_post, "ARM posts slower than host");
        assert!(m.dpu_rx_overhead > m.host_rx_overhead);
        assert!(m.net_bandwidth > 0 && m.pcie_bandwidth > 0);
    }

    #[test]
    fn reg_cost_grows_with_size() {
        let m = NicModel::default();
        let small = m.reg_cost(VAddr(0), 4096);
        let large = m.reg_cost(VAddr(0), 1 << 20);
        assert!(large > small);
        // 1 MiB = 256 pages.
        assert_eq!(large, m.reg_base + m.reg_per_page * 256);
    }

    #[test]
    fn cross_reg_is_costlier_than_host_reg() {
        let m = NicModel::default();
        assert!(m.cross_reg_cost(VAddr(0), 65536) > m.reg_cost(VAddr(0), 65536));
    }

    #[test]
    fn cluster_rank_mapping() {
        let spec = ClusterSpec::new(4, 8);
        assert_eq!(spec.world_size(), 32);
        assert_eq!(spec.node_of_rank(0), 0);
        assert_eq!(spec.node_of_rank(7), 0);
        assert_eq!(spec.node_of_rank(8), 1);
        assert_eq!(spec.local_rank(9), 1);
        assert_eq!(spec.proxies_per_dpu, 1);
        assert_eq!(ClusterSpec::new(2, 32).proxies_per_dpu, 4);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_nodes_rejected() {
        let _ = ClusterSpec::new(0, 4);
    }
}
