//! # rdma — a verbs-like layer over the simulated cluster
//!
//! This crate models what the paper's framework gets from InfiniBand verbs
//! and the BlueField DOCA stack:
//!
//! * **Memory**: per-endpoint [`AddressSpace`]s with real byte storage, so
//!   transfers are verifiable end-to-end.
//! * **Registration**: `ibv_reg_mr`-style keys ([`Fabric::reg_mr`]), GVMI
//!   `mkey`s ([`Fabric::reg_mr_gvmi`]) and DPU cross-registered `mkey2`s
//!   ([`Fabric::cross_reg`]) with the same validity rules the paper's
//!   mechanism relies on (paper §V).
//! * **Data movement**: RDMA WRITE/READ and two-sided packets routed over a
//!   performance model of host HCAs, DPU ports, PCIe and the switch fabric
//!   ([`NicModel`]).
//! * **Cluster construction**: [`ClusterBuilder`] spawns one process per
//!   rank plus optional DPU proxies and hands everyone the roster.
//!
//! The calibration in [`NicModel::bluefield2`] reproduces the first-order
//! effects of the paper's testbed: DPU ARM cores inject messages at roughly
//! half the host rate (paper Figs. 2–3), staging costs an extra PCIe
//! store-and-forward hop (Figs. 4, 6), and registration cost grows with
//! buffer size (Fig. 5).

#![warn(missing_docs)]

mod cluster;
mod fabric;
mod inbox;
mod mem;
mod model;
mod types;

pub use cluster::{ClusterBuilder, ClusterCtx};
pub use fabric::{Fabric, PayloadFaultPlan};
pub use inbox::{Channel, Inbox};
pub use mem::{crc32, AddressSpace, MemError, VAddr, PAGE_SIZE};
pub use model::{ClusterSpec, DeviceClass, NicModel};
pub use types::{Cqe, EpId, GvmiId, MrKey, NetMsg, Packet, RdmaError};
