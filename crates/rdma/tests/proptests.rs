//! Property-based tests of the RDMA layer: the address space against a
//! model map, registration/key invariants, and transfer-timing sanity.

use proptest::prelude::*;
use rdma::{AddressSpace, ClusterSpec, DeviceClass, Fabric, MemError, NetMsg, VAddr};
use simnet::Simulation;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Random operations against an `AddressSpace`, mirrored in a plain map.
#[derive(Clone, Debug)]
enum MemOp {
    Alloc { len: u64 },
    Write { buf: usize, off: u64, data: Vec<u8> },
    Read { buf: usize, off: u64, len: u64 },
}

fn memops() -> impl Strategy<Value = Vec<MemOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..4096).prop_map(|len| MemOp::Alloc { len }),
            (
                0usize..8,
                0u64..4096,
                prop::collection::vec(any::<u8>(), 1..64)
            )
                .prop_map(|(buf, off, data)| MemOp::Write { buf, off, data }),
            (0usize..8, 0u64..4096, 1u64..128).prop_map(|(buf, off, len)| MemOp::Read {
                buf,
                off,
                len
            }),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn address_space_matches_model(ops in memops()) {
        let mut asp = AddressSpace::new();
        let mut bufs: Vec<(VAddr, u64)> = Vec::new();
        let mut model: HashMap<(usize, u64), u8> = HashMap::new();
        for op in ops {
            match op {
                MemOp::Alloc { len } => {
                    let a = asp.alloc(len);
                    bufs.push((a, len));
                }
                MemOp::Write { buf, off, data } => {
                    if bufs.is_empty() { continue; }
                    let (base, len) = bufs[buf % bufs.len()];
                    let idx = buf % bufs.len();
                    if off + data.len() as u64 <= len {
                        asp.write(base.offset(off), &data).unwrap();
                        for (k, b) in data.iter().enumerate() {
                            model.insert((idx, off + k as u64), *b);
                        }
                    } else {
                        // Out-of-bounds writes must fail and change nothing.
                        prop_assert!(asp.write(base.offset(off), &data).is_err());
                    }
                }
                MemOp::Read { buf, off, len } => {
                    if bufs.is_empty() { continue; }
                    let idx = buf % bufs.len();
                    let (base, blen) = bufs[idx];
                    if off + len <= blen {
                        let got = asp.read(base.offset(off), len).unwrap();
                        for (k, g) in got.iter().enumerate() {
                            let expect = model.get(&(idx, off + k as u64)).copied().unwrap_or(0);
                            prop_assert_eq!(*g, expect, "byte {} of buf {}", off + k as u64, idx);
                        }
                    } else {
                        let e = asp.read(base.offset(off), len).unwrap_err();
                        let is_bounds_err =
                            matches!(e, MemError::OutOfBounds { .. } | MemError::Unmapped { .. });
                        prop_assert!(is_bounds_err);
                    }
                }
            }
        }
    }

    #[test]
    fn registration_subranges_always_transfer(
        buf_len in 4096u64..65536,
        off_frac in 0.0f64..0.9,
        len_frac in 0.01f64..1.0,
    ) {
        // Any sub-range of a registered buffer is transferable; anything
        // crossing the registered end is rejected.
        let off = (buf_len as f64 * off_frac) as u64;
        let len = ((buf_len as f64 * len_frac) as u64).max(1);
        let spec = ClusterSpec::new(2, 1);
        let mut sim = Simulation::new(1);
        let fabric = Fabric::new(&mut sim, spec);
        let fab = fabric.clone();
        let ok = Arc::new(Mutex::new(true));
        let ok2 = Arc::clone(&ok);
        sim.spawn("driver", move |ctx| {
            let a = fab.add_endpoint(ctx.pid(), 0, DeviceClass::Host);
            let b = fab.add_endpoint(ctx.pid(), 1, DeviceClass::Host);
            let src = fab.alloc(a, buf_len);
            let dst = fab.alloc(b, buf_len);
            let lkey = fab.reg_mr(&ctx, a, src, buf_len).unwrap();
            let rkey = fab.reg_mr(&ctx, b, dst, buf_len).unwrap();
            let res = fab.rdma_write(
                &ctx, a,
                (a, src.offset(off), lkey),
                (b, dst.offset(off), rkey),
                len, Some(1), None,
            );
            let fits = off + len <= buf_len;
            *ok2.lock().unwrap() = res.is_ok() == fits;
            if fits {
                let msg = ctx.recv().downcast::<NetMsg>().unwrap();
                assert!(matches!(*msg, NetMsg::Cqe(_)));
            }
        });
        sim.run().unwrap();
        prop_assert!(*ok.lock().unwrap());
    }

    #[test]
    fn transfer_time_is_monotone_in_size(
        s1 in 64u64..1_000_000,
        s2 in 64u64..1_000_000,
    ) {
        // Larger payloads never deliver faster on an idle fabric.
        let (small, large) = (s1.min(s2), s1.max(s2));
        let spec = ClusterSpec::new(2, 1);
        let mut sim = Simulation::new(1);
        let fabric = Fabric::new(&mut sim, spec);
        let fab = fabric.clone();
        let out = Arc::new(Mutex::new((0u64, 0u64)));
        let out2 = Arc::clone(&out);
        sim.spawn("driver", move |ctx| {
            let a = fab.add_endpoint(ctx.pid(), 0, DeviceClass::Host);
            let b = fab.add_endpoint(ctx.pid(), 1, DeviceClass::Host);
            let src = fab.alloc(a, large);
            let dst = fab.alloc(b, large);
            let lkey = fab.reg_mr(&ctx, a, src, large).unwrap();
            let rkey = fab.reg_mr(&ctx, b, dst, large).unwrap();
            // Let the registration work drain off the CPU timelines so
            // both measurements start from a quiet fabric.
            ctx.sleep(simnet::SimDelta::from_ms(100));
            let t0 = ctx.now();
            let d_small = fab
                .rdma_write(&ctx, a, (a, src, lkey), (b, dst, rkey), small, None, None)
                .unwrap();
            // Fresh sim state per size would be cleaner, but the fabric is
            // idle again far in the future; measure from a quiet point.
            ctx.sleep(simnet::SimDelta::from_ms(100));
            let t1 = ctx.now();
            let d_large = fab
                .rdma_write(&ctx, a, (a, src, lkey), (b, dst, rkey), large, None, None)
                .unwrap();
            *out2.lock().unwrap() = ((d_small - t0).as_ps(), (d_large - t1).as_ps());
        });
        sim.run().unwrap();
        let (ds, dl) = *out.lock().unwrap();
        prop_assert!(dl >= ds, "large {dl}ps vs small {ds}ps");
    }

    #[test]
    fn cross_reg_only_validates_within_mkey_range(
        reg_len in 1024u64..32768,
        sub_off in 0u64..32768,
        sub_len in 1u64..32768,
    ) {
        let spec = ClusterSpec::new(1, 1);
        let mut sim = Simulation::new(3);
        let fabric = Fabric::new(&mut sim, spec);
        let fab = fabric.clone();
        let ok = Arc::new(Mutex::new(true));
        let ok2 = Arc::clone(&ok);
        sim.spawn("driver", move |ctx| {
            let host = fab.add_endpoint(ctx.pid(), 0, DeviceClass::Host);
            let dpu = fab.add_endpoint(ctx.pid(), 0, DeviceClass::Dpu);
            let gvmi = fab.gvmi_of(dpu).unwrap();
            let buf = fab.alloc(host, reg_len);
            let mkey = fab.reg_mr_gvmi(&ctx, host, buf, reg_len, gvmi).unwrap();
            let res = fab.cross_reg(&ctx, dpu, buf.offset(sub_off), sub_len, mkey, gvmi);
            let fits = sub_off + sub_len <= reg_len;
            *ok2.lock().unwrap() = res.is_ok() == fits;
        });
        sim.run().unwrap();
        prop_assert!(*ok.lock().unwrap());
    }
}
