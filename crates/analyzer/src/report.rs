//! The machine-readable analyzer report: `cargo xtask analyze --json`
//! emits one `bluefield-offload/analyzer/v1` document, and `ci.sh`
//! archives it as `target/analyze/report.json` next to the bench
//! artifacts. Emission is hand-rolled (the crate is dependency-free);
//! the document is small and flat enough that this stays trivial.
//!
//! Schema (`analyzer/v1`):
//!
//! ```json
//! {
//!   "schema": "bluefield-offload/analyzer/v1",
//!   "clean": true,
//!   "files_scanned": 40,
//!   "rules": ["concurrency-ban", "..."],
//!   "findings": [
//!     {"rule": "...", "file": "...", "line": 7, "message": "..."}
//!   ],
//!   "baselined": 12,
//!   "stale_baseline": ["1\tfile\tkind\tsnippet"]
//! }
//! ```

use crate::Analysis;

/// Schema identifier stamped into every report.
pub const SCHEMA_ID: &str = "bluefield-offload/analyzer/v1";

/// Every rule the analyzer runs, for the report's `rules` list.
pub const RULES: &[&str] = &[
    crate::rules::drift::PROTO_DRIFT,
    crate::rules::drift::SCHEMA_DRIFT,
    crate::rules::drift::ERROR_DRIFT,
    crate::rules::parallel::CONCURRENCY_BAN,
    crate::rules::parallel::LOCK_ORDER,
    crate::rules::parallel::PANIC_PATH,
];

/// JSON string escaping per RFC 8259 (control chars as `\u00XX`).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render `analysis` as one pretty-printed `analyzer/v1` document.
pub fn render(analysis: &Analysis) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{}\",\n", esc(SCHEMA_ID)));
    out.push_str(&format!("  \"clean\": {},\n", analysis.clean()));
    out.push_str(&format!(
        "  \"files_scanned\": {},\n",
        analysis.files_scanned
    ));
    let rules: Vec<String> = RULES.iter().map(|r| format!("\"{}\"", esc(r))).collect();
    out.push_str(&format!("  \"rules\": [{}],\n", rules.join(", ")));
    out.push_str("  \"findings\": [");
    for (i, f) in analysis.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            esc(f.rule),
            esc(&f.path),
            f.line,
            esc(&f.msg)
        ));
    }
    if !analysis.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    out.push_str(&format!("  \"baselined\": {},\n", analysis.baselined));
    let stale: Vec<String> = analysis
        .stale_baseline
        .iter()
        .map(|s| format!("\"{}\"", esc(s)))
        .collect();
    out.push_str(&format!("  \"stale_baseline\": [{}]\n", stale.join(", ")));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finding;

    #[test]
    fn report_escapes_and_structures() {
        let analysis = Analysis {
            findings: vec![Finding {
                rule: "panic-path",
                path: "a.rs".into(),
                line: 3,
                msg: "say \"no\"\tplease".into(),
            }],
            baselined: 2,
            stale_baseline: vec!["1\tgone.rs\tindex\tq[0]".into()],
            files_scanned: 7,
        };
        let doc = render(&analysis);
        assert!(doc.contains("\"schema\": \"bluefield-offload/analyzer/v1\""));
        assert!(doc.contains("\"clean\": false"));
        assert!(doc.contains("say \\\"no\\\"\\tplease"));
        assert!(doc.contains("\"1\\tgone.rs\\tindex\\tq[0]\""));
        // Paranoia: the document must parse as the obs JSON validator's
        // lexer would — spot-check balanced braces/brackets.
        let opens = doc.matches('{').count();
        let closes = doc.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn clean_report_is_clean() {
        let analysis = Analysis {
            findings: vec![],
            baselined: 0,
            stale_baseline: vec![],
            files_scanned: 1,
        };
        let doc = render(&analysis);
        assert!(doc.contains("\"clean\": true"));
        assert!(doc.contains("\"findings\": [],"));
    }
}
