//! A comment/string-aware tokenizer for Rust source.
//!
//! This is not a full Rust lexer — it recognizes exactly the token
//! shapes the analysis rules need to reason about source *structure*
//! without being fooled by text inside comments or string literals (the
//! two failure modes of the line-regex scanner it replaced):
//!
//! * identifiers (including raw `r#ident`), lifetimes, numbers;
//! * string/char/byte literals, including raw strings with any number
//!   of `#` guards — their *contents* become a single [`TokKind::Str`] /
//!   [`TokKind::Char`] token, never punctuation or identifiers;
//! * line (`//`) and block (`/* */`, nested) comments — skipped
//!   entirely, except that `lint:allow(rule)` / `analyzer:allow(rule)`
//!   directives inside them are collected per line;
//! * the multi-char punctuation the item scanner cares about (`::`,
//!   `=>`, `->`); everything else is a single-char [`TokKind::Punct`].
//!
//! Every token carries its 1-based source line so findings can be
//! reported as `file:line`.

/// The shape of one token.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// An identifier or keyword (keywords are not distinguished).
    Ident,
    /// A lifetime such as `'a` (without the quote in `text`).
    Lifetime,
    /// A string or byte-string literal; `text` is the raw content
    /// between the quotes (escapes are not processed).
    Str,
    /// A character or byte literal, content between the quotes.
    Char,
    /// A numeric literal.
    Num,
    /// Punctuation: `::`, `=>`, `->`, or a single character.
    Punct,
}

/// One token: kind, text, and the 1-based line it starts on.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Tok {
    /// Token shape.
    pub kind: TokKind,
    /// Token text. For [`TokKind::Str`]/[`TokKind::Char`] this is the
    /// content between the delimiters; for everything else the verbatim
    /// source text.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Tok {
    /// `true` when the token is an identifier equal to `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// `true` when the token is punctuation equal to `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// An `allow` directive found in a comment: the rule name it waives and
/// the line the comment sits on. Both `lint:allow(rule)` and
/// `analyzer:allow(rule)` spellings are recognized.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Allow {
    /// The waived rule name, e.g. `hash-iteration-order`.
    pub rule: String,
    /// 1-based line of the directive.
    pub line: u32,
}

/// Tokenizer output: the token stream plus the allow directives that
/// were found inside comments.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// Allow directives, in source order.
    pub allows: Vec<Allow>,
}

impl Lexed {
    /// `true` when a directive waives `rule` on `line`: either trailing
    /// on the line itself, or in a comment on the line directly above
    /// (the usual spelling when the offending line has no room).
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| (a.line == line || a.line + 1 == line) && a.rule == rule)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Scan a comment's text for `allow(...)` directives.
fn collect_allows(text: &str, line: u32, out: &mut Vec<Allow>) {
    for marker in ["lint:allow(", "analyzer:allow("] {
        let mut rest = text;
        while let Some(pos) = rest.find(marker) {
            let after = &rest[pos + marker.len()..];
            match after.find(')') {
                Some(end) => {
                    out.push(Allow {
                        rule: after[..end].trim().to_string(),
                        line,
                    });
                    rest = &after[end..];
                }
                None => break,
            }
        }
    }
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Advance one char, tracking newlines.
    fn bump(&mut self) {
        if self.peek(0) == Some('\n') {
            self.line += 1;
        }
        self.i += 1;
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.toks.push(Tok { kind, text, line });
    }

    /// Consume a line comment starting at `self.i` (on `//`).
    fn line_comment(&mut self) {
        let start = self.i;
        while self.peek(0).is_some_and(|c| c != '\n') {
            self.i += 1;
        }
        let text: String = self.chars[start..self.i].iter().collect();
        collect_allows(&text, self.line, &mut self.out.allows);
    }

    /// Consume a (nested) block comment starting at `self.i` (on `/*`).
    fn block_comment(&mut self) {
        let start = self.i;
        let start_line = self.line;
        let mut depth = 0usize;
        while self.i < self.chars.len() {
            if self.peek(0) == Some('/') && self.peek(1) == Some('*') {
                depth += 1;
                self.i += 2;
            } else if self.peek(0) == Some('*') && self.peek(1) == Some('/') {
                depth -= 1;
                self.i += 2;
                if depth == 0 {
                    break;
                }
            } else {
                self.bump();
            }
        }
        let text: String = self.chars[start..self.i.min(self.chars.len())]
            .iter()
            .collect();
        collect_allows(&text, start_line, &mut self.out.allows);
    }

    /// Consume a `"…"` string with escapes; `self.i` is on the `"`.
    fn quoted_string(&mut self) {
        let start_line = self.line;
        self.i += 1;
        let content_start = self.i;
        loop {
            match self.peek(0) {
                None => break,
                Some('\\') => {
                    if self.peek(1) == Some('\n') {
                        self.line += 1; // escaped line continuation
                    }
                    self.i += 2;
                }
                Some('"') => break,
                Some(_) => self.bump(),
            }
        }
        let end = self.i.min(self.chars.len());
        let content: String = self.chars[content_start..end].iter().collect();
        self.push(TokKind::Str, content, start_line);
        self.i = (end + 1).min(self.chars.len() + 1);
    }

    /// Consume a raw string; `self.i` is on the first `#` or the `"`
    /// after the `r`/`br` prefix has been skipped. Returns `false` (and
    /// consumes nothing) if what follows is not actually a raw string.
    fn raw_string(&mut self, at: usize) -> bool {
        let mut j = at;
        let mut hashes = 0usize;
        while self.chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        if self.chars.get(j) != Some(&'"') {
            return false;
        }
        let start_line = self.line;
        j += 1;
        let content_start = j;
        while j < self.chars.len() {
            if self.chars[j] == '"' {
                let mut k = 0usize;
                while k < hashes && self.chars.get(j + 1 + k) == Some(&'#') {
                    k += 1;
                }
                if k == hashes {
                    break;
                }
            }
            if self.chars[j] == '\n' {
                self.line += 1;
            }
            j += 1;
        }
        let content: String = self.chars[content_start..j.min(self.chars.len())]
            .iter()
            .collect();
        self.push(TokKind::Str, content, start_line);
        self.i = (j + 1 + hashes).min(self.chars.len());
        true
    }

    /// Consume a char/byte literal; `self.i` is on the opening `'`.
    fn char_literal(&mut self) {
        let start_line = self.line;
        self.i += 1;
        let content_start = self.i;
        if self.peek(0) == Some('\\') {
            self.i += 2; // escape introducer + escaped char
        }
        while self.peek(0).is_some_and(|c| c != '\'') {
            self.bump();
        }
        let end = self.i.min(self.chars.len());
        let content: String = self.chars[content_start..end].iter().collect();
        self.push(TokKind::Char, content, start_line);
        self.i = (end + 1).min(self.chars.len() + 1);
    }

    /// Consume an identifier starting at `self.i`.
    fn ident(&mut self) {
        let start = self.i;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.i += 1;
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.push(TokKind::Ident, text, self.line);
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let next = self.peek(1);

            if c.is_whitespace() {
                self.bump();
                continue;
            }
            if c == '/' && next == Some('/') {
                self.line_comment();
                continue;
            }
            if c == '/' && next == Some('*') {
                self.block_comment();
                continue;
            }

            // r-prefixed forms: raw string r"…" / r#"…"#, raw ident r#id.
            if c == 'r' && matches!(next, Some('"') | Some('#')) {
                if self.raw_string(self.i + 1) {
                    continue;
                }
                if next == Some('#') && self.peek(2).is_some_and(is_ident_start) {
                    self.i += 2; // skip r#
                    self.ident();
                    continue;
                }
            }
            // b-prefixed forms: b"…", br"…", br#"…"#, b'x'.
            if c == 'b' {
                match next {
                    Some('"') => {
                        self.i += 1;
                        self.quoted_string();
                        continue;
                    }
                    Some('\'') => {
                        self.i += 1;
                        self.char_literal();
                        continue;
                    }
                    _ => {}
                }
                // br"…" / br#"…"# — raw_string consumes only on success.
                if next == Some('r')
                    && matches!(self.peek(2), Some('"') | Some('#'))
                    && self.raw_string(self.i + 2)
                {
                    continue;
                }
            }

            if c == '"' {
                self.quoted_string();
                continue;
            }
            if c == '\'' {
                // Lifetime: 'ident not closed by a quote right after a
                // single ident char ('a' is a char literal, 'ab is not
                // valid but lexes as a lifetime).
                if next.is_some_and(is_ident_start) && next != Some('\\') {
                    let mut j = self.i + 1;
                    while self.chars.get(j).copied().is_some_and(is_ident_continue) {
                        j += 1;
                    }
                    if self.chars.get(j) != Some(&'\'') {
                        let text: String = self.chars[self.i + 1..j].iter().collect();
                        self.push(TokKind::Lifetime, text, self.line);
                        self.i = j;
                        continue;
                    }
                }
                self.char_literal();
                continue;
            }

            if is_ident_start(c) {
                self.ident();
                continue;
            }

            if c.is_ascii_digit() {
                let start = self.i;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.i += 1;
                }
                // One fraction part, only when followed by a digit (so
                // `1..2` stays `1`, `.`, `.`, `2`).
                if self.peek(0) == Some('.') && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                    self.i += 1;
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.i += 1;
                    }
                }
                let text: String = self.chars[start..self.i].iter().collect();
                self.push(TokKind::Num, text, self.line);
                continue;
            }

            // Multi-char punctuation, then single-char fallback.
            let multi = match (c, next) {
                (':', Some(':')) => Some("::"),
                ('=', Some('>')) => Some("=>"),
                ('-', Some('>')) => Some("->"),
                _ => None,
            };
            match multi {
                Some(p) => {
                    self.push(TokKind::Punct, p.to_string(), self.line);
                    self.i += 2;
                }
                None => {
                    self.push(TokKind::Punct, c.to_string(), self.line);
                    self.bump();
                }
            }
        }
    }
}

/// Tokenize `src`. Never fails: unterminated literals or comments are
/// closed at end-of-input (the analyzer must degrade gracefully on code
/// that does not compile yet).
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    };
    lx.run();
    lx.out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_idents() {
        assert_eq!(idents("// HashMap\nlet x = 1;"), ["let", "x"]);
        assert_eq!(idents("/* HashMap */ let y;"), ["let", "y"]);
        assert_eq!(idents("let u = \"http://HashMap\";"), ["let", "u"]);
        assert_eq!(idents("let r = r#\"a \" HashMap\"#;"), ["let", "r"]);
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(idents("/* a /* b */ HashMap */ fin"), ["fin"]);
    }

    #[test]
    fn char_vs_lifetime() {
        let l = lex("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
        let chars: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, ["x", "\\n"]);
    }

    #[test]
    fn multichar_puncts_and_lines() {
        let l = lex("a::b\nc => d -> e");
        let puncts: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| (t.text.clone(), t.line))
            .collect();
        assert_eq!(
            puncts,
            [("::".into(), 1), ("=>".into(), 2), ("->".into(), 2)]
        );
    }

    #[test]
    fn allow_directives_are_collected() {
        let l = lex("let a = 1; // lint:allow(wall-clock)\n// analyzer:allow(lock-order)\n");
        assert!(l.allowed("wall-clock", 1));
        assert!(l.allowed("lock-order", 2));
        // A directive also covers the line directly below it — the
        // usual spelling when the offending line has no room.
        assert!(l.allowed("wall-clock", 2));
        assert!(l.allowed("lock-order", 3));
        assert!(!l.allowed("wall-clock", 3));
        assert!(!l.allowed("lock-order", 1));
    }

    #[test]
    fn byte_and_raw_strings() {
        assert_eq!(idents("let s = b\"HashMap\"; done"), ["let", "s", "done"]);
        assert_eq!(
            idents("let s = br#\"HashMap\"#; done"),
            ["let", "s", "done"]
        );
        assert_eq!(idents("let c = b'h'; done"), ["let", "c", "done"]);
    }

    #[test]
    fn unterminated_input_degrades() {
        let _ = lex("let s = \"unterminated");
        let _ = lex("/* unterminated");
        let _ = lex("let c = 'x");
    }
}
