//! The analyzed file set: workspace-relative paths mapped to source
//! text, loadable from disk and freely editable in memory.
//!
//! Keeping the tree as plain data (instead of re-reading the filesystem
//! inside every rule) is what makes the mutation self-tests possible:
//! a test loads the real repository, performs string surgery on one
//! file — deleting a conformance arm, inserting an orphan schema
//! counter — and asserts the gate fails, without touching disk.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// A set of Rust sources keyed by `/`-separated workspace-relative path.
#[derive(Clone, Debug, Default)]
pub struct Tree {
    files: BTreeMap<String, String>,
}

impl Tree {
    /// An empty tree.
    pub fn new() -> Tree {
        Tree::default()
    }

    /// Load every `*.rs` file under each of `roots` (relative to
    /// `base`), skipping `target` directories. Missing roots are not an
    /// error — a rule patrolling a root that does not exist simply sees
    /// no files.
    pub fn load(base: &Path, roots: &[&str]) -> io::Result<Tree> {
        let mut tree = Tree::new();
        for root in roots {
            let dir = base.join(root);
            if dir.is_dir() {
                tree.load_dir(base, &dir)?;
            } else if dir.is_file() {
                tree.insert(root, &fs::read_to_string(&dir)?);
            }
        }
        Ok(tree)
    }

    fn load_dir(&mut self, base: &Path, dir: &Path) -> io::Result<()> {
        let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            let path = entry.path();
            if path.is_dir() {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if name == "target" || name == "fixtures" {
                    continue;
                }
                self.load_dir(base, &path)?;
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path.strip_prefix(base).unwrap_or(&path);
                let key = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                self.insert(&key, &fs::read_to_string(&path)?);
            }
        }
        Ok(())
    }

    /// Insert (or replace) one file.
    pub fn insert(&mut self, path: &str, src: &str) {
        self.files.insert(path.to_string(), src.to_string());
    }

    /// Remove one file, returning its previous contents.
    pub fn remove(&mut self, path: &str) -> Option<String> {
        self.files.remove(path)
    }

    /// The source of `path`, if present.
    pub fn get(&self, path: &str) -> Option<&str> {
        self.files.get(path).map(String::as_str)
    }

    /// Replace `path`'s contents with `f(old)`. Panics if the file is
    /// absent — mutation tests want a loud failure when the layout
    /// changed under them.
    pub fn edit(&mut self, path: &str, f: impl FnOnce(&str) -> String) {
        let old = self
            .files
            .get(path)
            .unwrap_or_else(|| panic!("tree has no file `{path}`"));
        let new = f(old);
        self.files.insert(path.to_string(), new);
    }

    /// All `(path, source)` pairs in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.files.iter().map(|(p, s)| (p.as_str(), s.as_str()))
    }

    /// The `(path, source)` pairs whose path starts with any of the
    /// given prefixes, in path order.
    pub fn under<'a>(
        &'a self,
        prefixes: &'a [String],
    ) -> impl Iterator<Item = (&'a str, &'a str)> + 'a {
        self.iter()
            .filter(move |(p, _)| prefixes.iter().any(|pre| p.starts_with(pre.as_str())))
    }

    /// Number of files in the tree.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// `true` when the tree holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

/// `true` when `path` is test code by location: under a `tests/`
/// directory (integration tests). `benches/` stays live on purpose —
/// the determinism rules patrol the bench harnesses too.
pub fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_and_query() {
        let mut t = Tree::new();
        t.insert("crates/a/src/lib.rs", "fn a() {}");
        t.insert("crates/b/src/lib.rs", "fn b() {}");
        t.edit("crates/a/src/lib.rs", |s| s.replace("a", "c"));
        assert_eq!(t.get("crates/a/src/lib.rs"), Some("fn c() {}"));
        let under: Vec<_> = t
            .under(&["crates/a".to_string()])
            .map(|(p, _)| p.to_string())
            .collect();
        assert_eq!(under, ["crates/a/src/lib.rs"]);
    }

    #[test]
    fn test_paths() {
        assert!(is_test_path("tests/failure_modes.rs"));
        assert!(is_test_path("crates/core/tests/edge_cases.rs"));
        assert!(!is_test_path("crates/core/src/host.rs"));
    }
}
