//! Workspace static analysis for the offload engine.
//!
//! Two rule families run over a comment/string-aware token stream (see
//! [`lex`]) instead of line regexes, so neither comments, string
//! literals, nor inline `#[cfg(test)]` modules can confuse them:
//!
//! * **Cross-layer drift** ([`rules::drift`]) — the protocol is encoded
//!   in four places (the [`ProtoEvent`] enum, the conformance checker,
//!   the metrics aggregation, the flight-recorder round-trip) plus the
//!   `metrics/v1` schema and the typed `OffloadError` surface. These
//!   rules prove the encodings stay in sync: every event variant is
//!   handled in every layer, every schema counter has a producer, every
//!   error variant is both constructed and asserted.
//! * **Parallel readiness** ([`rules::parallel`]) — ROADMAP items 1/5
//!   (sharded simnet, hot-path rework) need the engine free of ambient
//!   concurrency: no `std::sync` locking primitives outside `simnet`,
//!   no `thread::spawn`, no `static mut`; `parking_lot` lock
//!   acquisition orders form no cycles; and the proxy/host hot paths
//!   hold no unbaselined panic sites (`unwrap`/`expect`/indexing).
//!
//! The legacy lint wall (`hash-iteration-order`, `wall-clock`,
//! `decode-unwrap`) also runs on this engine now ([`rules::lint`]).
//!
//! Escapes: a `lint:allow(rule)` or `analyzer:allow(rule)` comment on
//! the offending line waives that rule for the line; the panic-path
//! audit additionally accepts a committed baseline (see [`baseline`]).
//!
//! [`ProtoEvent`]: https://crates/core/src/events.rs

use std::collections::BTreeMap;
use std::fmt;

pub mod baseline;
pub mod lex;
pub mod report;
pub mod rules;
pub mod scan;
pub mod tree;

pub use tree::Tree;

/// One analysis finding, printable as `file:line: [rule] message`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// Rule that fired.
    pub rule: &'static str,
    /// Workspace-relative file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong and how to fix or waive it.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// One file, lexed and annotated for analysis.
pub struct FileScan {
    /// Workspace-relative path.
    pub path: String,
    /// Token stream + allow directives.
    pub lexed: lex::Lexed,
    /// Per-token `true` when inside `#[cfg(test)]` / `#[test]` code.
    pub mask: Vec<bool>,
    /// The file is test code by location (`tests/` directory).
    pub is_test: bool,
    /// Raw source lines (for baseline snippets).
    pub lines: Vec<String>,
}

impl FileScan {
    /// `true` when the token at `idx` is production (non-test) code.
    pub fn live(&self, idx: usize) -> bool {
        !self.is_test && !self.mask.get(idx).copied().unwrap_or(false)
    }

    /// `true` when `rule` is waived on `line` by an allow directive.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.lexed.allowed(rule, line)
    }

    /// The trimmed source text of 1-based `line` (empty when out of
    /// range), for baseline snippets and finding context.
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|s| s.trim())
            .unwrap_or("")
    }
}

/// Every file of a [`Tree`], lexed once and shared by all rules.
pub struct SourceSet {
    files: BTreeMap<String, FileScan>,
}

impl SourceSet {
    /// Lex and annotate every file of `tree`.
    pub fn build(tree: &Tree) -> SourceSet {
        let mut files = BTreeMap::new();
        for (path, src) in tree.iter() {
            let lexed = lex::lex(src);
            let mask = scan::test_mask(&lexed);
            files.insert(
                path.to_string(),
                FileScan {
                    path: path.to_string(),
                    lexed,
                    mask,
                    is_test: tree::is_test_path(path),
                    lines: src.lines().map(str::to_string).collect(),
                },
            );
        }
        SourceSet { files }
    }

    /// The scan of `path`, if the tree holds it.
    pub fn get(&self, path: &str) -> Option<&FileScan> {
        self.files.get(path)
    }

    /// All scans in path order.
    pub fn iter(&self) -> impl Iterator<Item = &FileScan> {
        self.files.values()
    }

    /// Scans whose path starts with any of `prefixes`, in path order.
    pub fn under<'a>(&'a self, prefixes: &'a [String]) -> impl Iterator<Item = &'a FileScan> + 'a {
        self.iter()
            .filter(move |f| prefixes.iter().any(|p| f.path.starts_with(p.as_str())))
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// `true` when no files were loaded.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

/// Where each rule looks. [`Config::repo`] is the layout of this
/// workspace; tests build custom configs over fixture trees.
#[derive(Clone, Debug)]
pub struct Config {
    /// File declaring the protocol event enum.
    pub events_file: String,
    /// Name of the protocol event enum.
    pub proto_enum: String,
    /// Files that must handle every event variant as a
    /// `ProtoEvent::Variant` path in non-test code.
    pub proto_handlers: Vec<String>,
    /// Files that must additionally mention every variant name as a
    /// string literal (the flight recorder's parse side).
    pub proto_str_handlers: Vec<String>,
    /// File declaring the metrics schema key lists.
    pub schema_file: String,
    /// `const NAME: &[&str]` arrays in that file holding counter keys.
    pub schema_consts: Vec<String>,
    /// Roots whose non-test code must produce every schema counter.
    pub counter_roots: Vec<String>,
    /// `const NAME: &[&str]` arrays in the schema file holding
    /// `profile/v1` scope names.
    pub profile_consts: Vec<String>,
    /// Roots whose non-test code must enter every profile scope — a
    /// `profile_scope!("name")` string literal or an engine scope
    /// const. A declared scope nothing enters is a profiler row that
    /// can never appear.
    pub profile_roots: Vec<String>,
    /// File declaring the typed error enum.
    pub errors_file: String,
    /// Name of the typed error enum.
    pub error_enum: String,
    /// Roots whose non-test code must construct every error variant
    /// (the declaring file itself never counts).
    pub error_construct_roots: Vec<String>,
    /// Non-test files that count as test harness for the "asserted in a
    /// test" half of the error rule (checker drivers).
    pub error_harness_files: Vec<String>,
    /// Roots patrolled for banned concurrency primitives.
    pub concurrency_roots: Vec<String>,
    /// Roots whose `parking_lot` lock acquisitions feed the lock-order
    /// graph.
    pub lock_roots: Vec<String>,
    /// Hot-path files audited for panic sites against the baseline.
    pub panic_files: Vec<String>,
}

impl Config {
    /// The rule configuration for this repository's layout.
    pub fn repo() -> Config {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        Config {
            events_file: "crates/core/src/events.rs".into(),
            proto_enum: "ProtoEvent".into(),
            proto_handlers: s(&[
                "crates/checker/src/conformance.rs",
                "crates/core/src/metrics.rs",
                "crates/core/src/flight.rs",
            ]),
            proto_str_handlers: s(&["crates/core/src/flight.rs"]),
            schema_file: "crates/obs/src/schema.rs".into(),
            schema_consts: s(&["TOTAL_KEYS", "CACHE_KEYS", "TENANT_KEYS", "HEALTH_KEYS"]),
            counter_roots: s(&["crates/core/src"]),
            profile_consts: s(&["PROFILE_SCOPES"]),
            profile_roots: s(&["crates/core/src", "crates/simnet/src"]),
            errors_file: "crates/core/src/reliable.rs".into(),
            error_enum: "OffloadError".into(),
            error_construct_roots: s(&["crates/core/src"]),
            error_harness_files: s(&["crates/workloads/src/drivers.rs"]),
            concurrency_roots: s(&[
                "crates/core/src",
                "crates/rdma/src",
                "crates/obs/src",
                "crates/checker/src",
                "crates/workloads/src",
                "crates/minimpi/src",
                "crates/baselines/src",
            ]),
            lock_roots: s(&[
                "crates/simnet/src",
                "crates/core/src",
                "crates/rdma/src",
                "crates/obs/src",
                "crates/checker/src",
                "crates/workloads/src",
                "crates/minimpi/src",
            ]),
            panic_files: s(&["crates/core/src/proxy.rs", "crates/core/src/host.rs"]),
        }
    }
}

/// Result of one analysis run.
pub struct Analysis {
    /// Findings that fail the gate, ordered by (rule, file, line).
    pub findings: Vec<Finding>,
    /// Panic-path hits absorbed by the committed baseline.
    pub baselined: usize,
    /// Baseline entries no longer matched by any hit (stale; refresh
    /// with `--update-baseline`). Notes, not failures.
    pub stale_baseline: Vec<String>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// `true` when the gate passes.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Run every analyzer rule over `tree`. `baseline` is the committed
/// panic-path allowlist text (empty string = empty baseline).
pub fn analyze(tree: &Tree, cfg: &Config, baseline_text: &str) -> Analysis {
    let set = SourceSet::build(tree);
    let mut findings = Vec::new();
    findings.extend(rules::drift::proto_drift(&set, cfg));
    findings.extend(rules::drift::schema_drift(&set, cfg));
    findings.extend(rules::drift::error_drift(&set, cfg));
    findings.extend(rules::parallel::concurrency_ban(&set, cfg));
    findings.extend(rules::parallel::lock_order(&set, cfg));
    let hits = rules::parallel::panic_hits(&set, cfg);
    let resolved = baseline::apply(&hits, baseline_text);
    findings.extend(resolved.findings);
    findings
        .sort_by(|a, b| (a.rule, &a.path, a.line, &a.msg).cmp(&(b.rule, &b.path, b.line, &b.msg)));
    Analysis {
        findings,
        baselined: resolved.baselined,
        stale_baseline: resolved.stale,
        files_scanned: set.len(),
    }
}

/// Run the lint wall (the legacy three rules on the token engine) over
/// `tree`. Returns findings ordered by (rule, file, line).
pub fn lint(tree: &Tree) -> Vec<Finding> {
    let set = SourceSet::build(tree);
    let mut findings = rules::lint::run(&set);
    findings
        .sort_by(|a, b| (a.rule, &a.path, a.line, &a.msg).cmp(&(b.rule, &b.path, b.line, &b.msg)));
    findings
}

/// The panic-path hits of `tree` rendered in baseline format — what
/// `cargo xtask analyze --update-baseline` writes.
pub fn render_baseline(tree: &Tree, cfg: &Config) -> String {
    let set = SourceSet::build(tree);
    baseline::render(&rules::parallel::panic_hits(&set, cfg))
}
