//! The panic-path baseline: a committed allowlist pinning the panic
//! sites that already exist on the proxy/host hot paths, so the gate
//! only fails on *new* ones while ROADMAP item 5 pays the debt down.
//!
//! Format (one entry per line, tab-separated):
//!
//! ```text
//! <count>\t<file>\t<kind>\t<snippet>
//! ```
//!
//! Entries are keyed by `(file, kind, snippet)` — the trimmed source
//! text of the offending line, *not* its line number — so unrelated
//! edits that shift lines do not churn the baseline. `count` caps how
//! many hits the entry absorbs: adding a second `self.q[i]` identical
//! to a baselined one still fails until the baseline is refreshed
//! deliberately with `cargo xtask analyze --update-baseline`.
//!
//! Blank lines and `#`-prefixed comment lines are ignored.

use std::collections::BTreeMap;

use crate::rules::parallel::{PanicHit, PANIC_PATH};
use crate::Finding;

/// Result of diffing raw panic hits against the baseline text.
pub struct Resolved {
    /// Hits not absorbed by the baseline — gate failures.
    pub findings: Vec<Finding>,
    /// Hits the baseline absorbed.
    pub baselined: usize,
    /// Baseline entries (rendered back as lines) that matched fewer
    /// hits than their count — stale debt that was paid down.
    pub stale: Vec<String>,
}

fn key(hit: &PanicHit) -> (String, String, String) {
    (hit.path.clone(), hit.kind.to_string(), hit.snippet.clone())
}

/// Parse `text` into `(file, kind, snippet) -> count`.
fn parse(text: &str) -> BTreeMap<(String, String, String), usize> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(4, '\t');
        let (Some(count), Some(file), Some(kind), Some(snippet)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let Ok(count) = count.trim().parse::<usize>() else {
            continue;
        };
        *out.entry((file.to_string(), kind.to_string(), snippet.to_string()))
            .or_insert(0) += count;
    }
    out
}

/// Diff `hits` against the committed `baseline` text.
pub fn apply(hits: &[PanicHit], baseline: &str) -> Resolved {
    let mut budget = parse(baseline);
    let mut findings = Vec::new();
    let mut baselined = 0usize;
    for hit in hits {
        match budget.get_mut(&key(hit)) {
            Some(n) if *n > 0 => {
                *n -= 1;
                baselined += 1;
            }
            _ => findings.push(Finding {
                rule: PANIC_PATH,
                path: hit.path.clone(),
                line: hit.line,
                msg: format!(
                    "new {} on a hot path: `{}` — handle the failure (count a stat, \
                     return an error) or refresh the baseline with \
                     `cargo xtask analyze --update-baseline`",
                    hit.kind, hit.snippet
                ),
            }),
        }
    }
    let stale = budget
        .iter()
        .filter(|(_, n)| **n > 0)
        .map(|((file, kind, snippet), n)| format!("{n}\t{file}\t{kind}\t{snippet}"))
        .collect();
    Resolved {
        findings,
        baselined,
        stale,
    }
}

/// Render `hits` in baseline format: grouped by `(file, kind, snippet)`
/// with counts, sorted, with an explanatory header.
pub fn render(hits: &[PanicHit]) -> String {
    let mut grouped: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    for hit in hits {
        *grouped.entry(key(hit)).or_insert(0) += 1;
    }
    let mut out = String::from(
        "# Panic-path baseline for the proxy/host hot paths.\n\
         # One entry per line: <count>\\t<file>\\t<kind>\\t<snippet>.\n\
         # Regenerate with: cargo xtask analyze --update-baseline\n\
         # New panic sites fail `cargo xtask analyze`; pay debt down, never up.\n",
    );
    for ((file, kind, snippet), n) in &grouped {
        out.push_str(&format!("{n}\t{file}\t{kind}\t{snippet}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(path: &str, kind: &'static str, line: u32, snippet: &str) -> PanicHit {
        PanicHit {
            path: path.into(),
            kind,
            line,
            snippet: snippet.into(),
        }
    }

    #[test]
    fn baseline_absorbs_up_to_count() {
        let hits = vec![
            hit("a.rs", "unwrap", 3, "x.unwrap();"),
            hit("a.rs", "unwrap", 9, "x.unwrap();"),
        ];
        let r = apply(&hits, "1\ta.rs\tunwrap\tx.unwrap();\n");
        assert_eq!(r.baselined, 1);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].line, 9);
        assert!(r.stale.is_empty());
    }

    #[test]
    fn stale_entries_are_reported_not_fatal() {
        let r = apply(&[], "2\tgone.rs\tindex\tq[0]\n# comment\n\n");
        assert!(r.findings.is_empty());
        assert_eq!(r.stale, ["2\tgone.rs\tindex\tq[0]"]);
    }

    #[test]
    fn render_round_trips_through_apply() {
        let hits = vec![
            hit("b.rs", "index", 4, "buf[i]"),
            hit("a.rs", "expect", 2, "y.expect(\"set\");"),
            hit("b.rs", "index", 8, "buf[i]"),
        ];
        let text = render(&hits);
        let r = apply(&hits, &text);
        assert_eq!(r.baselined, 3);
        assert!(r.findings.is_empty());
        assert!(r.stale.is_empty());
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let r = apply(
            &[hit("a.rs", "unwrap", 1, "x.unwrap();")],
            "not-a-number\ta.rs\tunwrap\tx.unwrap();\nshort\tline\n",
        );
        assert_eq!(r.findings.len(), 1);
    }
}
