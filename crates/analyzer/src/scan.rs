//! Lightweight item scanning over the token stream: test-region
//! marking, enum-variant and const-array extraction, path lookups, and
//! delimiter matching. This is deliberately *not* a parser — it
//! recognizes just enough structure for the rules, and degrades to
//! "no match" (never a panic) on code it does not understand.

use crate::lex::{Lexed, Tok, TokKind};

/// Per-token `true` when the token sits inside test-only code: an item
/// annotated `#[cfg(test)]` or `#[test]` (attributes included). A
/// file-level `#![cfg(test)]` marks the whole file.
pub fn test_mask(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.toks;
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct("#") {
            i += 1;
            continue;
        }
        // Inner attribute `#![cfg(test)]` — whole file is test code.
        if toks.get(i + 1).is_some_and(|t| t.is_punct("!")) {
            if let Some(close) = delim_close(toks, i + 2, "[", "]") {
                if attr_is_test(&toks[i + 3..close]) {
                    mask.iter_mut().for_each(|m| *m = true);
                    return mask;
                }
                i = close + 1;
                continue;
            }
        }
        let Some(close) = delim_close(toks, i + 1, "[", "]") else {
            i += 1;
            continue;
        };
        if !attr_is_test(&toks[i + 2..close]) {
            i = close + 1;
            continue;
        }
        // Mark the attribute, any further attributes, and the item that
        // follows (through its `;` or its outermost `{ … }` block).
        let start = i;
        let mut j = close + 1;
        while j < toks.len() && toks[j].is_punct("#") {
            match delim_close(toks, j + 1, "[", "]") {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        let end = item_end(toks, j);
        for m in mask.iter_mut().take(end.min(toks.len())).skip(start) {
            *m = true;
        }
        i = end;
    }
    mask
}

/// `true` when the tokens of an attribute body (between `[` and `]`)
/// mean "test code": exactly `test`, or `cfg` applied directly to
/// `test` (`cfg(test)` — not `cfg(not(test))`).
fn attr_is_test(body: &[Tok]) -> bool {
    if body.len() == 1 && body[0].is_ident("test") {
        return true;
    }
    body.windows(4).any(|w| {
        w[0].is_ident("cfg") && w[1].is_punct("(") && w[2].is_ident("test") && w[3].is_punct(")")
    })
}

/// Index just past the end of the item starting at `from`: past the
/// first `;` seen before any brace, or past the matching `}` of the
/// first `{`. Returns `toks.len()` when the item never closes.
fn item_end(toks: &[Tok], from: usize) -> usize {
    let mut j = from;
    while j < toks.len() {
        if toks[j].is_punct(";") {
            return j + 1;
        }
        if toks[j].is_punct("{") {
            return match delim_close(toks, j, "{", "}") {
                Some(c) => c + 1,
                None => toks.len(),
            };
        }
        j += 1;
    }
    toks.len()
}

/// Index of the delimiter closing the `open` at index `at` (which must
/// hold `open`), honoring nesting. `None` when `at` is not `open` or
/// the stream ends first.
pub fn delim_close(toks: &[Tok], at: usize, open: &str, close: &str) -> Option<usize> {
    if !toks.get(at)?.is_punct(open) {
        return None;
    }
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(at) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// The variants of `enum <name>`: `(variant, line)` pairs in
/// declaration order. Empty when the enum is not found.
pub fn enum_variants(lexed: &Lexed, name: &str) -> Vec<(String, u32)> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    let Some(at) = toks
        .windows(2)
        .position(|w| w[0].is_ident("enum") && w[1].is_ident(name))
    else {
        return out;
    };
    // Find the `{` opening the body (skipping generics / where clauses).
    let Some(open) = (at..toks.len()).find(|&j| toks[j].is_punct("{")) else {
        return out;
    };
    let Some(close) = delim_close(toks, open, "{", "}") else {
        return out;
    };
    let mut j = open + 1;
    while j < close {
        // Skip attributes on the variant.
        while toks[j].is_punct("#") {
            match delim_close(toks, j + 1, "[", "]") {
                Some(c) => j = c + 1,
                None => return out,
            }
        }
        if toks[j].kind == TokKind::Ident {
            out.push((toks[j].text.clone(), toks[j].line));
        }
        // Skip to the `,` separating variants (or the body's end),
        // stepping over nested `{…}` / `(…)` field lists.
        while j < close {
            if toks[j].is_punct("{") || toks[j].is_punct("(") || toks[j].is_punct("[") {
                let (o, c) = match toks[j].text.as_str() {
                    "{" => ("{", "}"),
                    "(" => ("(", ")"),
                    _ => ("[", "]"),
                };
                match delim_close(toks, j, o, c) {
                    Some(end) => j = end + 1,
                    None => return out,
                }
            } else if toks[j].is_punct(",") {
                j += 1;
                break;
            } else {
                j += 1;
            }
        }
    }
    out
}

/// The string elements of `const <name>: … = &[ "…", … ];` with their
/// lines. Empty when the const is not found or has no array literal.
pub fn const_str_array(lexed: &Lexed, name: &str) -> Vec<(String, u32)> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    let Some(at) = toks
        .windows(2)
        .position(|w| w[0].is_ident("const") && w[1].is_ident(name))
    else {
        return out;
    };
    let Some(eq) = (at..toks.len()).find(|&j| toks[j].is_punct("=")) else {
        return out;
    };
    let Some(open) = (eq..toks.len()).find(|&j| toks[j].is_punct("[")) else {
        return out;
    };
    let Some(close) = delim_close(toks, open, "[", "]") else {
        return out;
    };
    for t in &toks[open + 1..close] {
        if t.kind == TokKind::Str {
            out.push((t.text.clone(), t.line));
        }
    }
    out
}

/// Lines on which the path `a::b` occurs (as exactly two segments —
/// `x::a::b` also matches since the scan is windowed on `a :: b`).
pub fn path2_lines(lexed: &Lexed, a: &str, b: &str) -> Vec<u32> {
    lexed
        .toks
        .windows(3)
        .filter(|w| w[0].is_ident(a) && w[1].is_punct("::") && w[2].is_ident(b))
        .map(|w| w[2].line)
        .collect()
}

/// Lines on which the string literal `s` occurs.
pub fn str_lines(lexed: &Lexed, s: &str) -> Vec<u32> {
    lexed
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Str && t.text == s)
        .map(|t| t.line)
        .collect()
}

/// Lines on which the identifier `s` occurs.
pub fn ident_lines(lexed: &Lexed, s: &str) -> Vec<u32> {
    lexed
        .toks
        .iter()
        .filter(|t| t.is_ident(s))
        .map(|t| t.line)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    #[test]
    fn enum_extraction() {
        let src = "/// Doc.\npub enum E {\n    /// a\n    A { x: u8 },\n    #[allow(dead_code)]\n    B(u32),\n    C,\n}\n";
        let vars = enum_variants(&lex(src), "E");
        let names: Vec<_> = vars.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["A", "B", "C"]);
    }

    #[test]
    fn const_array_extraction() {
        let src = "const KEYS: &[&str] = &[\n \"one\",\n \"two\",\n];\nconst OTHER: u8 = 3;";
        let keys = const_str_array(&lex(src), "KEYS");
        assert_eq!(keys, [("one".to_string(), 2), ("two".to_string(), 3)]);
        assert!(const_str_array(&lex(src), "MISSING").is_empty());
    }

    #[test]
    fn test_region_masking() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn also_live() {}\n";
        let lexed = lex(src);
        let mask = test_mask(&lexed);
        let live: Vec<_> = lexed
            .toks
            .iter()
            .zip(&mask)
            .filter(|(t, m)| t.kind == TokKind::Ident && !**m)
            .map(|(t, _)| t.text.clone())
            .collect();
        assert_eq!(live, ["fn", "live", "fn", "also_live"]);
    }

    #[test]
    fn cfg_not_test_is_live() {
        let src = "#[cfg(not(test))]\nfn shipping() {}\n";
        let lexed = lex(src);
        assert!(test_mask(&lexed).iter().all(|m| !m));
    }

    #[test]
    fn inline_test_fn_masked() {
        let src = "#[test]\nfn t() { boom(); }\nfn live() {}\n";
        let lexed = lex(src);
        let mask = test_mask(&lexed);
        let live: Vec<_> = lexed
            .toks
            .iter()
            .zip(&mask)
            .filter(|(t, m)| t.kind == TokKind::Ident && !**m)
            .map(|(t, _)| t.text.clone())
            .collect();
        assert_eq!(live, ["fn", "live"]);
    }

    #[test]
    fn path_and_str_lookup() {
        let lexed = lex("use a::b;\nmatch x { Foo::Bar => 1, _ => 2 }\nlet s = \"Bar\";");
        assert_eq!(path2_lines(&lexed, "Foo", "Bar"), [2]);
        assert_eq!(str_lines(&lexed, "Bar"), [3]);
        assert!(path2_lines(&lexed, "Foo", "Baz").is_empty());
    }
}
