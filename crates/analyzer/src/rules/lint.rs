//! The determinism lint wall, ported from the line-regex scanner in
//! `xtask` onto the token engine. Same three rules, now immune to
//! comments, string literals, and inline `#[cfg(test)]` modules — and
//! with the patrol widened to `obs`, `minimpi`, and `bench` (the
//! crates PR 4/5 added after the original roots were chosen).
//!
//! * [`HASH_ITER`] — `HashMap`/`HashSet` iteration order is randomized
//!   per process; any matching or scheduling decision that walks one
//!   diverges between reruns and breaks the determinism guarantee.
//! * [`WALL_CLOCK`] — `std::time` / `Instant` / `SystemTime` smuggle
//!   host timing into simulated runs; simulated code reads virtual
//!   time from its `ProcessCtx`.
//! * [`DECODE_UNWRAP`] — `unwrap()`/`expect()` on `downcast` results
//!   takes a whole simulated rank down on an unexpected payload;
//!   decode paths drop and count a stat instead.
//!
//! `lint:allow(<rule>)` on the offending line waives that rule there.

use crate::lex::TokKind;
use crate::{Finding, SourceSet};

/// Rule name for the hash-container ban.
pub const HASH_ITER: &str = "hash-iteration-order";
/// Rule name for the host-clock ban.
pub const WALL_CLOCK: &str = "wall-clock";
/// Rule name for the panicking-decode ban.
pub const DECODE_UNWRAP: &str = "decode-unwrap";

/// `(rule, why)` notes printed by `cargo xtask lint` when a rule fires.
pub const WHY: &[(&str, &str)] = &[
    (
        HASH_ITER,
        "randomized iteration order breaks deterministic matching; \
         use BTreeMap/BTreeSet/VecDeque",
    ),
    (
        WALL_CLOCK,
        "simulated code must use virtual time (SimTime/SimDelta), \
         never the host clock",
    ),
    (
        DECODE_UNWRAP,
        "cross-rank message decode must not panic on unexpected \
         payloads; drop and count a stat instead",
    ),
];

/// Roots patrolled for `HashMap`/`HashSet`: the deterministic matching
/// and scheduling crates, plus the bench harnesses that replay them.
fn hash_roots() -> Vec<String> {
    to_owned(&[
        "crates/core/src",
        "crates/rdma/src",
        "crates/obs/src",
        "crates/minimpi/src",
        "crates/bench/src",
        "crates/bench/benches",
    ])
}

/// Roots patrolled for host-clock reads: everything simnet-driven.
fn clock_roots() -> Vec<String> {
    to_owned(&[
        "crates/simnet/src",
        "crates/core/src",
        "crates/rdma/src",
        "crates/workloads/src",
        "crates/checker/src",
        "crates/obs/src",
        "crates/minimpi/src",
        "crates/bench/src",
        "crates/bench/benches",
    ])
}

/// Roots patrolled for panicking decode.
fn decode_roots() -> Vec<String> {
    to_owned(&["crates/core/src", "crates/rdma/src"])
}

fn to_owned(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

/// Run the lint wall over `set`. The rules carry their own roots, so
/// fixture trees exercise the exact entry point the workspace uses.
pub fn run(set: &SourceSet) -> Vec<Finding> {
    let mut out = Vec::new();
    // hash-iteration-order: any live HashMap/HashSet identifier.
    for file in set.under(&hash_roots()) {
        for (i, t) in file.lexed.toks.iter().enumerate() {
            if file.live(i)
                && (t.is_ident("HashMap") || t.is_ident("HashSet"))
                && !file.allowed(HASH_ITER, t.line)
            {
                out.push(Finding {
                    rule: HASH_ITER,
                    path: file.path.clone(),
                    line: t.line,
                    msg: file.line_text(t.line).to_string(),
                });
            }
        }
    }
    // wall-clock: `std::time` paths or Instant/SystemTime identifiers.
    for file in set.under(&clock_roots()) {
        let toks = &file.lexed.toks;
        for i in 0..toks.len() {
            if !file.live(i) {
                continue;
            }
            let t = &toks[i];
            let std_time = t.is_ident("std")
                && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && toks.get(i + 2).is_some_and(|t| t.is_ident("time"));
            if (std_time || t.is_ident("Instant") || t.is_ident("SystemTime"))
                && !file.allowed(WALL_CLOCK, t.line)
            {
                out.push(Finding {
                    rule: WALL_CLOCK,
                    path: file.path.clone(),
                    line: t.line,
                    msg: file.line_text(t.line).to_string(),
                });
            }
        }
    }
    // decode-unwrap: `.unwrap(`/`.expect(` on the same line as a
    // `downcast*` call.
    for file in set.under(&decode_roots()) {
        let toks = &file.lexed.toks;
        for i in 0..toks.len() {
            if !file.live(i) || !toks[i].is_punct(".") {
                continue;
            }
            let Some(m) = toks.get(i + 1) else { continue };
            if !(m.is_ident("unwrap") || m.is_ident("expect"))
                || !toks.get(i + 2).is_some_and(|t| t.is_punct("("))
            {
                continue;
            }
            let line = m.line;
            let downcast_on_line = toks.iter().any(|t| {
                t.line == line && t.kind == TokKind::Ident && t.text.starts_with("downcast")
            });
            if downcast_on_line && !file.allowed(DECODE_UNWRAP, line) {
                out.push(Finding {
                    rule: DECODE_UNWRAP,
                    path: file.path.clone(),
                    line,
                    msg: file.line_text(line).to_string(),
                });
            }
        }
    }
    out
}
