//! Cross-layer drift detection.
//!
//! The protocol's correctness story is encoded several times over —
//! the [`ProtoEvent`] enum, the conformance invariants, the metrics
//! aggregation, the flight-recorder dump/parse round-trip, the
//! `metrics/v1` schema, the typed error surface — and PRs 1–5 kept
//! those encodings in sync by hand. These rules make the sync
//! machine-checked: adding a `ProtoEvent` variant, a schema counter, or
//! an `OffloadError` variant without teaching every layer about it is a
//! gate failure with a `file:line` pointing at the declaration.
//!
//! Waivers: an `analyzer:allow(<rule>)` comment on the *declaration*
//! line (the enum variant or the schema key) waives that item
//! everywhere — the declaration is the one place a reviewer will look.
//!
//! [`ProtoEvent`]: crate::Config::proto_enum

use crate::scan;
use crate::{Config, FileScan, Finding, SourceSet};

/// Rule name: every protocol event variant handled in every layer.
pub const PROTO_DRIFT: &str = "proto-drift";
/// Rule name: every schema counter produced somewhere in core.
pub const SCHEMA_DRIFT: &str = "schema-drift";
/// Rule name: every typed error variant constructed and asserted.
pub const ERROR_DRIFT: &str = "error-drift";

/// `true` when `file` contains `owner::member` as a path in non-test
/// code.
fn has_live_path(file: &FileScan, owner: &str, member: &str) -> bool {
    let toks = &file.lexed.toks;
    (0..toks.len().saturating_sub(2)).any(|i| {
        toks[i].is_ident(owner)
            && toks[i + 1].is_punct("::")
            && toks[i + 2].is_ident(member)
            && file.live(i)
    })
}

/// `true` when `file` mentions `name` as an identifier or a string
/// literal in non-test code.
fn has_live_ident_or_str(file: &FileScan, name: &str) -> bool {
    file.lexed.toks.iter().enumerate().any(|(i, t)| {
        file.live(i)
            && ((t.is_ident(name)) || (t.kind == crate::lex::TokKind::Str && t.text == name))
    })
}

/// Every variant of the protocol event enum must be handled — as a
/// `Enum::Variant` path in non-test code — in each handler file
/// (conformance checker, metrics aggregation, flight-recorder dump),
/// and additionally as a string literal in the flight recorder (its
/// parse side matches on the variant *name*).
pub fn proto_drift(set: &SourceSet, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some(events) = set.get(&cfg.events_file) else {
        return vec![Finding {
            rule: PROTO_DRIFT,
            path: cfg.events_file.clone(),
            line: 1,
            msg: format!(
                "events file not found in tree (looking for enum {})",
                cfg.proto_enum
            ),
        }];
    };
    let variants = scan::enum_variants(&events.lexed, &cfg.proto_enum);
    if variants.is_empty() {
        return vec![Finding {
            rule: PROTO_DRIFT,
            path: cfg.events_file.clone(),
            line: 1,
            msg: format!("enum {} not found or has no variants", cfg.proto_enum),
        }];
    }
    for handler in cfg.proto_handlers.iter().chain(&cfg.proto_str_handlers) {
        if set.get(handler).is_none() {
            out.push(Finding {
                rule: PROTO_DRIFT,
                path: handler.clone(),
                line: 1,
                msg: "handler file not found in tree".into(),
            });
        }
    }
    for (variant, line) in &variants {
        if events.allowed(PROTO_DRIFT, *line) {
            continue;
        }
        for handler in &cfg.proto_handlers {
            let Some(h) = set.get(handler) else { continue };
            if !has_live_path(h, &cfg.proto_enum, variant) {
                out.push(Finding {
                    rule: PROTO_DRIFT,
                    path: cfg.events_file.clone(),
                    line: *line,
                    msg: format!(
                        "{}::{variant} has no handler arm in {handler}; add one or waive \
                         with `analyzer:allow({PROTO_DRIFT})` on the variant",
                        cfg.proto_enum
                    ),
                });
            }
        }
        for handler in &cfg.proto_str_handlers {
            let Some(h) = set.get(handler) else { continue };
            if scan::str_lines(&h.lexed, variant).is_empty() {
                out.push(Finding {
                    rule: PROTO_DRIFT,
                    path: cfg.events_file.clone(),
                    line: *line,
                    msg: format!(
                        "{}::{variant} is not parsed back (no \"{variant}\" string) in {handler}; \
                         the flight-recorder round-trip would drop it",
                        cfg.proto_enum
                    ),
                });
            }
        }
    }
    out
}

/// Every counter key declared in the schema's `const` key lists must be
/// produced by non-test code under the counter roots: the key has to
/// occur as an identifier (a struct field being incremented) or a
/// string literal (the JSON emitter writing it). A schema key nothing
/// in core mentions is a counter that can never move — classic drift
/// between the contract and the engine. The `profile/v1` scope list is
/// held to the same bar against its own roots: every declared scope
/// name must appear in a producer (a `profile_scope!("name")` literal
/// in core or an engine scope const in simnet).
pub fn schema_drift(set: &SourceSet, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some(schema) = set.get(&cfg.schema_file) else {
        return vec![Finding {
            rule: SCHEMA_DRIFT,
            path: cfg.schema_file.clone(),
            line: 1,
            msg: "schema file not found in tree".into(),
        }];
    };
    let groups: [(&[String], &[String]); 2] = [
        (&cfg.schema_consts, &cfg.counter_roots),
        (&cfg.profile_consts, &cfg.profile_roots),
    ];
    for (consts, roots) in groups {
        // The declaring file never counts as a producer, even when the
        // roots cover it — the const array itself mentions every key.
        let producers: Vec<&FileScan> = set
            .under(roots)
            .filter(|f| f.path != cfg.schema_file)
            .collect();
        for const_name in consts {
            let keys = scan::const_str_array(&schema.lexed, const_name);
            if keys.is_empty() {
                out.push(Finding {
                    rule: SCHEMA_DRIFT,
                    path: cfg.schema_file.clone(),
                    line: 1,
                    msg: format!("const {const_name} not found or empty in schema file"),
                });
                continue;
            }
            for (key, line) in keys {
                if schema.allowed(SCHEMA_DRIFT, line) {
                    continue;
                }
                if !producers.iter().any(|f| has_live_ident_or_str(f, &key)) {
                    out.push(Finding {
                        rule: SCHEMA_DRIFT,
                        path: cfg.schema_file.clone(),
                        line,
                        msg: format!(
                            "schema counter \"{key}\" ({const_name}) is produced nowhere under \
                             {roots:?}; wire it up or waive with `analyzer:allow({SCHEMA_DRIFT})`"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Every variant of the typed error enum must be (a) constructed by
/// non-test code under the construct roots — outside the declaring
/// file, whose `Debug`/`Display` impls match every variant anyway —
/// and (b) asserted by at least one test: a `Enum::Variant` mention in
/// test code (a `tests/` file or a `#[cfg(test)]` region) or in a
/// designated test-harness file (the checker drivers, which assert
/// typed failures on behalf of the soak suites).
pub fn error_drift(set: &SourceSet, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some(errors) = set.get(&cfg.errors_file) else {
        return vec![Finding {
            rule: ERROR_DRIFT,
            path: cfg.errors_file.clone(),
            line: 1,
            msg: format!(
                "errors file not found in tree (looking for enum {})",
                cfg.error_enum
            ),
        }];
    };
    let variants = scan::enum_variants(&errors.lexed, &cfg.error_enum);
    if variants.is_empty() {
        return vec![Finding {
            rule: ERROR_DRIFT,
            path: cfg.errors_file.clone(),
            line: 1,
            msg: format!("enum {} not found or has no variants", cfg.error_enum),
        }];
    }
    for (variant, line) in &variants {
        if errors.allowed(ERROR_DRIFT, *line) {
            continue;
        }
        let constructed = set
            .under(&cfg.error_construct_roots)
            .filter(|f| f.path != cfg.errors_file)
            .any(|f| has_live_path(f, &cfg.error_enum, variant));
        if !constructed {
            out.push(Finding {
                rule: ERROR_DRIFT,
                path: cfg.errors_file.clone(),
                line: *line,
                msg: format!(
                    "{}::{variant} is never constructed in non-test code under {:?}; \
                     dead error surface (or waive with `analyzer:allow({ERROR_DRIFT})`)",
                    cfg.error_enum, cfg.error_construct_roots
                ),
            });
        }
        let asserted = set.iter().any(|f| {
            let in_test_scope = f.is_test || cfg.error_harness_files.iter().any(|h| h == &f.path);
            let toks = &f.lexed.toks;
            (0..toks.len().saturating_sub(2)).any(|i| {
                toks[i].is_ident(&cfg.error_enum)
                    && toks[i + 1].is_punct("::")
                    && toks[i + 2].is_ident(variant)
                    && (in_test_scope || f.mask.get(i).copied().unwrap_or(false))
            })
        });
        if !asserted {
            out.push(Finding {
                rule: ERROR_DRIFT,
                path: cfg.errors_file.clone(),
                line: *line,
                msg: format!(
                    "{}::{variant} is asserted by no test (tests/ files, #[cfg(test)] \
                     regions, or harness files {:?}); failures of this kind are unproven",
                    cfg.error_enum, cfg.error_harness_files
                ),
            });
        }
    }
    out
}
