//! The rule catalog. Each rule is a pure function from a lexed
//! [`crate::SourceSet`] (plus [`crate::Config`]) to [`crate::Finding`]s;
//! nothing here touches the filesystem.

pub mod drift;
pub mod lint;
pub mod parallel;
