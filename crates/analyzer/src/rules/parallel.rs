//! Parallel-readiness audit for ROADMAP items 1 (sharded simnet) and 5
//! (hot-path rework).
//!
//! Sharding the simulator across OS threads only keeps determinism if
//! the engine code has no ambient concurrency of its own:
//!
//! * [`concurrency_ban`] — `std::sync` blocking/ordering primitives
//!   (`Mutex`, `RwLock`, `Condvar`, `Barrier`, `mpsc`, atomics),
//!   `thread::spawn` / `std::thread`, and `static mut` are banned
//!   outside `simnet` (which owns the threading story). `Arc`/`Weak`
//!   and the init-once types remain fine; shared mutable state goes
//!   through `parking_lot` so the lock-order rule can see it.
//! * [`lock_order`] — every `X.lock()` under the lock roots feeds a
//!   lock-acquisition-order graph: an edge A→B is recorded when lock B
//!   is taken while a guard of A is provably alive (same-file, textual
//!   scopes). Cycles — including re-acquiring a lock already held —
//!   are deadlocks-in-waiting once the schedulers go parallel.
//! * [`panic_hits`] — `unwrap()`, `expect()` and index expressions on
//!   the proxy/host hot paths, diffed against a committed baseline by
//!   [`crate::baseline`]: the existing debt is pinned, new panic sites
//!   fail the gate.
//!
//! The lock-guard tracking is deliberately conservative and syntactic:
//! a `let g = x.lock()` guard lives to the end of its enclosing block
//! (or an explicit `drop(g)`), a temporary `x.lock().f()` guard to the
//! end of its statement; receivers are identified by their source text
//! within one file. Interprocedural holds are not modeled — the rule
//! under-approximates, it never guesses.

use std::collections::{BTreeMap, BTreeSet};

use crate::lex::TokKind;
use crate::{Config, FileScan, Finding, SourceSet};

/// Rule name for the concurrency-primitive ban.
pub const CONCURRENCY_BAN: &str = "concurrency-ban";
/// Rule name for lock-acquisition-order cycles.
pub const LOCK_ORDER: &str = "lock-order";
/// Rule name for the hot-path panic audit.
pub const PANIC_PATH: &str = "panic-path";

/// `std::sync` members that are banned outside `simnet`.
const BANNED_SYNC: &[&str] = &["Mutex", "RwLock", "Condvar", "Barrier", "mpsc", "atomic"];

/// Banned concurrency primitives outside the simulator.
pub fn concurrency_ban(set: &SourceSet, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in set.under(&cfg.concurrency_roots) {
        let toks = &file.lexed.toks;
        for i in 0..toks.len() {
            if !file.live(i) {
                continue;
            }
            let line = toks[i].line;
            let allowed = |f: &FileScan| f.allowed(CONCURRENCY_BAN, line);
            // `static mut`
            if toks[i].is_ident("static")
                && toks.get(i + 1).is_some_and(|t| t.is_ident("mut"))
                && !allowed(file)
            {
                out.push(Finding {
                    rule: CONCURRENCY_BAN,
                    path: file.path.clone(),
                    line,
                    msg: "`static mut` is unsynchronized shared state; it cannot survive \
                          the parallel-simnet refactor"
                        .into(),
                });
            }
            // `thread::spawn` / `std::thread`
            let spawn = toks[i].is_ident("thread")
                && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && toks.get(i + 2).is_some_and(|t| t.is_ident("spawn"));
            let std_thread = toks[i].is_ident("std")
                && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && toks.get(i + 2).is_some_and(|t| t.is_ident("thread"));
            if (spawn || std_thread) && !allowed(file) {
                out.push(Finding {
                    rule: CONCURRENCY_BAN,
                    path: file.path.clone(),
                    line,
                    msg: "thread management belongs to simnet; engine code must stay \
                          schedulable on any thread"
                        .into(),
                });
            }
            // `std::sync::X` (direct path or a `use …::{…}` group).
            if toks[i].is_ident("std")
                && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && toks.get(i + 2).is_some_and(|t| t.is_ident("sync"))
                && toks.get(i + 3).is_some_and(|t| t.is_punct("::"))
            {
                match toks.get(i + 4) {
                    Some(t)
                        if t.kind == TokKind::Ident
                            && BANNED_SYNC.contains(&t.text.as_str())
                            && !file.allowed(CONCURRENCY_BAN, t.line) =>
                    {
                        out.push(banned_sync_finding(file, t.line, &t.text));
                    }
                    Some(t) if t.is_punct("{") => {
                        if let Some(close) = crate::scan::delim_close(toks, i + 4, "{", "}") {
                            for t in &toks[i + 5..close] {
                                if t.kind == TokKind::Ident
                                    && BANNED_SYNC.contains(&t.text.as_str())
                                    && !file.allowed(CONCURRENCY_BAN, t.line)
                                {
                                    out.push(banned_sync_finding(file, t.line, &t.text));
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

fn banned_sync_finding(file: &FileScan, line: u32, name: &str) -> Finding {
    Finding {
        rule: CONCURRENCY_BAN,
        path: file.path.clone(),
        line,
        msg: format!(
            "std::sync::{name} is banned outside simnet — use parking_lot (visible to \
             the lock-order rule) or restructure; waive with `analyzer:allow({CONCURRENCY_BAN})`"
        ),
    }
}

/// One tracked lock acquisition within a file.
struct Acq {
    /// Lock identity: `file§receiver`.
    id: String,
    /// Display name (receiver text).
    name: String,
    /// Token index of the `.lock()` call.
    start: usize,
    /// Token index at which the guard provably dies.
    end: usize,
    /// Source line of the acquisition.
    line: u32,
}

/// Identifier path text walking backwards from token `i` (exclusive):
/// `self.st`, `STATE`, `self.0`. Empty when the receiver is not a plain
/// path (e.g. a call result), in which case the acquisition is skipped.
fn receiver_text(file: &FileScan, i: usize) -> (String, usize) {
    let toks = &file.lexed.toks;
    let mut start = i;
    while start > 0 {
        let t = &toks[start - 1];
        let is_path_part =
            matches!(t.kind, TokKind::Ident | TokKind::Num) || t.is_punct(".") || t.is_punct("::");
        if is_path_part {
            start -= 1;
        } else {
            break;
        }
    }
    let text: String = toks[start..i].iter().map(|t| t.text.as_str()).collect();
    (text, start)
}

/// Build the per-file acquisitions, then the global acquisition-order
/// graph, and report cycles.
pub fn lock_order(set: &SourceSet, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    // edge (from_id, to_id) -> (from_name, to_name, file, line)
    let mut edges: BTreeMap<(String, String), (String, String, String, u32)> = BTreeMap::new();
    for file in set.under(&cfg.lock_roots) {
        let toks = &file.lexed.toks;
        // Matching close brace for each open brace index.
        let mut close_of: BTreeMap<usize, usize> = BTreeMap::new();
        let mut stack = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.is_punct("{") {
                stack.push(i);
            } else if t.is_punct("}") {
                if let Some(open) = stack.pop() {
                    close_of.insert(open, i);
                }
            }
        }
        let mut acqs: Vec<Acq> = Vec::new();
        let mut block_stack: Vec<usize> = Vec::new();
        for i in 0..toks.len() {
            if toks[i].is_punct("{") {
                block_stack.push(i);
            } else if toks[i].is_punct("}") {
                block_stack.pop();
            }
            if !(toks[i].is_punct(".")
                && toks.get(i + 1).is_some_and(|t| t.is_ident("lock"))
                && toks.get(i + 2).is_some_and(|t| t.is_punct("(")))
            {
                continue;
            }
            if !file.live(i) {
                continue;
            }
            let (recv, recv_start) = receiver_text(file, i);
            if recv.is_empty() {
                continue;
            }
            let line = toks[i].line;
            // Named guard? `let [mut] g = recv.lock()…`
            let mut guard: Option<String> = None;
            if recv_start >= 2 && toks[recv_start - 1].is_punct("=") {
                let mut j = recv_start - 2;
                if toks[j].kind == TokKind::Ident && !toks[j].is_ident("mut") {
                    let name = toks[j].text.clone();
                    if j >= 1 && toks[j - 1].is_ident("mut") {
                        j -= 1;
                    }
                    if j >= 1 && toks[j - 1].is_ident("let") {
                        guard = Some(name);
                    }
                }
            }
            let end = match &guard {
                Some(name) => {
                    let block_end = block_stack
                        .last()
                        .and_then(|open| close_of.get(open).copied())
                        .unwrap_or(toks.len());
                    // An explicit `drop(name)` ends the guard early.
                    (i..block_end)
                        .find(|&j| {
                            toks[j].is_ident("drop")
                                && toks.get(j + 1).is_some_and(|t| t.is_punct("("))
                                && toks.get(j + 2).is_some_and(|t| t.is_ident(name))
                                && toks.get(j + 3).is_some_and(|t| t.is_punct(")"))
                        })
                        .unwrap_or(block_end)
                }
                None => {
                    // Temporary: guard dies at the end of the statement.
                    let mut depth = 0i32;
                    let mut end = toks.len();
                    for (j, t) in toks.iter().enumerate().skip(i) {
                        if t.is_punct("(") || t.is_punct("{") || t.is_punct("[") {
                            depth += 1;
                        } else if t.is_punct(")") || t.is_punct("}") || t.is_punct("]") {
                            depth -= 1;
                            if depth < 0 {
                                end = j;
                                break;
                            }
                        } else if t.is_punct(";") && depth == 0 {
                            end = j;
                            break;
                        }
                    }
                    end
                }
            };
            acqs.push(Acq {
                id: format!("{}\u{a7}{recv}", file.path),
                name: recv,
                start: i,
                end,
                line,
            });
        }
        // Overlaps: B acquired while A's guard is alive.
        for a in &acqs {
            for b in &acqs {
                if a.start < b.start && b.start <= a.end {
                    if file.allowed(LOCK_ORDER, b.line) {
                        continue;
                    }
                    if a.id == b.id {
                        out.push(Finding {
                            rule: LOCK_ORDER,
                            path: file.path.clone(),
                            line: b.line,
                            msg: format!(
                                "lock `{}` re-acquired while its own guard (taken line {}) \
                                 is still alive — self-deadlock",
                                b.name, a.line
                            ),
                        });
                    } else {
                        edges.entry((a.id.clone(), b.id.clone())).or_insert((
                            a.name.clone(),
                            b.name.clone(),
                            file.path.clone(),
                            b.line,
                        ));
                    }
                }
            }
        }
    }
    // Cycle detection over the edge set (iterative DFS, deterministic
    // order from the BTreeMap).
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
        adj.entry(to).or_default();
    }
    let mut state: BTreeMap<&str, u8> = adj.keys().map(|k| (*k, 0u8)).collect(); // 0 new, 1 open, 2 done
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for &root in adj.keys().collect::<Vec<_>>().iter() {
        if state[root] != 0 {
            continue;
        }
        // Path-tracking DFS.
        let mut path: Vec<&str> = Vec::new();
        let mut stack: Vec<(&str, usize)> = vec![(root, 0)];
        while let Some((node, child_idx)) = stack.pop() {
            if child_idx == 0 {
                state.insert(node, 1);
                path.push(node);
            }
            let children = &adj[node];
            if child_idx < children.len() {
                stack.push((node, child_idx + 1));
                let next = children[child_idx];
                match state[next] {
                    0 => stack.push((next, 0)),
                    1 => {
                        // Back edge: the cycle is path[pos..] + next.
                        if let Some(pos) = path.iter().position(|n| *n == next) {
                            let mut cycle: Vec<String> =
                                path[pos..].iter().map(|s| s.to_string()).collect();
                            let mut canon = cycle.clone();
                            canon.sort();
                            if reported.insert(canon) {
                                cycle.push(next.to_string());
                                let (_, _, file, line) =
                                    &edges[&(path.last().unwrap().to_string(), next.to_string())];
                                let pretty: Vec<String> =
                                    cycle.iter().map(|id| id.replace('\u{a7}', " § ")).collect();
                                out.push(Finding {
                                    rule: LOCK_ORDER,
                                    path: file.clone(),
                                    line: *line,
                                    msg: format!(
                                        "lock-acquisition-order cycle: {} — threads taking \
                                         these locks in different orders will deadlock under \
                                         a parallel scheduler",
                                        pretty.join(" -> ")
                                    ),
                                });
                            }
                        }
                    }
                    _ => {}
                }
            } else {
                state.insert(node, 2);
                path.pop();
            }
        }
    }
    out
}

/// One raw panic-site hit on a hot-path file (pre-baseline).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PanicHit {
    /// Workspace-relative file.
    pub path: String,
    /// `unwrap`, `expect`, or `index`.
    pub kind: &'static str,
    /// 1-based line.
    pub line: u32,
    /// Trimmed source text of the line (the baseline key, so entries
    /// survive line-number drift).
    pub snippet: String,
}

/// Keywords that can directly precede `[` without forming an index
/// expression (slice patterns, array types/literals after `=`/`(` are
/// excluded by the previous-token kinds already).
const NONINDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "if", "else", "match", "return", "break", "continue", "move", "as",
    "loop", "while", "for", "where", "impl", "fn", "pub", "use", "mod", "const", "static", "type",
    "struct", "enum", "trait", "unsafe", "dyn", "box", "await",
];

/// Collect the raw panic-site hits on the configured hot-path files.
/// Baseline subtraction happens in [`crate::baseline::apply`].
pub fn panic_hits(set: &SourceSet, cfg: &Config) -> Vec<PanicHit> {
    let mut out = Vec::new();
    for path in &cfg.panic_files {
        let Some(file) = set.get(path) else { continue };
        let toks = &file.lexed.toks;
        for i in 0..toks.len() {
            if !file.live(i) {
                continue;
            }
            let line = toks[i].line;
            if file.allowed(PANIC_PATH, line) {
                continue;
            }
            // `.unwrap(` / `.expect(`
            if toks[i].is_punct(".")
                && toks.get(i + 2).is_some_and(|t| t.is_punct("("))
                && toks
                    .get(i + 1)
                    .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
            {
                let kind = if toks[i + 1].is_ident("unwrap") {
                    "unwrap"
                } else {
                    "expect"
                };
                out.push(PanicHit {
                    path: file.path.clone(),
                    kind,
                    line: toks[i + 1].line,
                    snippet: file.line_text(toks[i + 1].line).to_string(),
                });
            }
            // Index expressions: `[` directly after an expression-ending
            // token (identifier that is not a keyword, `)`, or `]`).
            if toks[i].is_punct("[") && i > 0 {
                let prev = &toks[i - 1];
                let indexes = match prev.kind {
                    TokKind::Ident => !NONINDEX_KEYWORDS.contains(&prev.text.as_str()),
                    TokKind::Punct => prev.is_punct(")") || prev.is_punct("]"),
                    _ => false,
                };
                if indexes {
                    out.push(PanicHit {
                        path: file.path.clone(),
                        kind: "index",
                        line,
                        snippet: file.line_text(line).to_string(),
                    });
                }
            }
        }
    }
    out
}
