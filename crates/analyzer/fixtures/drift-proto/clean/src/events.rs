// Fixture: two-variant protocol event enum, fully handled.
pub enum Ev {
    Started { at: u64 },
    Finished,
}
