// Fixture handler: every variant as a path and as a parse string.
fn handle(ev: &Ev) -> &'static str {
    match ev {
        Ev::Started { .. } => "Started",
        Ev::Finished => "Finished",
    }
}
