// Fixture handler: Finished is missing (seeded drift).
fn handle(ev: &Ev) -> &'static str {
    match ev {
        Ev::Started { .. } => "Started",
        _ => "?",
    }
}
