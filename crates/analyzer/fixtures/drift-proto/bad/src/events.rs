// Fixture: the Finished variant is not handled downstream.
pub enum Ev {
    Started { at: u64 },
    Finished,
}
