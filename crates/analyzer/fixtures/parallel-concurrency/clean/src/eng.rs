// Fixture: parking_lot locking only — no banned primitives.
use parking_lot::Mutex;
use std::sync::Arc;
struct Eng {
    q: Arc<Mutex<Vec<u8>>>,
}
