// Fixture: std::sync::Mutex outside simnet (seeded violation).
use std::sync::{Arc, Mutex};
struct Eng {
    q: Arc<Mutex<Vec<u8>>>,
}
