// Fixture producer: one key as a field ident, one as a JSON string.
struct Inner {
    engine_starts: u64,
}
fn to_json(v: u64) -> String {
    format!("\"{}\": {v}", "engine_stops")
}
