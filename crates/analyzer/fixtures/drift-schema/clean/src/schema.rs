// Fixture schema: two declared counter keys.
pub const KEYS: &[&str] = &["engine_starts", "engine_stops"];
