// Fixture schema: engine_stops has no producer (seeded drift).
pub const KEYS: &[&str] = &["engine_starts", "engine_stops"];
