// Fixture producer: only engine_starts is produced.
struct Inner {
    engine_starts: u64,
}
