// Fixture hot path: an unbaselined unwrap (seeded violation).
fn pop(q: &mut Vec<u8>) -> u8 {
    q.pop().unwrap()
}
