// Fixture hot path: failures handled, no panic sites.
fn pop(q: &mut Vec<u8>) -> Option<u8> {
    q.pop()
}
