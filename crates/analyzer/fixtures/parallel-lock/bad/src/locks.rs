// Fixture: opposite acquisition orders — a classic deadlock cycle.
fn forward(s: &S) {
    let a = s.a.lock();
    let b = s.b.lock();
    drop(b);
    drop(a);
}
fn backward(s: &S) {
    let b = s.b.lock();
    let a = s.a.lock();
    drop(a);
    drop(b);
}
