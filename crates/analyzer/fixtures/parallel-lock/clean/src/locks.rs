// Fixture: two locks, always acquired a-then-b — no cycle.
fn first(s: &S) {
    let a = s.a.lock();
    let b = s.b.lock();
    drop(b);
    drop(a);
}
fn second(s: &S) {
    let a = s.a.lock();
    let b = s.b.lock();
    drop(b);
    drop(a);
}
