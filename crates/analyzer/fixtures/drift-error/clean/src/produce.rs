// Fixture: non-test construction site.
fn boom() -> Fail {
    Fail::Oops { code: 7 }
}
