// Fixture error enum, constructed and asserted elsewhere.
pub enum Fail {
    Oops { code: u32 },
}
