// Fixture harness: asserts the typed failure.
fn assert_oops(f: &Fail) {
    assert!(matches!(f, Fail::Oops { .. }));
}
