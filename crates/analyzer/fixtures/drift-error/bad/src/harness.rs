// Fixture harness: does not mention the error at all.
fn unrelated() {}
