// Fixture: constructed but never asserted.
fn boom() -> Fail {
    Fail::Oops { code: 7 }
}
