// Fixture error enum: never asserted by any test (seeded drift).
pub enum Fail {
    Oops { code: u32 },
}
