//! Mutation self-tests: the analyzer runs over the REAL workspace
//! source, which must be clean; then each seeded defect — the exact
//! drift classes the gate exists to catch — must produce a finding
//! that names the defect with a file and line. If someone weakens a
//! rule until it no longer catches its mutation, these tests fail.

use std::path::Path;

use analyzer::{analyze, Analysis, Config, Finding, Tree};

fn repo_root() -> &'static Path {
    // crates/analyzer -> crates -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
}

fn repo_tree() -> Tree {
    let tree = Tree::load(repo_root(), &["crates"]).expect("workspace sources load");
    assert!(tree.len() > 50, "unexpectedly small workspace");
    tree
}

fn panic_baseline() -> String {
    std::fs::read_to_string(repo_root().join("crates/analyzer/panic-baseline.tsv"))
        .expect("committed panic baseline")
}

fn run(tree: &Tree) -> Analysis {
    analyze(tree, &Config::repo(), &panic_baseline())
}

/// The findings of `tree` for `rule`, asserting each carries a usable
/// anchor (non-empty path, 1-based line).
fn findings_for(tree: &Tree, rule: &str) -> Vec<Finding> {
    let out: Vec<Finding> = run(tree)
        .findings
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect();
    for f in &out {
        assert!(!f.path.is_empty() && f.line >= 1, "unanchored finding {f}");
    }
    out
}

#[test]
fn real_workspace_is_clean() {
    let a = run(&repo_tree());
    assert!(
        a.clean(),
        "workspace must pass its own gate:\n{}",
        a.findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(a.stale_baseline.is_empty(), "stale: {:?}", a.stale_baseline);
}

#[test]
fn deleted_conformance_arm_is_caught() {
    let mut tree = repo_tree();
    tree.edit("crates/checker/src/conformance.rs", |s| {
        s.replace("ProtoEvent::StaleCqe", "ProtoEvent::StaleCqeRenamed")
    });
    let hits = findings_for(&tree, "proto-drift");
    assert!(
        hits.iter().any(|f| {
            f.path == "crates/core/src/events.rs"
                && f.msg.contains("StaleCqe")
                && f.msg.contains("conformance.rs")
        }),
        "renamed-away handler arm must be caught: {hits:?}"
    );
}

#[test]
fn orphaned_schema_counter_is_caught() {
    let mut tree = repo_tree();
    tree.edit("crates/obs/src/schema.rs", |s| {
        s.replace(
            "const TOTAL_KEYS: &[&str] = &[",
            "const TOTAL_KEYS: &[&str] = &[\n    \"orphan_counter\",",
        )
    });
    let hits = findings_for(&tree, "schema-drift");
    assert!(
        hits.iter()
            .any(|f| { f.path == "crates/obs/src/schema.rs" && f.msg.contains("orphan_counter") }),
        "producer-less schema counter must be caught: {hits:?}"
    );
}

#[test]
fn orphaned_tenant_counter_is_caught() {
    let mut tree = repo_tree();
    tree.edit("crates/obs/src/schema.rs", |s| {
        s.replace(
            "pub const TENANT_KEYS: &[&str] = &[",
            "pub const TENANT_KEYS: &[&str] = &[\n    \"orphan_tenant_counter\",",
        )
    });
    let hits = findings_for(&tree, "schema-drift");
    assert!(
        hits.iter().any(|f| {
            f.path == "crates/obs/src/schema.rs"
                && f.msg.contains("orphan_tenant_counter")
                && f.msg.contains("TENANT_KEYS")
        }),
        "producer-less per-tenant counter must be caught: {hits:?}"
    );
}

#[test]
fn orphaned_health_counter_is_caught() {
    let mut tree = repo_tree();
    tree.edit("crates/obs/src/schema.rs", |s| {
        s.replace(
            "pub const HEALTH_KEYS: &[&str] = &[",
            "pub const HEALTH_KEYS: &[&str] = &[\n    \"orphan_health_counter\",",
        )
    });
    let hits = findings_for(&tree, "schema-drift");
    assert!(
        hits.iter().any(|f| {
            f.path == "crates/obs/src/schema.rs"
                && f.msg.contains("orphan_health_counter")
                && f.msg.contains("HEALTH_KEYS")
        }),
        "producer-less health counter must be caught: {hits:?}"
    );
}

#[test]
fn deleted_breaker_event_arm_is_caught() {
    let mut tree = repo_tree();
    tree.edit("crates/core/src/metrics.rs", |s| {
        s.replace(
            "ProtoEvent::BreakerTripped",
            "ProtoEvent::BreakerTrippedRenamed",
        )
    });
    let hits = findings_for(&tree, "proto-drift");
    assert!(
        hits.iter().any(|f| {
            f.path == "crates/core/src/events.rs"
                && f.msg.contains("BreakerTripped")
                && f.msg.contains("metrics.rs")
        }),
        "renamed-away BreakerTripped aggregation arm must be caught: {hits:?}"
    );
}

#[test]
fn unconstructed_budget_shed_error_is_caught() {
    let mut tree = repo_tree();
    tree.edit("crates/core/src/host.rs", |s| {
        s.replace(
            "OffloadError::RetryBudgetExhausted",
            "OffloadError::DataIntegrity",
        )
    });
    let hits = findings_for(&tree, "error-drift");
    assert!(
        hits.iter()
            .any(|f| f.msg.contains("RetryBudgetExhausted") && f.msg.contains("constructed")),
        "budget sheds that stop surfacing typed errors must be caught: {hits:?}"
    );
}

#[test]
fn deleted_tenant_event_arm_is_caught() {
    let mut tree = repo_tree();
    tree.edit("crates/core/src/metrics.rs", |s| {
        s.replace("ProtoEvent::QuotaShed", "ProtoEvent::QuotaShedRenamed")
    });
    let hits = findings_for(&tree, "proto-drift");
    assert!(
        hits.iter().any(|f| {
            f.path == "crates/core/src/events.rs"
                && f.msg.contains("QuotaShed")
                && f.msg.contains("metrics.rs")
        }),
        "renamed-away QuotaShed aggregation arm must be caught: {hits:?}"
    );
}

#[test]
fn unconstructed_quota_exceeded_is_caught() {
    let mut tree = repo_tree();
    tree.edit("crates/core/src/host.rs", |s| {
        s.replace("OffloadError::QuotaExceeded", "OffloadError::DataIntegrity")
    });
    let hits = findings_for(&tree, "error-drift");
    assert!(
        hits.iter()
            .any(|f| f.msg.contains("QuotaExceeded") && f.msg.contains("constructed")),
        "shedding that stops constructing QuotaExceeded must be caught: {hits:?}"
    );
}

#[test]
fn orphaned_profile_scope_is_caught() {
    let mut tree = repo_tree();
    tree.edit("crates/obs/src/schema.rs", |s| {
        s.replace(
            "pub const PROFILE_SCOPES: &[&str] = &[",
            "pub const PROFILE_SCOPES: &[&str] = &[\n    \"orphan_scope\",",
        )
    });
    let hits = findings_for(&tree, "schema-drift");
    assert!(
        hits.iter().any(|f| {
            f.path == "crates/obs/src/schema.rs"
                && f.msg.contains("orphan_scope")
                && f.msg.contains("PROFILE_SCOPES")
        }),
        "declared-but-never-entered profile scope must be caught: {hits:?}"
    );
}

#[test]
fn unconstructed_error_variant_is_caught() {
    let mut tree = repo_tree();
    tree.edit("crates/core/src/reliable.rs", |s| {
        s.replace(
            "pub enum OffloadError {",
            "pub enum OffloadError {\n    /// Seeded by the mutation test.\n    PhantomFailure,",
        )
    });
    let hits = findings_for(&tree, "error-drift");
    // Neither constructed nor asserted: both halves of the rule fire.
    assert!(
        hits.iter()
            .any(|f| f.msg.contains("PhantomFailure") && f.msg.contains("constructed")),
        "unconstructed variant must be caught: {hits:?}"
    );
    assert!(
        hits.iter()
            .any(|f| f.msg.contains("PhantomFailure") && f.msg.contains("asserted")),
        "unasserted variant must be caught: {hits:?}"
    );
}

#[test]
fn seeded_lock_order_cycle_is_caught() {
    let mut tree = repo_tree();
    tree.insert(
        "crates/core/src/lockcycle_fixture.rs",
        "pub struct Pair {\n\
         \x20   a: parking_lot::Mutex<u64>,\n\
         \x20   b: parking_lot::Mutex<u64>,\n\
         }\n\
         pub fn fwd(p: &Pair) -> u64 {\n\
         \x20   let ga = p.a.lock();\n\
         \x20   let gb = p.b.lock();\n\
         \x20   *ga + *gb\n\
         }\n\
         pub fn rev(p: &Pair) -> u64 {\n\
         \x20   let gb = p.b.lock();\n\
         \x20   let ga = p.a.lock();\n\
         \x20   *ga + *gb\n\
         }\n",
    );
    let hits = findings_for(&tree, "lock-order");
    assert!(
        hits.iter().any(|f| {
            f.path == "crates/core/src/lockcycle_fixture.rs"
                && f.msg.contains("lock-acquisition-order cycle")
        }),
        "opposite acquisition orders must be caught: {hits:?}"
    );
}

#[test]
fn new_hot_path_unwrap_is_caught() {
    let mut tree = repo_tree();
    tree.edit("crates/core/src/host.rs", |s| {
        format!(
            "{s}\npub fn seeded_panic_site() -> String {{ std::env::args().next().unwrap() }}\n"
        )
    });
    let hits = findings_for(&tree, "panic-path");
    assert!(
        hits.iter()
            .any(|f| { f.path == "crates/core/src/host.rs" && f.msg.contains("unwrap") }),
        "unbaselined hot-path unwrap must be caught: {hits:?}"
    );
}

#[test]
fn banned_primitive_is_caught() {
    let mut tree = repo_tree();
    tree.insert(
        "crates/core/src/sync_fixture.rs",
        "use std::sync::Mutex;\npub static SEEDED: Mutex<u64> = Mutex::new(0);\n",
    );
    let hits = findings_for(&tree, "concurrency-ban");
    assert!(
        hits.iter().any(|f| {
            f.path == "crates/core/src/sync_fixture.rs" && f.msg.contains("std::sync::Mutex")
        }),
        "banned std::sync primitive must be caught: {hits:?}"
    );
}
