//! Property tests for the tokenizer: on comment- and string-free input
//! the lexer must agree exactly with a naive word-boundary scanner
//! (identifier spelling *and* line numbers), and wrapping the same
//! input in a comment or a string literal must hide every token — the
//! two behaviors that distinguish it from the old line-regex scanner.

use analyzer::lex::{lex, TokKind};
use proptest::prelude::*;

const IDENT_POOL: &[&str] = &["alpha", "beta_2", "_tmp", "HashMap", "spawn", "x", "lock"];
const PUNCT_POOL: &[&str] = &[
    "+", "-", "*", "=", ";", ",", "(", ")", "{", "}", ":", ".", "<", ">", "&&", "->",
];

/// Random token-soup spec: `(kind, seed)` pairs rendered by [`render`].
/// Quotes, slashes, and backslashes never appear, so the rendered
/// source is comment-free and string-free by construction.
fn soup_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0..3u64, 0..97u64), 0..40)
}

/// Render a soup as source text. Tokens are separated by a space or —
/// every seventh seed — a newline, so multi-line inputs are covered.
fn render(soup: &[(u64, u64)], multiline: bool) -> String {
    let mut s = String::new();
    for &(kind, seed) in soup {
        if !s.is_empty() {
            s.push(if multiline && seed % 7 == 0 {
                '\n'
            } else {
                ' '
            });
        }
        match kind {
            0 => s.push_str(IDENT_POOL[seed as usize % IDENT_POOL.len()]),
            1 => s.push_str(&(seed * 31 + 7).to_string()),
            _ => s.push_str(PUNCT_POOL[seed as usize % PUNCT_POOL.len()]),
        }
    }
    s
}

/// The reference scanner: maximal `[A-Za-z0-9_]` words, keeping those
/// that do not start with a digit, tagged with their 1-based line.
fn naive_idents(src: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut word = String::new();
    let mut line = 1u32;
    for c in src.chars().chain(std::iter::once('\n')) {
        if c.is_ascii_alphanumeric() || c == '_' {
            word.push(c);
        } else {
            if !word.is_empty() && !word.starts_with(|w: char| w.is_ascii_digit()) {
                out.push((std::mem::take(&mut word), line));
            }
            word.clear();
            if c == '\n' {
                line += 1;
            }
        }
    }
    out
}

proptest! {
    #[test]
    fn lexer_agrees_with_naive_scanner(soup in soup_strategy()) {
        let src = render(&soup, true);
        let lexed = lex(&src);
        let got: Vec<(String, u32)> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text.clone(), t.line))
            .collect();
        prop_assert_eq!(got, naive_idents(&src));
        // Nothing in the soup can open a literal.
        prop_assert!(lexed
            .toks
            .iter()
            .all(|t| t.kind != TokKind::Str && t.kind != TokKind::Char));
    }

    #[test]
    fn line_comment_hides_all_tokens(soup in soup_strategy()) {
        let src = render(&soup, false); // single line: keep the comment whole
        let lexed = lex(&format!("// {src}"));
        prop_assert!(lexed.toks.is_empty());
    }

    #[test]
    fn block_comment_hides_all_tokens(soup in soup_strategy()) {
        // The soup cannot contain `*/`, so the comment stays open to the end.
        let src = render(&soup, true);
        let lexed = lex(&format!("/* {src} */ done"));
        let idents: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(idents, vec!["done"]);
    }

    #[test]
    fn string_literal_hides_all_tokens(soup in soup_strategy()) {
        // No quotes or backslashes in the soup, so it embeds verbatim.
        let src = render(&soup, true);
        let lexed = lex(&format!("let s = \"{src}\";"));
        let idents: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(idents, vec!["let", "s"]);
    }
}
