//! Per-rule fixture trees: each rule is run against a minimal on-disk
//! tree in `fixtures/<rule>/{clean,bad}/` — the clean variant must pass,
//! the bad variant (one seeded violation) must fail with a finding that
//! names the seeded defect. Loading goes through [`Tree::load`] exactly
//! like the real gate, so path normalization is covered too.

use std::path::Path;

use analyzer::rules::{drift, lint, parallel};
use analyzer::{baseline, Config, SourceSet, Tree};

/// Load `fixtures/<name>/<variant>` as a tree rooted at `src/`.
fn tree(name: &str, variant: &str) -> Tree {
    let base = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
        .join(variant);
    let t = Tree::load(&base, &["src"]).expect("fixture tree loads");
    assert!(!t.is_empty(), "fixture {name}/{variant} has files");
    t
}

/// A config wired for the fixture layout. Fields a given rule does not
/// read are irrelevant to that rule's test.
fn cfg() -> Config {
    let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    Config {
        events_file: "src/events.rs".into(),
        proto_enum: "Ev".into(),
        proto_handlers: s(&["src/handle.rs"]),
        proto_str_handlers: s(&["src/handle.rs"]),
        schema_file: "src/schema.rs".into(),
        schema_consts: s(&["KEYS"]),
        counter_roots: s(&["src"]),
        profile_consts: s(&[]),
        profile_roots: s(&["src"]),
        errors_file: "src/errors.rs".into(),
        error_enum: "Fail".into(),
        error_construct_roots: s(&["src"]),
        error_harness_files: s(&["src/harness.rs"]),
        concurrency_roots: s(&["src"]),
        lock_roots: s(&["src"]),
        panic_files: s(&["src/hot.rs"]),
    }
}

#[test]
fn proto_drift_fixtures() {
    let clean = SourceSet::build(&tree("drift-proto", "clean"));
    assert!(drift::proto_drift(&clean, &cfg()).is_empty());
    let bad = SourceSet::build(&tree("drift-proto", "bad"));
    let findings = drift::proto_drift(&bad, &cfg());
    assert!(
        findings.iter().any(|f| f.msg.contains("Ev::Finished")),
        "seeded missing handler must be named: {findings:?}"
    );
    // The finding anchors at the variant's declaration, not the handler.
    assert!(findings.iter().all(|f| f.path == "src/events.rs"));
}

#[test]
fn schema_drift_fixtures() {
    let clean = SourceSet::build(&tree("drift-schema", "clean"));
    assert!(drift::schema_drift(&clean, &cfg()).is_empty());
    let bad = SourceSet::build(&tree("drift-schema", "bad"));
    let findings = drift::schema_drift(&bad, &cfg());
    assert_eq!(findings.len(), 1, "exactly the seeded orphan: {findings:?}");
    assert!(findings[0].msg.contains("engine_stops"));
}

#[test]
fn error_drift_fixtures() {
    let clean = SourceSet::build(&tree("drift-error", "clean"));
    assert!(drift::error_drift(&clean, &cfg()).is_empty());
    let bad = SourceSet::build(&tree("drift-error", "bad"));
    let findings = drift::error_drift(&bad, &cfg());
    assert_eq!(findings.len(), 1, "only the assertion half: {findings:?}");
    assert!(findings[0].msg.contains("asserted by no test"));
}

#[test]
fn concurrency_ban_fixtures() {
    let clean = SourceSet::build(&tree("parallel-concurrency", "clean"));
    assert!(parallel::concurrency_ban(&clean, &cfg()).is_empty());
    let bad = SourceSet::build(&tree("parallel-concurrency", "bad"));
    let findings = parallel::concurrency_ban(&bad, &cfg());
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].msg.contains("std::sync::Mutex"));
}

#[test]
fn lock_order_fixtures() {
    let clean = SourceSet::build(&tree("parallel-lock", "clean"));
    assert!(parallel::lock_order(&clean, &cfg()).is_empty());
    let bad = SourceSet::build(&tree("parallel-lock", "bad"));
    let findings = parallel::lock_order(&bad, &cfg());
    assert!(
        findings
            .iter()
            .any(|f| f.msg.contains("lock-acquisition-order cycle")),
        "opposite acquisition orders must report a cycle: {findings:?}"
    );
}

#[test]
fn panic_path_fixtures() {
    let clean = SourceSet::build(&tree("panic", "clean"));
    assert!(parallel::panic_hits(&clean, &cfg()).is_empty());
    let bad = SourceSet::build(&tree("panic", "bad"));
    let hits = parallel::panic_hits(&bad, &cfg());
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].kind, "unwrap");
    // Against an empty baseline the hit is a finding; against its own
    // rendering it is absorbed.
    assert_eq!(baseline::apply(&hits, "").findings.len(), 1);
    assert!(baseline::apply(&hits, &baseline::render(&hits))
        .findings
        .is_empty());
}

#[test]
fn lint_rules_fire_on_fixture_paths() {
    // The lint wall carries its own roots (crates/...); a tree keyed
    // with a patrolled path exercises them without touching disk state.
    let mut t = Tree::new();
    t.insert(
        "crates/core/src/bad.rs",
        "use std::collections::HashMap;\nfn t() { let _ = std::time::Instant::now(); }\n",
    );
    let set = SourceSet::build(&t);
    let rules: Vec<&str> = lint::run(&set).into_iter().map(|f| f.rule).collect();
    assert!(rules.contains(&"hash-iteration-order"));
    assert!(rules.contains(&"wall-clock"));
}
