//! A minimal JSON value, parser and writer.
//!
//! The build environment is offline, so the workspace hand-rolls the
//! little JSON it needs instead of pulling `serde`: enough to emit
//! Chrome-trace files, parse metrics reports back, and validate them
//! against the `bluefield-offload/metrics/v1` schema. Objects preserve
//! insertion order (a `Vec` of pairs), so rendering is deterministic.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64; integers round-trip to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Is this an object?
    pub fn is_obj(&self) -> bool {
        matches!(self, Json::Obj(_))
    }

    /// Render compactly (no whitespace). Deterministic: object members
    /// keep insertion order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(v) => {
                out.push('[');
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    e.write(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Returns a human-readable error with a byte
/// offset on malformed input.
pub fn parse(src: &str) -> Result<Json, String> {
    let b = src.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn lit(&mut self, s: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.i)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let s = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let n = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(n).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (possibly multi-byte).
                    let rest = &self.b[self.i..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).map_err(|_| "bad number")?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {s:?} at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut m = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let v = self.value()?;
            m.push((k, v));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let src = r#"{"a":[1,2.5,-3],"b":{"c":"x\"y","d":true},"e":null}"#;
        let v = parse(src).unwrap();
        assert_eq!(parse(&v.render()).unwrap(), v);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("01x").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(0.5).render(), "0.5");
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = parse(" { \"k\" : \"caf\u{e9}\" } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("café"));
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
    }
}
