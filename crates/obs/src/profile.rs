//! Renderer for `bluefield-offload/profile/v1` self-profiling reports.
//!
//! Joins the three self-profiling sources into one versioned JSON
//! document: the hot-path span tree from [`offload::profile`], the
//! per-shard engine accounting from [`simnet::EngineProfile`], and the
//! telemetry snapshot ring from [`crate::TelemetryBus`]. Scope
//! histograms reuse [`crate::Histogram`]'s log2 machinery for the
//! p50/p99 estimates.
//!
//! Wall-clock quantities (every `*_ns` field and the engine section)
//! are emitted only when `wall` is set; with it off — the
//! `BENCH_NO_WALL=1` regime — the document is a pure function of the
//! deterministic event stream and scope-entry counts, so two runs at
//! different `SIMNET_THREADS` render byte-identical reports (the
//! engine section is per-shard and shard topology follows the thread
//! count, which is why it sits behind the gate too).

use offload::ProfileReport;
use simnet::EngineProfile;

use crate::json::Json;
use crate::lifecycle::Histogram;
use crate::telemetry::TelemetrySnapshot;
use crate::PROFILE_SCHEMA_ID;

/// Everything that goes into one `profile/v1` document.
pub struct ProfileDoc<'a> {
    /// Producing benchmark or test name.
    pub bench: &'a str,
    /// Hot-path span tree (scope paths, counts, histograms).
    pub report: &'a ProfileReport,
    /// Sharded-engine accounting, when the run used the sharded engine
    /// with profiling armed.
    pub engine: Option<&'a EngineProfile>,
    /// Telemetry snapshot ring.
    pub snapshots: &'a [TelemetrySnapshot],
    /// Include wall-clock durations (self/total/max/p50/p99 and the
    /// engine section). Pass `bench`'s wall gate here.
    pub wall: bool,
}

fn num(v: u64) -> Json {
    Json::Num(v as f64)
}

/// Render the document as deterministic JSON (insertion-order objects,
/// compact form).
pub fn render_profile(doc: &ProfileDoc) -> String {
    let mut top: Vec<(String, Json)> = vec![
        ("schema".into(), Json::Str(PROFILE_SCHEMA_ID.into())),
        ("bench".into(), Json::Str(doc.bench.into())),
    ];
    let mut scopes = Vec::new();
    for (path, agg) in &doc.report.scopes {
        let mut s: Vec<(String, Json)> = vec![
            ("path".into(), Json::Str(path.clone())),
            ("count".into(), num(agg.count)),
        ];
        if doc.wall {
            let h = Histogram::from_log2_counts(&agg.buckets, agg.max_ns);
            s.push(("self_ns".into(), num(agg.self_ns)));
            s.push(("total_ns".into(), num(agg.total_ns)));
            s.push(("max_ns".into(), num(agg.max_ns)));
            s.push(("p50_ns".into(), num(h.p50())));
            s.push(("p99_ns".into(), num(h.p99())));
        }
        scopes.push(Json::Obj(s));
    }
    top.push(("scopes".into(), Json::Arr(scopes)));
    if doc.wall {
        if let Some(ep) = doc.engine {
            let shards = ep
                .shards
                .iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("shard".into(), num(s.shard as u64)),
                        ("windows".into(), num(s.windows)),
                        ("events".into(), num(s.events)),
                        ("exec_ns".into(), num(s.exec_ns)),
                        ("barrier_wait_ns".into(), num(s.barrier_wait_ns)),
                    ])
                })
                .collect();
            top.push(("engine".into(), Json::Arr(shards)));
            let mut totals: Vec<(String, Json)> = ep
                .buckets()
                .into_iter()
                .map(|(k, v)| (k.to_string(), num(v)))
                .collect();
            totals.push(("windows".into(), num(ep.windows)));
            top.push(("engine_totals".into(), Json::Obj(totals)));
        }
    }
    let snaps = doc
        .snapshots
        .iter()
        .map(|s| {
            let deltas = s.deltas.iter().map(|(k, v)| (k.clone(), num(*v))).collect();
            Json::Obj(vec![
                ("seq".into(), num(s.seq)),
                ("upto_ps".into(), num(s.upto_ps)),
                ("deltas".into(), Json::Obj(deltas)),
            ])
        })
        .collect();
    top.push(("snapshots".into(), Json::Arr(snaps)));
    Json::Obj(top).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_profile;
    use offload::ScopeAgg;

    fn sample_report() -> ProfileReport {
        let mut r = ProfileReport::default();
        let mut agg = ScopeAgg::new();
        agg.count = 3;
        agg.self_ns = 300;
        agg.total_ns = 450;
        agg.max_ns = 200;
        agg.buckets[8] = 3;
        r.scopes.insert("cq_poll;crc_verify".into(), agg.clone());
        agg.count = 7;
        r.scopes.insert("ctrl_decode".into(), agg);
        r
    }

    fn sample_snaps() -> Vec<TelemetrySnapshot> {
        vec![
            TelemetrySnapshot {
                seq: 1,
                upto_ps: 1_000,
                deltas: vec![("events".into(), 4), ("rts".into(), 2)],
            },
            TelemetrySnapshot {
                seq: 2,
                upto_ps: 2_000,
                deltas: vec![],
            },
        ]
    }

    #[test]
    fn rendered_doc_validates() {
        let snaps = sample_snaps();
        let report = sample_report();
        let engine = EngineProfile {
            shards: vec![simnet::ShardStats {
                shard: 0,
                windows: 5,
                events: 40,
                exec_ns: 1000,
                barrier_wait_ns: 10,
            }],
            emit_merge_ns: 7,
            coordinator_ns: 9,
            windows: 5,
            threads: 1,
        };
        for wall in [false, true] {
            let doc = render_profile(&ProfileDoc {
                bench: "unit",
                report: &report,
                engine: Some(&engine),
                snapshots: &snaps,
                wall,
            });
            let v = validate_profile(&doc).unwrap();
            assert_eq!(
                v.get("engine").is_some(),
                wall,
                "engine section is wall-gated"
            );
            let scope = v.get("scopes").unwrap().as_arr().unwrap()[0].clone();
            assert_eq!(scope.get("self_ns").is_some(), wall);
        }
    }

    #[test]
    fn no_wall_doc_is_independent_of_durations() {
        let snaps = sample_snaps();
        let mut a = sample_report();
        let b = sample_report();
        // Perturb every duration in one copy; counts stay put.
        for agg in a.scopes.values_mut() {
            agg.self_ns *= 17;
            agg.total_ns *= 17;
            agg.max_ns += 5;
        }
        let render = |r: &ProfileReport| {
            render_profile(&ProfileDoc {
                bench: "unit",
                report: r,
                engine: None,
                snapshots: &snaps,
                wall: false,
            })
        };
        assert_eq!(render(&a), render(&b));
    }

    #[test]
    fn validator_rejects_undeclared_scope() {
        let mut r = ProfileReport::default();
        r.scopes.insert("made_up_scope".into(), ScopeAgg::new());
        let doc = render_profile(&ProfileDoc {
            bench: "unit",
            report: &r,
            engine: None,
            snapshots: &[],
            wall: false,
        });
        let err = validate_profile(&doc).unwrap_err();
        assert!(err.contains("made_up_scope"), "{err}");
    }
}
