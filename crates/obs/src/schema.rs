//! Validator for the `bluefield-offload/metrics/v1` JSON schema.
//!
//! The schema is the machine-readable contract between
//! [`offload::MetricsReport::to_json`] producers (every `fig*` bench
//! binary) and downstream consumers (`bench_results/` baselines, CI).
//! See DESIGN.md §11 for the field-by-field description.

use crate::json::{parse, Json};

/// Schema identifier every conforming document carries.
pub const SCHEMA_ID: &str = "bluefield-offload/metrics/v1";

const TOTAL_KEYS: &[&str] = &[
    "events",
    "rts",
    "rtr",
    "pairs_matched",
    "fin_send",
    "fin_recv",
    "fin_group",
    "writes_posted",
    "writes_completed",
    "bytes_cross_gvmi",
    "bytes_staging_hop1",
    "bytes_staging_hop2",
    "cross_regs",
    "ctrl_dropped_host",
    "ctrl_dropped_proxy",
    "host_wakeups",
    "host_interventions",
    "window_interventions",
    "warm_window_interventions",
    "barrier_stalls",
    "send_q_hwm",
    "recv_q_hwm",
    "recv_meta_total",
    "recv_meta_max_per_pair",
    "group_packets_total",
    "group_packets_max_per_req",
    "group_execs",
    "ctrl_retransmits",
    "ctrl_dups_dropped",
    "ctrl_abandoned",
    "fallback_staging",
    "proxy_restarts",
    "reqs_replayed",
    "req_failures",
    "stale_cqes",
    "payload_corrupt",
    "payload_recovered",
    "data_integrity_failures",
    "queue_full_nacks",
    "credit_deferrals",
    "quota_sheds",
    "drr_grants",
    "staging_reclaimed",
    "reqs_cancelled",
    "reqs_reaped",
    "group_failures",
    "journal_truncations",
    "journal_hwm",
    "finalized_ranks",
];

const CACHE_KEYS: &[&str] = &["hits", "misses", "stale", "evictions"];
const CACHES: &[&str] = &["host_gvmi", "host_ib", "dpu_cross"];

/// Keys of each row in the optional `tenants` array — present only in
/// documents from multi-tenant runs (single-tenant documents omit the
/// section entirely, keeping them byte-identical to pre-tenant
/// baselines). Mirrors `offload::TenantMetrics`.
pub const TENANT_KEYS: &[&str] = &[
    "tenant",
    "ranks",
    "wakeups",
    "interventions",
    "fin_send",
    "fin_recv",
    "fin_group",
    "credit_deferrals",
    "quota_sheds",
    "drr_grants",
];

/// Keys of the optional `health` object — present only in documents
/// from runs where the fabric health engine acted (breakers default
/// off, so clean-run documents omit the section and stay byte-identical
/// to pre-health baselines). Mirrors `offload::HealthMetrics::kv`.
pub const HEALTH_KEYS: &[&str] = &[
    "breaker_trips",
    "breaker_half_opens",
    "breaker_closes",
    "breaker_probes",
    "breaker_fastpaths",
    "retry_budget_sheds",
];

/// Optional extension sections: flat all-numeric objects appended by
/// the scale benches (`"engine"` carries the self-benchmark counters,
/// `"scale"` the workload spec and fingerprint, `"profile"` the
/// measured profiling-overhead figures under `BENCH_PROFILE=1`).
/// Absent in documents from the protocol benches; validated when
/// present.
const EXT_SECTIONS: &[&str] = &["engine", "scale", "profile"];

/// Schema identifier of self-profiling reports (`profile/v1`).
pub const PROFILE_SCHEMA_ID: &str = "bluefield-offload/profile/v1";

/// Every scope name a `profile/v1` report may carry. The analyzer's
/// schema-drift rule holds this list and the `profile_scope!` /
/// engine-accounting producers in `core`/`simnet` in sync: a name
/// listed here with no producer (or vice versa) fails `cargo xtask
/// analyze`.
pub const PROFILE_SCOPES: &[&str] = &[
    "ctrl_encode",
    "ctrl_decode",
    "crc_verify",
    "credit_admission",
    "journal_truncate",
    "cache_lookup",
    "cq_poll",
    "engine_exec",
    "engine_barrier_wait",
    "engine_emit_merge",
    "engine_coordinator",
];

fn counter(obj: &Json, key: &str, at: &str) -> Result<u64, String> {
    obj.get(key)
        .ok_or_else(|| format!("{at}: missing \"{key}\""))?
        .as_u64()
        .ok_or_else(|| format!("{at}: \"{key}\" is not a non-negative integer"))
}

/// Validate a metrics document against the v1 schema. Returns the parsed
/// value on success so callers can make further assertions, or a message
/// naming the first offending field.
pub fn validate_metrics(doc: &str) -> Result<Json, String> {
    let v = parse(doc).map_err(|e| format!("not valid JSON: {e}"))?;
    if !v.is_obj() {
        return Err("top level is not an object".into());
    }
    match v.get("schema").and_then(Json::as_str) {
        Some(SCHEMA_ID) => {}
        Some(other) => return Err(format!("unknown schema \"{other}\"")),
        None => return Err("missing \"schema\"".into()),
    }
    if v.get("bench").and_then(Json::as_str).is_none() {
        return Err("missing string \"bench\"".into());
    }
    let totals = v
        .get("totals")
        .filter(|t| t.is_obj())
        .ok_or("missing object \"totals\"")?;
    for k in TOTAL_KEYS {
        counter(totals, k, "totals")?;
    }
    let caches = v
        .get("caches")
        .filter(|c| c.is_obj())
        .ok_or("missing object \"caches\"")?;
    for c in CACHES {
        let cache = caches
            .get(c)
            .filter(|x| x.is_obj())
            .ok_or_else(|| format!("caches: missing object \"{c}\""))?;
        for k in CACHE_KEYS {
            counter(cache, k, &format!("caches.{c}"))?;
        }
    }
    for section in EXT_SECTIONS {
        let Some(sec) = v.get(section) else {
            continue;
        };
        let Json::Obj(members) = sec else {
            return Err(format!("\"{section}\" is present but not an object"));
        };
        for (k, val) in members {
            match val {
                Json::Num(n) if *n >= 0.0 => {}
                _ => return Err(format!("{section}: \"{k}\" is not a non-negative number")),
            }
        }
    }
    for arr in ["ranks", "windows", "proxies", "recv_meta"] {
        let items = v
            .get(arr)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("missing array \"{arr}\""))?;
        if let Some(bad) = items.iter().position(|e| !e.is_obj()) {
            return Err(format!("{arr}[{bad}] is not an object"));
        }
    }
    // Optional multi-tenant section: when present, every row carries the
    // full per-tenant counter set and the rows' sheds/grants/deferrals
    // sum to at most the corresponding totals (per-tenant counters are a
    // partition of the totals, but ranks outside the tenant map may
    // contribute to totals only).
    if let Some(tenants) = v.get("tenants") {
        let rows = tenants
            .as_arr()
            .ok_or("\"tenants\" is present but not an array")?;
        if rows.len() < 2 {
            return Err("\"tenants\" is present with fewer than two rows".into());
        }
        let mut sums = [0u64; 3];
        for (i, row) in rows.iter().enumerate() {
            let at = format!("tenants[{i}]");
            for k in TENANT_KEYS {
                counter(row, k, &at)?;
            }
            sums[0] += counter(row, "quota_sheds", &at)?;
            sums[1] += counter(row, "drr_grants", &at)?;
            sums[2] += counter(row, "credit_deferrals", &at)?;
        }
        for (sum, key) in sums
            .iter()
            .zip(["quota_sheds", "drr_grants", "credit_deferrals"])
        {
            if *sum > counter(totals, key, "totals")? {
                return Err(format!("per-tenant {key} exceed totals.{key}"));
            }
        }
    }
    // Optional health section: when present, it carries exactly the
    // declared breaker/budget counter set, at least one of them nonzero
    // (an idle engine must omit the section), and the breaker state
    // machine's conservation law holds: every close was preceded by a
    // half-open, every half-open by a trip.
    if let Some(health) = v.get("health") {
        let Json::Obj(members) = health else {
            return Err("\"health\" is present but not an object".into());
        };
        for k in HEALTH_KEYS {
            counter(health, k, "health")?;
        }
        for (k, _) in members {
            if !HEALTH_KEYS.contains(&k.as_str()) {
                return Err(format!("health: undeclared counter \"{k}\""));
            }
        }
        if HEALTH_KEYS
            .iter()
            .all(|k| health.get(k).and_then(Json::as_u64) == Some(0))
        {
            return Err("\"health\" is present but all-zero".into());
        }
        let trips = counter(health, "breaker_trips", "health")?;
        let half_opens = counter(health, "breaker_half_opens", "health")?;
        let closes = counter(health, "breaker_closes", "health")?;
        if closes > half_opens {
            return Err("health: breaker_closes exceed breaker_half_opens".into());
        }
        // Proxy restarts re-arm breakers straight to half-open, so
        // half-opens may exceed trips only when restarts occurred.
        if half_opens > trips && counter(totals, "proxy_restarts", "totals")? == 0 {
            return Err("health: breaker_half_opens exceed breaker_trips without restarts".into());
        }
    }
    // Internal consistency: cache lookups decompose, per-rank wakeups sum
    // to the total, and the once-only group-metadata claim is encoded.
    let wakeups: u64 = v
        .get("ranks")
        .and_then(Json::as_arr)
        .map(|rs| {
            rs.iter()
                .filter_map(|r| r.get("wakeups").and_then(Json::as_u64))
                .sum()
        })
        .unwrap_or(0);
    if wakeups != counter(totals, "host_wakeups", "totals")? {
        return Err("per-rank wakeups do not sum to totals.host_wakeups".into());
    }
    let meta_total: u64 = v
        .get("recv_meta")
        .and_then(Json::as_arr)
        .map(|ms| {
            ms.iter()
                .filter_map(|m| m.get("count").and_then(Json::as_u64))
                .sum()
        })
        .unwrap_or(0);
    if meta_total != counter(totals, "recv_meta_total", "totals")? {
        return Err("recv_meta counts do not sum to totals.recv_meta_total".into());
    }
    Ok(v)
}

/// Validate a self-profiling document against the `profile/v1` schema.
///
/// Checks the schema id, that every `;`-separated segment of every
/// scope path is a declared [`PROFILE_SCOPES`] name, that counts and
/// durations are non-negative, and that telemetry snapshots carry
/// strictly increasing sequence numbers with non-negative counter
/// deltas. Duration fields are optional (producers omit them under
/// `BENCH_NO_WALL=1` so documents stay byte-comparable across thread
/// counts); when present they must be non-negative numbers.
pub fn validate_profile(doc: &str) -> Result<Json, String> {
    let v = parse(doc).map_err(|e| format!("not valid JSON: {e}"))?;
    if !v.is_obj() {
        return Err("top level is not an object".into());
    }
    match v.get("schema").and_then(Json::as_str) {
        Some(PROFILE_SCHEMA_ID) => {}
        Some(other) => return Err(format!("unknown schema \"{other}\"")),
        None => return Err("missing \"schema\"".into()),
    }
    if v.get("bench").and_then(Json::as_str).is_none() {
        return Err("missing string \"bench\"".into());
    }
    let scopes = v
        .get("scopes")
        .and_then(Json::as_arr)
        .ok_or("missing array \"scopes\"")?;
    for (i, s) in scopes.iter().enumerate() {
        let at = format!("scopes[{i}]");
        let path = s
            .get("path")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{at}: missing string \"path\""))?;
        for seg in path.split(';') {
            if !PROFILE_SCOPES.contains(&seg) {
                return Err(format!("{at}: undeclared scope name \"{seg}\""));
            }
        }
        counter(s, "count", &at)?;
        if let Json::Obj(members) = s {
            for (k, val) in members {
                if k == "path" {
                    continue;
                }
                match val {
                    Json::Num(n) if *n >= 0.0 => {}
                    _ => return Err(format!("{at}: \"{k}\" is not a non-negative number")),
                }
            }
        }
    }
    if let Some(totals) = v.get("engine_totals") {
        let Json::Obj(members) = totals else {
            return Err("\"engine_totals\" is present but not an object".into());
        };
        for (k, val) in members {
            match val {
                Json::Num(n) if *n >= 0.0 => {}
                _ => {
                    return Err(format!(
                        "engine_totals: \"{k}\" is not a non-negative number"
                    ))
                }
            }
        }
    }
    if let Some(engine) = v.get("engine") {
        let shards = engine
            .as_arr()
            .ok_or("\"engine\" is present but not an array")?;
        for (i, s) in shards.iter().enumerate() {
            let at = format!("engine[{i}]");
            if let Json::Obj(members) = s {
                for (k, val) in members {
                    match val {
                        Json::Num(n) if *n >= 0.0 => {}
                        _ => return Err(format!("{at}: \"{k}\" is not a non-negative number")),
                    }
                }
            } else {
                return Err(format!("{at} is not an object"));
            }
        }
    }
    let snaps = v
        .get("snapshots")
        .and_then(Json::as_arr)
        .ok_or("missing array \"snapshots\"")?;
    let mut prev_seq: Option<u64> = None;
    for (i, s) in snaps.iter().enumerate() {
        let at = format!("snapshots[{i}]");
        let seq = counter(s, "seq", &at)?;
        counter(s, "upto_ps", &at)?;
        if let Some(p) = prev_seq {
            if seq <= p {
                return Err(format!("{at}: seq {seq} not increasing (prev {p})"));
            }
        }
        prev_seq = Some(seq);
        let deltas = s
            .get("deltas")
            .filter(|d| d.is_obj())
            .ok_or_else(|| format!("{at}: missing object \"deltas\""))?;
        if let Json::Obj(members) = deltas {
            for (k, val) in members {
                match val {
                    Json::Num(n) if *n >= 0.0 => {}
                    _ => return Err(format!("{at}: delta \"{k}\" is not a non-negative number")),
                }
            }
        }
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use offload::MetricsReport;

    #[test]
    fn empty_report_is_schema_valid() {
        let doc = MetricsReport::default().to_json("unit");
        validate_metrics(&doc).unwrap();
    }

    #[test]
    fn engine_and_scale_sections_validate_when_present() {
        let base = MetricsReport::default().to_json("unit");
        let with_sections = base.replace(
            "\n  ]\n}\n",
            "\n  ],\n  \"engine\": {\n    \"events\": 4032,\n    \"wall_ms\": 20.821\n  },\n  \
             \"scale\": {\n    \"ranks\": 64,\n    \"fingerprint\": 153652376950\n  }\n}\n",
        );
        validate_metrics(&with_sections).unwrap();
        // Non-numeric members are rejected.
        let bad = with_sections.replace("\"events\": 4032", "\"events\": \"many\"");
        assert!(validate_metrics(&bad).is_err());
        // A section that is not an object is rejected.
        let bad = with_sections.replace(
            "\"scale\": {\n    \"ranks\": 64,\n    \"fingerprint\": 153652376950\n  }",
            "\"scale\": 7",
        );
        assert!(validate_metrics(&bad).is_err());
    }

    #[test]
    fn tenants_section_validates_when_present() {
        use offload::{Metrics, ProtoEvent};
        use simnet::{Pid, SimTime};
        let m = Metrics::new();
        let sink = m.sink();
        for (tenant, rank) in [(0usize, 0usize), (1, 1)] {
            sink(
                SimTime::ZERO,
                Pid::from_index(rank),
                &ProtoEvent::QuotaShed {
                    tenant,
                    rank,
                    msg_id: rank as u64,
                },
            );
        }
        m.set_tenant_map([(0, 0), (1, 1)].into_iter().collect());
        let doc = m.report().to_json("unit");
        assert!(doc.contains("\"tenants\": ["));
        validate_metrics(&doc).unwrap();
        // A row missing a tenant counter is rejected.
        let bad = doc.replace("\"quota_sheds\": 1, \"drr_grants\": 0}", "}");
        assert!(validate_metrics(&bad).is_err());
        // Per-tenant sheds summing past the total are rejected.
        let bad = doc.replace(
            "\"tenant\": 1, \"ranks\": 1, \"wakeups\": 0, \"interventions\": 0, \"fin_send\": 0, \"fin_recv\": 0, \"fin_group\": 0, \"credit_deferrals\": 0, \"quota_sheds\": 1",
            "\"tenant\": 1, \"ranks\": 1, \"wakeups\": 0, \"interventions\": 0, \"fin_send\": 0, \"fin_recv\": 0, \"fin_group\": 0, \"credit_deferrals\": 0, \"quota_sheds\": 9",
        );
        assert!(validate_metrics(&bad).is_err());
        // A single-row section is rejected: single-tenant runs must omit
        // the section, not emit a degenerate one.
        let one_row = doc.replace(
            ",\n    {\"tenant\": 1, \"ranks\": 1, \"wakeups\": 0, \"interventions\": 0, \"fin_send\": 0, \"fin_recv\": 0, \"fin_group\": 0, \"credit_deferrals\": 0, \"quota_sheds\": 1, \"drr_grants\": 0}",
            "",
        );
        assert_ne!(one_row, doc, "the tenant-1 row must match verbatim");
        assert!(validate_metrics(&one_row).is_err());
    }

    #[test]
    fn health_section_validates_when_present() {
        use offload::{HealthPath, Metrics, ProtoEvent};
        use simnet::{Pid, SimTime};
        let m = Metrics::new();
        let sink = m.sink();
        let feed = |ev: &ProtoEvent| sink(SimTime::ZERO, Pid::from_index(2), ev);
        feed(&ProtoEvent::BreakerTripped {
            peer: 1,
            path: HealthPath::CrossGvmi,
        });
        feed(&ProtoEvent::BreakerHalfOpen {
            peer: 1,
            path: HealthPath::CrossGvmi,
        });
        feed(&ProtoEvent::BreakerProbe {
            peer: 1,
            path: HealthPath::CrossGvmi,
            msg_id: 4,
        });
        feed(&ProtoEvent::BreakerClosed {
            peer: 1,
            path: HealthPath::CrossGvmi,
        });
        let doc = m.report().to_json("unit");
        assert!(doc.contains("\"health\": {"));
        validate_metrics(&doc).unwrap();
        // A missing health counter is rejected.
        let bad = doc.replace("\"breaker_probes\": 1,", "");
        assert!(validate_metrics(&bad).is_err());
        // An undeclared counter is rejected.
        let bad = doc.replace("\"breaker_probes\"", "\"breaker_mystery\"");
        assert!(validate_metrics(&bad).is_err());
        // An all-zero section is rejected: idle engines must omit it.
        let bad = doc
            .replace("\"breaker_trips\": 1", "\"breaker_trips\": 0")
            .replace("\"breaker_half_opens\": 1", "\"breaker_half_opens\": 0")
            .replace("\"breaker_closes\": 1", "\"breaker_closes\": 0")
            .replace("\"breaker_probes\": 1", "\"breaker_probes\": 0");
        assert!(validate_metrics(&bad).is_err());
        // More closes than half-opens breaks the state machine.
        let bad = doc.replace("\"breaker_closes\": 1", "\"breaker_closes\": 5");
        assert!(validate_metrics(&bad).is_err());
        // More half-opens than trips needs a proxy restart to explain it.
        let bad = doc.replace("\"breaker_half_opens\": 1", "\"breaker_half_opens\": 3");
        assert!(validate_metrics(&bad).is_err());
        let explained = bad.replace("\"proxy_restarts\": 0", "\"proxy_restarts\": 1");
        validate_metrics(&explained).unwrap();
    }

    #[test]
    fn rejects_missing_fields_and_bad_schema() {
        assert!(validate_metrics("{}").is_err());
        assert!(validate_metrics("not json").is_err());
        let doc = MetricsReport::default()
            .to_json("unit")
            .replace(SCHEMA_ID, "something/else");
        assert!(validate_metrics(&doc).is_err());
        let doc = MetricsReport::default()
            .to_json("unit")
            .replace("\"rts\": 0", "\"rts\": -1");
        assert!(validate_metrics(&doc).is_err());
    }
}
