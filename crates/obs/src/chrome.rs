//! Chrome-trace / Perfetto export of a simulation run.
//!
//! Converts a [`simnet::Report`]'s trace — typed spans plus point
//! records — into the Trace Event Format that `chrome://tracing`,
//! <https://ui.perfetto.dev> and `speedscope` load directly: one JSON
//! object with a `traceEvents` array of `"M"` (thread-name metadata),
//! `"X"` (complete span) and `"i"` (instant) events. Timestamps are
//! microseconds of virtual time; each simulated process maps to one
//! thread (`tid` = pid index) of a single synthetic process (`pid` 1).

use simnet::{Report, SimTime};

use crate::json::Json;

const TRACE_PID: f64 = 1.0;

fn us(t: SimTime) -> f64 {
    t.as_ps() as f64 / 1e6
}

fn base(ph: &str, tid: usize) -> Vec<(String, Json)> {
    vec![
        ("ph".into(), Json::Str(ph.into())),
        ("pid".into(), Json::Num(TRACE_PID)),
        ("tid".into(), Json::Num(tid as f64)),
    ]
}

/// Render `report` as a Chrome-trace JSON document. Returns `None` when
/// the run was executed without tracing enabled.
pub fn chrome_trace(report: &Report) -> Option<String> {
    let trace = report.trace.as_ref()?;
    let mut events = Vec::new();
    // Thread-name metadata: one per simulated process, in pid order.
    for (tid, proc_) in report.procs.iter().enumerate() {
        let mut e = base("M", tid);
        e.push(("name".into(), Json::Str("thread_name".into())));
        e.push((
            "args".into(),
            Json::Obj(vec![("name".into(), Json::Str(proc_.name.clone()))]),
        ));
        events.push(Json::Obj(e));
    }
    // Typed spans → complete ("X") events.
    for s in trace.spans() {
        let mut e = base("X", s.pid.index());
        e.push(("ts".into(), Json::Num(us(s.start))));
        e.push(("dur".into(), Json::Num(us(s.end) - us(s.start))));
        e.push(("cat".into(), Json::Str(s.cat.clone())));
        e.push(("name".into(), Json::Str(s.name.clone())));
        events.push(Json::Obj(e));
    }
    // Point records → instant ("i") events, thread-scoped.
    for r in trace.records() {
        let mut e = base("i", r.pid.index());
        e.push(("ts".into(), Json::Num(us(r.at))));
        e.push(("s".into(), Json::Str("t".into())));
        e.push(("name".into(), Json::Str(r.label.clone())));
        events.push(Json::Obj(e));
    }
    let doc = Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
    ]);
    Some(doc.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{SimDelta, Simulation};

    #[test]
    fn exports_spans_and_instants() {
        let mut sim = Simulation::new(7);
        sim.enable_trace();
        sim.spawn("worker", |ctx| {
            ctx.trace("start");
            ctx.compute(SimDelta::from_us(3));
            let sp = ctx.span_begin("phase", "wrapup");
            ctx.sleep(SimDelta::from_us(1));
            ctx.span_end(sp);
        });
        let report = sim.run().unwrap();
        let doc = chrome_trace(&report).expect("tracing was on");
        let v = crate::json::parse(&doc).unwrap();
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        let phases: Vec<&str> = evs
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert!(phases.contains(&"M"));
        assert!(phases.contains(&"X"));
        assert!(phases.contains(&"i"));
        // The compute auto-span: 3 µs duration.
        let x = evs
            .iter()
            .find(|e| {
                e.get("ph").unwrap().as_str() == Some("X")
                    && e.get("cat").unwrap().as_str() == Some("compute")
            })
            .expect("compute span exported");
        assert_eq!(x.get("dur").unwrap().as_num(), Some(3.0));
    }

    #[test]
    fn untraced_run_exports_nothing() {
        let mut sim = Simulation::new(7);
        sim.spawn("w", |ctx| ctx.sleep(SimDelta::from_us(1)));
        let report = sim.run().unwrap();
        assert!(chrome_trace(&report).is_none());
    }
}
