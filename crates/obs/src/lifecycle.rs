//! Per-message lifecycle reconstruction and group critical-path
//! attribution.
//!
//! The engine's [`offload::ProtoEvent`] stream carries a stable
//! transfer id (`msg_id`) from the moment a host posts a request
//! (`HostReqPosted`) through proxy matching, RDMA writes and FIN
//! delivery back to the host (`HostReqDone`). A [`LifecycleRecorder`]
//! captures that stream; [`reconstruct`] turns it into:
//!
//! * [`MsgTimeline`]s — one per transfer, decomposed into the phase
//!   chain between observed milestones (control delivery, match wait,
//!   queue wait, wire time, FIN processing, FIN delivery), each phase
//!   tagged with *where the time was resident* ([`Residence`]): on the
//!   host CPU, on the DPU proxy, or on the wire.
//! * [`WindowPath`]s — one per group overlap window
//!   (`Group_Offload_call` return → `Group_Wait` satisfied, keyed
//!   `(rank, req, gen)` exactly like `offload::Metrics`), decomposed
//!   into dispatch / wire / FIN segments plus one zero-length
//!   host-resident segment per `HostWakeup { intervention: true }`
//!   that lands inside the window.
//! * log-scaled phase [`Histogram`]s — dependency-free, mergeable
//!   across runs, with p50/p99/max readouts.
//!
//! This makes the paper's central claim mechanically checkable from
//! the event stream alone: a *warm* group window (`gen >= 2`) contains
//! **zero** host-resident segments — the host rings a doorbell, the
//! DPU does everything else — while every completed basic-primitive or
//! staging transfer necessarily contains host-resident phases (the
//! host posts the request and must wake to retire the FIN).
//! [`LifecycleReport::critical_path`] returns the longest recorded
//! window, whose segment chain shows where its time went.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use offload::ProtoEvent;
use simnet::{EventSink, Pid, SimDelta, SimTime};

use crate::json::Json;

/// Schema id stamped on [`LifecycleReport::to_json`] documents.
pub const LIFECYCLE_SCHEMA_ID: &str = "bluefield-offload/lifecycle/v1";

/// Where a phase or segment of a transfer's lifetime was resident.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Residence {
    /// Host CPU involvement was required.
    Host,
    /// The DPU proxy was driving; the host was free.
    Dpu,
    /// Bytes were moving on the fabric.
    Wire,
}

impl Residence {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Residence::Host => "host",
            Residence::Dpu => "dpu",
            Residence::Wire => "wire",
        }
    }
}

/// One phase of a point-to-point transfer's lifecycle, in causal order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// `HostReqPosted` → control message reaches the proxy
    /// (`RtsAtProxy` / `RtrAtProxy`). Host-resident: the host CPU
    /// built and posted the request.
    CtrlDelivery,
    /// Control at proxy → `PairMatched`: waiting for the peer side.
    MatchWait,
    /// `PairMatched` → first RDMA write posted (send side only).
    QueueWait,
    /// First write posted → last completion: bytes on the wire.
    WireTime,
    /// Last completion → `FinSent`: DPU FIN processing.
    DpuFin,
    /// `FinSent` → `HostReqDone`. Host-resident: the host must wake
    /// (or poll) to retire the request.
    FinDelivery,
}

/// All phases, in causal order.
pub const PHASES: [Phase; 6] = [
    Phase::CtrlDelivery,
    Phase::MatchWait,
    Phase::QueueWait,
    Phase::WireTime,
    Phase::DpuFin,
    Phase::FinDelivery,
];

impl Phase {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::CtrlDelivery => "ctrl_delivery",
            Phase::MatchWait => "match_wait",
            Phase::QueueWait => "queue_wait",
            Phase::WireTime => "wire",
            Phase::DpuFin => "dpu_fin",
            Phase::FinDelivery => "fin_delivery",
        }
    }

    /// Where time spent in this phase is resident.
    pub fn residence(self) -> Residence {
        match self {
            Phase::CtrlDelivery | Phase::FinDelivery => Residence::Host,
            Phase::MatchWait | Phase::QueueWait | Phase::DpuFin => Residence::Dpu,
            Phase::WireTime => Residence::Wire,
        }
    }
}

/// A log2-bucketed latency histogram over picosecond durations.
///
/// Dependency-free and mergeable: 65 power-of-two buckets (bucket 0
/// holds exact zeros, bucket `b >= 1` holds `[2^(b-1), 2^b)`), an
/// observation count and the exact maximum. Quantiles report the upper
/// bound of the bucket the quantile falls in, capped at the observed
/// maximum — a conservative estimate with bounded (2x) relative error,
/// which is plenty to separate a nanosecond doorbell from a
/// microsecond staging detour.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; 65],
    total: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; 65],
            total: 0,
            max: 0,
        }
    }

    /// Rehydrate a histogram from raw log2 bucket counts plus the exact
    /// maximum — the inverse of repeated [`record`](Histogram::record)
    /// calls for producers (like `offload::profile`) that bucket at the
    /// sample site and only later cross into `obs` for quantiles.
    /// Buckets beyond index 64 are ignored; shorter slices are
    /// zero-padded.
    pub fn from_log2_counts(counts: &[u64], max: u64) -> Histogram {
        let mut h = Histogram::new();
        for (b, &c) in counts.iter().take(h.counts.len()).enumerate() {
            h.counts[b] = c;
            h.total += c;
        }
        h.max = max;
        h
    }

    fn bucket(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Upper bound of bucket `b` (inclusive).
    fn bucket_upper(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket(value)] += 1;
        self.total += 1;
        self.max = self.max.max(value);
    }

    /// Fold another histogram into this one. Merging is commutative and
    /// associative, so per-shard histograms fold into the same totals
    /// in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact maximum observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0.0 ..= 1.0`): upper bound of the first
    /// bucket at which the cumulative count reaches `ceil(q * total)`,
    /// capped at the observed maximum. Returns 0 for an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let want = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= want {
                return Self::bucket_upper(b).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// One reconstructed point-to-point transfer.
#[derive(Clone, Debug)]
pub struct MsgTimeline {
    /// Stable transfer id (`rank << 32 | seq`).
    pub msg_id: u64,
    /// Posting rank.
    pub rank: usize,
    /// Peer rank.
    pub peer: usize,
    /// Matching tag.
    pub tag: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// Request direction as posted.
    pub dir: offload::ReqDir,
    /// Phase chain between observed milestones, in causal order.
    pub phases: Vec<(Phase, SimDelta)>,
    /// Whether `HostReqDone` was observed.
    pub completed: bool,
    /// Post → done, when completed.
    pub total: Option<SimDelta>,
}

impl MsgTimeline {
    /// Phases of this timeline resident on the host CPU.
    pub fn host_segments(&self) -> usize {
        self.phases
            .iter()
            .filter(|(p, _)| p.residence() == Residence::Host)
            .count()
    }
}

/// One attributed span inside a group overlap window.
#[derive(Clone, Debug)]
pub struct Segment {
    /// What the span covers.
    pub label: &'static str,
    /// Where its time was resident.
    pub residence: Residence,
    /// Span duration.
    pub dur: SimDelta,
}

/// The reconstructed critical path of one group overlap window:
/// `Group_Offload_call` return → `Group_Wait` satisfied.
#[derive(Clone, Debug)]
pub struct WindowPath {
    /// Host rank that owns the window.
    pub rank: usize,
    /// Group request id.
    pub req_id: usize,
    /// Generation (1-based; `gen >= 2` is warm).
    pub gen: u64,
    /// Segment chain from open to close.
    pub segments: Vec<Segment>,
    /// Whether `Group_Wait` closed the window.
    pub closed: bool,
    /// Open → close, when closed.
    pub total: SimDelta,
}

impl WindowPath {
    /// Host-resident segments inside the window. The paper's claim:
    /// zero for every warm window.
    pub fn host_segments(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| s.residence == Residence::Host)
            .count()
    }

    /// Whether every cache is warm for this window (`gen >= 2`).
    pub fn is_warm(&self) -> bool {
        self.gen >= 2
    }
}

/// The state timeline of one circuit breaker, reconstructed from the
/// `BreakerTripped` / `BreakerHalfOpen` / `BreakerClosed` transition
/// events (DESIGN.md §19). Breakers start implicitly closed, so the
/// first transition is normally to [`offload::BreakerState::Open`].
#[derive(Clone, Debug)]
pub struct BreakerTimeline {
    /// Scheduler pid of the process owning the breaker (a proxy for
    /// data paths, a host for the ctrl path).
    pub pid: usize,
    /// Peer rank the breaker guards.
    pub peer: usize,
    /// Which path class it guards.
    pub path: offload::HealthPath,
    /// `(time, entered state)` transitions, in emission order.
    pub transitions: Vec<(SimTime, offload::BreakerState)>,
}

impl BreakerTimeline {
    /// Whether the breaker ended the run closed (recovered or never
    /// left the initial closed state).
    pub fn recovered(&self) -> bool {
        self.transitions
            .last()
            .map(|&(_, s)| s == offload::BreakerState::Closed)
            .unwrap_or(true)
    }

    /// Number of closed → open trips in the timeline.
    pub fn trips(&self) -> usize {
        self.transitions
            .iter()
            .filter(|&&(_, s)| s == offload::BreakerState::Open)
            .count()
    }
}

/// Everything [`reconstruct`] derives from one event stream.
#[derive(Clone, Debug, Default)]
pub struct LifecycleReport {
    /// Per-transfer timelines, ordered by `msg_id`.
    pub timelines: Vec<MsgTimeline>,
    /// Per-window critical paths, ordered by `(rank, req_id, gen)`.
    pub windows: Vec<WindowPath>,
    /// Per-breaker state timelines, ordered by `(pid, peer, path)`.
    /// Empty unless the fabric health engine acted (breakers default
    /// off), which keeps pre-health JSON byte-identical.
    pub breakers: Vec<BreakerTimeline>,
}

impl LifecycleReport {
    /// Phase-latency histograms folded over every timeline, in
    /// [`PHASES`] order.
    pub fn phase_histograms(&self) -> Vec<(Phase, Histogram)> {
        let mut hists: BTreeMap<Phase, Histogram> = BTreeMap::new();
        for t in &self.timelines {
            for &(p, d) in &t.phases {
                hists.entry(p).or_default().record(d.as_ps());
            }
        }
        PHASES
            .iter()
            .filter_map(|&p| hists.get(&p).map(|h| (p, h.clone())))
            .collect()
    }

    /// Closed-group-window duration histograms folded per tenant by a
    /// rank→tenant map (ranks absent from the map are skipped). The
    /// noisy-neighbor isolation gate reads a victim tenant's p99 here
    /// and compares it against the same tenant's solo-run p99.
    pub fn tenant_window_histograms(
        &self,
        tenant_of: &BTreeMap<usize, usize>,
    ) -> BTreeMap<usize, Histogram> {
        let mut out: BTreeMap<usize, Histogram> = BTreeMap::new();
        for w in self.windows.iter().filter(|w| w.closed) {
            if let Some(&t) = tenant_of.get(&w.rank) {
                out.entry(t).or_default().record(w.total.as_ps());
            }
        }
        out
    }

    /// The longest closed window — the run's group critical path. Its
    /// segment chain shows where the window's time went.
    pub fn critical_path(&self) -> Option<&WindowPath> {
        self.windows
            .iter()
            .filter(|w| w.closed)
            .max_by_key(|w| w.total.as_ps())
    }

    /// Render as a `bluefield-offload/lifecycle/v1` JSON document.
    pub fn to_json(&self) -> Json {
        let completed = self.timelines.iter().filter(|t| t.completed).count();
        let phases = Json::Arr(
            self.phase_histograms()
                .iter()
                .map(|(p, h)| {
                    Json::Obj(vec![
                        ("phase".into(), Json::Str(p.name().into())),
                        ("residence".into(), Json::Str(p.residence().name().into())),
                        ("count".into(), Json::Num(h.count() as f64)),
                        ("p50_ps".into(), Json::Num(h.p50() as f64)),
                        ("p99_ps".into(), Json::Num(h.p99() as f64)),
                        ("max_ps".into(), Json::Num(h.max() as f64)),
                    ])
                })
                .collect(),
        );
        let windows = Json::Arr(
            self.windows
                .iter()
                .map(|w| {
                    Json::Obj(vec![
                        ("rank".into(), Json::Num(w.rank as f64)),
                        ("req_id".into(), Json::Num(w.req_id as f64)),
                        ("gen".into(), Json::Num(w.gen as f64)),
                        ("warm".into(), Json::Bool(w.is_warm())),
                        ("closed".into(), Json::Bool(w.closed)),
                        ("total_ps".into(), Json::Num(w.total.as_ps() as f64)),
                        ("host_segments".into(), Json::Num(w.host_segments() as f64)),
                        (
                            "segments".into(),
                            Json::Arr(
                                w.segments
                                    .iter()
                                    .map(|s| {
                                        Json::Obj(vec![
                                            ("label".into(), Json::Str(s.label.into())),
                                            (
                                                "residence".into(),
                                                Json::Str(s.residence.name().into()),
                                            ),
                                            ("dur_ps".into(), Json::Num(s.dur.as_ps() as f64)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let mut members = vec![
            ("schema".into(), Json::Str(LIFECYCLE_SCHEMA_ID.into())),
            (
                "messages".into(),
                Json::Obj(vec![
                    ("count".into(), Json::Num(self.timelines.len() as f64)),
                    ("completed".into(), Json::Num(completed as f64)),
                ]),
            ),
            ("phases".into(), phases),
            ("windows".into(), windows),
        ];
        // Optional section, mirroring the metrics schema's `health`
        // object: only runs where a breaker transitioned carry it.
        if !self.breakers.is_empty() {
            let breakers = Json::Arr(
                self.breakers
                    .iter()
                    .map(|b| {
                        Json::Obj(vec![
                            ("pid".into(), Json::Num(b.pid as f64)),
                            ("peer".into(), Json::Num(b.peer as f64)),
                            ("path".into(), Json::Str(b.path.name().into())),
                            ("recovered".into(), Json::Bool(b.recovered())),
                            ("trips".into(), Json::Num(b.trips() as f64)),
                            (
                                "transitions".into(),
                                Json::Arr(
                                    b.transitions
                                        .iter()
                                        .map(|&(at, s)| {
                                            Json::Obj(vec![
                                                ("at_ps".into(), Json::Num(at.as_ps() as f64)),
                                                (
                                                    "state".into(),
                                                    Json::Str(breaker_state_name(s).into()),
                                                ),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            );
            members.push(("breakers".into(), breakers));
        }
        Json::Obj(members)
    }
}

/// Stable lowercase name of a breaker state for reports.
fn breaker_state_name(s: offload::BreakerState) -> &'static str {
    match s {
        offload::BreakerState::Closed => "closed",
        offload::BreakerState::Open => "open",
        offload::BreakerState::HalfOpen => "half_open",
    }
}

/// An [`EventSink`] that captures the full `(time, pid, event)` stream
/// for lifecycle reconstruction. Unlike `offload::FlightRecorder`, this
/// keeps everything — it is an analysis tool, not an always-on black
/// box.
#[derive(Clone, Default)]
pub struct LifecycleRecorder {
    inner: Arc<Mutex<Vec<(SimTime, Pid, ProtoEvent)>>>,
}

impl LifecycleRecorder {
    /// A fresh recorder.
    pub fn new() -> LifecycleRecorder {
        LifecycleRecorder::default()
    }

    /// The sink to install on a simulation (compose with other sinks
    /// via `workloads::fanout`). Non-`ProtoEvent` payloads are ignored.
    pub fn sink(&self) -> EventSink {
        let inner = Arc::clone(&self.inner);
        Arc::new(move |at, pid, any| {
            if let Some(ev) = any.downcast_ref::<ProtoEvent>() {
                let mut v = inner.lock();
                v.push((at, pid, ev.clone()));
            }
        })
    }

    /// Number of events captured so far.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reconstruct timelines and window paths from the captured stream.
    pub fn report(&self) -> LifecycleReport {
        let events = self.inner.lock();
        reconstruct(&events)
    }
}

#[derive(Clone)]
struct MsgState {
    rank: usize,
    peer: usize,
    tag: u64,
    bytes: u64,
    dir: offload::ReqDir,
    t_post: SimTime,
    t_ctrl: Option<SimTime>,
    t_match: Option<SimTime>,
    t_first_write: Option<SimTime>,
    t_last_complete: Option<SimTime>,
    t_fin: Option<SimTime>,
    t_done: Option<SimTime>,
}

struct WinState {
    t_open: SimTime,
    t_first_write: Option<SimTime>,
    t_last_complete: Option<SimTime>,
    t_fin: Option<SimTime>,
    t_close: Option<SimTime>,
    interventions: u64,
}

/// Reconstruct per-message timelines and group window paths from a
/// captured event stream. The stream must be in emission order (which
/// any [`EventSink`] sees); events are never reordered.
pub fn reconstruct(events: &[(SimTime, Pid, ProtoEvent)]) -> LifecycleReport {
    let mut msgs: BTreeMap<u64, MsgState> = BTreeMap::new();
    // (proxy pid, wrid) → transfer, for completion → posted joins.
    let mut wrid_msg: BTreeMap<(usize, u64), u64> = BTreeMap::new();
    let mut windows: BTreeMap<(usize, usize, u64), WinState> = BTreeMap::new();
    // Open windows per rank, mirroring `offload::Metrics`.
    let mut open: BTreeMap<usize, Vec<(usize, u64)>> = BTreeMap::new();
    let mut wrid_window: BTreeMap<(usize, u64), (usize, usize, u64)> = BTreeMap::new();
    // (pid, peer, path) → breaker state transitions.
    let mut breakers: BTreeMap<
        (usize, usize, offload::HealthPath),
        Vec<(SimTime, offload::BreakerState)>,
    > = BTreeMap::new();

    for &(at, pid, ref ev) in events {
        match *ev {
            ProtoEvent::BreakerTripped { peer, path } => breakers
                .entry((pid.index(), peer, path))
                .or_default()
                .push((at, offload::BreakerState::Open)),
            ProtoEvent::BreakerHalfOpen { peer, path } => breakers
                .entry((pid.index(), peer, path))
                .or_default()
                .push((at, offload::BreakerState::HalfOpen)),
            ProtoEvent::BreakerClosed { peer, path } => breakers
                .entry((pid.index(), peer, path))
                .or_default()
                .push((at, offload::BreakerState::Closed)),
            _ => {}
        }
        match *ev {
            ProtoEvent::HostReqPosted {
                rank,
                msg_id,
                peer,
                tag,
                bytes,
                dir,
            } => {
                msgs.insert(
                    msg_id,
                    MsgState {
                        rank,
                        peer,
                        tag,
                        bytes,
                        dir,
                        t_post: at,
                        t_ctrl: None,
                        t_match: None,
                        t_first_write: None,
                        t_last_complete: None,
                        t_fin: None,
                        t_done: None,
                    },
                );
            }
            ProtoEvent::RtsAtProxy { msg_id, .. } | ProtoEvent::RtrAtProxy { msg_id, .. } => {
                if let Some(m) = msgs.get_mut(&msg_id) {
                    m.t_ctrl.get_or_insert(at);
                }
            }
            ProtoEvent::PairMatched {
                send_msg_id,
                recv_msg_id,
                ..
            } => {
                for id in [send_msg_id, recv_msg_id] {
                    if let Some(m) = msgs.get_mut(&id) {
                        m.t_match.get_or_insert(at);
                    }
                }
            }
            ProtoEvent::WritePosted { wrid, msg_id, .. } => {
                if let Some(m) = msgs.get_mut(&msg_id) {
                    // A basic (or one-sided) transfer's data write.
                    m.t_first_write.get_or_insert(at);
                    wrid_msg.insert((pid.index(), wrid), msg_id);
                } else {
                    // A group wire entry: its id was allocated by the
                    // owning host without a `HostReqPosted`. Attribute
                    // it to that rank's oldest open window.
                    let owner = (msg_id >> 32) as usize;
                    if let Some(&(req, gen)) = open.get(&owner).and_then(|v| v.first()) {
                        let w = windows
                            .get_mut(&(owner, req, gen))
                            .expect("open window has state");
                        w.t_first_write.get_or_insert(at);
                        wrid_window.insert((pid.index(), wrid), (owner, req, gen));
                    }
                }
            }
            ProtoEvent::WriteCompleted { wrid } => {
                let key = (pid.index(), wrid);
                if let Some(&msg_id) = wrid_msg.get(&key) {
                    if let Some(m) = msgs.get_mut(&msg_id) {
                        m.t_last_complete = Some(at);
                    }
                } else if let Some(&win) = wrid_window.get(&key) {
                    if let Some(w) = windows.get_mut(&win) {
                        w.t_last_complete = Some(at);
                    }
                }
            }
            ProtoEvent::FinSent {
                rank,
                req,
                kind,
                msg_id,
                ..
            } => {
                if kind == offload::FinKind::Group {
                    if let Some(&(req_id, gen)) = open
                        .get(&rank)
                        .and_then(|v| v.iter().find(|&&(r, _)| r == req))
                    {
                        if let Some(w) = windows.get_mut(&(rank, req_id, gen)) {
                            w.t_fin = Some(at);
                        }
                    }
                } else if let Some(m) = msgs.get_mut(&msg_id) {
                    m.t_fin = Some(at);
                }
            }
            ProtoEvent::HostReqDone { msg_id, .. } => {
                if let Some(m) = msgs.get_mut(&msg_id) {
                    m.t_done = Some(at);
                }
            }
            ProtoEvent::HostWakeup { rank, intervention } if intervention => {
                if let Some(v) = open.get(&rank) {
                    for &(req, gen) in v {
                        if let Some(w) = windows.get_mut(&(rank, req, gen)) {
                            w.interventions += 1;
                        }
                    }
                }
            }
            ProtoEvent::GroupCallReturned {
                host_rank,
                req_id,
                gen,
            } => {
                windows.insert(
                    (host_rank, req_id, gen),
                    WinState {
                        t_open: at,
                        t_first_write: None,
                        t_last_complete: None,
                        t_fin: None,
                        t_close: None,
                        interventions: 0,
                    },
                );
                open.entry(host_rank).or_default().push((req_id, gen));
            }
            ProtoEvent::GroupWaitDone {
                host_rank,
                req_id,
                gen,
            } => {
                if let Some(w) = windows.get_mut(&(host_rank, req_id, gen)) {
                    w.t_close = Some(at);
                }
                if let Some(v) = open.get_mut(&host_rank) {
                    v.retain(|&(r, g)| !(r == req_id && g == gen));
                }
            }
            _ => {}
        }
    }

    let timelines = msgs
        .iter()
        .map(|(&msg_id, m)| {
            let mut phases = Vec::new();
            let mut prev = m.t_post;
            let milestones: [(Option<SimTime>, Phase); 6] = [
                (m.t_ctrl, Phase::CtrlDelivery),
                (m.t_match, Phase::MatchWait),
                (m.t_first_write, Phase::QueueWait),
                (m.t_last_complete, Phase::WireTime),
                (m.t_fin, Phase::DpuFin),
                (m.t_done, Phase::FinDelivery),
            ];
            for (t, phase) in milestones {
                if let Some(t) = t {
                    phases.push((phase, t.saturating_since(prev)));
                    prev = t;
                }
            }
            MsgTimeline {
                msg_id,
                rank: m.rank,
                peer: m.peer,
                tag: m.tag,
                bytes: m.bytes,
                dir: m.dir,
                phases,
                completed: m.t_done.is_some(),
                total: m.t_done.map(|t| t.saturating_since(m.t_post)),
            }
        })
        .collect();

    let window_paths = windows
        .iter()
        .map(|(&(rank, req_id, gen), w)| {
            let mut segments = Vec::new();
            let mut prev = w.t_open;
            let milestones: [(Option<SimTime>, &'static str, Residence); 4] = [
                (w.t_first_write, "dispatch", Residence::Dpu),
                (w.t_last_complete, "wire", Residence::Wire),
                (w.t_fin, "dpu_fin", Residence::Dpu),
                (w.t_close, "wait_close", Residence::Dpu),
            ];
            for (t, label, residence) in milestones {
                if let Some(t) = t {
                    segments.push(Segment {
                        label,
                        residence,
                        dur: t.saturating_since(prev),
                    });
                    prev = t;
                }
            }
            for _ in 0..w.interventions {
                segments.push(Segment {
                    label: "host_intervention",
                    residence: Residence::Host,
                    dur: SimDelta::from_ps(0),
                });
            }
            WindowPath {
                rank,
                req_id,
                gen,
                segments,
                closed: w.t_close.is_some(),
                total: w
                    .t_close
                    .map(|t| t.saturating_since(w.t_open))
                    .unwrap_or(SimDelta::from_ps(0)),
            }
        })
        .collect();

    let breaker_timelines = breakers
        .into_iter()
        .map(|((pid, peer, path), transitions)| BreakerTimeline {
            pid,
            peer,
            path,
            transitions,
        })
        .collect();

    LifecycleReport {
        timelines,
        windows: window_paths,
        breakers: breaker_timelines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 1_000_000);
        // p50 of 6 obs → 3rd smallest (2) → bucket [2,3] upper bound 3.
        assert_eq!(h.p50(), 3);
    }

    #[test]
    fn tenant_window_histograms_fold_by_rank_map() {
        let mk = |rank: usize, total_ps: u64, closed: bool| WindowPath {
            rank,
            req_id: 0,
            gen: 1,
            segments: Vec::new(),
            closed,
            total: SimDelta::from_ps(total_ps),
        };
        let report = LifecycleReport {
            timelines: Vec::new(),
            breakers: Vec::new(),
            windows: vec![
                mk(0, 100, true),
                mk(1, 2_000, true),
                mk(0, 300, true),
                mk(1, 9_999, false), // open windows don't count
                mk(7, 5, true),      // rank outside the map is skipped
            ],
        };
        let map: BTreeMap<usize, usize> = [(0, 0), (1, 1)].into_iter().collect();
        let hists = report.tenant_window_histograms(&map);
        assert_eq!(hists.len(), 2);
        assert_eq!(hists[&0].count(), 2);
        assert_eq!(hists[&0].max(), 300);
        assert_eq!(hists[&1].count(), 1);
        assert_eq!(hists[&1].max(), 2_000);
    }

    #[test]
    fn breaker_timelines_reconstruct_and_gate_the_json_section() {
        use offload::{BreakerState, HealthPath};
        use simnet::Pid;
        let t = |ps: u64| SimTime::from_ps(ps);
        let p = Pid::from_index(2);
        // No breaker events: no timelines, no "breakers" JSON member.
        let empty = reconstruct(&[]);
        assert!(empty.breakers.is_empty());
        let json = empty.to_json().render();
        assert!(!json.contains("breakers"));
        // Trip → half-open → close on one path; an unrecovered trip on
        // another.
        let events = vec![
            (
                t(10),
                p,
                ProtoEvent::BreakerTripped {
                    peer: 1,
                    path: HealthPath::CrossGvmi,
                },
            ),
            (
                t(20),
                p,
                ProtoEvent::BreakerHalfOpen {
                    peer: 1,
                    path: HealthPath::CrossGvmi,
                },
            ),
            (
                t(30),
                p,
                ProtoEvent::BreakerClosed {
                    peer: 1,
                    path: HealthPath::CrossGvmi,
                },
            ),
            (
                t(40),
                p,
                ProtoEvent::BreakerTripped {
                    peer: 3,
                    path: HealthPath::Staging,
                },
            ),
        ];
        let report = reconstruct(&events);
        assert_eq!(report.breakers.len(), 2);
        let cg = &report.breakers[0];
        assert_eq!((cg.pid, cg.peer, cg.path), (2, 1, HealthPath::CrossGvmi));
        assert_eq!(
            cg.transitions,
            vec![
                (t(10), BreakerState::Open),
                (t(20), BreakerState::HalfOpen),
                (t(30), BreakerState::Closed),
            ]
        );
        assert!(cg.recovered());
        assert_eq!(cg.trips(), 1);
        let st = &report.breakers[1];
        assert_eq!(st.path, HealthPath::Staging);
        assert!(!st.recovered());
        let json = report.to_json().render();
        assert!(json.contains("\"breakers\""));
        assert!(json.contains("\"half_open\""));
        assert!(json.contains("\"cross_gvmi\""));
    }

    #[test]
    fn histogram_merge_matches_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [5, 9, 12] {
            a.record(v);
            both.record(v);
        }
        for v in [100, 200] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }
}
