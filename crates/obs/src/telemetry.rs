//! Streaming telemetry bus: periodic counter-delta snapshots.
//!
//! ROADMAP item 4 (an adaptive offload policy) needs a *runtime* view
//! of the protocol — not a single frozen [`offload::MetricsReport`] at
//! the end, but a stream of "what changed in the last N microseconds of
//! virtual time". [`TelemetryBus`] provides that: it wraps a private
//! metrics accumulator behind an [`simnet::EventSink`], slices virtual
//! time into fixed windows, and at each boundary publishes a
//! [`TelemetrySnapshot`] of the nonzero counter deltas to any attached
//! [`TelemetrySink`] consumers, keeping the most recent snapshots in a
//! bounded ring.
//!
//! ## Determinism contract
//!
//! Snapshots are a pure function of the protocol-event stream and the
//! configured interval. The engine delivers that stream in canonical
//! `(time, shard, seq)` order at any `SIMNET_THREADS`, so the snapshot
//! sequence — boundaries, ordering, and every delta value — is
//! byte-identical across thread counts (asserted by `ci.sh` on the
//! scale benches). No wall-clock quantity ever enters a snapshot.
//!
//! Optional profiler sampling ([`TelemetryBus::sample_profile`]) adds
//! `profile.<path>` scope-count deltas. Those counts come from
//! [`offload::profile`]'s thread-local trees, so only samples already
//! folded into the global registry (exited threads) plus the snapshot
//! thread's own tree are visible — cross-thread visibility is
//! best-effort and the totals only settle once the run's threads have
//! exited. They are advisory for policy consumers, excluded from the
//! determinism contract, and off by default.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

use offload::{Metrics, MetricsReport};
use parking_lot::Mutex;
use simnet::{EventSink, Pid, SimTime};

/// Default bound on the snapshot ring: old snapshots fall off the back
/// once this many are retained (consumers attached as sinks still see
/// every snapshot as it is published).
pub const DEFAULT_RING_CAP: usize = 1024;

/// One published telemetry window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// 1-based publication index (strictly increasing).
    pub seq: u64,
    /// Exclusive virtual-time upper bound of the window, in picoseconds:
    /// the snapshot covers everything since the previous one up to (not
    /// including) this instant.
    pub upto_ps: u64,
    /// Counters that moved during the window, as `(key, increase)`:
    /// `"bus_events"` (raw events the sink saw, protocol or not) first,
    /// then the fixed `MetricsReport::totals()` key order, then any
    /// `profile.<path>` keys in path order. Zero deltas are omitted.
    pub deltas: Vec<(String, u64)>,
}

/// Consumer interface of the bus — the hook a future adaptive offload
/// policy engine plugs into. Called synchronously while the simulation
/// runs, in snapshot order.
pub trait TelemetrySink: Send {
    /// Observe one published snapshot.
    fn on_snapshot(&mut self, snap: &TelemetrySnapshot);
}

impl<F: FnMut(&TelemetrySnapshot) + Send> TelemetrySink for F {
    fn on_snapshot(&mut self, snap: &TelemetrySnapshot) {
        self(snap)
    }
}

struct BusInner {
    metrics: Metrics,
    /// The wrapped metrics sink events are forwarded to.
    forward: EventSink,
    interval_ps: u64,
    /// Next unpublished window boundary (ps).
    next_boundary: u64,
    seq: u64,
    /// Every event the sink saw (ProtoEvent or not).
    events_seen: u64,
    /// `events_seen` at the last publication.
    prev_events_seen: u64,
    /// Totals at the last publication, in `totals()` order.
    prev: Vec<(&'static str, u64)>,
    /// Profiler scope counts at the last publication (sampling only).
    prev_profile: Vec<(String, u64)>,
    sample_profile: bool,
    ring: VecDeque<TelemetrySnapshot>,
    cap: usize,
    sinks: Vec<Box<dyn TelemetrySink>>,
    published: u64,
}

impl BusInner {
    fn publish(&mut self, upto_ps: u64) {
        let now = self.metrics.report().totals();
        let mut deltas: Vec<(String, u64)> = Vec::new();
        if self.events_seen > self.prev_events_seen {
            deltas.push((
                "bus_events".into(),
                self.events_seen - self.prev_events_seen,
            ));
        }
        self.prev_events_seen = self.events_seen;
        for (i, &(k, v)) in now.iter().enumerate() {
            let before = self.prev.get(i).map(|&(_, p)| p).unwrap_or(0);
            if v > before {
                deltas.push((k.to_string(), v - before));
            }
        }
        self.prev = now;
        if self.sample_profile {
            let counts = offload::profile::scope_counts();
            for (path, c) in &counts {
                let before = self
                    .prev_profile
                    .iter()
                    .find(|(p, _)| p == path)
                    .map(|&(_, v)| v)
                    .unwrap_or(0);
                if *c > before {
                    deltas.push((format!("profile.{path}"), c - before));
                }
            }
            self.prev_profile = counts;
        }
        self.seq += 1;
        let snap = TelemetrySnapshot {
            seq: self.seq,
            upto_ps,
            deltas,
        };
        for sink in &mut self.sinks {
            sink.on_snapshot(&snap);
        }
        self.ring.push_back(snap);
        while self.ring.len() > self.cap {
            self.ring.pop_front();
        }
        self.published += 1;
    }
}

/// The streaming telemetry bus. Install [`TelemetryBus::sink`] on a
/// simulation (alone or fanned out alongside other sinks); read the
/// ring and the final report with [`TelemetryBus::finish`].
#[derive(Clone)]
pub struct TelemetryBus {
    inner: Arc<Mutex<BusInner>>,
}

impl TelemetryBus {
    /// A bus slicing virtual time into `interval_ps`-picosecond windows
    /// with the default ring bound. `interval_ps` must be nonzero.
    pub fn new(interval_ps: u64) -> TelemetryBus {
        assert!(interval_ps > 0, "telemetry interval must be nonzero");
        let metrics = Metrics::new();
        let forward = metrics.sink();
        TelemetryBus {
            inner: Arc::new(Mutex::new(BusInner {
                metrics,
                forward,
                interval_ps,
                next_boundary: interval_ps,
                seq: 0,
                events_seen: 0,
                prev_events_seen: 0,
                prev: Vec::new(),
                prev_profile: Vec::new(),
                sample_profile: false,
                ring: VecDeque::new(),
                cap: DEFAULT_RING_CAP,
                sinks: Vec::new(),
                published: 0,
            })),
        }
    }

    /// Override the ring bound (`cap >= 1`).
    pub fn with_ring_cap(self, cap: usize) -> TelemetryBus {
        assert!(cap >= 1, "ring cap must be nonzero");
        self.inner.lock().cap = cap;
        self
    }

    /// Also sample `profile.<path>` scope-count deltas at each boundary
    /// (advisory — see the module docs for the visibility caveat).
    pub fn sample_profile(self, on: bool) -> TelemetryBus {
        self.inner.lock().sample_profile = on;
        self
    }

    /// Attach a consumer; it sees every snapshot published after this
    /// call, synchronously and in order.
    pub fn attach(&self, sink: Box<dyn TelemetrySink>) {
        self.inner.lock().sinks.push(sink);
    }

    /// The event sink to install on the simulation. Forwards every
    /// event to the internal metrics accumulator, publishing a snapshot
    /// whenever an event's timestamp crosses the next window boundary
    /// (quiet windows collapse into the next active one, so snapshot
    /// count stays bounded by event count).
    pub fn sink(&self) -> EventSink {
        let inner = Arc::clone(&self.inner);
        Arc::new(move |at: SimTime, pid: Pid, ev: &dyn Any| {
            let mut bus = inner.lock();
            let t = at.as_ps();
            if t >= bus.next_boundary {
                // Publish one window covering everything since the last
                // publication, up to the interval-grid boundary at or
                // below `t` (quiet intermediate windows collapse).
                let floor = t - (t % bus.interval_ps);
                bus.publish(floor);
                bus.next_boundary = floor + bus.interval_ps;
            }
            bus.events_seen += 1;
            let forward = Arc::clone(&bus.forward);
            drop(bus);
            forward(at, pid, ev);
        })
    }

    /// Publish the tail window (anything accumulated since the last
    /// boundary) and return the final frozen report plus the retained
    /// snapshot ring. The tail snapshot is emitted even when empty so
    /// `sum(deltas) == finish().0.totals()` holds exactly.
    pub fn finish(&self) -> (MetricsReport, Vec<TelemetrySnapshot>) {
        let mut bus = self.inner.lock();
        let upto = bus.next_boundary;
        bus.publish(upto);
        (bus.metrics.report(), bus.ring.iter().cloned().collect())
    }

    /// Total snapshots published so far (including any that fell off
    /// the bounded ring).
    pub fn published(&self) -> u64 {
        self.inner.lock().published
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offload::ProtoEvent;

    fn tick(sink: &EventSink, ps: u64, ev: &ProtoEvent) {
        sink(SimTime::from_ps(ps), Pid::from_index(0), ev);
    }

    #[test]
    fn deltas_conserve_totals() {
        let bus = TelemetryBus::new(1_000);
        let sink = bus.sink();
        for i in 0..10u64 {
            tick(
                &sink,
                i * 700,
                &ProtoEvent::HostWakeup {
                    rank: 0,
                    intervention: i % 2 == 0,
                },
            );
        }
        let (report, snaps) = bus.finish();
        assert!(snaps.len() >= 2, "several boundaries crossed");
        let sum = |key: &str| -> u64 {
            snaps
                .iter()
                .flat_map(|s| s.deltas.iter())
                .filter(|(k, _)| k == key)
                .map(|&(_, v)| v)
                .sum()
        };
        for (k, v) in report.totals() {
            assert_eq!(sum(k), v, "delta conservation for {k}");
        }
        let seqs: Vec<u64> = snaps.iter().map(|s| s.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(seqs, sorted, "seq strictly increasing");
    }

    #[test]
    fn attached_sink_sees_every_snapshot_in_order() {
        let bus = TelemetryBus::new(500);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        bus.attach(Box::new(move |s: &TelemetrySnapshot| {
            seen2.lock().push(s.seq);
        }));
        let sink = bus.sink();
        for i in 0..5u64 {
            tick(
                &sink,
                i * 600,
                &ProtoEvent::HostWakeup {
                    rank: 0,
                    intervention: false,
                },
            );
        }
        let (_, snaps) = bus.finish();
        let seen = seen.lock().clone();
        assert_eq!(seen.len() as u64, bus.published());
        assert_eq!(seen.len(), snaps.len(), "ring retained everything here");
        assert!(seen.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn ring_is_bounded_but_publication_count_is_not() {
        let bus = TelemetryBus::new(100).with_ring_cap(3);
        let sink = bus.sink();
        for i in 1..=20u64 {
            tick(
                &sink,
                i * 150,
                &ProtoEvent::HostWakeup {
                    rank: 0,
                    intervention: false,
                },
            );
        }
        let (_, snaps) = bus.finish();
        assert_eq!(snaps.len(), 3);
        assert!(bus.published() > 3);
        // The ring keeps the most recent snapshots.
        assert_eq!(snaps.last().unwrap().seq, bus.published());
    }

    #[test]
    fn quiet_windows_collapse() {
        let bus = TelemetryBus::new(10);
        let sink = bus.sink();
        tick(
            &sink,
            5,
            &ProtoEvent::HostWakeup {
                rank: 0,
                intervention: false,
            },
        );
        // A huge quiet gap: one snapshot, not 10^6 of them.
        tick(
            &sink,
            10_000_000,
            &ProtoEvent::HostWakeup {
                rank: 0,
                intervention: false,
            },
        );
        let (_, snaps) = bus.finish();
        assert_eq!(snaps.len(), 2, "gap snapshot + tail");
    }
}
