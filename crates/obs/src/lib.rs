//! Observability: trace export, metrics-schema validation, and
//! causal-lifecycle analysis.
//!
//! `obs` sits downstream of the engine crates. It knows how to turn a
//! [`simnet::Report`] trace into a Chrome-trace / Perfetto JSON file
//! ([`chrome_trace`]) and how to validate the machine-readable metrics
//! documents that [`offload::MetricsReport::to_json`] produces against
//! the `bluefield-offload/metrics/v1` schema ([`validate_metrics`]).
//! The JSON plumbing is a tiny hand-rolled value/parser/writer
//! ([`json`]) because the build environment is offline and the
//! workspace carries no `serde`.
//!
//! The [`lifecycle`] module reconstructs per-transfer timelines and
//! group-window critical paths from the engine's causally-tagged
//! event stream (see `offload::ProtoEvent`'s `msg_id` fields), with
//! mergeable log-scaled phase histograms.

#![warn(missing_docs)]

mod chrome;
pub mod json;
pub mod lifecycle;
pub mod profile;
mod schema;
pub mod telemetry;

pub use chrome::chrome_trace;
pub use json::{parse, Json};
pub use lifecycle::{
    reconstruct, BreakerTimeline, Histogram, LifecycleRecorder, LifecycleReport, MsgTimeline,
    Phase, Residence, Segment, WindowPath, LIFECYCLE_SCHEMA_ID, PHASES,
};
pub use profile::{render_profile, ProfileDoc};
pub use schema::{
    validate_metrics, validate_profile, HEALTH_KEYS, PROFILE_SCHEMA_ID, PROFILE_SCOPES, SCHEMA_ID,
};
pub use telemetry::{TelemetryBus, TelemetrySink, TelemetrySnapshot};
