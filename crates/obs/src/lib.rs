//! Observability: trace export and metrics-schema validation.
//!
//! `obs` sits downstream of the engine crates. It knows how to turn a
//! [`simnet::Report`] trace into a Chrome-trace / Perfetto JSON file
//! ([`chrome_trace`]) and how to validate the machine-readable metrics
//! documents that [`offload::MetricsReport::to_json`] produces against
//! the `bluefield-offload/metrics/v1` schema ([`validate_metrics`]).
//! The JSON plumbing is a tiny hand-rolled value/parser/writer
//! ([`json`]) because the build environment is offline and the
//! workspace carries no `serde`.

#![warn(missing_docs)]

mod chrome;
pub mod json;
mod schema;

pub use chrome::chrome_trace;
pub use json::{parse, Json};
pub use schema::{validate_metrics, SCHEMA_ID};
