//! Bounded fixed-seed fault-soak: run the checker workloads under a
//! lossy, crashing [`offload::FaultPlan`] and demand a clean verdict
//! from every scenario.
//!
//! This is the CI entry point for the reliability layer (see ci.sh): a
//! deterministic matrix of seeds x fault plans x proxy counts, each run
//! under the conformance checker with the flight recorder armed. Any
//! failure writes a replayable dump to `target/failure-dumps/` (or
//! `$BF_FAILURE_DUMP_DIR`) and exits nonzero.
//!
//! Beyond the ctrl-plane matrix, five additional suites always run:
//!
//! * **payload** — flip/torn/silent-drop corruption on the verified
//!   stencil: every run must end byte-correct after bounded data-path
//!   retransmission (never a hang, never silent corruption);
//! * **starved** — a post burst far past a tiny admission cap, with the
//!   staging pool and FIN journal capped too: credit deferral and
//!   QueueFull nack-retry must pace the run to completion with queue
//!   depths bounded by the cap (the checker enforces it);
//! * **noisy-neighbor** — a flooding tenant against a well-behaved one
//!   at 2 and 4 proxies, clean and under a drop/dup/crash plan: the
//!   victim's p99 group-window latency must stay within the committed
//!   bound factor of its solo-run p99 (per-tenant lifecycle
//!   histograms), with every conformance invariant intact;
//! * **quota-retry** — the hard-quota shed under a lossy ctrl plane:
//!   a typed, retryable `QuotaExceeded`, never a stall;
//! * **doomed-group** — every `GroupPacket` transmit dropped:
//!   `Group_Wait` must surface a typed error instead of stalling;
//! * **armed-health** — the fabric health engine (per-path circuit
//!   breakers + retry budgets, DESIGN.md §19) armed under the classic
//!   ctrl-plane matrix, including the drop-heavy and proxy-crash
//!   plans: breakers and budgets must never get in the way of recovery
//!   the reliable layers already guarantee;
//! * **breaker-recovery** — sustained probabilistic registration
//!   failure: the cross-GVMI breaker must trip, fast-path its open
//!   window, probe, and close, with every transfer completing and the
//!   checker's breaker invariants (16/17) intact;
//! * **brownout** — a total data-plane brownout with budgets armed:
//!   both ends shed with a typed `RetryBudgetExhausted`, each shed
//!   pairing with a `ReqFailed` (invariant 18).
//!
//! `SOAK_LONG=1` additionally soaks a **flapping link** — registration
//! failure stacked on ctrl drops and a mid-window proxy crash, so
//! breakers trip, reset half-open through restart, and re-close
//! repeatedly.
//!
//! The plan can be overridden from the environment for ad-hoc soaking
//! (ctrl knobs plus the payload knobs `flip`/`torn`/`ddrop`):
//!
//! ```text
//! FAULT_PLAN=drop=100,dup=50,flip=40,torn=40,ddrop=20 \
//!     cargo run --release -p checker --bin fault_soak
//! ```
//!
//! `SOAK_LONG=1` widens the matrix (more seeds, deeper corruption
//! stacks) for nightly-style runs; the default stays CI-fast.

use checker::{
    alltoall_workload, armed_verified_stencil_workload, breaker_recovery_workload,
    brownout_workload, doomed_group_workload, noisy_victim_p99, quota_retry_workload,
    run_scenario_with_dump, starved_flood_workload, verified_stencil_workload, ConformanceConfig,
    Scenario, Workload, BREAKER_XREG_PM, NOISY_FLOOD_BURST, NOISY_P99_BOUND_FACTOR,
    STARVED_QUEUE_CAP,
};
use offload::FaultPlan;

fn default_plans() -> Vec<FaultPlan> {
    let none = FaultPlan::none();
    vec![
        // Each mechanism alone, then the combined acceptance plan:
        // 10% drop + 5% dup + delays + a mid-window proxy crash.
        FaultPlan {
            drop_pm: 100,
            ..none
        },
        FaultPlan { dup_pm: 50, ..none },
        FaultPlan {
            delay_pm: 100,
            delay_ns: 30_000,
            ..none
        },
        FaultPlan {
            xreg_fail_pm: 300,
            ..none
        },
        FaultPlan {
            drop_pm: 100,
            dup_pm: 50,
            delay_pm: 50,
            delay_ns: 10_000,
            crash_at_step: 12,
            ..none
        },
    ]
}

/// Data-plane corruption plans: each mode alone, then everything
/// stacked on a lossy ctrl plane (the data-integrity acceptance plan).
fn payload_plans(long: bool) -> Vec<FaultPlan> {
    let none = FaultPlan::none();
    let mut plans = vec![
        FaultPlan {
            flip_pm: 60,
            ..none
        },
        FaultPlan {
            torn_pm: 60,
            ..none
        },
        FaultPlan {
            data_drop_pm: 40,
            ..none
        },
        FaultPlan {
            flip_pm: 40,
            torn_pm: 40,
            data_drop_pm: 20,
            drop_pm: 50,
            ..none
        },
    ];
    if long {
        plans.push(FaultPlan {
            flip_pm: 150,
            torn_pm: 100,
            data_drop_pm: 60,
            drop_pm: 80,
            dup_pm: 40,
            ..none
        });
    }
    plans
}

/// Fault plans for the noisy-neighbor isolation suite: clean, then the
/// armed chaos plan (drops + dups + a mid-window proxy crash, forcing
/// per-tenant journal replay into the restarted proxy). `SOAK_LONG=1`
/// adds a delay-heavy plan to the matrix.
fn noisy_plans(long: bool) -> Vec<FaultPlan> {
    let none = FaultPlan::none();
    let mut plans = vec![
        none,
        FaultPlan {
            drop_pm: 100,
            dup_pm: 50,
            crash_at_step: 12,
            ..none
        },
    ];
    if long {
        plans.push(FaultPlan {
            drop_pm: 80,
            delay_pm: 100,
            delay_ns: 30_000,
            ..none
        });
    }
    plans
}

struct Tally {
    ran: usize,
    failed: usize,
}

impl Tally {
    fn record(
        &mut self,
        suite: &str,
        workload: &Workload,
        scenario: &Scenario,
        cfg: ConformanceConfig,
    ) {
        let label = format!(
            "{suite} plan={:?} seed={} jitter={}ns proxies={}",
            scenario.fault, scenario.seed, scenario.jitter_ns, scenario.proxies_per_dpu
        );
        let (outcome, dump) =
            run_scenario_with_dump(&format!("soak-{suite}"), workload, scenario, cfg);
        self.ran += 1;
        if outcome.is_ok() {
            println!("ok   {label}");
        } else {
            self.failed += 1;
            println!("FAIL {label}: {outcome:?}");
            if let Some(path) = dump {
                println!("     dump: {}", path.display());
            }
        }
    }
}

fn main() {
    let long = std::env::var("SOAK_LONG").is_ok_and(|v| v == "1");
    let seeds = if long { 8u64 } else { 4 };
    let env_plan = match FaultPlan::from_env() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("fault_soak: {e}");
            std::process::exit(2);
        }
    };
    let plans = if env_plan.is_none() {
        default_plans()
    } else {
        vec![env_plan]
    };
    let workloads: [(&str, Workload); 2] = [
        ("verified-stencil", verified_stencil_workload()),
        ("alltoall", alltoall_workload()),
    ];
    let cfg = ConformanceConfig::default();
    let mut tally = Tally { ran: 0, failed: 0 };

    // Ctrl-plane matrix (or the single env-provided plan).
    for plan in &plans {
        for (name, workload) in &workloads {
            for seed in 0..seeds {
                for proxies in [1usize, 2, 4] {
                    let scenario = Scenario {
                        seed,
                        jitter_ns: [0, 2_000][(seed % 2) as usize],
                        proxies_per_dpu: proxies,
                        fault: plan.with_seed(seed * 97 + proxies as u64),
                    };
                    tally.record(name, workload, &scenario, cfg);
                }
            }
        }
    }

    // Data-plane integrity: corruption must heal byte-correct through
    // bounded retransmission (the driver verifies the received bytes).
    if env_plan.is_none() {
        let payload = verified_stencil_workload();
        for plan in payload_plans(long) {
            for seed in 0..seeds {
                for proxies in [1usize, 2, 4] {
                    let scenario = Scenario {
                        seed,
                        jitter_ns: 0,
                        proxies_per_dpu: proxies,
                        fault: plan.with_seed(seed * 131 + proxies as u64),
                    };
                    tally.record("payload", &payload, &scenario, cfg);
                }
            }
        }

        // Backpressure: every queue capped far below the burst; the
        // checker enforces the admission cap on observed queue depths.
        let starved = starved_flood_workload();
        let starved_cfg = ConformanceConfig {
            queue_cap: STARVED_QUEUE_CAP,
            ..cfg
        };
        for seed in 0..seeds {
            for proxies in [1usize, 2, 4] {
                let scenario = Scenario {
                    seed,
                    jitter_ns: [0, 2_000][(seed % 2) as usize],
                    proxies_per_dpu: proxies,
                    fault: FaultPlan::none(),
                };
                tally.record("starved", &starved, &scenario, starved_cfg);
            }
        }

        // Tenant isolation: at 2 and 4 proxies, clean and under the
        // armed chaos plan, a flooding tenant must not inflate the
        // victim tenant's p99 group-window latency past the committed
        // bound factor of its solo-run p99 (both runs under the same
        // plan; latencies from the per-tenant lifecycle histograms).
        for plan in noisy_plans(long) {
            for seed in 0..if long { 4u64 } else { 2 } {
                for proxies in [2usize, 4] {
                    let scenario = Scenario {
                        seed,
                        jitter_ns: 0,
                        proxies_per_dpu: proxies,
                        fault: plan.with_seed(seed * 53 + proxies as u64),
                    };
                    let label = format!(
                        "noisy-neighbor plan={:?} seed={seed} proxies={proxies}",
                        scenario.fault
                    );
                    let (solo_p99, solo) = noisy_victim_p99(&scenario, 0);
                    let (noisy_p99, noisy) = noisy_victim_p99(&scenario, NOISY_FLOOD_BURST);
                    tally.ran += 1;
                    let bound = NOISY_P99_BOUND_FACTOR * solo_p99;
                    if solo.is_ok() && noisy.is_ok() && solo_p99 > 0 && noisy_p99 <= bound {
                        println!("ok   {label} (victim p99 {noisy_p99}ps <= {bound}ps)");
                    } else {
                        tally.failed += 1;
                        println!(
                            "FAIL {label}: solo={solo:?} p99={solo_p99}ps, \
                             noisy={noisy:?} p99={noisy_p99}ps bound={bound}ps"
                        );
                    }
                }
            }
        }

        // Shedding under loss: the hard-quota shed must stay a typed,
        // retryable refusal when the ctrl plane is dropping packets.
        let quota = quota_retry_workload();
        for seed in 0..seeds {
            let plan = FaultPlan {
                drop_pm: 100,
                ..FaultPlan::none()
            };
            let scenario = Scenario::baseline(seed).with_fault(plan.with_seed(seed * 7));
            tally.record("quota-retry", &quota, &scenario, cfg);
        }

        // Degradation: a doomed collective must fail typed, never stall.
        let doomed = doomed_group_workload();
        let doomed_plan = FaultPlan {
            drop_group_packets: true,
            ..FaultPlan::none()
        };
        for seed in 0..seeds {
            let scenario = Scenario::baseline(seed).with_fault(doomed_plan.with_seed(seed));
            tally.record("doomed-group", &doomed, &scenario, cfg);
        }

        // Health regression: breakers and budgets armed under the
        // classic matrix — clean, drop-heavy and proxy-crash plans
        // included — must leave every payload-verified run lossless.
        let armed = armed_verified_stencil_workload();
        let mut health_plans = vec![FaultPlan::none()];
        health_plans.extend(default_plans());
        for plan in &health_plans {
            for seed in 0..if long { 4u64 } else { 2 } {
                for proxies in [1usize, 2] {
                    let scenario = Scenario {
                        seed,
                        jitter_ns: 0,
                        proxies_per_dpu: proxies,
                        fault: plan.with_seed(seed * 61 + proxies as u64),
                    };
                    tally.record("armed-health", &armed, &scenario, cfg);
                }
            }
        }

        // Breaker trip-and-recovery: sustained probabilistic
        // registration failure must trip, fast-path, probe and close
        // without losing a transfer or an invariant.
        let recovery = breaker_recovery_workload();
        let recovery_plan = FaultPlan {
            xreg_fail_pm: BREAKER_XREG_PM,
            ..FaultPlan::none()
        };
        for seed in 0..seeds {
            for proxies in [1usize, 2] {
                let scenario = Scenario {
                    seed,
                    jitter_ns: [0, 2_000][(seed % 2) as usize],
                    proxies_per_dpu: proxies,
                    fault: recovery_plan.with_seed(seed * 41 + proxies as u64),
                };
                tally.record("breaker-recovery", &recovery, &scenario, cfg);
            }
        }

        // Brownout shedding: with the data plane dark, both ends must
        // shed typed (the driver asserts RetryBudgetExhausted) and
        // every shed must pair with a ReqFailed.
        let brownout = brownout_workload();
        let brownout_plan = FaultPlan {
            data_drop_pm: 1000,
            ..FaultPlan::none()
        };
        for seed in 0..seeds {
            let scenario = Scenario::baseline(seed).with_fault(brownout_plan.with_seed(seed * 19));
            tally.record("brownout", &brownout, &scenario, cfg);
        }

        // Flapping link (nightly): registration failure stacked on
        // ctrl drops and a mid-window proxy crash, so breakers trip,
        // reset half-open through the restart, and re-close.
        if long {
            let flapping = FaultPlan {
                xreg_fail_pm: BREAKER_XREG_PM,
                drop_pm: 80,
                crash_at_step: 12,
                ..FaultPlan::none()
            };
            for seed in 0..seeds {
                for proxies in [1usize, 2] {
                    let scenario = Scenario {
                        seed,
                        jitter_ns: 0,
                        proxies_per_dpu: proxies,
                        fault: flapping.with_seed(seed * 73 + proxies as u64),
                    };
                    tally.record("flapping-link", &recovery, &scenario, cfg);
                }
            }
        }
    }

    println!(
        "fault_soak: {} scenarios, {} failed",
        tally.ran, tally.failed
    );
    if tally.failed > 0 {
        std::process::exit(1);
    }
}
