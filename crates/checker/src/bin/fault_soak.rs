//! Bounded fixed-seed fault-soak: run the checker workloads under a
//! lossy, crashing [`offload::FaultPlan`] and demand a clean verdict
//! from every scenario.
//!
//! This is the CI entry point for the reliability layer (see ci.sh): a
//! deterministic matrix of seeds x fault plans x proxy counts, each run
//! under the conformance checker with the flight recorder armed. Any
//! failure writes a replayable dump to `target/failure-dumps/` (or
//! `$BF_FAILURE_DUMP_DIR`) and exits nonzero.
//!
//! The plan can be overridden from the environment for ad-hoc soaking:
//!
//! ```text
//! FAULT_PLAN=drop=100,dup=50,delay=50:10000,crash=12 \
//!     cargo run --release -p checker --bin fault_soak
//! ```

use checker::{
    alltoall_workload, run_scenario_with_dump, verified_stencil_workload, ConformanceConfig,
    Scenario, Workload,
};
use offload::FaultPlan;

fn default_plans() -> Vec<FaultPlan> {
    let none = FaultPlan::none();
    vec![
        // Each mechanism alone, then the combined acceptance plan:
        // 10% drop + 5% dup + delays + a mid-window proxy crash.
        FaultPlan {
            drop_pm: 100,
            ..none
        },
        FaultPlan { dup_pm: 50, ..none },
        FaultPlan {
            delay_pm: 100,
            delay_ns: 30_000,
            ..none
        },
        FaultPlan {
            xreg_fail_pm: 300,
            ..none
        },
        FaultPlan {
            drop_pm: 100,
            dup_pm: 50,
            delay_pm: 50,
            delay_ns: 10_000,
            crash_at_step: 12,
            ..none
        },
    ]
}

fn main() {
    let plans = match FaultPlan::from_env() {
        Ok(p) if !p.is_none() => vec![p],
        Ok(_) => default_plans(),
        Err(e) => {
            eprintln!("fault_soak: {e}");
            std::process::exit(2);
        }
    };
    let workloads: [(&str, Workload); 2] = [
        ("verified-stencil", verified_stencil_workload()),
        ("alltoall", alltoall_workload()),
    ];
    let cfg = ConformanceConfig::default();
    let mut ran = 0usize;
    let mut failed = 0usize;
    for plan in &plans {
        for (name, workload) in &workloads {
            for seed in 0..4u64 {
                for proxies in [1usize, 2, 4] {
                    let scenario = Scenario {
                        seed,
                        jitter_ns: [0, 2_000][(seed % 2) as usize],
                        proxies_per_dpu: proxies,
                        fault: plan.with_seed(seed * 97 + proxies as u64),
                    };
                    let label = format!(
                        "{name} plan={plan:?} seed={seed} jitter={}ns proxies={proxies}",
                        scenario.jitter_ns
                    );
                    let (outcome, dump) =
                        run_scenario_with_dump(&format!("soak-{name}"), workload, &scenario, cfg);
                    ran += 1;
                    if outcome.is_ok() {
                        println!("ok   {label}");
                    } else {
                        failed += 1;
                        println!("FAIL {label}: {outcome:?}");
                        if let Some(path) = dump {
                            println!("     dump: {}", path.display());
                        }
                    }
                }
            }
        }
    }
    println!("fault_soak: {ran} scenarios, {failed} failed");
    if failed > 0 {
        std::process::exit(1);
    }
}
