//! # checker — protocol-invariant conformance and schedule exploration
//!
//! Correctness tooling for the offload engine, independent of the
//! benchmark harness:
//!
//! * [`Conformance`] — a per-run state machine fed from the engine's
//!   structured [`offload::ProtoEvent`] stream (via a simnet
//!   [`simnet::EventSink`]) that checks the offload protocol's
//!   invariants: RTS/RTR matching, completion-before-FIN,
//!   cross-registration before mkey2 use, registration-cache coherence,
//!   at-most-once group metadata, and barrier-counter monotonicity.
//! * [`run_scenario`] / [`explore`] / [`shrink`] — rerun a workload
//!   across seeds and legal schedule perturbations (delivery jitter,
//!   proxy count), classify each run ([`Outcome`]: clean, violations,
//!   deadlock, livelock, time-limit, panic), and shrink failures to a
//!   minimal reproducer.
//!
//! The engine's [`offload::FaultInjection`] knob exists so this crate
//! can prove it detects real bugs: dropping a FIN must be reported as a
//! deadlock, skipping cross-registration as an invariant violation.
//! The probabilistic [`offload::FaultPlan`] points the same machinery
//! the other way: under seeded drop/dup/delay/crash plans the reliable
//! ctrl-plane must *recover* — every scenario of the fault-soak matrix
//! must come back [`Outcome::Ok`] with payloads intact (see
//! [`verified_stencil_workload`] and the `fault_soak` binary).

#![warn(missing_docs)]

mod conformance;
mod explore;

pub use conformance::{Conformance, ConformanceConfig, Violation};
pub use explore::{
    alltoall_workload, armed_verified_stencil_workload, breaker_recovery_workload,
    brownout_workload, deadline_workload, doomed_group_workload, explore, failure_dump_dir,
    noisy_neighbor_workload, noisy_victim_p99, quota_retry_workload, replay_dump, run_scenario,
    run_scenario_recorded, run_scenario_with_dump, shrink, starved_flood_workload,
    stencil_workload, sweep, verified_stencil_workload, write_failure_dump, Outcome, Scenario,
    Workload, BREAKER_RECOVERY_ROUNDS, BREAKER_XREG_PM, FLOOD_BURST, NOISY_FLOOD_BURST,
    NOISY_P99_BOUND_FACTOR, NOISY_QUEUE_CAP, QUOTA_RETRY_HARD, STARVED_QUEUE_CAP,
};

#[cfg(test)]
mod tests {
    use super::*;
    use offload::{FaultInjection, FaultPlan, Metrics};

    fn assert_sweep_clean(workload: &Workload, what: &str) {
        let failures = explore(
            workload,
            sweep(0..32, FaultInjection::None),
            ConformanceConfig::default(),
        );
        assert!(
            failures.is_empty(),
            "{what}: {} of 32 scenarios failed; first: {:?}",
            failures.len(),
            failures[0]
        );
    }

    #[test]
    fn stencil_sweep_32_seeds_clean() {
        assert_sweep_clean(&stencil_workload(), "stencil");
    }

    #[test]
    fn alltoall_sweep_32_seeds_clean() {
        assert_sweep_clean(&alltoall_workload(), "alltoall");
    }

    #[test]
    fn checker_observes_events() {
        let checker = Conformance::new(ConformanceConfig::default());
        let mut run = workloads::CheckRun::baseline(7);
        run.sink = Some(checker.sink());
        workloads::drive_stencil(&run, 1024, 1).expect("clean run");
        assert!(checker.events_seen() > 0, "sink saw no protocol events");
        assert!(checker.finish().is_empty());
    }

    #[test]
    fn dropped_fin_is_reported_as_deadlock() {
        let scenario = Scenario::baseline(3).with_fault(FaultInjection::DropFirstFin);
        let outcome = run_scenario(&stencil_workload(), &scenario, ConformanceConfig::default());
        assert!(
            matches!(outcome, Outcome::Deadlock(_)),
            "expected deadlock, got {outcome:?}"
        );
    }

    #[test]
    fn deadlock_dump_replays_to_same_verdict() {
        // An injected deadlock must leave a flight-recorder dump behind,
        // and replaying that dump through a fresh checker must reach the
        // same conformance verdict as the live run: no during-run
        // violations — the deadlock is the event that never happened.
        let scenario = Scenario::baseline(3).with_fault(FaultInjection::DropFirstFin);
        let (outcome, path) = run_scenario_with_dump(
            "test-dropped-fin",
            &stencil_workload(),
            &scenario,
            ConformanceConfig::default(),
        );
        assert!(
            matches!(outcome, Outcome::Deadlock(_)),
            "expected deadlock, got {outcome:?}"
        );
        let path = path.expect("failed run must leave a dump");
        let dump = std::fs::read_to_string(&path).expect("dump readable");
        assert!(dump.starts_with("# workload=test-dropped-fin outcome=deadlock"));
        let violations = replay_dump(&dump, ConformanceConfig::default()).expect("dump parses");
        assert!(
            violations.is_empty(),
            "live run recorded no during-run violations, replay must agree: {violations:?}"
        );
    }

    #[test]
    fn skipped_crossreg_dump_replays_the_violation() {
        // A run that breaks an invariant mid-flight must reproduce the
        // same violation when its dump is replayed offline.
        let scenario = Scenario::baseline(0).with_fault(FaultInjection::SkipCrossReg);
        let (outcome, recorder) =
            run_scenario_recorded(&stencil_workload(), &scenario, ConformanceConfig::default());
        let live = match outcome {
            Outcome::Violations(vs) => vs,
            other => panic!("expected violations, got {other:?}"),
        };
        assert!(live.iter().any(|v| v.invariant == "mkey2-before-crossreg"));
        let replayed =
            replay_dump(&recorder.dump(), ConformanceConfig::default()).expect("dump parses");
        assert!(
            replayed
                .iter()
                .any(|v| v.invariant == "mkey2-before-crossreg"),
            "replay lost the live violation: {replayed:?}"
        );
        assert_eq!(
            live.iter()
                .filter(|v| v.invariant == "mkey2-before-crossreg")
                .count(),
            replayed
                .iter()
                .filter(|v| v.invariant == "mkey2-before-crossreg")
                .count(),
            "replay must reproduce the violation the same number of times"
        );
    }

    /// The fault-soak plan matrix: each entry exercises one recovery
    /// mechanism in isolation, the last combines them with a mid-window
    /// proxy crash (10% drop + 5% dup + crash, the acceptance scenario).
    fn soak_plans() -> Vec<FaultPlan> {
        let none = FaultPlan::none();
        vec![
            FaultPlan {
                drop_pm: 100,
                ..none
            },
            FaultPlan { dup_pm: 50, ..none },
            FaultPlan {
                delay_pm: 100,
                delay_ns: 30_000,
                ..none
            },
            FaultPlan {
                drop_pm: 100,
                dup_pm: 50,
                delay_pm: 50,
                delay_ns: 10_000,
                crash_at_step: 12,
                ..none
            },
        ]
    }

    #[test]
    fn fault_soak_stencil_delivers_every_payload() {
        // Seeds x plans x proxy counts, with real byte movement and
        // per-round payload verification: a dropped, duplicated,
        // delayed or crash-replayed transfer must still land exactly
        // the bytes its sender wrote, and the conformance checker must
        // see every request resolve exactly once.
        let workload = verified_stencil_workload();
        let cfg = ConformanceConfig::default();
        for plan in soak_plans() {
            for seed in 0..4u64 {
                for proxies in [1usize, 2, 4] {
                    let scenario = Scenario {
                        seed,
                        jitter_ns: 0,
                        proxies_per_dpu: proxies,
                        fault: plan.with_seed(seed * 97 + proxies as u64),
                    };
                    let (outcome, dump) =
                        run_scenario_with_dump("fault-soak-stencil", &workload, &scenario, cfg);
                    assert!(
                        outcome.is_ok(),
                        "plan {plan:?} seed {seed} proxies {proxies}: {outcome:?} (dump: {dump:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn fault_soak_alltoall_survives_the_combined_plan() {
        // The group path (metadata install, exec doorbells, barrier
        // counters, group FINs) under the combined lossy plan.
        let workload = alltoall_workload();
        let cfg = ConformanceConfig::default();
        let plan = soak_plans().pop().expect("combined plan");
        for seed in 0..4u64 {
            let scenario = Scenario::baseline(seed).with_fault(plan.with_seed(seed + 1));
            let (outcome, dump) =
                run_scenario_with_dump("fault-soak-alltoall", &workload, &scenario, cfg);
            assert!(
                outcome.is_ok(),
                "plan {plan:?} seed {seed}: {outcome:?} (dump: {dump:?})"
            );
        }
    }

    #[test]
    fn clean_runs_never_touch_the_reliability_machinery() {
        // With FaultPlan::none() the reliable layer must be fully
        // dormant: no retransmissions, no duplicates, no fallbacks, no
        // restarts — byte-identical ctrl traffic to the seed engine.
        let metrics = Metrics::new();
        let mut run = workloads::CheckRun::baseline(5);
        run.sink = Some(metrics.sink());
        workloads::drive_stencil(&run, 1024, 2).expect("clean run");
        let report = metrics.report();
        assert_eq!(report.ctrl_retransmits, 0);
        assert_eq!(report.ctrl_dups_dropped, 0);
        assert_eq!(report.ctrl_abandoned, 0);
        assert_eq!(report.fallback_staging, 0);
        assert_eq!(report.proxy_restarts, 0);
        assert_eq!(report.reqs_replayed, 0);
        assert_eq!(report.req_failures, 0);
        assert_eq!(report.stale_cqes, 0);
        // The integrity/backpressure/deadline machinery must be equally
        // dormant: no CRC traffic, no nacks, no credit accounting, no
        // reclaim, no cancellations, no journal activity.
        assert_eq!(report.payload_corrupt, 0);
        assert_eq!(report.payload_recovered, 0);
        assert_eq!(report.data_integrity_failures, 0);
        assert_eq!(report.queue_full_nacks, 0);
        assert_eq!(report.credit_deferrals, 0);
        assert_eq!(report.quota_sheds, 0);
        assert_eq!(report.drr_grants, 0);
        assert!(
            report.tenants.is_empty(),
            "no tenants section single-tenant"
        );
        assert_eq!(report.staging_reclaimed, 0);
        assert_eq!(report.reqs_cancelled, 0);
        assert_eq!(report.reqs_reaped, 0);
        assert_eq!(report.group_failures, 0);
        assert_eq!(report.journal_truncations, 0);
        assert_eq!(report.journal_hwm, 0);
        // The fabric health engine (disabled by default) must be fully
        // dormant: no breaker transitions, no probes, no budget sheds.
        assert!(
            !report.health.any(),
            "a clean run must leave every health counter at zero: {:?}",
            report.health
        );
    }

    #[test]
    fn armed_health_engine_is_silent_without_faults() {
        // Arming HealthConfig on a fault-free run must change nothing:
        // breakers only transition on failures, budgets only spend on
        // retries, so every health counter stays zero and the run is
        // conformant — the gating proof that clean armed runs remain
        // counter-identical to unarmed ones.
        let metrics = Metrics::new();
        let checker = Conformance::new(ConformanceConfig::default());
        let mut run = workloads::CheckRun::baseline(5);
        run.sink = Some(workloads::fanout(vec![metrics.sink(), checker.sink()]));
        run.cfg = run.cfg.clone().with_health(offload::HealthConfig::armed());
        workloads::drive_stencil(&run, 1024, 2).expect("clean armed run");
        assert!(checker.finish().is_empty());
        let report = metrics.report();
        assert!(
            !report.health.any(),
            "an armed engine on a clean link must stay silent: {:?}",
            report.health
        );
        assert_eq!(report.fallback_staging, 0);
        assert_eq!(report.req_failures, 0);
    }

    #[test]
    fn open_breaker_stops_per_message_fallback_round_trips() {
        // The tentpole acceptance gate: under sustained cross-GVMI
        // registration failure the armed breaker must trip and reroute
        // open-state posts straight to staging (BreakerFastPath, no
        // registration attempt), so per-message FallbackToStaging
        // round-trips collapse to the probe cadence — bounded by one
        // per probe plus the pre-trip sliding window — instead of one
        // per failed registration, which over BREAKER_RECOVERY_ROUNDS
        // fresh-buffer posts at BREAKER_XREG_PM would dwarf the bound.
        let metrics = Metrics::new();
        let checker = Conformance::new(ConformanceConfig::default());
        let mut run = workloads::CheckRun::baseline(37);
        run.sink = Some(workloads::fanout(vec![metrics.sink(), checker.sink()]));
        run.cfg = run
            .cfg
            .clone()
            .with_fault(FaultPlan {
                xreg_fail_pm: BREAKER_XREG_PM,
                seed: 11,
                ..FaultPlan::none()
            })
            .with_health(offload::HealthConfig::armed());
        workloads::drive_breaker_recovery(&run, 1024, BREAKER_RECOVERY_ROUNDS)
            .expect("degraded-mode run completes");
        assert!(
            checker.finish().is_empty(),
            "degraded mode must stay conformant"
        );
        let report = metrics.report();
        let h = report.health;
        assert!(h.breaker_trips > 0, "sustained failure must trip: {h:?}");
        assert!(
            h.breaker_fastpaths > 0,
            "open-state posts must reroute without registration: {h:?}"
        );
        assert_eq!(
            h.breaker_probes, h.breaker_half_opens,
            "every half-open admits exactly one probe"
        );
        let window = offload::HealthConfig::armed().window as u64;
        assert!(
            report.fallback_staging <= h.breaker_probes + window,
            "fallback round-trips ({}) must collapse to the probe cadence \
             ({} probes + {window} pre-trip window)",
            report.fallback_staging,
            h.breaker_probes
        );
        assert_eq!(report.req_failures, 0, "degradation loses no requests");
        assert_eq!(
            h.retry_budget_sheds, 0,
            "registration faults spend no budget"
        );
    }

    #[test]
    fn tripped_breaker_recovers_and_closes() {
        // The recovery half of the state machine: with a probabilistic
        // registration fault, the open breaker's cooldown burns down on
        // rerouted posts, a half-open probe eventually rolls a success,
        // and the breaker closes — with zero residual typed failures.
        let metrics = Metrics::new();
        let checker = Conformance::new(ConformanceConfig::default());
        let mut run = workloads::CheckRun::baseline(53);
        run.sink = Some(workloads::fanout(vec![metrics.sink(), checker.sink()]));
        run.cfg = run
            .cfg
            .clone()
            .with_fault(FaultPlan {
                xreg_fail_pm: 500,
                seed: 17,
                ..FaultPlan::none()
            })
            .with_health(offload::HealthConfig::armed());
        workloads::drive_breaker_recovery(&run, 1024, 64).expect("recovery run completes");
        assert!(checker.finish().is_empty());
        let report = metrics.report();
        let h = report.health;
        assert!(h.breaker_trips > 0, "the breaker must trip first: {h:?}");
        assert!(
            h.breaker_closes > 0,
            "a successful probe must close the breaker: {h:?}"
        );
        assert_eq!(
            report.req_failures, 0,
            "recovery leaves no residual failures"
        );
        assert_eq!(
            h.retry_budget_sheds, 0,
            "no budget spends on registration faults"
        );
    }

    #[test]
    fn brownout_sheds_typed_and_surfaces_exactly_once() {
        // A total data-plane brownout with the health engine armed: the
        // per-peer retry budget (smaller than data_retx_max) runs dry
        // first, both ends surface a typed RetryBudgetExhausted (the
        // driver asserts the variant), every shed pairs with a
        // ReqFailed (invariant 18), and the retransmission budget never
        // gets to exhaust — the shed preempts the grind.
        let metrics = Metrics::new();
        let checker = Conformance::new(ConformanceConfig::default());
        let mut run = workloads::CheckRun::baseline(43);
        run.move_bytes = true;
        run.sink = Some(workloads::fanout(vec![metrics.sink(), checker.sink()]));
        run.cfg = run
            .cfg
            .clone()
            .with_fault(FaultPlan {
                data_drop_pm: 1000,
                seed: 13,
                ..FaultPlan::none()
            })
            .with_health(offload::HealthConfig::armed());
        workloads::drive_brownout(&run, 4096).expect("brownout run sheds cleanly");
        let vs = checker.finish();
        assert!(
            vs.is_empty(),
            "every budget shed must surface as a typed ReqFailed: {vs:?}"
        );
        let report = metrics.report();
        let h = report.health;
        assert!(
            h.retry_budget_sheds >= 2,
            "both ends of the doomed pair must shed: {h:?}"
        );
        assert_eq!(
            report.data_integrity_failures, 0,
            "the budget sheds before the retx budget runs dry"
        );
        assert_eq!(
            report.req_failures, 2,
            "exactly the matched pair fails, nothing else"
        );
    }

    #[test]
    fn fault_soak_with_armed_health_stays_lossless() {
        // The regression half of the health story: arming breakers and
        // budgets under the classic lossy/crashy soak plans — whose
        // failure rates sit far below the budget thresholds — must not
        // convert any previously-recovered run into a shed or a breaker
        // detour that loses data. Every payload still lands intact.
        let workload = armed_verified_stencil_workload();
        let cfg = ConformanceConfig::default();
        for plan in soak_plans() {
            for seed in 0..2u64 {
                let scenario = Scenario {
                    seed,
                    jitter_ns: 0,
                    proxies_per_dpu: 1 + (seed as usize % 2),
                    fault: plan.with_seed(seed * 61 + 7),
                };
                let (outcome, dump) =
                    run_scenario_with_dump("armed-health-soak", &workload, &scenario, cfg);
                assert!(
                    outcome.is_ok(),
                    "plan {plan:?} seed {seed}: {outcome:?} (dump: {dump:?})"
                );
            }
        }
    }

    #[test]
    fn health_invariants_catch_synthesized_violations() {
        // The checker side of the health tentpole, against a
        // hand-synthesized stream: each of the new invariants must fire
        // on its canonical violation and stay quiet on the legal
        // sequences in between.
        use offload::{HealthPath, ProtoEvent};
        use simnet::{Pid, SimTime};
        let checker = Conformance::new(ConformanceConfig::default());
        let sink = checker.sink();
        let pid = Pid::from_index(0);
        let at = SimTime::ZERO;
        let path = HealthPath::CrossGvmi;
        // Fast-path citing a breaker that is not open.
        sink(
            at,
            pid,
            &ProtoEvent::BreakerFastPath {
                peer: 1,
                path,
                msg_id: 1,
            },
        );
        // Probe without a half-open transition.
        sink(
            at,
            pid,
            &ProtoEvent::BreakerProbe {
                peer: 1,
                path,
                msg_id: 2,
            },
        );
        // Trip: the tripping post's own fallback is exempt (grace), the
        // next one over the still-open breaker is the violation.
        sink(at, pid, &ProtoEvent::BreakerTripped { peer: 1, path });
        let fb = |msg_id: u64| ProtoEvent::FallbackToStaging {
            src_rank: 1,
            dst_rank: 0,
            tag: 0,
            msg_id,
        };
        sink(at, pid, &fb(3)); // grace: legal
        sink(at, pid, &fb(4)); // post-over-open-breaker
                               // Legal fast-path while open, then half-open admitting two probes.
        sink(
            at,
            pid,
            &ProtoEvent::BreakerFastPath {
                peer: 1,
                path,
                msg_id: 5,
            },
        );
        sink(at, pid, &ProtoEvent::BreakerHalfOpen { peer: 1, path });
        sink(
            at,
            pid,
            &ProtoEvent::BreakerProbe {
                peer: 1,
                path,
                msg_id: 6,
            },
        );
        sink(
            at,
            pid,
            &ProtoEvent::BreakerProbe {
                peer: 1,
                path,
                msg_id: 7,
            },
        );
        // A budget shed that never surfaces as a ReqFailed.
        sink(
            at,
            pid,
            &ProtoEvent::RetryBudgetExhausted {
                rank: 0,
                msg_id: 8,
                path: HealthPath::Ctrl,
            },
        );
        let vs = checker.finish();
        let count = |name: &str| vs.iter().filter(|v| v.invariant == name).count();
        assert_eq!(count("fastpath-without-open-breaker"), 1, "{vs:?}");
        assert_eq!(count("probe-without-half-open"), 1, "{vs:?}");
        assert_eq!(count("post-over-open-breaker"), 1, "{vs:?}");
        assert_eq!(count("half-open-multi-probe"), 1, "{vs:?}");
        assert_eq!(count("budget-shed-unsurfaced"), 1, "{vs:?}");
    }

    #[test]
    fn lossy_runs_record_retransmissions_and_crashes_record_restarts() {
        let metrics = Metrics::new();
        let checker = Conformance::new(ConformanceConfig::default());
        let mut run = workloads::CheckRun::baseline(9);
        run.sink = Some(workloads::fanout(vec![metrics.sink(), checker.sink()]));
        run.cfg = run.cfg.clone().with_fault(FaultPlan {
            drop_pm: 150,
            crash_at_step: 12,
            seed: 3,
            ..FaultPlan::none()
        });
        workloads::drive_stencil(&run, 1024, 2).expect("recovered run");
        assert!(
            checker.finish().is_empty(),
            "recovery must not break invariants"
        );
        let report = metrics.report();
        assert!(
            report.ctrl_retransmits > 0,
            "a 15% drop rate must force retransmissions"
        );
        assert!(
            report.proxy_restarts > 0,
            "crash_at_step must restart at least one proxy"
        );
        assert!(
            report.reqs_replayed > 0,
            "hosts must replay in-flight work into the restarted proxy"
        );
    }

    #[test]
    fn xreg_failure_falls_back_to_staging_and_completes() {
        let metrics = Metrics::new();
        let checker = Conformance::new(ConformanceConfig::default());
        let mut run = workloads::CheckRun::baseline(21);
        run.sink = Some(workloads::fanout(vec![metrics.sink(), checker.sink()]));
        run.cfg = run.cfg.clone().with_fault(FaultPlan {
            xreg_fail_pm: 400,
            seed: 7,
            ..FaultPlan::none()
        });
        workloads::drive_stencil(&run, 1024, 2).expect("fallback run");
        assert!(checker.finish().is_empty(), "fallback is not a violation");
        let report = metrics.report();
        assert!(
            report.fallback_staging > 0,
            "a 40% registration-failure rate must trigger the staging fallback"
        );
        assert_eq!(report.ctrl_retransmits, 0, "fallback alone arms no retx");
    }

    /// Data-plane fault plans for the payload soaks: each corruption
    /// mode alone, then all three stacked on a lossy ctrl plane.
    fn payload_plans() -> Vec<FaultPlan> {
        let none = FaultPlan::none();
        vec![
            FaultPlan {
                flip_pm: 60,
                ..none
            },
            FaultPlan {
                torn_pm: 60,
                ..none
            },
            FaultPlan {
                data_drop_pm: 40,
                ..none
            },
            FaultPlan {
                flip_pm: 40,
                torn_pm: 40,
                data_drop_pm: 20,
                drop_pm: 50,
                ..none
            },
        ]
    }

    #[test]
    fn payload_faults_recover_byte_correct() {
        // Corrupted, torn or silently dropped payloads must be caught by
        // the end-to-end CRC at FIN time and healed by bounded data-path
        // retransmission: every run completes with the receiver-side
        // byte verification of drive_verified_stencil passing and every
        // conformance invariant (including fin-after-corrupt) intact.
        let workload = verified_stencil_workload();
        let cfg = ConformanceConfig::default();
        for plan in payload_plans() {
            for seed in 0..3u64 {
                for proxies in [1usize, 2] {
                    let scenario = Scenario {
                        seed,
                        jitter_ns: 0,
                        proxies_per_dpu: proxies,
                        fault: plan.with_seed(seed * 131 + proxies as u64),
                    };
                    let (outcome, dump) =
                        run_scenario_with_dump("payload-soak", &workload, &scenario, cfg);
                    assert!(
                        outcome.is_ok(),
                        "plan {plan:?} seed {seed} proxies {proxies}: {outcome:?} (dump: {dump:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn payload_faults_are_detected_and_healed_with_bounded_retx() {
        // A high flip rate must actually exercise the machinery: corrupt
        // detections, successful recoveries, zero budget exhaustions —
        // and the observability counters must record all of it.
        let metrics = Metrics::new();
        let checker = Conformance::new(ConformanceConfig::default());
        let mut run = workloads::CheckRun::baseline(33);
        run.move_bytes = true;
        run.sink = Some(workloads::fanout(vec![metrics.sink(), checker.sink()]));
        run.cfg = run.cfg.clone().with_fault(FaultPlan {
            flip_pm: 250,
            seed: 5,
            ..FaultPlan::none()
        });
        workloads::drive_verified_stencil(&run, 2048, 3).expect("healed run");
        assert!(
            checker.finish().is_empty(),
            "integrity recovery must not break invariants"
        );
        let report = metrics.report();
        assert!(
            report.payload_corrupt > 0,
            "a 25% flip rate must corrupt at least one payload"
        );
        assert!(
            report.payload_recovered > 0,
            "corrupt payloads must be healed by retransmission"
        );
        assert_eq!(
            report.data_integrity_failures, 0,
            "the retransmission budget is ample for a 25% flip rate"
        );
    }

    #[test]
    fn credit_starvation_completes_without_unbounded_queues() {
        // A burst far past the admission cap must finish through credit
        // deferral and QueueFull nack-retry, with proxy queue depths
        // bounded by the cap the whole way (invariant 12).
        let workload = starved_flood_workload();
        let cfg = ConformanceConfig {
            queue_cap: STARVED_QUEUE_CAP,
            ..ConformanceConfig::default()
        };
        for seed in 0..3u64 {
            for proxies in [1usize, 2] {
                let scenario = Scenario {
                    seed,
                    jitter_ns: 0,
                    proxies_per_dpu: proxies,
                    fault: FaultPlan::none(),
                };
                let (outcome, dump) =
                    run_scenario_with_dump("credit-starved", &workload, &scenario, cfg);
                assert!(
                    outcome.is_ok(),
                    "seed {seed} proxies {proxies}: {outcome:?} (dump: {dump:?})"
                );
            }
        }
    }

    #[test]
    fn credit_starvation_exercises_deferral_and_reclaim() {
        let metrics = Metrics::new();
        let mut run = workloads::CheckRun::baseline(41);
        run.sink = Some(metrics.sink());
        run.cfg = run
            .cfg
            .clone()
            .with_queue_cap(STARVED_QUEUE_CAP)
            .with_staging_cap(4)
            .with_journal_cap(8);
        workloads::drive_flood(&run, 1024, FLOOD_BURST).expect("starved run completes");
        let report = metrics.report();
        assert!(
            report.credit_deferrals > 0,
            "a {FLOOD_BURST}-deep burst against a {STARVED_QUEUE_CAP}-credit window must defer"
        );
        assert!(
            report.journal_truncations > 0,
            "an 8-entry journal cap must truncate under {FLOOD_BURST} transfers per rank"
        );
        assert!(
            report.journal_hwm < 2 * (report.fin_send + report.fin_recv),
            "journal high-water mark must stay far below total FIN volume"
        );
    }

    #[test]
    fn doomed_group_surfaces_typed_error_not_a_stall() {
        // Satellite of the CtrlAbandoned fix: when every GroupPacket
        // transmit is dropped, Group_Wait must return
        // OffloadError::GroupFailed (the driver asserts the variant) and
        // the abandonment must surface as a GroupFailed event — the
        // run classifies Ok, not TimeLimit/Deadlock.
        let workload = doomed_group_workload();
        let plan = FaultPlan {
            drop_group_packets: true,
            ..FaultPlan::none()
        };
        for seed in 0..3u64 {
            let scenario = Scenario::baseline(seed).with_fault(plan.with_seed(seed));
            let (outcome, dump) = run_scenario_with_dump(
                "doomed-group",
                &workload,
                &scenario,
                ConformanceConfig::default(),
            );
            assert!(outcome.is_ok(), "seed {seed}: {outcome:?} (dump: {dump:?})");
        }
        // Counter plumbing for the same run shape.
        let metrics = Metrics::new();
        let mut run = workloads::CheckRun::baseline(2);
        run.sink = Some(metrics.sink());
        run.cfg = run.cfg.clone().with_fault(plan.with_seed(9));
        workloads::drive_group_abandon(&run, 1024).expect("typed failure, clean exit");
        let report = metrics.report();
        assert!(report.ctrl_abandoned > 0, "group packets must be abandoned");
        assert!(
            report.group_failures > 0,
            "abandonment must surface as GroupFailed"
        );
    }

    #[test]
    fn unsurfaced_group_abandonment_is_a_violation() {
        // The checker side of the same satellite: a synthesized stream
        // where a host abandons a GroupPacket and no GroupFailed ever
        // follows must trip group-abandon-unsurfaced at end of run.
        use offload::CtrlKind;
        use simnet::{Pid, SimTime};
        let checker = Conformance::new(ConformanceConfig::default());
        let sink = checker.sink();
        sink(
            SimTime::ZERO,
            Pid::from_index(0),
            &offload::ProtoEvent::CtrlAbandoned {
                at_proxy: false,
                kind: CtrlKind::GroupPacket,
                msg_id: 0,
            },
        );
        let violations = checker.finish();
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == "group-abandon-unsurfaced"),
            "expected group-abandon-unsurfaced, got {violations:?}"
        );
    }

    #[test]
    fn deadlines_and_cancellation_surface_typed_errors() {
        // Orphan transfers expire or cancel with typed errors (asserted
        // inside drive_deadline); the proxy reaps their descriptors and
        // the matched exchange on the same ranks is untouched.
        let workload = deadline_workload();
        for seed in 0..3u64 {
            let scenario = Scenario::baseline(seed);
            let (outcome, dump) = run_scenario_with_dump(
                "deadline-cancel",
                &workload,
                &scenario,
                ConformanceConfig::default(),
            );
            assert!(outcome.is_ok(), "seed {seed}: {outcome:?} (dump: {dump:?})");
        }
        let metrics = Metrics::new();
        let mut run = workloads::CheckRun::baseline(3);
        run.sink = Some(metrics.sink());
        workloads::drive_deadline(&run, 1024).expect("deadline run completes");
        let report = metrics.report();
        assert_eq!(
            report.reqs_cancelled, 2,
            "one deadline expiry plus one explicit cancel"
        );
        assert!(
            report.reqs_reaped >= 1,
            "the proxy must reap at least one orphaned descriptor"
        );
    }

    #[test]
    fn noisy_neighbor_keeps_victim_p99_within_bound() {
        // The tenant-isolation acceptance gate: at 2 and 4 proxies per
        // DPU, a flooding tenant must not inflate the victim tenant's
        // p99 group-window latency beyond the committed bound factor of
        // its solo-run p99 — measured from the per-tenant lifecycle
        // histograms, with every conformance invariant intact in both
        // runs.
        for proxies in [2usize, 4] {
            let scenario = Scenario {
                seed: 1,
                jitter_ns: 0,
                proxies_per_dpu: proxies,
                fault: FaultPlan::none(),
            };
            let (solo_p99, solo) = noisy_victim_p99(&scenario, 0);
            assert!(solo.is_ok(), "proxies {proxies} solo: {solo:?}");
            assert!(solo_p99 > 0, "solo run must close victim windows");
            let (noisy_p99, noisy) = noisy_victim_p99(&scenario, NOISY_FLOOD_BURST);
            assert!(noisy.is_ok(), "proxies {proxies} noisy: {noisy:?}");
            assert!(noisy_p99 > 0, "noisy run must close victim windows");
            assert!(
                noisy_p99 <= NOISY_P99_BOUND_FACTOR * solo_p99,
                "proxies {proxies}: noisy victim p99 {noisy_p99}ps breaches \
                 {NOISY_P99_BOUND_FACTOR}x solo p99 {solo_p99}ps"
            );
        }
    }

    #[test]
    fn noisy_neighbor_arms_the_per_tenant_machinery() {
        // The flood must actually hit the per-tenant admission path —
        // deferrals and DRR grants — and the folded report must carry a
        // per-tenant section attributing the aggressor's deferrals to
        // tenant 1, not the victim.
        use offload::TenantSpec;
        let cfg = offload::OffloadConfig::proposed()
            .with_queue_cap(NOISY_QUEUE_CAP)
            .with_tenants(vec![TenantSpec::inherit(), TenantSpec::inherit()]);
        let metrics = Metrics::new();
        metrics.set_tenant_map((0..4).map(|r| (r, cfg.tenant_of(r))).collect());
        let mut run = workloads::CheckRun::baseline(23);
        run.sink = Some(metrics.sink());
        run.cfg = cfg;
        workloads::drive_noisy_neighbor(&run, 4096, 3, 1024, NOISY_FLOOD_BURST)
            .expect("noisy run completes");
        let report = metrics.report();
        assert!(report.credit_deferrals > 0, "the burst must defer");
        assert!(report.drr_grants > 0, "deferred posts must drain via DRR");
        assert_eq!(report.quota_sheds, 0, "no hard quota is armed");
        assert_eq!(report.tenants.len(), 2, "two tenant rows");
        let aggressor = &report.tenants[1];
        assert!(
            aggressor.credit_deferrals > 0,
            "deferrals attribute to the flooding tenant"
        );
        assert_eq!(
            report.tenants[0].credit_deferrals, 0,
            "the victim's window traffic never defers"
        );
    }

    #[test]
    fn quota_exceeded_sheds_then_retries_to_success() {
        // Satellite of the tenant tentpole: the hard-quota boundary is
        // exact (drive_quota_retry admits exactly `hard` posts, sheds
        // the next), the shed surfaces as a typed QuotaExceeded, and
        // the retry completes — on a clean link and under a lossy plan
        // whose retransmissions must not double-count quota slots.
        let workload = quota_retry_workload();
        let lossy = FaultPlan {
            drop_pm: 100,
            ..FaultPlan::none()
        };
        for (what, fault) in [("clean", FaultPlan::none()), ("lossy", lossy)] {
            for seed in 0..3u64 {
                let scenario = Scenario::baseline(seed).with_fault(fault.with_seed(seed + 5));
                let (outcome, dump) = run_scenario_with_dump(
                    "quota-retry",
                    &workload,
                    &scenario,
                    ConformanceConfig::default(),
                );
                assert!(
                    outcome.is_ok(),
                    "{what} seed {seed}: {outcome:?} (dump: {dump:?})"
                );
            }
        }
        // Counter plumbing for the same shape: exactly one shed on the
        // sender, attributed to tenant 1, surfaced nowhere else.
        use offload::TenantSpec;
        let cfg = offload::OffloadConfig::proposed().with_tenants(vec![
            TenantSpec::inherit(),
            TenantSpec::inherit().with_hard_quota(QUOTA_RETRY_HARD),
        ]);
        let metrics = Metrics::new();
        metrics.set_tenant_map((0..4).map(|r| (r, cfg.tenant_of(r))).collect());
        let mut run = workloads::CheckRun::baseline(29);
        run.sink = Some(metrics.sink());
        run.cfg = cfg;
        workloads::drive_quota_retry(&run, 1024).expect("shed-then-retry run");
        let report = metrics.report();
        assert_eq!(report.quota_sheds, 1, "exactly one over-quota post");
        assert_eq!(report.req_failures, 1, "the shed is the only failure");
        assert_eq!(report.tenants[1].quota_sheds, 1, "shed lands on tenant 1");
        assert_eq!(report.tenants[0].quota_sheds, 0, "tenant 0 never sheds");
    }

    #[test]
    fn zero_quota_specs_inherit_the_global_cap() {
        // A roster of all-inherit specs must take its soft quota from
        // the global cap (quota 0 = inherit) and shed nothing (hard
        // quota 0 = never shed): the starved flood still completes
        // through deferral, exactly like the single-tenant engine.
        use offload::TenantSpec;
        let drive = |tenants: Vec<TenantSpec>| {
            let metrics = Metrics::new();
            let mut run = workloads::CheckRun::baseline(31);
            run.sink = Some(metrics.sink());
            run.cfg = run
                .cfg
                .clone()
                .with_queue_cap(STARVED_QUEUE_CAP)
                .with_tenants(tenants);
            workloads::drive_flood(&run, 1024, FLOOD_BURST).expect("flood completes");
            metrics.report()
        };
        let single = drive(vec![]);
        let inherit = drive(vec![TenantSpec::inherit(), TenantSpec::inherit()]);
        assert_eq!(single.quota_sheds, 0);
        assert_eq!(inherit.quota_sheds, 0, "inherit specs never shed");
        assert!(
            inherit.credit_deferrals > 0,
            "the inherited global cap still defers the burst"
        );
        assert_eq!(single.req_failures, 0);
        assert_eq!(inherit.req_failures, 0);
    }

    #[test]
    fn skipped_crossreg_is_caught_and_shrunk() {
        let workload = stencil_workload();
        let cfg = ConformanceConfig::default();
        let failures = explore(&workload, sweep(17..21, FaultInjection::SkipCrossReg), cfg);
        assert_eq!(failures.len(), 4, "every faulty scenario must fail");
        let (first, _) = failures[0].clone();
        let (min, outcome) = shrink(&workload, first, cfg);
        assert_eq!(min.seed, 0, "fault fires on every seed, so 0 is minimal");
        assert_eq!(min.jitter_ns, 0);
        assert_eq!(min.proxies_per_dpu, 1);
        match outcome {
            Outcome::Violations(vs) => {
                assert!(
                    vs.iter().any(|v| v.invariant == "mkey2-before-crossreg"),
                    "expected mkey2-before-crossreg, got {vs:?}"
                );
            }
            other => panic!("expected violations, got {other:?}"),
        }
    }
}
