//! # checker — protocol-invariant conformance and schedule exploration
//!
//! Correctness tooling for the offload engine, independent of the
//! benchmark harness:
//!
//! * [`Conformance`] — a per-run state machine fed from the engine's
//!   structured [`offload::ProtoEvent`] stream (via a simnet
//!   [`simnet::EventSink`]) that checks the offload protocol's
//!   invariants: RTS/RTR matching, completion-before-FIN,
//!   cross-registration before mkey2 use, registration-cache coherence,
//!   at-most-once group metadata, and barrier-counter monotonicity.
//! * [`run_scenario`] / [`explore`] / [`shrink`] — rerun a workload
//!   across seeds and legal schedule perturbations (delivery jitter,
//!   proxy count), classify each run ([`Outcome`]: clean, violations,
//!   deadlock, livelock, time-limit, panic), and shrink failures to a
//!   minimal reproducer.
//!
//! The engine's [`offload::FaultInjection`] knob exists so this crate
//! can prove it detects real bugs: dropping a FIN must be reported as a
//! deadlock, skipping cross-registration as an invariant violation.

#![warn(missing_docs)]

mod conformance;
mod explore;

pub use conformance::{Conformance, ConformanceConfig, Violation};
pub use explore::{
    alltoall_workload, explore, failure_dump_dir, replay_dump, run_scenario, run_scenario_recorded,
    run_scenario_with_dump, shrink, stencil_workload, sweep, write_failure_dump, Outcome, Scenario,
    Workload,
};

#[cfg(test)]
mod tests {
    use super::*;
    use offload::FaultInjection;

    fn assert_sweep_clean(workload: &Workload, what: &str) {
        let failures = explore(
            workload,
            sweep(0..32, FaultInjection::None),
            ConformanceConfig::default(),
        );
        assert!(
            failures.is_empty(),
            "{what}: {} of 32 scenarios failed; first: {:?}",
            failures.len(),
            failures[0]
        );
    }

    #[test]
    fn stencil_sweep_32_seeds_clean() {
        assert_sweep_clean(&stencil_workload(), "stencil");
    }

    #[test]
    fn alltoall_sweep_32_seeds_clean() {
        assert_sweep_clean(&alltoall_workload(), "alltoall");
    }

    #[test]
    fn checker_observes_events() {
        let checker = Conformance::new(ConformanceConfig::default());
        let mut run = workloads::CheckRun::baseline(7);
        run.sink = Some(checker.sink());
        workloads::drive_stencil(&run, 1024, 1).expect("clean run");
        assert!(checker.events_seen() > 0, "sink saw no protocol events");
        assert!(checker.finish().is_empty());
    }

    #[test]
    fn dropped_fin_is_reported_as_deadlock() {
        let scenario = Scenario::baseline(3).with_fault(FaultInjection::DropFirstFin);
        let outcome = run_scenario(&stencil_workload(), &scenario, ConformanceConfig::default());
        assert!(
            matches!(outcome, Outcome::Deadlock(_)),
            "expected deadlock, got {outcome:?}"
        );
    }

    #[test]
    fn deadlock_dump_replays_to_same_verdict() {
        // An injected deadlock must leave a flight-recorder dump behind,
        // and replaying that dump through a fresh checker must reach the
        // same conformance verdict as the live run: no during-run
        // violations — the deadlock is the event that never happened.
        let scenario = Scenario::baseline(3).with_fault(FaultInjection::DropFirstFin);
        let (outcome, path) = run_scenario_with_dump(
            "test-dropped-fin",
            &stencil_workload(),
            &scenario,
            ConformanceConfig::default(),
        );
        assert!(
            matches!(outcome, Outcome::Deadlock(_)),
            "expected deadlock, got {outcome:?}"
        );
        let path = path.expect("failed run must leave a dump");
        let dump = std::fs::read_to_string(&path).expect("dump readable");
        assert!(dump.starts_with("# workload=test-dropped-fin outcome=deadlock"));
        let violations = replay_dump(&dump, ConformanceConfig::default()).expect("dump parses");
        assert!(
            violations.is_empty(),
            "live run recorded no during-run violations, replay must agree: {violations:?}"
        );
    }

    #[test]
    fn skipped_crossreg_dump_replays_the_violation() {
        // A run that breaks an invariant mid-flight must reproduce the
        // same violation when its dump is replayed offline.
        let scenario = Scenario::baseline(0).with_fault(FaultInjection::SkipCrossReg);
        let (outcome, recorder) =
            run_scenario_recorded(&stencil_workload(), &scenario, ConformanceConfig::default());
        let live = match outcome {
            Outcome::Violations(vs) => vs,
            other => panic!("expected violations, got {other:?}"),
        };
        assert!(live.iter().any(|v| v.invariant == "mkey2-before-crossreg"));
        let replayed =
            replay_dump(&recorder.dump(), ConformanceConfig::default()).expect("dump parses");
        assert!(
            replayed
                .iter()
                .any(|v| v.invariant == "mkey2-before-crossreg"),
            "replay lost the live violation: {replayed:?}"
        );
        assert_eq!(
            live.iter()
                .filter(|v| v.invariant == "mkey2-before-crossreg")
                .count(),
            replayed
                .iter()
                .filter(|v| v.invariant == "mkey2-before-crossreg")
                .count(),
            "replay must reproduce the violation the same number of times"
        );
    }

    #[test]
    fn skipped_crossreg_is_caught_and_shrunk() {
        let workload = stencil_workload();
        let cfg = ConformanceConfig::default();
        let failures = explore(&workload, sweep(17..21, FaultInjection::SkipCrossReg), cfg);
        assert_eq!(failures.len(), 4, "every faulty scenario must fail");
        let (first, _) = failures[0].clone();
        let (min, outcome) = shrink(&workload, first, cfg);
        assert_eq!(min.seed, 0, "fault fires on every seed, so 0 is minimal");
        assert_eq!(min.jitter_ns, 0);
        assert_eq!(min.proxies_per_dpu, 1);
        match outcome {
            Outcome::Violations(vs) => {
                assert!(
                    vs.iter().any(|v| v.invariant == "mkey2-before-crossreg"),
                    "expected mkey2-before-crossreg, got {vs:?}"
                );
            }
            other => panic!("expected violations, got {other:?}"),
        }
    }
}
