//! The protocol conformance checker: a per-run state machine fed from the
//! offload engine's structured [`ProtoEvent`] stream.
//!
//! The checker is an [`EventSink`] observer — it never touches engine
//! state and never panics on a violation; it records [`Violation`]s and
//! lets the caller decide what a failure means (a test assertion, an
//! explorer outcome, a report line).
//!
//! ## Invariants checked
//!
//! 1. **Matching** — a proxy may only declare `PairMatched` for a
//!    `(src, dst, tag)` flow when it has seen at least that many RTS *and*
//!    RTR messages; at end of run every RTS/RTR is matched.
//! 2. **Completion before FIN** — every `FinSend`/`FinRecv` refers to an
//!    RDMA operation whose completion the proxy has observed; every
//!    completion refers to a posted operation.
//! 3. **Cross-registration before use** — an `mkey2` may drive a transfer
//!    only after a `CrossReg` produced it.
//! 4. **Cache coherence** — a cross-registration cache hit must return
//!    exactly the `(mkey, mkey2)` pair the latest registration of that
//!    `(rank, addr, len)` produced.
//! 5. **At-most-once metadata** — receive metadata is sent at most once
//!    per `(from, to, req)` triple; with the group cache enabled, the full
//!    group packet is shipped at most once per `(host, req)`.
//! 6. **Barrier monotonicity** — barrier counters written along one
//!    `(src, dst-instance)` edge are strictly increasing in `(gen, value)`.
//! 7. **Message-id causality** — `PairMatched` may only cite transfer ids
//!    the proxy has seen in an RTS (send side) and an RTR (recv side);
//!    a `HostReqDone` must cite an id some `HostReqPosted` introduced.
//! 8. **Group FIN identity** — group FINs carry a real, never-reused work
//!    request id from the proxy's wr namespace (never the `0` sentinel,
//!    never a data-write wrid).
//! 9. **Exactly-once app completion** — `HostReqDone` fires at most once
//!    per transfer id, no matter how many duplicate FINs the fault plan
//!    manufactures on the wire.
//! 10. **Every request resolves** — at end of run each `HostReqPosted`
//!     transfer id has either a `HostReqDone`, a typed `ReqFailed`, or a
//!     `ReqCancelled`; requests never vanish into a crashed proxy.
//! 11. **No FIN over a corrupt payload** — a `Send`/`Recv` FIN may not
//!     cite a transfer whose last delivery attempt failed CRC
//!     verification (`PayloadCorrupt` without a later `PayloadRecovered`)
//!     or whose retransmission budget is exhausted
//!     (`DataIntegrityFailed`); at end of run no corruption is left
//!     unresolved.
//! 12. **Bounded queues stay bounded** — with an admission cap
//!     configured, `ProxyQueueDepth` never reports more queued
//!     descriptors than the cap.
//! 13. **No completion after cancel** — once a rank emits `ReqCancelled`
//!     for a transfer id, `HostReqDone` for that id is a violation (late
//!     FINs must be swallowed).
//! 14. **Group abandonment surfaces** — a host-side `CtrlAbandoned` of a
//!     group ctrl message must be followed by a `GroupFailed` — or by a
//!     successful `GroupWaitDone`, which restart replay can legitimately
//!     produce — before the end of the run (`Group_Wait` returns a typed
//!     error, never stalls).
//! 15. **Quota sheds surface as typed failures** — a `QuotaShed` (and a
//!     `DrrGrant`) may only cite a transfer id some `HostReqPosted`
//!     introduced, and by end of run every shed transfer has a
//!     `ReqFailed` — overload shedding degrades service, never loses a
//!     request silently.
//! 16. **No post over an open breaker** — while a `(proxy, peer,
//!     cross-GVMI)` breaker is fully open, the proxy must not take a
//!     per-message `FallbackToStaging` round-trip for that peer: open
//!     routes go straight to staging (`BreakerFastPath`) without
//!     consulting the sick path. The single fallback the *tripping*
//!     post itself emits (its `BreakerTripped` precedes its
//!     `FallbackToStaging` by construction) is exempt. The check keys
//!     on fallback events rather than `CrossReg` because the
//!     infallible `cross_reg_cached` path (one-sided gets, host-direct
//!     degrades) legitimately registers regardless of breaker state —
//!     a documented exemption. Conversely, a `BreakerFastPath` while
//!     the breaker is *not* open is a violation.
//! 17. **Half-open admits exactly one probe** — between a
//!     `BreakerHalfOpen` and the next `BreakerTripped`/`BreakerClosed`
//!     of that `(proxy, peer, path)`, at most one `BreakerProbe` may
//!     fire, and never without a preceding half-open transition.
//! 18. **Budget sheds surface as typed failures** — every
//!     `RetryBudgetExhausted` (keyed `(rank, msg_id)`: a data-plane
//!     shed fires once per side of the matched pair, each citing its
//!     own transfer id) has a `ReqFailed` for that transfer id by end
//!     of run — the budget degrades service, never loses a request.
//!
//! ## Proxy restarts
//!
//! A `ProxyRestarted` event resets the restarting pid's share of the
//! checker state: its flow counters, non-completed work requests,
//! cross-registrations and barrier edges are discarded (a restarted
//! proxy re-registers and replays from scratch, and its old mkeys must
//! never be seen again — keeping `registered` would mask stale-epoch
//! reuse). Completions stay, so a FIN for pre-crash work remains valid.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use offload::{CacheOutcome, FinKind, HealthPath, ProtoEvent};
use parking_lot::Mutex;
use rdma::MrKey;
use simnet::{EventSink, Pid, SimTime};

/// What the checker needs to know about the run it observes.
#[derive(Clone, Copy, Debug)]
pub struct ConformanceConfig {
    /// Whether the engine runs with its group metadata cache enabled —
    /// if so, a repeated `GroupPacketSent` is a violation; if not, every
    /// `group_call` legitimately resends the packet.
    pub group_cache_enabled: bool,
    /// The engine's admission cap (`OffloadConfig::queue_cap`); `0`
    /// means unbounded queues and disables the queue-depth invariant.
    pub queue_cap: usize,
}

impl Default for ConformanceConfig {
    fn default() -> Self {
        ConformanceConfig {
            group_cache_enabled: true,
            queue_cap: 0,
        }
    }
}

/// One recorded invariant violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Short name of the broken invariant (stable, grep-friendly).
    pub invariant: &'static str,
    /// Human-readable description with the offending values.
    pub detail: String,
    /// Virtual time of the offending event.
    pub at: SimTime,
    /// Process that emitted the offending event (`None` for end-of-run
    /// completeness findings, which no single event triggers).
    pub pid: Option<Pid>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} (at {}", self.invariant, self.detail, self.at)?;
        match self.pid {
            Some(pid) => write!(f, ", {pid})"),
            None => write!(f, ", end of run)"),
        }
    }
}

/// Breaker state of one `(proxy, peer, path)` as the event stream shows
/// it; absent from the map means closed (or never tripped).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BreakerObs {
    Open,
    HalfOpen,
}

#[derive(Default)]
struct FlowState {
    /// Proxy pid that handles this flow (every event of a flow comes
    /// from `proxy_for_rank(src)`), so a restart can reset only the
    /// restarting proxy's flows.
    owner: Option<Pid>,
    rts: u64,
    rtr: u64,
    matched: u64,
    /// Transfer ids seen in RTS / RTR messages of this flow, so a
    /// `PairMatched` can be checked against ids the proxy really has.
    rts_ids: BTreeSet<u64>,
    rtr_ids: BTreeSet<u64>,
}

#[derive(Default)]
struct State {
    /// Per `(src, dst, tag)` matching counters.
    flows: BTreeMap<(usize, usize, u64), FlowState>,
    /// Work requests posted / completed, per emitting proxy (wrid spaces
    /// are per-proxy counters, so the pid is part of the key).
    posted: BTreeSet<(Pid, u64)>,
    completed: BTreeSet<(Pid, u64)>,
    /// Every mkey2 a CrossReg produced, keyed by the registering proxy
    /// so a restart invalidates exactly that proxy's keys.
    registered: BTreeSet<(Pid, MrKey)>,
    /// Latest registration per `(proxy, host_rank, addr, len)`.
    latest_reg: BTreeMap<(Pid, usize, u64, u64), (MrKey, MrKey)>,
    /// RecvMeta count per `(from, to, req)`.
    recv_meta: BTreeMap<(usize, usize, usize), u64>,
    /// Group packet count per `(host, req)`.
    group_packets: BTreeMap<(usize, usize), u64>,
    /// Breaker state per `(proxy, peer rank, path class)`, from the
    /// `BreakerTripped` / `BreakerHalfOpen` / `BreakerClosed` stream.
    breakers: BTreeMap<(Pid, usize, HealthPath), BreakerObs>,
    /// One-shot exemptions for invariant 16: the post that trips a
    /// cross-GVMI breaker emits its own `FallbackToStaging` right
    /// after the `BreakerTripped` event it caused.
    breaker_fallback_grace: BTreeSet<(Pid, usize)>,
    /// Probes observed since the last `BreakerHalfOpen` of the key;
    /// absent means the breaker is not half-open.
    probes_since_half_open: BTreeMap<(Pid, usize, HealthPath), u64>,
    /// `RetryBudgetExhausted` sheds, keyed `(rank, msg_id)` — each
    /// must surface as a `ReqFailed` for that transfer id.
    budget_shed: BTreeSet<(usize, u64)>,
    /// Last `(gen, value)` per barrier edge `(proxy, src, dst_host,
    /// dst_req)`.
    barrier_last: BTreeMap<(Pid, usize, usize, usize), (u64, u64)>,
    /// Group FIN wrids per proxy — must be fresh ids, never reused (the
    /// wr namespace is durable, so this survives restarts).
    group_fin_wrids: BTreeSet<(Pid, u64)>,
    /// Transfer ids introduced by `HostReqPosted`.
    req_ids_posted: BTreeSet<u64>,
    /// Transfer ids a `HostReqDone` completed toward the app.
    done_ids: BTreeSet<u64>,
    /// Transfer ids surfaced to the app as a typed failure.
    failed_ids: BTreeSet<u64>,
    /// Transfer ids the host cancelled (deadline or explicit).
    cancelled_ids: BTreeSet<u64>,
    /// Transfer ids shed at admission over a tenant hard quota — each
    /// must surface as a `ReqFailed` by end of run.
    quota_shed_ids: BTreeSet<u64>,
    /// Transfers whose last delivery attempt failed CRC verification at
    /// the keyed proxy, with no recovery seen yet (volatile per proxy:
    /// a restart replays the write from scratch).
    corrupt_outstanding: BTreeSet<(Pid, u64)>,
    /// Transfers whose data-path retransmission budget is exhausted —
    /// terminal, so any later FIN for them is a violation.
    integrity_failed: BTreeSet<(Pid, u64)>,
    /// Host-side abandonments of group ctrl messages; they demand a
    /// resolution — a `GroupFailed`, or a successful `GroupWaitDone`
    /// (restart replay can complete a collective whose original install
    /// packet was abandoned) — before end of run.
    group_ctrl_abandoned: u64,
    /// `GroupFailed` events observed.
    group_failures_seen: u64,
    /// Successful `GroupWaitDone` events observed.
    group_waits_done: u64,
    violations: Vec<Violation>,
    events_seen: u64,
}

impl State {
    fn violate(&mut self, at: SimTime, pid: Option<Pid>, invariant: &'static str, detail: String) {
        self.violations.push(Violation {
            invariant,
            detail,
            at,
            pid,
        });
    }

    fn on_event(&mut self, at: SimTime, src: Pid, ev: &ProtoEvent, cfg: &ConformanceConfig) {
        let pid = Some(src);
        self.events_seen += 1;
        match *ev {
            ProtoEvent::RtsAtProxy {
                src_rank,
                dst_rank,
                tag,
                msg_id,
            } => {
                let f = self.flows.entry((src_rank, dst_rank, tag)).or_default();
                f.owner.get_or_insert(src);
                f.rts += 1;
                f.rts_ids.insert(msg_id);
            }
            ProtoEvent::RtrAtProxy {
                src_rank,
                dst_rank,
                tag,
                msg_id,
            } => {
                let f = self.flows.entry((src_rank, dst_rank, tag)).or_default();
                f.owner.get_or_insert(src);
                f.rtr += 1;
                f.rtr_ids.insert(msg_id);
            }
            ProtoEvent::PairMatched {
                src_rank,
                dst_rank,
                tag,
                send_msg_id,
                recv_msg_id,
            } => {
                let f = self.flows.entry((src_rank, dst_rank, tag)).or_default();
                f.owner.get_or_insert(src);
                let send_known = f.rts_ids.contains(&send_msg_id);
                let recv_known = f.rtr_ids.contains(&recv_msg_id);
                if f.matched + 1 > f.rts.min(f.rtr) {
                    let (rts, rtr, matched) = (f.rts, f.rtr, f.matched);
                    self.violate(
                        at,
                        pid,
                        "match-without-rts-rtr",
                        format!(
                            "flow ({src_rank}->{dst_rank}, tag {tag}) matched {} with only \
                             {rts} RTS / {rtr} RTR seen",
                            matched + 1
                        ),
                    );
                } else {
                    f.matched += 1;
                }
                if !send_known || !recv_known {
                    self.violate(
                        at,
                        pid,
                        "match-cites-unknown-msg-id",
                        format!(
                            "flow ({src_rank}->{dst_rank}, tag {tag}) matched transfer ids \
                             {send_msg_id:#x}/{recv_msg_id:#x} which no RTS/RTR introduced"
                        ),
                    );
                }
            }
            ProtoEvent::WritePosted { wrid, .. } => {
                if !self.posted.insert((src, wrid)) {
                    self.violate(
                        at,
                        pid,
                        "duplicate-wrid",
                        format!("work request {wrid:#x} posted twice"),
                    );
                } else if self.group_fin_wrids.contains(&(src, wrid)) {
                    self.violate(
                        at,
                        pid,
                        "group-fin-wrid-collision",
                        format!("work request {wrid:#x} was already spent on a group FIN"),
                    );
                }
            }
            ProtoEvent::WriteCompleted { wrid } => {
                if !self.posted.contains(&(src, wrid)) {
                    self.violate(
                        at,
                        pid,
                        "completion-without-post",
                        format!("completion for {wrid:#x} which was never posted"),
                    );
                }
                self.completed.insert((src, wrid));
            }
            ProtoEvent::FinSent {
                rank,
                req,
                wrid,
                kind,
                msg_id,
            } => {
                if kind != FinKind::Group && msg_id != 0 {
                    if self.corrupt_outstanding.contains(&(src, msg_id)) {
                        self.violate(
                            at,
                            pid,
                            "fin-after-corrupt",
                            format!(
                                "{kind:?} FIN for transfer {msg_id:#x} whose last \
                                 delivery attempt failed CRC verification"
                            ),
                        );
                    }
                    if self.integrity_failed.contains(&(src, msg_id)) {
                        self.violate(
                            at,
                            pid,
                            "fin-after-corrupt",
                            format!(
                                "{kind:?} FIN for transfer {msg_id:#x} after its \
                                 data-path retransmission budget was exhausted"
                            ),
                        );
                    }
                }
                if kind == FinKind::Group {
                    if wrid == 0 {
                        self.violate(
                            at,
                            pid,
                            "group-fin-zero-wrid",
                            format!(
                                "group FIN for rank {rank} req {req} carries the \
                                 wrid 0 sentinel instead of a real work request id"
                            ),
                        );
                    } else if self.posted.contains(&(src, wrid)) {
                        self.violate(
                            at,
                            pid,
                            "group-fin-wrid-collision",
                            format!(
                                "group FIN for rank {rank} req {req} reuses {wrid:#x}, \
                                 the wrid of a posted RDMA write"
                            ),
                        );
                    } else if !self.group_fin_wrids.insert((src, wrid)) {
                        self.violate(
                            at,
                            pid,
                            "group-fin-wrid-collision",
                            format!(
                                "group FIN for rank {rank} req {req} reuses {wrid:#x}, \
                                 already spent on an earlier group FIN"
                            ),
                        );
                    }
                } else if !self.completed.contains(&(src, wrid)) {
                    self.violate(
                        at,
                        pid,
                        "fin-before-completion",
                        format!(
                            "{kind:?} FIN for rank {rank} req {req} references \
                             {wrid:#x} with no completed RDMA write"
                        ),
                    );
                }
            }
            ProtoEvent::CrossReg {
                host_rank,
                addr,
                len,
                mkey,
                mkey2,
            } => {
                self.registered.insert((src, mkey2));
                self.latest_reg
                    .insert((src, host_rank, addr.0, len), (mkey, mkey2));
            }
            ProtoEvent::CrossRegCacheLookup {
                host_rank,
                addr,
                len,
                outcome,
                mkey,
                mkey2,
            } => {
                if outcome == CacheOutcome::Hit {
                    let want = self.latest_reg.get(&(src, host_rank, addr.0, len));
                    match ((mkey, mkey2), want) {
                        ((Some(m), Some(m2)), Some(&(wm, wm2))) if m == wm && m2 == wm2 => {}
                        _ => self.violate(
                            at,
                            pid,
                            "cache-hit-wrong-key",
                            format!(
                                "cache hit for (rank {host_rank}, {addr:?}, {len}) returned \
                                 {mkey:?}/{mkey2:?} but the latest registration recorded \
                                 {want:?}"
                            ),
                        ),
                    }
                }
            }
            ProtoEvent::Mkey2Used { mkey2 } => {
                if !self.registered.contains(&(src, mkey2)) {
                    self.violate(
                        at,
                        pid,
                        "mkey2-before-crossreg",
                        format!(
                            "{mkey2:?} drives a transfer but no CrossReg of the \
                             current proxy incarnation produced it"
                        ),
                    );
                }
            }
            ProtoEvent::RecvMetaSent {
                from_rank,
                to_rank,
                req_id,
            } => {
                let e = self
                    .recv_meta
                    .entry((from_rank, to_rank, req_id))
                    .or_insert(0);
                *e += 1;
                let n = *e;
                if n > 1 {
                    self.violate(
                        at,
                        pid,
                        "recv-meta-resent",
                        format!(
                            "receive metadata ({from_rank}->{to_rank}, req {req_id}) \
                             sent {n} times"
                        ),
                    );
                }
            }
            ProtoEvent::GroupPacketSent { host_rank, req_id } => {
                let e = self.group_packets.entry((host_rank, req_id)).or_insert(0);
                *e += 1;
                let n = *e;
                if cfg.group_cache_enabled && n > 1 {
                    self.violate(
                        at,
                        pid,
                        "group-packet-resent",
                        format!(
                            "group packet (rank {host_rank}, req {req_id}) shipped {n} \
                             times with the group cache enabled"
                        ),
                    );
                }
            }
            ProtoEvent::BarrierCntr {
                src_rank,
                dst_host_rank,
                dst_req_id,
                gen,
                value,
            } => {
                let key = (src, src_rank, dst_host_rank, dst_req_id);
                let cur = (gen, value);
                if let Some(&last) = self.barrier_last.get(&key) {
                    if cur <= last {
                        self.violate(
                            at,
                            pid,
                            "barrier-counter-not-monotone",
                            format!(
                                "barrier edge {src_rank}->({dst_host_rank}, req \
                                 {dst_req_id}) wrote (gen {gen}, value {value}) after \
                                 (gen {}, value {})",
                                last.0, last.1
                            ),
                        );
                    }
                }
                self.barrier_last.insert(key, cur);
            }
            ProtoEvent::HostReqPosted { msg_id, .. } => {
                self.req_ids_posted.insert(msg_id);
            }
            ProtoEvent::HostReqDone { rank, msg_id, .. } => {
                if !self.req_ids_posted.contains(&msg_id) {
                    self.violate(
                        at,
                        pid,
                        "done-without-post",
                        format!(
                            "rank {rank} completed transfer {msg_id:#x} which no \
                             HostReqPosted introduced"
                        ),
                    );
                }
                if !self.done_ids.insert(msg_id) {
                    self.violate(
                        at,
                        pid,
                        "fin-duplicated-to-app",
                        format!(
                            "rank {rank} surfaced completion of transfer {msg_id:#x} \
                             to the application twice"
                        ),
                    );
                }
                if self.cancelled_ids.contains(&msg_id) {
                    self.violate(
                        at,
                        pid,
                        "done-after-cancel",
                        format!(
                            "rank {rank} completed transfer {msg_id:#x} after \
                             cancelling it — the late FIN must be swallowed"
                        ),
                    );
                }
            }
            ProtoEvent::ReqFailed { msg_id, .. } => {
                self.failed_ids.insert(msg_id);
            }
            ProtoEvent::ReqCancelled { msg_id, .. } => {
                self.cancelled_ids.insert(msg_id);
            }
            ProtoEvent::QuotaShed {
                tenant,
                rank,
                msg_id,
            } => {
                if !self.req_ids_posted.contains(&msg_id) {
                    self.violate(
                        at,
                        pid,
                        "quota-shed-unknown-id",
                        format!(
                            "rank {rank} shed transfer {msg_id:#x} for tenant {tenant} \
                             but no HostReqPosted introduced that id"
                        ),
                    );
                }
                self.quota_shed_ids.insert(msg_id);
            }
            ProtoEvent::DrrGrant {
                tenant,
                rank,
                msg_id,
            } => {
                if !self.req_ids_posted.contains(&msg_id) {
                    self.violate(
                        at,
                        pid,
                        "grant-unknown-id",
                        format!(
                            "rank {rank} granted deferred transfer {msg_id:#x} for \
                             tenant {tenant} but no HostReqPosted introduced that id"
                        ),
                    );
                }
            }
            ProtoEvent::BreakerTripped { peer, path } => {
                self.breakers.insert((src, peer, path), BreakerObs::Open);
                self.probes_since_half_open.remove(&(src, peer, path));
                if path == HealthPath::CrossGvmi {
                    // The tripping post's own fallback follows this event.
                    self.breaker_fallback_grace.insert((src, peer));
                }
            }
            ProtoEvent::BreakerHalfOpen { peer, path } => {
                self.breakers
                    .insert((src, peer, path), BreakerObs::HalfOpen);
                self.probes_since_half_open.insert((src, peer, path), 0);
            }
            ProtoEvent::BreakerProbe { peer, path, msg_id } => {
                match self.probes_since_half_open.get_mut(&(src, peer, path)) {
                    Some(n) => {
                        *n += 1;
                        if *n > 1 {
                            let n = *n;
                            self.violate(
                                at,
                                pid,
                                "half-open-multi-probe",
                                format!(
                                    "breaker (peer {peer}, {path:?}) admitted probe \
                                     {n} (transfer {msg_id:#x}) while half-open — \
                                     half-open admits exactly one"
                                ),
                            );
                        }
                    }
                    None => self.violate(
                        at,
                        pid,
                        "probe-without-half-open",
                        format!(
                            "breaker (peer {peer}, {path:?}) probed transfer \
                             {msg_id:#x} without a half-open transition"
                        ),
                    ),
                }
            }
            ProtoEvent::BreakerClosed { peer, path } => {
                self.breakers.remove(&(src, peer, path));
                self.probes_since_half_open.remove(&(src, peer, path));
                self.breaker_fallback_grace.remove(&(src, peer));
            }
            ProtoEvent::BreakerFastPath { peer, path, msg_id } => {
                if self.breakers.get(&(src, peer, path)) != Some(&BreakerObs::Open) {
                    self.violate(
                        at,
                        pid,
                        "fastpath-without-open-breaker",
                        format!(
                            "transfer {msg_id:#x} was rerouted around breaker \
                             (peer {peer}, {path:?}) which is not open"
                        ),
                    );
                }
            }
            ProtoEvent::FallbackToStaging {
                src_rank, msg_id, ..
            } => {
                if self.breakers.get(&(src, src_rank, HealthPath::CrossGvmi))
                    == Some(&BreakerObs::Open)
                    && !self.breaker_fallback_grace.remove(&(src, src_rank))
                {
                    self.violate(
                        at,
                        pid,
                        "post-over-open-breaker",
                        format!(
                            "transfer {msg_id:#x} took a per-message staging \
                             fallback for peer {src_rank} whose cross-GVMI breaker \
                             is open — open routes must fast-path"
                        ),
                    );
                }
            }
            ProtoEvent::RetryBudgetExhausted { rank, msg_id, .. } => {
                self.budget_shed.insert((rank, msg_id));
                // A data-plane shed is the typed terminal resolution of
                // an outstanding corruption: the budget preempts further
                // retransmission, so neither a recovery nor a
                // DataIntegrityFailed will follow — and any later FIN
                // for the shed transfer is a violation.
                self.corrupt_outstanding.remove(&(src, msg_id));
                self.integrity_failed.insert((src, msg_id));
            }
            ProtoEvent::PayloadCorrupt { msg_id, .. } => {
                self.corrupt_outstanding.insert((src, msg_id));
            }
            ProtoEvent::PayloadRecovered { msg_id, attempts } => {
                if !self.corrupt_outstanding.remove(&(src, msg_id)) {
                    self.violate(
                        at,
                        pid,
                        "recovery-without-corrupt",
                        format!(
                            "transfer {msg_id:#x} reported recovered after {attempts} \
                             attempts but no corruption was outstanding"
                        ),
                    );
                }
            }
            ProtoEvent::DataIntegrityFailed { msg_id, .. } => {
                self.corrupt_outstanding.remove(&(src, msg_id));
                self.integrity_failed.insert((src, msg_id));
            }
            ProtoEvent::ProxyQueueDepth {
                send_depth,
                recv_depth,
            } => {
                if cfg.queue_cap > 0 && send_depth + recv_depth > cfg.queue_cap {
                    self.violate(
                        at,
                        pid,
                        "queue-over-cap",
                        format!(
                            "proxy queues hold {} descriptors past the admission \
                             cap of {}",
                            send_depth + recv_depth,
                            cfg.queue_cap
                        ),
                    );
                }
            }
            ProtoEvent::CtrlAbandoned { at_proxy, kind, .. } => {
                // A host abandoning a group ctrl message strands the whole
                // collective; `fail_group` must surface it as `GroupFailed`
                // (checked at end of run) instead of letting `Group_Wait`
                // stall forever.
                if !at_proxy
                    && matches!(
                        kind,
                        offload::CtrlKind::GroupPacket | offload::CtrlKind::GroupExec
                    )
                {
                    self.group_ctrl_abandoned += 1;
                }
            }
            ProtoEvent::GroupFailed { .. } => {
                self.group_failures_seen += 1;
            }
            ProtoEvent::GroupWaitDone { .. } => {
                self.group_waits_done += 1;
            }
            ProtoEvent::ProxyRestarted { .. } => {
                // The restarted proxy replays everything that had not
                // completed: wipe its share of the matching, posting,
                // registration and barrier state so the replay is judged
                // as a fresh run. Completions and group-FIN wrids are
                // durable (journaled / namespace-monotone) and stay.
                for f in self.flows.values_mut() {
                    if f.owner == Some(src) {
                        *f = FlowState {
                            owner: Some(src),
                            ..FlowState::default()
                        };
                    }
                }
                let completed = &self.completed;
                self.posted.retain(|e| e.0 != src || completed.contains(e));
                self.registered.retain(|e| e.0 != src);
                self.latest_reg.retain(|k, _| k.0 != src);
                self.barrier_last.retain(|k, _| k.0 != src);
                // In-flight payload-verification state is volatile: the
                // restarted proxy replays the write from scratch, so a
                // pre-crash corruption is not "outstanding" any more.
                // Exhausted budgets stay — they already failed the app.
                self.corrupt_outstanding.retain(|e| e.0 != src);
                // Hosts legitimately re-ship receive metadata and group
                // packets to a restarted proxy; at-most-once holds only
                // between restarts.
                self.recv_meta.clear();
                self.group_packets.clear();
                // The restarted proxy's health engine resets open
                // breakers to half-open *silently* (the next post's
                // probe re-emits `BreakerHalfOpen`), so forget its
                // breaker observations rather than judge post-restart
                // events against pre-crash state.
                self.breakers.retain(|k, _| k.0 != src);
                self.probes_since_half_open.retain(|k, _| k.0 != src);
                self.breaker_fallback_grace.retain(|k| k.0 != src);
            }
            // Observability-only events: aggregated by `offload::Metrics`,
            // carrying no protocol invariants of their own.
            ProtoEvent::HostCacheLookup { .. }
            | ProtoEvent::CacheEvicted { .. }
            | ProtoEvent::CtrlDropped { .. }
            | ProtoEvent::CtrlRetransmit { .. }
            | ProtoEvent::CtrlDuplicateDropped { .. }
            | ProtoEvent::ReqReplayed { .. }
            | ProtoEvent::StaleCqe { .. }
            | ProtoEvent::HostWakeup { .. }
            | ProtoEvent::GroupCallReturned { .. }
            | ProtoEvent::GroupExecSent { .. }
            | ProtoEvent::BarrierStall { .. }
            | ProtoEvent::QueueFullNack { .. }
            | ProtoEvent::CreditDeferred { .. }
            | ProtoEvent::StagingReclaimed { .. }
            | ProtoEvent::ReqReaped { .. }
            | ProtoEvent::JournalTruncated { .. }
            | ProtoEvent::JournalSize { .. }
            | ProtoEvent::HostFinalized { .. } => {}
        }
    }
}

/// A protocol conformance checker. Install its [`Conformance::sink`] on a
/// cluster (or pass it to a `workloads::CheckRun`), run the workload,
/// then call [`Conformance::finish`].
#[derive(Clone)]
pub struct Conformance {
    cfg: ConformanceConfig,
    inner: Arc<Mutex<State>>,
}

impl Conformance {
    /// A fresh checker for a run described by `cfg`.
    pub fn new(cfg: ConformanceConfig) -> Conformance {
        Conformance {
            cfg,
            inner: Arc::new(Mutex::new(State::default())),
        }
    }

    /// The event sink to install on the simulation. Non-`ProtoEvent`
    /// payloads are ignored, so it can share the sink with other
    /// observers' event types.
    pub fn sink(&self) -> EventSink {
        let inner = Arc::clone(&self.inner);
        let cfg = self.cfg;
        Arc::new(move |at, pid, any| {
            if let Some(ev) = any.downcast_ref::<ProtoEvent>() {
                inner.lock().on_event(at, pid, ev, &cfg);
            }
        })
    }

    /// Violations recorded so far (cheap; does not run end-of-run checks).
    pub fn violations(&self) -> Vec<Violation> {
        self.inner.lock().violations.clone()
    }

    /// Number of protocol events observed.
    pub fn events_seen(&self) -> u64 {
        self.inner.lock().events_seen
    }

    /// End-of-run verdict: everything recorded during the run plus the
    /// completeness checks that only make sense once the run is over
    /// (every RTS/RTR matched, every posted write completed).
    pub fn finish(&self) -> Vec<Violation> {
        let mut st = self.inner.lock();
        let end = SimTime::ZERO;
        let cancelled = st.cancelled_ids.clone();
        let flows: Vec<_> = st
            .flows
            .iter()
            .filter(|(_, f)| !(f.rts == f.rtr && f.rtr == f.matched))
            // A flow whose every transfer the host cancelled legitimately
            // ends unmatched: the descriptors were reaped on purpose.
            .filter(|(_, f)| {
                f.rts_ids.union(&f.rtr_ids).count() == 0
                    || !f.rts_ids.union(&f.rtr_ids).all(|id| cancelled.contains(id))
            })
            .map(|(&k, f)| (k, f.rts, f.rtr, f.matched))
            .collect();
        for ((src, dst, tag), rts, rtr, matched) in flows {
            st.violate(
                end,
                None,
                "unmatched-flow",
                format!(
                    "flow ({src}->{dst}, tag {tag}) ended with {rts} RTS, {rtr} RTR, \
                     {matched} matches"
                ),
            );
        }
        let unfinished: Vec<_> = st.posted.difference(&st.completed).copied().collect();
        for (pid, wrid) in unfinished {
            st.violate(
                end,
                Some(pid),
                "write-never-completed",
                format!("work request {wrid:#x} posted but no completion observed"),
            );
        }
        let unresolved: Vec<u64> = st
            .req_ids_posted
            .iter()
            .copied()
            .filter(|id| {
                !st.done_ids.contains(id)
                    && !st.failed_ids.contains(id)
                    && !st.cancelled_ids.contains(id)
            })
            .collect();
        for id in unresolved {
            st.violate(
                end,
                None,
                "posted-never-done",
                format!(
                    "transfer {id:#x} was posted but neither completed nor \
                     surfaced as a typed failure"
                ),
            );
        }
        let stuck: Vec<(Pid, u64)> = st.corrupt_outstanding.iter().copied().collect();
        for (pid, id) in stuck {
            st.violate(
                end,
                Some(pid),
                "corrupt-never-resolved",
                format!(
                    "transfer {id:#x} ended the run with a failed CRC and neither \
                     a recovery nor a typed integrity failure"
                ),
            );
        }
        let unshed: Vec<u64> = st
            .quota_shed_ids
            .iter()
            .copied()
            .filter(|id| !st.failed_ids.contains(id))
            .collect();
        for id in unshed {
            st.violate(
                end,
                None,
                "quota-shed-unsurfaced",
                format!(
                    "transfer {id:#x} was shed over a tenant hard quota but never \
                     surfaced as a typed ReqFailed"
                ),
            );
        }
        let budget_unshed: Vec<(usize, u64)> = st
            .budget_shed
            .iter()
            .copied()
            .filter(|(_, id)| !st.failed_ids.contains(id))
            .collect();
        for (rank, id) in budget_unshed {
            st.violate(
                end,
                None,
                "budget-shed-unsurfaced",
                format!(
                    "transfer {id:#x} (rank {rank}) was shed by a retry budget but \
                     never surfaced as a typed ReqFailed"
                ),
            );
        }
        // Restart replay may legitimately complete a collective whose
        // original install packet was abandoned (the stale reliability
        // entry gives up while the replayed one succeeds), so any
        // successful group wait also counts as a resolution.
        if st.group_ctrl_abandoned > 0 && st.group_failures_seen == 0 && st.group_waits_done == 0 {
            let n = st.group_ctrl_abandoned;
            st.violate(
                end,
                None,
                "group-abandon-unsurfaced",
                format!(
                    "{n} group ctrl message(s) were abandoned at a host but no \
                     GroupFailed ever surfaced — Group_Wait would stall"
                ),
            );
        }
        st.violations.clone()
    }
}
