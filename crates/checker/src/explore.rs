//! Schedule exploration: rerun a workload across seeds and legal
//! schedule perturbations, classify each run, and shrink failures.
//!
//! The explorer perturbs only *legal* schedules — fabric delivery jitter
//! never reorders packets on the same QP, and the proxy count changes
//! which proxy owns a rank but not the protocol. Any deadlock, livelock
//! or invariant violation it finds is therefore a real engine bug (or a
//! deliberately injected one), not an artifact of the exploration.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use offload::{
    parse_flight_dump, replay_into, FaultPlan, FlightRecorder, HealthConfig, OffloadConfig,
    TenantSpec,
};
use simnet::{EventSink, Report, SimDelta, SimError, SimTime};
use workloads::{
    drive_alltoall, drive_breaker_recovery, drive_brownout, drive_deadline, drive_flood,
    drive_group_abandon, drive_noisy_neighbor, drive_quota_retry, drive_stencil,
    drive_verified_stencil, fanout, CheckRun,
};

use crate::conformance::{Conformance, ConformanceConfig, Violation};

/// One point in the exploration space: a seed plus the schedule and
/// fault knobs applied to the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Simulation RNG seed.
    pub seed: u64,
    /// Uniform fabric delivery jitter bound, in nanoseconds.
    pub jitter_ns: u64,
    /// Proxy processes per DPU.
    pub proxies_per_dpu: usize,
    /// Fault plan applied to the run (probabilistic drop/dup/delay,
    /// proxy crash, registration failure — or a legacy one-shot
    /// [`offload::FaultInjection`], which converts losslessly).
    pub fault: FaultPlan,
}

impl Scenario {
    /// An unperturbed, fault-free scenario for `seed`.
    pub fn baseline(seed: u64) -> Scenario {
        Scenario {
            seed,
            jitter_ns: 0,
            proxies_per_dpu: 1,
            fault: FaultPlan::none(),
        }
    }

    /// The same scenario with `fault` injected. Accepts a [`FaultPlan`]
    /// or a legacy [`offload::FaultInjection`] variant.
    pub fn with_fault(mut self, fault: impl Into<FaultPlan>) -> Scenario {
        self.fault = fault.into();
        self
    }
}

/// Verdict for one explored run.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Ran to completion with every invariant intact.
    Ok,
    /// The conformance checker recorded protocol violations.
    Violations(Vec<Violation>),
    /// The simulation wedged: no pending events, processes blocked.
    Deadlock(String),
    /// Virtual time exceeded the scenario's limit (livelock suspect).
    TimeLimit(String),
    /// The clock stopped advancing while processes kept running.
    Livelock(String),
    /// A simulated process panicked (and no violation explains why).
    Panic(String),
}

impl Outcome {
    /// Whether this run passed.
    pub fn is_ok(&self) -> bool {
        matches!(self, Outcome::Ok)
    }

    /// Short classification label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Violations(_) => "violations",
            Outcome::Deadlock(_) => "deadlock",
            Outcome::TimeLimit(_) => "time-limit",
            Outcome::Livelock(_) => "livelock",
            Outcome::Panic(_) => "panic",
        }
    }
}

/// A workload the explorer can rerun: builds a simulation for the given
/// scenario, installs the sink, and returns the simulation's verdict.
pub type Workload = Arc<dyn Fn(&Scenario, EventSink) -> Result<Report, SimError> + Send + Sync>;

fn check_run(scenario: &Scenario, sink: EventSink) -> CheckRun {
    let mut run = CheckRun::baseline(scenario.seed);
    run.proxies_per_dpu = scenario.proxies_per_dpu;
    run.jitter = SimDelta::from_ns(scenario.jitter_ns);
    // Generous virtual-time budget: these workloads finish in
    // milliseconds; ten seconds only trips on genuine no-progress loops.
    run.time_limit = Some(SimTime::ZERO + SimDelta::from_secs(10));
    run.cfg = OffloadConfig::proposed().with_fault(scenario.fault);
    run.sink = Some(sink);
    run
}

/// The canonical point-to-point workload: a 2-round ring halo exchange
/// on 2 nodes x 2 ranks (see [`workloads::drive_stencil`]).
pub fn stencil_workload() -> Workload {
    Arc::new(|scenario: &Scenario, sink: EventSink| {
        drive_stencil(&check_run(scenario, sink), 4096, 2)
    })
}

/// The payload-verifying stencil (see
/// [`workloads::drive_verified_stencil`]): real bytes move through the
/// fabric, every send buffer carries a per-`(rank, round, direction)`
/// pattern, and each receiver checks what actually landed. This is the
/// fault-soak workload — under a lossy [`FaultPlan`] it proves that
/// retransmission and restart replay deliver every payload intact.
pub fn verified_stencil_workload() -> Workload {
    Arc::new(|scenario: &Scenario, sink: EventSink| {
        let mut run = check_run(scenario, sink);
        run.move_bytes = true;
        drive_verified_stencil(&run, 2048, 2)
    })
}

/// The canonical group workload: alltoall plus a barrier-ordered ring
/// allgather, called twice (see [`workloads::drive_alltoall`]).
pub fn alltoall_workload() -> Workload {
    Arc::new(|scenario: &Scenario, sink: EventSink| {
        drive_alltoall(&check_run(scenario, sink), 2048, 2)
    })
}

/// Admission cap a starved run gives the proxies. Deliberately tiny —
/// [`starved_flood_workload`] posts [`FLOOD_BURST`] transfers per rank
/// at once, so the credit window is exhausted from the first round.
pub const STARVED_QUEUE_CAP: usize = 2;

/// Outstanding send/recv pairs each rank posts in the starved flood.
pub const FLOOD_BURST: u64 = 16;

/// The backpressure workload: [`workloads::drive_flood`] under a
/// [`STARVED_QUEUE_CAP`]-deep admission cap, a bounded staging pool and
/// a bounded FIN journal. Every queue the engine owns is capped far
/// below the posted burst; the run must still complete, with deferral
/// and nack-retry doing the pacing (never unbounded growth — pair it
/// with [`ConformanceConfig::queue_cap`] to have the checker enforce
/// the bound).
pub fn starved_flood_workload() -> Workload {
    Arc::new(|scenario: &Scenario, sink: EventSink| {
        let mut run = check_run(scenario, sink);
        run.cfg = run
            .cfg
            .clone()
            .with_queue_cap(STARVED_QUEUE_CAP)
            .with_staging_cap(4)
            .with_journal_cap(64);
        drive_flood(&run, 1024, FLOOD_BURST)
    })
}

/// Admission cap of the noisy-neighbor scenarios. Small enough that the
/// aggressor's burst saturates its credit window and its proxy-queue
/// share immediately; the victim's window traffic fits comfortably.
pub const NOISY_QUEUE_CAP: usize = 4;

/// Send/recv pairs the flooding tenant posts at once in the
/// noisy-neighbor scenarios — an order of magnitude past its share of
/// the [`NOISY_QUEUE_CAP`]-deep pool.
pub const NOISY_FLOOD_BURST: u64 = 24;

/// The committed isolation bound: with per-tenant credit windows, DRR
/// scheduling and share-partitioned proxy admission, the flooding
/// tenant may not inflate the victim tenant's p99 group-window latency
/// beyond this factor of its solo-run p99. The noisy-neighbor gates
/// (tier-1 and the fault-soak chaos matrix) assert it from the
/// per-tenant lifecycle histograms.
pub const NOISY_P99_BOUND_FACTOR: u64 = 3;

/// Rounds of the victim's group-stencil window loop in the
/// noisy-neighbor scenarios.
const NOISY_ROUNDS: u64 = 4;

/// Hard quota the quota-retry scenarios arm on tenant 1.
pub const QUOTA_RETRY_HARD: usize = 3;

/// The two-tenant noisy-neighbor run: tenant 0 (ranks 0, 2) is the
/// victim, tenant 1 (ranks 1, 3) the aggressor, both inheriting the
/// [`NOISY_QUEUE_CAP`] credit window as their soft quota.
fn noisy_run(scenario: &Scenario, sink: EventSink) -> CheckRun {
    let mut run = check_run(scenario, sink);
    run.cfg = run
        .cfg
        .clone()
        .with_queue_cap(NOISY_QUEUE_CAP)
        .with_tenants(vec![TenantSpec::inherit(), TenantSpec::inherit()]);
    run
}

/// The noisy-neighbor workload (see [`workloads::drive_noisy_neighbor`])
/// with `burst` flood pairs from the aggressor tenant; `burst == 0` is
/// the solo baseline the isolation gate compares against.
pub fn noisy_neighbor_workload(burst: u64) -> Workload {
    Arc::new(move |scenario: &Scenario, sink: EventSink| {
        drive_noisy_neighbor(&noisy_run(scenario, sink), 4096, NOISY_ROUNDS, 1024, burst)
    })
}

/// The hard-quota shed-and-retry workload (see
/// [`workloads::drive_quota_retry`]): tenant 1 runs with a
/// [`QUOTA_RETRY_HARD`]-post hard quota, overfills it, and must see a
/// typed `QuotaExceeded` followed by a successful retry.
pub fn quota_retry_workload() -> Workload {
    Arc::new(|scenario: &Scenario, sink: EventSink| {
        let mut run = check_run(scenario, sink);
        run.cfg = run.cfg.clone().with_tenants(vec![
            TenantSpec::inherit(),
            TenantSpec::inherit().with_hard_quota(QUOTA_RETRY_HARD),
        ]);
        drive_quota_retry(&run, 1024)
    })
}

/// Run the noisy-neighbor scenario and measure the victim tenant's p99
/// group-window latency (picoseconds) from the per-tenant lifecycle
/// histograms, alongside the run's conformance verdict. This is the
/// probe both isolation gates are built on: call once with `burst == 0`
/// for the solo baseline and once with the flood armed, then hold the
/// noisy p99 to [`NOISY_P99_BOUND_FACTOR`] times the solo p99.
pub fn noisy_victim_p99(scenario: &Scenario, burst: u64) -> (u64, Outcome) {
    let checker = Conformance::new(ConformanceConfig {
        queue_cap: NOISY_QUEUE_CAP,
        ..ConformanceConfig::default()
    });
    let lifecycle = obs::LifecycleRecorder::new();
    let sink = fanout(vec![checker.sink(), lifecycle.sink()]);
    let workload = noisy_neighbor_workload(burst);
    let outcome = classify(
        catch_unwind(AssertUnwindSafe(|| workload(scenario, sink))),
        &checker,
    );
    // The victim ring is the even ranks of the 2×2 world (tenant 0 of
    // the two-tenant round-robin roster noisy_run installs).
    let tenant_of = (0..4).map(|r| (r, r % 2)).collect();
    let p99 = lifecycle
        .report()
        .tenant_window_histograms(&tenant_of)
        .get(&0)
        .map(|h| h.p99())
        .unwrap_or(0);
    (p99, outcome)
}

/// Rounds of sustained cross-node posting in the breaker-recovery
/// scenarios: enough for the cross-GVMI breaker to trip, fast-path
/// through its open-state cooldown, and close on a successful probe.
pub const BREAKER_RECOVERY_ROUNDS: u64 = 48;

/// Registration-failure rate (permille) of the breaker scenarios.
/// Deliberately probabilistic — high enough that the sliding window
/// trips the breaker almost immediately, below certainty so an
/// eventual half-open probe's registration roll succeeds and the
/// breaker closes (the recovery half of the state machine).
pub const BREAKER_XREG_PM: u16 = 700;

/// The breaker trip-and-recovery workload (see
/// [`workloads::drive_breaker_recovery`]): the health engine armed
/// under the scenario's fault plan (pair it with a probabilistic
/// `xreg_fail_pm`), sustained fresh-buffer posting across nodes, every
/// transfer required to complete through fallback or fast-path.
pub fn breaker_recovery_workload() -> Workload {
    Arc::new(|scenario: &Scenario, sink: EventSink| {
        let mut run = check_run(scenario, sink);
        run.cfg = run.cfg.clone().with_health(HealthConfig::armed());
        drive_breaker_recovery(&run, 1024, BREAKER_RECOVERY_ROUNDS)
    })
}

/// The data-plane brownout workload (see [`workloads::drive_brownout`]):
/// the health engine armed under the scenario's fault plan (pair it
/// with `data_drop_pm: 1000`), real byte movement, both ends of the
/// doomed pair required to surface a typed `RetryBudgetExhausted`.
pub fn brownout_workload() -> Workload {
    Arc::new(|scenario: &Scenario, sink: EventSink| {
        let mut run = check_run(scenario, sink);
        run.move_bytes = true;
        run.cfg = run.cfg.clone().with_health(HealthConfig::armed());
        drive_brownout(&run, 2048)
    })
}

/// The payload-verifying stencil with the health engine armed (see
/// [`verified_stencil_workload`]): the chaos-matrix soak that proves
/// breakers and budgets never get in the way of recovery the reliable
/// layers already guarantee — under lossy/crashy plans whose failure
/// rates sit below the budget thresholds, every payload still lands
/// intact and every run classifies `Ok`.
pub fn armed_verified_stencil_workload() -> Workload {
    Arc::new(|scenario: &Scenario, sink: EventSink| {
        let mut run = check_run(scenario, sink);
        run.move_bytes = true;
        run.cfg = run.cfg.clone().with_health(HealthConfig::armed());
        drive_verified_stencil(&run, 2048, 2)
    })
}

/// The group-abandonment workload (see
/// [`workloads::drive_group_abandon`]): meant to run under a plan with
/// `drop_group_packets`, where `Group_Wait` must surface a typed error.
pub fn doomed_group_workload() -> Workload {
    Arc::new(|scenario: &Scenario, sink: EventSink| {
        drive_group_abandon(&check_run(scenario, sink), 1024)
    })
}

/// The deadline/cancel workload (see [`workloads::drive_deadline`]):
/// orphan transfers must expire or cancel with typed errors while a
/// matched exchange on the same ranks completes untouched.
pub fn deadline_workload() -> Workload {
    Arc::new(|scenario: &Scenario, sink: EventSink| {
        drive_deadline(&check_run(scenario, sink), 1024)
    })
}

/// Run one scenario under the conformance checker and classify it.
///
/// Violations recorded *during* the run take priority over the way the
/// run ended: an injected fault often first breaks an invariant and then
/// crashes or wedges the engine, and the invariant is the root cause.
/// The end-of-run completeness checks ([`Conformance::finish`]) run only
/// on cleanly completed runs — a deadlocked run trivially leaves flows
/// unmatched, which would drown the real diagnosis in noise.
pub fn run_scenario(workload: &Workload, scenario: &Scenario, cfg: ConformanceConfig) -> Outcome {
    run_scenario_recorded(workload, scenario, cfg).0
}

/// Like [`run_scenario`], but with the always-on flight recorder
/// installed next to the conformance sink. Returns the recorder so the
/// caller can dump the event tail of a failed run (see
/// [`write_failure_dump`]).
pub fn run_scenario_recorded(
    workload: &Workload,
    scenario: &Scenario,
    cfg: ConformanceConfig,
) -> (Outcome, FlightRecorder) {
    let checker = Conformance::new(cfg);
    let recorder = FlightRecorder::new();
    let sink = fanout(vec![checker.sink(), recorder.sink()]);
    let outcome = classify(
        catch_unwind(AssertUnwindSafe(|| workload(scenario, sink))),
        &checker,
    );
    (outcome, recorder)
}

fn classify(
    // The `catch_unwind` result alias, not actual threading. analyzer:allow(concurrency-ban)
    result: std::thread::Result<Result<Report, SimError>>,
    checker: &Conformance,
) -> Outcome {
    let during = checker.violations();
    match result {
        Ok(Ok(_report)) => {
            let all = checker.finish();
            if all.is_empty() {
                Outcome::Ok
            } else {
                Outcome::Violations(all)
            }
        }
        _ if !during.is_empty() => Outcome::Violations(during),
        Ok(Err(e @ SimError::Deadlock { .. })) => Outcome::Deadlock(e.to_string()),
        Ok(Err(e @ SimError::TimeLimitExceeded { .. })) => Outcome::TimeLimit(e.to_string()),
        Ok(Err(e @ SimError::Livelock { .. })) => Outcome::Livelock(e.to_string()),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Outcome::Panic(msg)
        }
    }
}

/// Directory failure dumps are written to: `$BF_FAILURE_DUMP_DIR` if
/// set, else `target/failure-dumps/` at the workspace root.
pub fn failure_dump_dir() -> PathBuf {
    match std::env::var_os("BF_FAILURE_DUMP_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/failure-dumps"),
    }
}

/// Write the flight-recorder tail of a failed scenario to
/// [`failure_dump_dir`], prefixed with `#` header lines describing the
/// scenario and verdict so the dump is self-identifying. The filename is
/// deterministic in `(name, scenario)`, so a rerun of the same failure
/// overwrites rather than accumulates. Returns the path written.
pub fn write_failure_dump(
    name: &str,
    scenario: &Scenario,
    outcome: &Outcome,
    recorder: &FlightRecorder,
) -> std::io::Result<PathBuf> {
    let dir = failure_dump_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!(
        "{name}-seed{}-j{}ns-p{}-{:?}.flight.txt",
        scenario.seed, scenario.jitter_ns, scenario.proxies_per_dpu, scenario.fault
    ));
    let mut text = format!(
        "# workload={name} outcome={}\n# scenario seed={} jitter_ns={} proxies_per_dpu={} fault={:?}\n",
        outcome.label(),
        scenario.seed,
        scenario.jitter_ns,
        scenario.proxies_per_dpu,
        scenario.fault
    );
    text.push_str(&recorder.dump());
    std::fs::write(&path, text)?;
    Ok(path)
}

/// Run a scenario with the flight recorder on; if the run fails, dump
/// the recorded event tail to [`failure_dump_dir`] and return the path
/// alongside the outcome. Passing runs write nothing.
pub fn run_scenario_with_dump(
    name: &str,
    workload: &Workload,
    scenario: &Scenario,
    cfg: ConformanceConfig,
) -> (Outcome, Option<PathBuf>) {
    let (outcome, recorder) = run_scenario_recorded(workload, scenario, cfg);
    if outcome.is_ok() {
        return (outcome, None);
    }
    let path = write_failure_dump(name, scenario, &outcome, &recorder)
        .map_err(|e| eprintln!("flight dump not written: {e}"))
        .ok();
    (outcome, path)
}

/// Replay a flight-recorder dump through a fresh conformance checker and
/// return the violations the recorded stream itself exhibits. A dump of
/// a run that broke an invariant *during* execution (e.g. an mkey2 used
/// before its cross-registration) reproduces the same violation here; a
/// deadlocked run's dump replays clean, because the bug is the event
/// that never happened. End-of-run completeness checks are deliberately
/// not applied — a dump's tail is truncated by the ring buffer, so
/// unmatched flows are expected, not evidence.
pub fn replay_dump(dump: &str, cfg: ConformanceConfig) -> Result<Vec<Violation>, String> {
    let records = parse_flight_dump(dump)?;
    let checker = Conformance::new(cfg);
    let sink = checker.sink();
    replay_into(&records, &sink);
    Ok(checker.violations())
}

/// Run every scenario and return the failures, in exploration order.
pub fn explore(
    workload: &Workload,
    scenarios: impl IntoIterator<Item = Scenario>,
    cfg: ConformanceConfig,
) -> Vec<(Scenario, Outcome)> {
    scenarios
        .into_iter()
        .filter_map(|sc| {
            let outcome = run_scenario(workload, &sc, cfg);
            if outcome.is_ok() {
                None
            } else {
                Some((sc, outcome))
            }
        })
        .collect()
}

/// A standard sweep: `seeds` baseline scenarios with schedule knobs
/// varied deterministically per seed (jitter 0/2/10 microseconds, one or
/// two proxies per DPU).
pub fn sweep(seeds: std::ops::Range<u64>, fault: impl Into<FaultPlan>) -> Vec<Scenario> {
    let fault = fault.into();
    seeds
        .map(|seed| Scenario {
            seed,
            jitter_ns: [0, 2_000, 10_000][(seed % 3) as usize],
            proxies_per_dpu: 1 + (seed % 2) as usize,
            fault,
        })
        .collect()
}

/// Cap on extra runs [`shrink`] may spend hunting a smaller seed.
const SHRINK_SEED_BUDGET: u64 = 64;

/// Shrink a failing scenario to a minimal one that still fails: first
/// remove jitter, then drop to a single proxy, then scan for the
/// smallest failing seed (bounded by [`SHRINK_SEED_BUDGET`] runs).
/// Returns the shrunken scenario and its (still failing) outcome.
pub fn shrink(
    workload: &Workload,
    failing: Scenario,
    cfg: ConformanceConfig,
) -> (Scenario, Outcome) {
    let mut best = failing;
    let mut outcome = run_scenario(workload, &best, cfg);
    debug_assert!(!outcome.is_ok(), "shrink called on a passing scenario");

    let try_candidate = |cand: Scenario, best: &mut Scenario, outcome: &mut Outcome| {
        if cand == *best {
            return false;
        }
        let o = run_scenario(workload, &cand, cfg);
        if o.is_ok() {
            return false;
        }
        *best = cand;
        *outcome = o;
        true
    };

    let mut no_jitter = best;
    no_jitter.jitter_ns = 0;
    try_candidate(no_jitter, &mut best, &mut outcome);

    let mut one_proxy = best;
    one_proxy.proxies_per_dpu = 1;
    try_candidate(one_proxy, &mut best, &mut outcome);

    for seed in (0..best.seed).take(SHRINK_SEED_BUDGET as usize) {
        let mut cand = best;
        cand.seed = seed;
        if try_candidate(cand, &mut best, &mut outcome) {
            break;
        }
    }

    (best, outcome)
}
