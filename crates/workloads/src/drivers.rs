//! Parameterizable workload drivers for the conformance checker and
//! schedule explorer (`checker` crate).
//!
//! Unlike the benchmark entry points in this crate, these drivers:
//!
//! * return `Result<Report, SimError>` instead of panicking, so a
//!   deadlock or time-limit abort is data, not a test failure;
//! * accept the exploration knobs the checker perturbs — seed, delivery
//!   jitter, proxy count, time limit — plus an [`EventSink`] that
//!   receives the engine's structured [`offload::ProtoEvent`] stream.

use offload::{Offload, OffloadConfig, OffloadError, TenantId};
use rdma::{ClusterBuilder, ClusterSpec, Inbox};
use simnet::{EventSink, Report, SimDelta, SimError, SimTime};

/// One checker-driven run configuration: the workload shape plus every
/// schedule-perturbation knob the explorer sweeps.
#[derive(Clone)]
pub struct CheckRun {
    /// Simulated nodes.
    pub nodes: usize,
    /// Ranks per node.
    pub ppn: usize,
    /// Proxy processes per DPU.
    pub proxies_per_dpu: usize,
    /// Simulation RNG seed.
    pub seed: u64,
    /// Uniform `[0, jitter]` fabric delivery jitter (legal reorderings
    /// only — same-QP FIFO order is preserved by the fabric).
    pub jitter: SimDelta,
    /// Abort the run as a livelock if virtual time exceeds this.
    pub time_limit: Option<SimTime>,
    /// Engine configuration (data path, caches, fault injection).
    pub cfg: OffloadConfig,
    /// Structured-event observer, usually a conformance checker's sink.
    pub sink: Option<EventSink>,
    /// Record the simulation timeline (spans + instants) into the report.
    pub trace: bool,
    /// Move real bytes through the fabric so drivers can fill and verify
    /// payload patterns (default: timing-only, no byte movement).
    pub move_bytes: bool,
    /// Simulation worker threads: `Some(1)` pins the classic engine,
    /// `Some(n > 1)` the sharded runtime, `None` (the default) inherits
    /// `SIMNET_THREADS` so a whole test tier can be swept onto the
    /// sharded engine from the environment. Never observable in results
    /// (see [`rdma::ClusterBuilder::with_threads`]).
    pub threads: Option<usize>,
}

impl CheckRun {
    /// A 2×2 GVMI-path run with no perturbations — the baseline scenario
    /// the explorer mutates.
    pub fn baseline(seed: u64) -> CheckRun {
        CheckRun {
            nodes: 2,
            ppn: 2,
            proxies_per_dpu: 1,
            seed,
            jitter: SimDelta::ZERO,
            time_limit: None,
            cfg: OffloadConfig::proposed(),
            sink: None,
            trace: false,
            move_bytes: false,
            threads: None,
        }
    }

    fn builder(&self) -> ClusterBuilder {
        let mut spec = ClusterSpec::new(self.nodes, self.ppn).with_proxies(self.proxies_per_dpu);
        if !self.move_bytes {
            spec = spec.without_byte_movement();
        }
        let mut b = ClusterBuilder::new(spec, self.seed);
        if let Some(limit) = self.time_limit {
            b = b.with_time_limit(limit);
        }
        if self.jitter > SimDelta::ZERO {
            b = b.with_delivery_jitter(self.jitter);
        }
        if let Some(sink) = &self.sink {
            b = b.with_event_sink(sink.clone());
        }
        if self.trace {
            b = b.with_trace();
        }
        if let Some(threads) = self.threads {
            b = b.with_threads(threads);
        }
        b
    }

    /// Run `body` on every rank with an [`Offload`] engine attached and
    /// proxies running, returning the simulation's verdict.
    pub fn run_offload(
        &self,
        body: impl Fn(&Offload) + Send + Sync + 'static,
    ) -> Result<Report, SimError> {
        let cfg = self.cfg.clone();
        let proxy_cfg = cfg.clone();
        self.builder().run(
            move |rank, ctx, cluster| {
                let inbox = Inbox::new();
                let off = Offload::init(rank, ctx, cluster, &inbox, cfg.clone());
                body(&off);
                off.finalize();
            },
            Some(offload::proxy_fn(proxy_cfg)),
        )
    }
}

/// Halo-exchange stencil over the Basic primitives: every rank exchanges
/// a face with its ring neighbours in both directions for `rounds`
/// iterations. Exercises RTS/RTR matching, cross-registration, the GVMI
/// caches and FIN delivery on both intra- and inter-node paths.
pub fn drive_stencil(run: &CheckRun, face_bytes: u64, rounds: u64) -> Result<Report, SimError> {
    run.run_offload(move |off| {
        let p = off.size();
        if p < 2 {
            return;
        }
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let me = off.rank();
        let right = (me + 1) % p;
        let left = (me + p - 1) % p;
        let sbuf_r = fab.alloc(ep, face_bytes);
        let sbuf_l = fab.alloc(ep, face_bytes);
        let rbuf_r = fab.alloc(ep, face_bytes);
        let rbuf_l = fab.alloc(ep, face_bytes);
        for round in 0..rounds {
            // Tags encode (round, direction); matching is (src, dst, tag).
            let t_right = round * 4;
            let t_left = round * 4 + 1;
            let reqs = [
                off.send_offload(sbuf_r, face_bytes, right, t_right),
                off.send_offload(sbuf_l, face_bytes, left, t_left),
                off.recv_offload(rbuf_l, face_bytes, left, t_right),
                off.recv_offload(rbuf_r, face_bytes, right, t_left),
            ];
            off.ctx().compute(SimDelta::from_us(5));
            off.wait_all(&reqs);
        }
    })
}

/// The stencil of [`drive_stencil`] with payload verification: every
/// send buffer is filled with a pattern derived from `(rank, round,
/// direction)` before posting, and after `wait_all` each receive buffer
/// is checked against the pattern its sender must have written. A rank
/// panics on corrupt or stale data, which the explorer classifies as a
/// failed run. Requires [`CheckRun::move_bytes`]; this is the driver the
/// fault-soak tests use to prove retransmission and proxy-restart replay
/// deliver every payload intact, exactly once per round.
pub fn drive_verified_stencil(
    run: &CheckRun,
    face_bytes: u64,
    rounds: u64,
) -> Result<Report, SimError> {
    assert!(
        run.move_bytes,
        "drive_verified_stencil needs move_bytes: timing-only runs carry no payloads"
    );
    run.run_offload(move |off| {
        let p = off.size();
        if p < 2 {
            return;
        }
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let me = off.rank();
        let right = (me + 1) % p;
        let left = (me + p - 1) % p;
        // Stable per-(rank, round, direction) pattern seed, so each
        // receiver can recompute exactly what its peer sent.
        let pat = |rank: usize, round: u64, dir: u64| ((rank as u64) << 24) | (round << 4) | dir;
        let sbuf_r = fab.alloc(ep, face_bytes);
        let sbuf_l = fab.alloc(ep, face_bytes);
        let rbuf_r = fab.alloc(ep, face_bytes);
        let rbuf_l = fab.alloc(ep, face_bytes);
        for round in 0..rounds {
            fab.fill_pattern(ep, sbuf_r, face_bytes, pat(me, round, 0))
                .expect("fill send-right");
            fab.fill_pattern(ep, sbuf_l, face_bytes, pat(me, round, 1))
                .expect("fill send-left");
            let t_right = round * 4;
            let t_left = round * 4 + 1;
            let reqs = [
                off.send_offload(sbuf_r, face_bytes, right, t_right),
                off.send_offload(sbuf_l, face_bytes, left, t_left),
                off.recv_offload(rbuf_l, face_bytes, left, t_right),
                off.recv_offload(rbuf_r, face_bytes, right, t_left),
            ];
            off.ctx().compute(SimDelta::from_us(5));
            off.wait_all(&reqs);
            // My left neighbour sent its "right" face; my right
            // neighbour sent its "left" face.
            let ok_l = fab
                .verify_pattern(ep, rbuf_l, face_bytes, pat(left, round, 0))
                .expect("verify recv-left");
            let ok_r = fab
                .verify_pattern(ep, rbuf_r, face_bytes, pat(right, round, 1))
                .expect("verify recv-right");
            assert!(ok_l, "rank {me} round {round}: payload from {left} corrupt");
            assert!(
                ok_r,
                "rank {me} round {round}: payload from {right} corrupt"
            );
        }
    })
}

/// Credit-starvation flood: every rank posts `burst` send/recv pairs to
/// its ring neighbours *before* waiting on any of them, so with a small
/// [`OffloadConfig::queue_cap`] the per-proxy credit window is exhausted
/// almost immediately. The run must still complete — the host defers
/// over-window posts and flushes them as FINs return credit, and the
/// proxy nacks (rather than queues) anything that slips past a stale
/// window — with queue depths bounded by the cap throughout.
pub fn drive_flood(run: &CheckRun, bytes: u64, burst: u64) -> Result<Report, SimError> {
    // On a single-tenant config every rank maps to tenant 0, so the
    // tenant-scoped flood below degenerates to the classic all-ranks
    // ring this driver has always been.
    drive_tenant_flood(run, bytes, burst, 0)
}

/// The ranks of one tenant: `tenant_of` applied over the world, in rank
/// order. Every rank belongs to tenant 0 on a single-tenant config.
fn tenant_ring(cfg: &OffloadConfig, world: usize, tenant: TenantId) -> Vec<usize> {
    (0..world).filter(|&r| cfg.tenant_of(r) == tenant).collect()
}

/// [`drive_flood`] scoped to one tenant: only the ranks `tenant_of`
/// maps to `tenant` flood, over a ring of *their own* ranks (so every
/// send has a matching recv inside the tenant); everyone else idles.
/// This is the noisy-neighbor aggressor — point it at the flooding
/// tenant of a multi-tenant roster and its burst lands on that
/// tenant's credit window and proxy-queue share alone.
pub fn drive_tenant_flood(
    run: &CheckRun,
    bytes: u64,
    burst: u64,
    tenant: TenantId,
) -> Result<Report, SimError> {
    let cfg = run.cfg.clone();
    run.run_offload(move |off| {
        let ring = tenant_ring(&cfg, off.size(), tenant);
        if ring.len() < 2 || off.tenant() != tenant {
            return;
        }
        // A shed send would orphan the matching recv on the ring peer
        // and stall the run; the flood exercises deferral (soft quota /
        // credit window), never the hard-shed path.
        assert_eq!(
            cfg.tenant_hard_quota(tenant),
            0,
            "drive_tenant_flood floods without retry; use drive_quota_retry for hard quotas"
        );
        let me = off.rank();
        let idx = ring
            .iter()
            .position(|&r| r == me)
            .expect("rank in own tenant ring");
        let right = ring[(idx + 1) % ring.len()];
        let left = ring[(idx + ring.len() - 1) % ring.len()];
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(me);
        let mut reqs = Vec::with_capacity(2 * burst as usize);
        for tag in 0..burst {
            let sbuf = fab.alloc(ep, bytes);
            let rbuf = fab.alloc(ep, bytes);
            reqs.push(off.send_offload(sbuf, bytes, right, tag));
            reqs.push(off.recv_offload(rbuf, bytes, left, tag));
        }
        off.ctx().compute(SimDelta::from_us(5));
        off.wait_all(&reqs);
    })
}

/// The two-tenant isolation scenario the noisy-neighbor gates measure:
/// tenant 0 (the victim) re-calls a recorded group stencil over a ring
/// of its own ranks — the workload whose per-window latency the
/// lifecycle histograms time — while tenant 1 (the aggressor) floods
/// `burst` send/recv pairs over *its* ring. `burst == 0` idles the
/// aggressor entirely, which is the solo baseline the gate compares
/// against: same config, same victim code path, byte-identical victim
/// behavior, no interference.
pub fn drive_noisy_neighbor(
    run: &CheckRun,
    face_bytes: u64,
    rounds: u64,
    flood_bytes: u64,
    burst: u64,
) -> Result<Report, SimError> {
    assert!(
        run.cfg.multi_tenant(),
        "drive_noisy_neighbor needs a multi-tenant roster (tenant 0 victim, tenant 1 aggressor)"
    );
    let cfg = run.cfg.clone();
    run.run_offload(move |off| {
        let t = off.tenant();
        let ring = tenant_ring(&cfg, off.size(), t);
        if ring.len() < 2 {
            return;
        }
        let me = off.rank();
        let idx = ring
            .iter()
            .position(|&r| r == me)
            .expect("rank in own tenant ring");
        let right = ring[(idx + 1) % ring.len()];
        let left = ring[(idx + ring.len() - 1) % ring.len()];
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(me);
        if t == 0 {
            // Victim: the group-stencil window loop of
            // `drive_group_stencil`, ring-scoped to tenant 0.
            let sbuf_r = fab.alloc(ep, face_bytes);
            let sbuf_l = fab.alloc(ep, face_bytes);
            let rbuf_r = fab.alloc(ep, face_bytes);
            let rbuf_l = fab.alloc(ep, face_bytes);
            let g = off.group_start();
            off.group_send(g, sbuf_r, face_bytes, right, 0);
            off.group_send(g, sbuf_l, face_bytes, left, 1);
            off.group_recv(g, rbuf_l, face_bytes, left, 0);
            off.group_recv(g, rbuf_r, face_bytes, right, 1);
            off.group_barrier(g);
            off.group_end(g);
            for _ in 0..rounds {
                off.group_call(g);
                off.ctx().compute(SimDelta::from_us(5));
                off.group_wait(g).expect("victim group offload failed");
            }
        } else {
            if burst == 0 {
                return;
            }
            assert_eq!(
                cfg.tenant_hard_quota(t),
                0,
                "the aggressor floods without retry; arm soft quotas, not hard ones"
            );
            let mut reqs = Vec::with_capacity(2 * burst as usize);
            for tag in 0..burst {
                let sbuf = fab.alloc(ep, flood_bytes);
                let rbuf = fab.alloc(ep, flood_bytes);
                reqs.push(off.send_offload(sbuf, flood_bytes, right, tag));
                reqs.push(off.recv_offload(rbuf, flood_bytes, left, tag));
            }
            off.wait_all(&reqs);
        }
    })
}

/// Hard-quota shedding end to end: the first rank of tenant 1 fills its
/// hard quota with matched sends, posts one more — which must shed
/// immediately with a typed [`OffloadError::QuotaExceeded`], not stall
/// or panic — then drains the window and retries the shed transfer,
/// which must now be admitted and complete. The tenant-1 peer receives
/// both the quota-filling batch and the retried tag, so the run proves
/// the bounded-retry contract: a shed is a recoverable, typed refusal,
/// and the shed request's message id never reaches the wire.
pub fn drive_quota_retry(run: &CheckRun, bytes: u64) -> Result<Report, SimError> {
    assert!(
        run.cfg.multi_tenant(),
        "drive_quota_retry needs a multi-tenant roster with a hard quota on tenant 1"
    );
    let hard = run.cfg.tenant_hard_quota(1);
    assert!(hard > 0, "drive_quota_retry needs a hard quota on tenant 1");
    let cfg = run.cfg.clone();
    run.run_offload(move |off| {
        let ring = tenant_ring(&cfg, off.size(), 1);
        if ring.len() < 2 {
            return;
        }
        let hard = cfg.tenant_hard_quota(1) as u64;
        let me = off.rank();
        let sender = ring[0];
        let receiver = ring[1];
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(me);
        if me == sender {
            // Fill the hard quota exactly: `hard` live posts is the
            // boundary, admitted in full.
            let mut reqs = Vec::with_capacity(hard as usize);
            for tag in 0..hard {
                let buf = fab.alloc(ep, bytes);
                reqs.push(off.send_offload(buf, bytes, receiver, tag));
            }
            // One past the boundary: shed synchronously at post time.
            let doomed_buf = fab.alloc(ep, bytes);
            let doomed = off.send_offload(doomed_buf, bytes, receiver, 777);
            let err = off
                .req_error(doomed)
                .expect("a post over the hard quota must shed, not queue");
            assert!(
                matches!(err, OffloadError::QuotaExceeded { .. }),
                "expected QuotaExceeded, got {err:?}"
            );
            // Drain the window, then the bounded retry must succeed.
            off.wait_all(&reqs);
            let retry = off.send_offload(doomed_buf, bytes, receiver, 777);
            off.wait(retry);
            assert!(
                off.req_error(retry).is_none(),
                "retry after draining the quota must be admitted and complete"
            );
        } else if me == receiver {
            // Receive the quota-filling batch in full, then the retried
            // tag; staying at `hard` live posts proves the boundary is
            // exact on this side too.
            let mut reqs = Vec::with_capacity(hard as usize);
            for tag in 0..hard {
                let buf = fab.alloc(ep, bytes);
                reqs.push(off.recv_offload(buf, bytes, sender, tag));
            }
            off.wait_all(&reqs);
            let buf = fab.alloc(ep, bytes);
            let retry = off.recv_offload(buf, bytes, sender, 777);
            off.wait(retry);
            assert!(off.req_error(retry).is_none(), "retried recv must complete");
        }
    })
}

/// A group whose control plane is doomed: run it under a
/// [`offload::FaultPlan`] with `drop_group_packets` set and every
/// `Group_Call` install packet is dropped on every transmit attempt.
/// `Group_Wait` must come back with a typed
/// [`OffloadError::GroupFailed`] once the reliability layer abandons the
/// packet — stalling forever is the bug this driver exists to catch.
pub fn drive_group_abandon(run: &CheckRun, block: u64) -> Result<Report, SimError> {
    run.run_offload(move |off| {
        let p = off.size() as u64;
        if p < 2 {
            return;
        }
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let sendbuf = fab.alloc(ep, block * p);
        let recvbuf = fab.alloc(ep, block * p);
        let a2a = off.record_alltoall(sendbuf, recvbuf, block);
        off.group_call(a2a);
        let err = off
            .group_wait(a2a)
            .expect_err("doomed group must fail with a typed error, not stall");
        assert!(
            matches!(err, OffloadError::GroupFailed { .. }),
            "expected GroupFailed, got {err:?}"
        );
    })
}

/// Deadline and cancellation paths: rank 0 posts a send no peer will
/// ever receive, and `Wait` with a deadline must cancel it and return
/// [`OffloadError::DeadlineExceeded`]; a second orphan is cancelled
/// explicitly and must surface [`OffloadError::Cancelled`]. A matched
/// exchange alongside proves cancellation reaps only its own transfer.
pub fn drive_deadline(run: &CheckRun, bytes: u64) -> Result<Report, SimError> {
    run.run_offload(move |off| {
        let p = off.size();
        if p < 2 {
            return;
        }
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let me = off.rank();
        if me == 0 {
            let orphan_buf = fab.alloc(ep, bytes);
            let orphan = off.send_offload(orphan_buf, bytes, 1, 900);
            let err = off
                .wait_timeout(orphan, SimDelta::from_us(2_000))
                .expect_err("an orphan send must hit its deadline");
            assert!(
                matches!(err, OffloadError::DeadlineExceeded { .. }),
                "expected DeadlineExceeded, got {err:?}"
            );
            let victim_buf = fab.alloc(ep, bytes);
            let victim = off.send_offload(victim_buf, bytes, 1, 901);
            off.cancel(victim);
            assert!(
                matches!(off.req_error(victim), Some(OffloadError::Cancelled { .. })),
                "explicit cancel must surface OffloadError::Cancelled"
            );
        }
        // A live exchange on separate tags: reaping the orphans must not
        // disturb it, and its FIN must satisfy a deadline-armed wait.
        let right = (me + 1) % p;
        let left = (me + p - 1) % p;
        let sbuf = fab.alloc(ep, bytes);
        let rbuf = fab.alloc(ep, bytes);
        let s = off.send_offload(sbuf, bytes, right, 7);
        let r = off.recv_offload(rbuf, bytes, left, 7);
        off.wait_timeout(s, SimDelta::from_secs(1))
            .expect("matched send completes within its deadline");
        off.wait_timeout(r, SimDelta::from_secs(1))
            .expect("matched recv completes within its deadline");
    })
}

/// A ctrl plane that drops every packet (`drop_pm: 1000`): the
/// reliability layer must abandon the send after its bounded
/// retransmission budget and surface a typed
/// [`OffloadError::CtrlUndeliverable`] — not stall, not panic. Only
/// rank 0 posts (an orphan — with the ctrl plane dark no peer could
/// ever match it anyway).
pub fn drive_ctrl_undeliverable(run: &CheckRun, bytes: u64) -> Result<Report, SimError> {
    run.run_offload(move |off| {
        if off.size() < 2 || off.rank() != 0 {
            return;
        }
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(0);
        let buf = fab.alloc(ep, bytes);
        let req = off.send_offload(buf, bytes, 1, 40);
        let err = off
            .wait_timeout(req, SimDelta::from_secs(1))
            .expect_err("a send on a fully dark ctrl plane must fail, not stall");
        assert!(
            matches!(err, OffloadError::CtrlUndeliverable { .. }),
            "expected CtrlUndeliverable, got {err:?}"
        );
    })
}

/// A data plane that silently drops every payload (`data_drop_pm:
/// 1000`, real byte movement): the end-to-end CRC must catch each
/// landing, the bounded payload-retransmission budget must run dry, and
/// *both* ends of the matched pair must come back with a typed
/// [`OffloadError::DataIntegrity`].
pub fn drive_data_integrity(run: &CheckRun, bytes: u64) -> Result<Report, SimError> {
    run.run_offload(move |off| {
        if off.size() < 2 {
            return;
        }
        let me = off.rank();
        // Pair rank 0 with the first rank of the *other* node: data-plane
        // faults live on the RDMA fabric, which intra-node transfers
        // never touch.
        let peer = off.size() / 2;
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(me);
        let req = if me == 0 {
            let buf = fab.alloc(ep, bytes);
            // Nonzero payload: a silently dropped all-zero payload over a
            // zeroed destination would be invisible to the CRC.
            fab.fill_pattern(ep, buf, bytes, 0x0ff1_0ad1)
                .expect("fill doomed payload");
            off.send_offload(buf, bytes, peer, 41)
        } else if me == peer {
            let buf = fab.alloc(ep, bytes);
            off.recv_offload(buf, bytes, 0, 41)
        } else {
            return;
        };
        let err = off
            .wait_timeout(req, SimDelta::from_secs(1))
            .expect_err("a transfer whose every payload is dropped must fail, not stall");
        assert!(
            matches!(err, OffloadError::DataIntegrity { .. }),
            "rank {me}: expected DataIntegrity, got {err:?}"
        );
    })
}

/// Data-plane brownout under an armed health engine: every payload is
/// dropped (`data_drop_pm: 1000`, real byte movement) and the per-peer
/// data retry budget — smaller than `data_retx_max` and never refilled,
/// since refills ride recovered payloads — runs dry first. Both ends of
/// the matched pair must shed with a typed
/// [`OffloadError::RetryBudgetExhausted`]: the budget converts an
/// endless CRC-retransmit grind into one early, attributable refusal
/// (DESIGN.md §19).
pub fn drive_brownout(run: &CheckRun, bytes: u64) -> Result<Report, SimError> {
    assert!(
        run.move_bytes,
        "drive_brownout needs move_bytes: timing-only runs carry no payloads"
    );
    assert!(
        run.cfg.health.enabled,
        "drive_brownout proves the retry budget; arm HealthConfig on the run"
    );
    assert_eq!(
        run.cfg.fault.data_drop_pm, 1000,
        "drive_brownout needs a total payload brownout (data_drop_pm: 1000) — \
         partial drops let recovered payloads refill the budget"
    );
    assert!(
        run.cfg.health.data_budget < run.cfg.data_retx_max,
        "the budget must be the binding limit, or the shed degenerates to DataIntegrity"
    );
    run.run_offload(move |off| {
        if off.size() < 2 {
            return;
        }
        let me = off.rank();
        // Cross-node pair, as in `drive_data_integrity`: payload faults
        // live on the RDMA fabric, which intra-node transfers never
        // touch.
        let peer = off.size() / 2;
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(me);
        let req = if me == 0 {
            let buf = fab.alloc(ep, bytes);
            // Nonzero payload so dropped bytes are visible to the CRC.
            fab.fill_pattern(ep, buf, bytes, 0x0bad_cafe)
                .expect("fill doomed payload");
            off.send_offload(buf, bytes, peer, 42)
        } else if me == peer {
            let buf = fab.alloc(ep, bytes);
            off.recv_offload(buf, bytes, 0, 42)
        } else {
            return;
        };
        let err = off
            .wait_timeout(req, SimDelta::from_secs(1))
            .expect_err("a browned-out transfer must shed, not stall");
        assert!(
            matches!(err, OffloadError::RetryBudgetExhausted { .. }),
            "rank {me}: expected RetryBudgetExhausted, got {err:?}"
        );
    })
}

/// Circuit-breaker trip and recovery on the cross-GVMI path: sustained
/// fresh-buffer posts under a probabilistic `xreg_fail_pm` trip the
/// receiver-side breaker (each round allocates a new send buffer, so no
/// GVMI-cache hit masks the fault), open-state posts route straight to
/// staging and burn the probe cooldown down, and an eventual half-open
/// probe's registration roll succeeds — closing the breaker. Every
/// transfer must complete either way (fallback and fast-path are both
/// lossless); the checker asserts the trip/probe/close event sequence
/// on top of this driver.
pub fn drive_breaker_recovery(run: &CheckRun, bytes: u64, rounds: u64) -> Result<Report, SimError> {
    assert!(
        run.cfg.health.enabled,
        "drive_breaker_recovery exercises the breaker; arm HealthConfig on the run"
    );
    let pm = run.cfg.fault.xreg_fail_pm;
    assert!(
        pm > 0 && pm < 1000,
        "xreg_fail_pm must be probabilistic (0 < pm < 1000): high enough to trip \
         the breaker, below certainty so a half-open probe can eventually succeed"
    );
    run.run_offload(move |off| {
        if off.size() < 2 {
            return;
        }
        let me = off.rank();
        // Cross-node pair: cross-GVMI registration only happens for
        // inter-node transfers.
        let peer = off.size() / 2;
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(me);
        if me == 0 {
            for tag in 0..rounds {
                // A fresh buffer per round forces a fresh registration
                // attempt: cache hits never fail, so reusing one buffer
                // would stop feeding the breaker after the first success.
                let buf = fab.alloc(ep, bytes);
                let req = off.send_offload(buf, bytes, peer, tag);
                off.wait(req);
                assert!(
                    off.req_error(req).is_none(),
                    "round {tag}: a degraded-mode send must still complete"
                );
            }
        } else if me == peer {
            for tag in 0..rounds {
                let buf = fab.alloc(ep, bytes);
                let req = off.recv_offload(buf, bytes, 0, tag);
                off.wait(req);
                assert!(
                    off.req_error(req).is_none(),
                    "round {tag}: a degraded-mode recv must still complete"
                );
            }
        }
    })
}

/// Group-primitive all-to-all plus a barrier-ordered ring all-gather,
/// each called `calls` times. Exercises the group metadata exchange
/// (`RecvMeta`), the group packet/exec cache, cross-registration at
/// install time, and barrier-counter writes.
pub fn drive_alltoall(run: &CheckRun, block: u64, calls: u64) -> Result<Report, SimError> {
    run.run_offload(move |off| {
        let p = off.size() as u64;
        if p < 2 {
            return;
        }
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let sendbuf = fab.alloc(ep, block * p);
        let recvbuf = fab.alloc(ep, block * p);
        let a2a = off.record_alltoall(sendbuf, recvbuf, block);
        let agbuf = fab.alloc(ep, block * p);
        let ring = off.record_allgather_ring(agbuf, block);
        for _ in 0..calls {
            off.group_call(a2a);
            off.ctx().compute(SimDelta::from_us(2));
            off.group_wait(a2a).expect("group offload failed");
            off.group_call(ring);
            off.group_wait(ring).expect("group offload failed");
        }
    })
}

/// Halo exchange over the Group primitives: the same recorded group —
/// send a face to each ring neighbour, receive theirs, barrier — is
/// re-called every round with compute between call and wait. After the
/// first (cold) call the proxies replay the installed schedule from the
/// group cache without waking the host, which is exactly the overlap
/// window the metrics layer measures.
pub fn drive_group_stencil(
    run: &CheckRun,
    face_bytes: u64,
    rounds: u64,
) -> Result<Report, SimError> {
    run.run_offload(move |off| {
        let p = off.size();
        if p < 2 {
            return;
        }
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(off.rank());
        let me = off.rank();
        let right = (me + 1) % p;
        let left = (me + p - 1) % p;
        let sbuf_r = fab.alloc(ep, face_bytes);
        let sbuf_l = fab.alloc(ep, face_bytes);
        let rbuf_r = fab.alloc(ep, face_bytes);
        let rbuf_l = fab.alloc(ep, face_bytes);
        let g = off.group_start();
        off.group_send(g, sbuf_r, face_bytes, right, 0);
        off.group_send(g, sbuf_l, face_bytes, left, 1);
        off.group_recv(g, rbuf_l, face_bytes, left, 0);
        off.group_recv(g, rbuf_r, face_bytes, right, 1);
        off.group_barrier(g);
        off.group_end(g);
        for _ in 0..rounds {
            off.group_call(g);
            off.ctx().compute(SimDelta::from_us(5));
            off.group_wait(g).expect("group offload failed");
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_driver_completes_cleanly() {
        let report = drive_stencil(&CheckRun::baseline(11), 4096, 2).expect("clean run");
        assert!(report.end_time > SimTime::ZERO);
    }

    #[test]
    fn alltoall_driver_completes_cleanly() {
        let report = drive_alltoall(&CheckRun::baseline(12), 2048, 2).expect("clean run");
        assert!(report.end_time > SimTime::ZERO);
    }

    #[test]
    fn jitter_and_proxy_knobs_still_complete() {
        let mut run = CheckRun::baseline(13);
        run.jitter = SimDelta::from_us(3);
        run.proxies_per_dpu = 2;
        run.time_limit = Some(SimTime::ZERO + SimDelta::from_secs(5));
        drive_stencil(&run, 1024, 2).expect("jittered run");
        drive_alltoall(&run, 1024, 2).expect("jittered run");
    }

    #[test]
    fn group_stencil_driver_completes_cleanly() {
        let report = drive_group_stencil(&CheckRun::baseline(14), 4096, 3).expect("clean run");
        assert!(report.end_time > SimTime::ZERO);
    }

    fn two_tenant_run(seed: u64) -> CheckRun {
        use offload::TenantSpec;
        let mut run = CheckRun::baseline(seed);
        run.cfg = run
            .cfg
            .with_tenants(vec![TenantSpec::inherit(), TenantSpec::inherit()]);
        run
    }

    #[test]
    fn tenant_flood_floods_only_its_ring() {
        // 2×2 world, two tenants: tenant 1 = ranks {1, 3}. Only they
        // flood; tenant 0 idles and the run still drains cleanly.
        let report = drive_tenant_flood(&two_tenant_run(15), 1024, 8, 1).expect("clean run");
        assert!(report.end_time > SimTime::ZERO);
    }

    #[test]
    fn noisy_neighbor_driver_completes_with_and_without_aggressor() {
        let solo = drive_noisy_neighbor(&two_tenant_run(16), 4096, 3, 1024, 0).expect("solo run");
        let noisy = drive_noisy_neighbor(&two_tenant_run(16), 4096, 3, 1024, 8).expect("noisy run");
        assert!(solo.end_time > SimTime::ZERO);
        assert!(noisy.end_time > SimTime::ZERO);
    }

    #[test]
    fn brownout_driver_surfaces_typed_budget_shed() {
        use offload::{FaultPlan, HealthConfig};
        let mut run = CheckRun::baseline(18);
        run.move_bytes = true;
        run.cfg = run
            .cfg
            .with_fault(FaultPlan {
                data_drop_pm: 1000,
                seed: 18,
                ..FaultPlan::none()
            })
            .with_health(HealthConfig::armed());
        let report = drive_brownout(&run, 4096).expect("brownout run");
        assert!(report.end_time > SimTime::ZERO);
    }

    #[test]
    fn breaker_recovery_driver_completes_every_round() {
        use offload::{FaultPlan, HealthConfig};
        let mut run = CheckRun::baseline(19);
        run.cfg = run
            .cfg
            .with_fault(FaultPlan {
                xreg_fail_pm: 700,
                seed: 19,
                ..FaultPlan::none()
            })
            .with_health(HealthConfig::armed());
        let report = drive_breaker_recovery(&run, 2048, 48).expect("recovery run");
        assert!(report.end_time > SimTime::ZERO);
    }

    #[test]
    fn quota_retry_driver_surfaces_typed_shed() {
        use offload::TenantSpec;
        let mut run = CheckRun::baseline(17);
        run.cfg = run.cfg.with_tenants(vec![
            TenantSpec::inherit(),
            TenantSpec::inherit().with_hard_quota(2),
        ]);
        let report = drive_quota_retry(&run, 2048).expect("shed-then-retry run");
        assert!(report.end_time > SimTime::ZERO);
    }
}
