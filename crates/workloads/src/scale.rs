//! Synthetic large-scale workloads for the sharded simnet engine.
//!
//! These are *engine* benchmarks, not protocol benchmarks: thousands of
//! ranks exchanging raw simnet messages, one shard per simulated node,
//! so the conservative-lookahead scheduler is the thing under test. The
//! offload stack is deliberately absent — at 1k–4k ranks the interesting
//! questions are events/second and whether the parallel engine stays
//! bit-for-bit deterministic, and both are properties of the engine.
//!
//! Every run folds an order-and-timing checksum (`fingerprint`) over the
//! `(sender, round, payload, arrival time)` of every received message.
//! Any scheduling divergence — an event delivered early, late, or in a
//! different order — changes the fingerprint, so comparing fingerprints
//! across worker thread counts is a whole-run equivalence check.

use simnet::{EngineProfile, EventSink, Pid, SimDelta, Simulation};

use crate::stencil::dims3;

/// Nanoseconds for a same-node (intra-shard) message hop.
const LOCAL_NS: u64 = 150;
/// Jitter bound added to same-node hops.
const LOCAL_JITTER_NS: u64 = 100;
/// Nanoseconds for a cross-node hop; also the engine lookahead, so every
/// cross-shard delivery satisfies `delay >= lookahead` by construction.
const CROSS_NS: u64 = 1_000;
/// Jitter bound added to cross-node hops.
const CROSS_JITTER_NS: u64 = 500;
/// Per-iteration compute time in the stencil sweep.
const STENCIL_COMPUTE_NS: u64 = 5_000;

/// Configuration of one synthetic scale run.
#[derive(Debug, Clone, Copy)]
pub struct ScaleSpec {
    /// Simulated nodes. The sharded engine maps one shard per node.
    pub nodes: usize,
    /// Ranks per node.
    pub ppn: usize,
    /// Exchange rounds (alltoall) or sweep iterations (stencil).
    pub iters: u32,
    /// Deterministic seed.
    pub seed: u64,
    /// Worker threads for the sharded engine. A pure speed knob: results
    /// are identical at every value (that invariance is what
    /// [`ScaleRun::fingerprint`] verifies).
    pub threads: usize,
}

impl ScaleSpec {
    /// Total ranks (`nodes * ppn`).
    pub fn ranks(&self) -> usize {
        self.nodes * self.ppn
    }
}

/// Deterministic outcome of a scale run. Everything here is a pure
/// function of the spec (seed included) — two runs of the same spec must
/// compare equal regardless of worker thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleRun {
    /// Events the engine processed.
    pub events: u64,
    /// Virtual completion time, nanoseconds.
    pub virtual_ns: u64,
    /// Order-and-timing checksum over every received message.
    pub fingerprint: u64,
    /// Shards the run used (one per node).
    pub shards: u64,
    /// Synchronization windows the coordinator ran.
    pub windows: u64,
    /// Cross-shard deliveries.
    pub xshard_events: u64,
}

/// Fold one received message into a rank's running checksum. The mix is
/// SplitMix64-style so single-bit timing differences avalanche; the
/// result is reduced to 32 bits so per-rank sums over 4k ranks cannot
/// overflow the `u64` stats counter they are accumulated into.
fn mix(src: u32, round: u32, data: u64, at_ps: u64) -> u64 {
    let mut x = data
        ^ at_ps.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (u64::from(src) << 32 | u64::from(round));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x & 0xFFFF_FFFF
}

/// Observability hooks for the `_with` run variants. Both default to
/// off, in which case a `_with` run is byte-identical to the plain one.
#[derive(Default)]
pub struct ScaleObs {
    /// Event sink to install (e.g. an `obs::TelemetryBus` sink). When
    /// present, every rank additionally emits one cheap
    /// `(rank, round)` tick event per round so the sink sees a
    /// deterministic, virtual-time-stamped stream even though the
    /// scale workloads never touch the offload protocol.
    pub sink: Option<EventSink>,
    /// Arm the sharded engine's per-shard time accounting
    /// (`Report::profile`).
    pub profile: bool,
}

fn build_sim(spec: &ScaleSpec, obs: &mut ScaleObs) -> Simulation {
    assert!(spec.nodes >= 1 && spec.ppn >= 1 && spec.iters >= 1);
    let mut sim = Simulation::new(spec.seed);
    sim.set_threads(spec.threads.max(1));
    sim.set_lookahead(SimDelta::from_ns(CROSS_NS));
    // Thousands of rank threads; the closures below need little stack.
    sim.set_stack_size(256 * 1024);
    if let Some(sink) = obs.sink.take() {
        sim.set_event_sink(sink);
    }
    sim.set_profile(obs.profile);
    sim
}

/// Message hop delay from `src` rank to `dest` rank, with deterministic
/// per-message jitter drawn from the sender's shard RNG stream.
fn hop(ctx: &simnet::ProcessCtx, same_node: bool) -> SimDelta {
    if same_node {
        SimDelta::from_ns(LOCAL_NS + ctx.gen_range(LOCAL_JITTER_NS))
    } else {
        SimDelta::from_ns(CROSS_NS + ctx.gen_range(CROSS_JITTER_NS))
    }
}

fn finish(report: &simnet::Report) -> ScaleRun {
    ScaleRun {
        events: report.events,
        virtual_ns: report.end_time.as_ps() / 1_000,
        fingerprint: report.stats.counter("scale.fingerprint"),
        shards: report.stats.counter("simnet.sharded.shards"),
        windows: report.stats.counter("simnet.sharded.windows"),
        xshard_events: report.stats.counter("simnet.sharded.xshard_events"),
    }
}

/// Dense alltoall: every rank sends one message to every other rank per
/// round (`iters` rounds), then drains its expected receive count. At
/// 1k ranks that is ~1M deliveries per round — the engine self-benchmark
/// workload.
pub fn scale_alltoall(spec: &ScaleSpec) -> ScaleRun {
    scale_alltoall_with(spec, ScaleObs::default()).0
}

/// [`scale_alltoall`] with observability hooks. The [`ScaleRun`] is
/// identical to the plain variant's at any hook setting (emitting
/// events never advances virtual time or consumes RNG), which is how
/// the benches assert that profiling cannot perturb results.
pub fn scale_alltoall_with(
    spec: &ScaleSpec,
    mut obs: ScaleObs,
) -> (ScaleRun, Option<EngineProfile>) {
    let observed = obs.sink.is_some();
    let mut sim = build_sim(spec, &mut obs);
    let n = spec.ranks() as u32;
    let ppn = spec.ppn as u32;
    let iters = spec.iters;
    assert!(n >= 2, "alltoall needs at least two ranks");
    for r in 0..n {
        let node = r / ppn;
        sim.spawn_on(node as usize, format!("rank{r}"), move |ctx| {
            let mut acc: u64 = 0;
            for round in 0..iters {
                for off in 1..n {
                    let dest = (r + off) % n;
                    let delay = hop(&ctx, dest / ppn == node);
                    let data = u64::from(r).wrapping_mul(0x2545_F491_4F6C_DD1D) ^ u64::from(round);
                    ctx.deliver(
                        Pid::from_index(dest as usize),
                        delay,
                        Box::new((r, round, data)),
                    );
                }
                for _ in 1..n {
                    let msg = ctx.recv();
                    let Ok(body) = msg.downcast::<(u32, u32, u64)>() else {
                        unreachable!("alltoall ranks only exchange (src, round, data)");
                    };
                    let (src, rd, data) = *body;
                    acc = acc.wrapping_add(mix(src, rd, data, ctx.now().as_ps()));
                }
                if observed {
                    ctx.emit(&(r, round));
                }
            }
            ctx.stat_incr("scale.fingerprint", acc & 0xFFFF_FFFF);
        });
    }
    let report = sim.run().expect("scale alltoall cannot deadlock");
    (finish(&report), report.profile)
}

/// 3-D halo-exchange stencil: ranks form a periodic `dims3` grid, each
/// iteration sends to its six axis neighbours, drains six halos, then
/// computes. Much lower message density than the alltoall — this is the
/// "many windows, little work per window" end of the engine envelope.
pub fn scale_stencil(spec: &ScaleSpec) -> ScaleRun {
    scale_stencil_with(spec, ScaleObs::default()).0
}

/// [`scale_stencil`] with observability hooks — see
/// [`scale_alltoall_with`] for the invariance contract.
pub fn scale_stencil_with(
    spec: &ScaleSpec,
    mut obs: ScaleObs,
) -> (ScaleRun, Option<EngineProfile>) {
    let observed = obs.sink.is_some();
    let mut sim = build_sim(spec, &mut obs);
    let n = spec.ranks() as u32;
    let ppn = spec.ppn as u32;
    let iters = spec.iters;
    let (dx, dy, dz) = dims3(spec.ranks());
    let (dx, dy, dz) = (dx as u32, dy as u32, dz as u32);
    assert_eq!(dx * dy * dz, n, "dims3 must tile the rank count");
    for r in 0..n {
        let node = r / ppn;
        sim.spawn_on(node as usize, format!("rank{r}"), move |ctx| {
            let (x, y, z) = (r % dx, (r / dx) % dy, r / (dx * dy));
            let at = |x: u32, y: u32, z: u32| z * dx * dy + y * dx + x;
            let neighbours = [
                at((x + 1) % dx, y, z),
                at((x + dx - 1) % dx, y, z),
                at(x, (y + 1) % dy, z),
                at(x, (y + dy - 1) % dy, z),
                at(x, y, (z + 1) % dz),
                at(x, y, (z + dz - 1) % dz),
            ];
            let mut acc: u64 = 0;
            for round in 0..iters {
                for &dest in &neighbours {
                    let delay = hop(&ctx, dest / ppn == node);
                    let data = u64::from(r) << 32 | u64::from(dest);
                    ctx.deliver(
                        Pid::from_index(dest as usize),
                        delay,
                        Box::new((r, round, data)),
                    );
                }
                for _ in 0..neighbours.len() {
                    let msg = ctx.recv();
                    let Ok(body) = msg.downcast::<(u32, u32, u64)>() else {
                        unreachable!("stencil ranks only exchange (src, round, data)");
                    };
                    let (src, rd, data) = *body;
                    acc = acc.wrapping_add(mix(src, rd, data, ctx.now().as_ps()));
                }
                ctx.compute(SimDelta::from_ns(
                    STENCIL_COMPUTE_NS + ctx.gen_range(LOCAL_JITTER_NS),
                ));
                if observed {
                    ctx.emit(&(r, round));
                }
            }
            ctx.stat_incr("scale.fingerprint", acc & 0xFFFF_FFFF);
        });
    }
    let report = sim.run().expect("scale stencil cannot deadlock");
    (finish(&report), report.profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: ScaleSpec = ScaleSpec {
        nodes: 4,
        ppn: 4,
        iters: 2,
        seed: 7,
        threads: 1,
    };

    #[test]
    fn alltoall_is_thread_count_invariant() {
        let base = scale_alltoall(&SPEC);
        assert!(base.fingerprint != 0);
        assert!(base.xshard_events > 0);
        assert_eq!(base.shards, 4);
        for threads in [2usize, 4] {
            let run = scale_alltoall(&ScaleSpec { threads, ..SPEC });
            assert_eq!(base, run, "alltoall diverged at {threads} threads");
        }
    }

    #[test]
    fn stencil_is_thread_count_invariant() {
        let base = scale_stencil(&SPEC);
        assert!(base.fingerprint != 0);
        assert!(base.windows > 0);
        for threads in [2usize, 4] {
            let run = scale_stencil(&ScaleSpec { threads, ..SPEC });
            assert_eq!(base, run, "stencil diverged at {threads} threads");
        }
    }

    #[test]
    fn different_seeds_give_different_fingerprints() {
        let a = scale_alltoall(&SPEC);
        let b = scale_alltoall(&ScaleSpec { seed: 8, ..SPEC });
        assert_ne!(a.fingerprint, b.fingerprint);
    }
}
