//! Scoped observation of benchmark runs.
//!
//! The benchmark entry points in this crate build their own
//! [`rdma::ClusterBuilder`]s internally, which used to make their event
//! streams unreachable from tests and the bench harness. An [`Observer`]
//! installed with [`with_observer`] is consulted by every builder in
//! this crate for the duration of the closure: its event sink receives
//! the engine's [`offload::ProtoEvent`] stream and its `trace` flag
//! turns on timeline recording, so the returned [`simnet::Report`]
//! carries spans for the Chrome-trace exporter.
//!
//! The hook is a thread-local, not a global: benchmark sweeps in
//! different test threads observe independently.

use std::cell::RefCell;

use offload::{Metrics, MetricsReport, OffloadConfig};
use rdma::ClusterBuilder;
use simnet::EventSink;

/// What to attach to cluster builders inside an observed scope.
#[derive(Clone, Default)]
pub struct Observer {
    /// Structured-event sink, e.g. [`offload::Metrics::sink`].
    pub sink: Option<EventSink>,
    /// Record the simulation timeline (spans + instants).
    pub trace: bool,
}

thread_local! {
    static CURRENT: RefCell<Option<Observer>> = const { RefCell::new(None) };
}

struct Restore(Option<Observer>);

impl Drop for Restore {
    fn drop(&mut self) {
        let prev = self.0.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Run `f` with `obs` installed as the current thread's observer.
/// Nested scopes shadow (and then restore) the outer observer.
pub fn with_observer<T>(obs: Observer, f: impl FnOnce() -> T) -> T {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(obs));
    let _restore = Restore(prev);
    f()
}

/// Run `f` with a fresh [`Metrics`] collector observing every run it
/// starts, and return `f`'s value alongside the folded report.
pub fn with_metrics<T>(f: impl FnOnce() -> T) -> (T, MetricsReport) {
    let metrics = Metrics::new();
    let obs = Observer {
        sink: Some(metrics.sink()),
        trace: false,
    };
    let out = with_observer(obs, f);
    (out, metrics.report())
}

/// [`with_metrics`] with tenant attribution: when `cfg` carries a
/// multi-tenant roster, the collector is seeded with the rank→tenant
/// map of a `world`-rank run, so the folded report grows a per-tenant
/// section (see [`offload::TenantMetrics`]). On a single-tenant config
/// this is exactly [`with_metrics`] — no map, no tenants section,
/// byte-identical reports.
pub fn with_tenant_metrics<T>(
    cfg: &OffloadConfig,
    world: usize,
    f: impl FnOnce() -> T,
) -> (T, MetricsReport) {
    let metrics = Metrics::new();
    if cfg.multi_tenant() {
        metrics.set_tenant_map((0..world).map(|r| (r, cfg.tenant_of(r))).collect());
    }
    let obs = Observer {
        sink: Some(metrics.sink()),
        trace: false,
    };
    let out = with_observer(obs, f);
    (out, metrics.report())
}

/// Combine several event sinks into one that forwards every emission to
/// each, in order. Lets a run feed e.g. [`offload::Metrics`], a
/// conformance checker and a flight recorder from a single stream.
pub fn fanout(sinks: Vec<EventSink>) -> EventSink {
    std::sync::Arc::new(move |at, pid, ev| {
        for s in &sinks {
            s(at, pid, ev);
        }
    })
}

/// Attach the current observer (if any) to a cluster builder. Called by
/// every benchmark in this crate right after constructing its builder.
pub(crate) fn apply(mut b: ClusterBuilder) -> ClusterBuilder {
    if let Some(obs) = CURRENT.with(|c| c.borrow().clone()) {
        if let Some(sink) = obs.sink {
            b = b.with_event_sink(sink);
        }
        if obs.trace {
            b = b.with_trace();
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observer_scopes_nest_and_restore() {
        assert!(CURRENT.with(|c| c.borrow().is_none()));
        with_observer(Observer::default(), || {
            assert!(CURRENT.with(|c| c.borrow().is_some()));
            with_observer(
                Observer {
                    sink: None,
                    trace: true,
                },
                || {
                    assert!(CURRENT.with(|c| c.borrow().as_ref().unwrap().trace));
                },
            );
            assert!(!CURRENT.with(|c| c.borrow().as_ref().unwrap().trace));
        });
        assert!(CURRENT.with(|c| c.borrow().is_none()));
    }
}
