//! OMB-style overlap accounting.
//!
//! The OSU Micro-Benchmarks measure non-blocking collective overlap as
//!
//! ```text
//! overlap% = 100 · max(0, 1 − (T_overall − T_compute) / T_pure)
//! ```
//!
//! where `T_pure` is the latency of the collective alone, `T_compute` the
//! injected computation, and `T_overall` the time of
//! (start, compute, wait). The paper uses this formula for Figs. 12 and
//! 14 and its 3DStencil benchmark measures "% Overlap ... in a manner
//! similar to OMB Non-Blocking Collectives".

/// Result of one overlap measurement, all times in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapResult {
    /// Latency of the communication alone.
    pub pure_us: f64,
    /// Time of (start, compute, wait).
    pub overall_us: f64,
    /// Injected compute time.
    pub compute_us: f64,
}

impl OverlapResult {
    /// The OMB overlap percentage.
    pub fn overlap_pct(&self) -> f64 {
        omb_overlap_pct(self.pure_us, self.overall_us, self.compute_us)
    }
}

/// The OMB overlap formula (clamped to `[0, 100]`).
pub fn omb_overlap_pct(pure_us: f64, overall_us: f64, compute_us: f64) -> f64 {
    if pure_us <= 0.0 {
        return 100.0;
    }
    (100.0 * (1.0 - (overall_us - compute_us) / pure_us)).clamp(0.0, 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_overlap() {
        // Communication fully hidden: overall == compute.
        assert_eq!(omb_overlap_pct(50.0, 100.0, 100.0), 100.0);
    }

    #[test]
    fn zero_overlap() {
        // Fully serialized: overall == compute + pure.
        assert_eq!(omb_overlap_pct(50.0, 150.0, 100.0), 0.0);
    }

    #[test]
    fn half_overlap() {
        let pct = omb_overlap_pct(100.0, 150.0, 100.0);
        assert!((pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn clamps_out_of_range() {
        assert_eq!(omb_overlap_pct(10.0, 200.0, 100.0), 0.0);
        assert_eq!(omb_overlap_pct(10.0, 90.0, 100.0), 100.0);
    }

    #[test]
    fn result_struct_delegates() {
        let r = OverlapResult {
            pure_us: 100.0,
            overall_us: 120.0,
            compute_us: 100.0,
        };
        assert!((r.overlap_pct() - 80.0).abs() < 1e-9);
    }
}
