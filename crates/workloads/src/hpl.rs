//! HPL (High-Performance Linpack) skeleton (paper §VIII-D, Fig. 17).
//!
//! LU factorization of an `N × N` matrix in panels of width `NB` with the
//! *look-ahead* strategy: each step factors a panel, broadcasts it, and
//! overlaps the broadcast with the trailing update of the previous step.
//! The broadcast is the battleground:
//!
//! * [`HplAlgo::Ring1`] — HPL's own `1ring` algorithm over MPI p2p,
//!   progressed by `MPI_Test` between compute slices (paper Listing 1);
//! * [`HplAlgo::IntelIbcast`] — a binomial `MPI_Ibcast` schedule, still
//!   host-progressed;
//! * [`HplAlgo::Blues`] — BluesMPI's staged `Ibcast` offload;
//! * [`HplAlgo::Proposed`] — the ring recorded with Group primitives and
//!   offloaded to the DPU (paper Listing 5), full overlap.
//!
//! The process grid is `Pr × Qc` (near-square): the panel column is
//! distributed over the `Pr` row-ranks, and each of them broadcasts its
//! panel chunk along its own process **row** of `Qc` ranks — HPL's real
//! communication structure, with `Pr` independent row broadcasts per step.
//!
//! The compute model is scaled so a run takes milliseconds of virtual
//! time instead of hours: per-node model memory is 1 GiB (the paper's
//! fractions 5–75 % are applied to it) and DGEMM rates are fixed
//! constants. Panel sizes and per-step registration costs therefore grow
//! with the memory fraction exactly as in the paper, which is what drives
//! the proposed scheme's shrinking advantage at 50–75 %.

use std::sync::Arc;

use rdma::ClusterSpec;
use simnet::SimDelta;

use crate::harness::{collect, collector, run_workload, take, Harness, Runtime};

/// Broadcast algorithm under test.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HplAlgo {
    /// `IntelMPI-HPL-1ring`: CPU-driven dependent ring.
    Ring1,
    /// `IntelMPI-Ibcast`: host-progressed binomial tree.
    IntelIbcast,
    /// `BluesMPI`: staged DPU offload of Ibcast.
    Blues,
    /// `Proposed`: Group-primitive ring offloaded via cross-GVMI.
    Proposed,
}

impl HplAlgo {
    /// Display label (matches the paper's legend).
    pub fn label(self) -> &'static str {
        match self {
            HplAlgo::Ring1 => "IntelMPI-HPL-1ring",
            HplAlgo::IntelIbcast => "IntelMPI-Ibcast",
            HplAlgo::Blues => "BluesMPI",
            HplAlgo::Proposed => "Proposed",
        }
    }

    fn runtime(self) -> Runtime {
        match self {
            HplAlgo::Ring1 | HplAlgo::IntelIbcast => Runtime::Intel,
            HplAlgo::Blues => Runtime::blues(),
            HplAlgo::Proposed => Runtime::proposed(),
        }
    }
}

/// Panel width.
pub const NB: u64 = 256;
/// Modelled per-node memory the fractions apply to (scaled from 256 GB).
pub const MODEL_MEM_PER_NODE: u64 = 1 << 30;
/// Modelled per-rank trailing-update DGEMM rate (flop/s).
pub const UPDATE_FLOPS: f64 = 50e9;
/// Modelled panel-factorization rate (flop/s; panel work is less
/// efficient).
pub const FACTOR_FLOPS: f64 = 30e9;

/// Matrix order for a memory fraction on a cluster of `nodes`.
pub fn matrix_order(nodes: usize, mem_fraction: f64) -> u64 {
    let elements = (mem_fraction * (nodes as u64 * MODEL_MEM_PER_NODE) as f64 / 8.0) as u64;
    let n = (elements as f64).sqrt() as u64;
    (n / NB).max(1) * NB
}

/// Near-square two-factor decomposition `Pr × Qc` with `Pr ≤ Qc`.
pub fn dims2(p: usize) -> (usize, usize) {
    let mut a = (p as f64).sqrt() as usize;
    while a > 1 && !p.is_multiple_of(a) {
        a -= 1;
    }
    (a.max(1), p / a.max(1))
}

/// Panel factorization time: the panel column is factored cooperatively
/// by the `Pr` ranks of the owning process column.
fn factor_time(rem: u64, pr: usize) -> SimDelta {
    let flops = 2.0 * rem as f64 * (NB * NB) as f64 / pr as f64;
    SimDelta::from_us_f64(flops / FACTOR_FLOPS * 1e6)
}

fn update_time(rem: u64, ranks: usize) -> SimDelta {
    let flops = 2.0 * NB as f64 * (rem as f64) * (rem as f64) / ranks as f64;
    SimDelta::from_us_f64(flops / UPDATE_FLOPS * 1e6)
}

enum Bcast {
    Mpi(minimpi::Req),
    Blues(baselines::BluesReq),
    Group(offload::GroupRequest),
    /// Root-only or single-rank cases where nothing is in flight.
    Done,
}

/// Start the panel-chunk broadcast along this rank's process row.
fn start_bcast(
    h: &Harness,
    algo: HplAlgo,
    row: &[usize],
    root_pos: usize,
    buf: rdma::VAddr,
    len: u64,
    step: u64,
) -> Bcast {
    if row.len() == 1 {
        return Bcast::Done;
    }
    match algo {
        HplAlgo::Ring1 => Bcast::Mpi(h.mpi.iring_bcast_among(row, root_pos, buf, len)),
        HplAlgo::IntelIbcast => Bcast::Mpi(h.mpi.ibcast_among(row, root_pos, buf, len)),
        HplAlgo::Blues => Bcast::Blues(
            h.blues
                .as_ref()
                .expect("blues")
                .ibcast_among(row, root_pos, buf, len),
        ),
        HplAlgo::Proposed => {
            // Record the ring for this step's row and offload it whole
            // (paper Listing 5).
            let off = h.off.as_ref().expect("proposed");
            let q = row.len();
            let me_pos = row.iter().position(|&r| r == h.rank).expect("in row");
            let root = row[root_pos];
            let left = row[(me_pos + q - 1) % q];
            let right = row[(me_pos + 1) % q];
            let g = off.group_start();
            if h.rank == root {
                off.group_send(g, buf, len, right, step);
            } else {
                off.group_recv(g, buf, len, left, step);
                off.group_barrier(g);
                if right != root {
                    off.group_send(g, buf, len, right, step);
                }
            }
            off.group_end(g);
            off.group_call(g);
            Bcast::Group(g)
        }
    }
}

/// Overlap `compute` with the in-flight broadcast. Host-progressed
/// algorithms call `MPI_Test` only between *local* NB-wide DGEMM column
/// blocks — HPL's actual look-ahead granularity (paper Listing 1). The
/// trailing matrix's columns are distributed over the `Qc` row ranks, so
/// a rank owns `rem/(NB·Qc)` column blocks and polls that many times per
/// update; dependent ring hops stall up to one block of compute each.
fn overlap_update(h: &Harness, bcast: &Bcast, compute: SimDelta, local_chunks: u64) {
    match bcast {
        Bcast::Mpi(r) => {
            let slice = compute / local_chunks.max(1);
            h.mpi.compute_with_test(compute, slice, *r);
        }
        // Offloaded broadcasts need no CPU intervention.
        Bcast::Blues(_) | Bcast::Group(_) | Bcast::Done => h.ctx().compute(compute),
    }
}

fn wait_bcast(h: &Harness, bcast: Bcast) {
    match bcast {
        Bcast::Mpi(r) => h.mpi.wait(r),
        Bcast::Blues(r) => h.blues.as_ref().expect("blues").wait(r),
        Bcast::Group(g) => h
            .off
            .as_ref()
            .expect("proposed")
            .group_wait(g)
            .expect("group offload failed"),
        Bcast::Done => {}
    }
}

/// Run the HPL skeleton and return total wall time in µs.
pub fn hpl_runtime_us(
    nodes: usize,
    ppn: usize,
    mem_fraction: f64,
    algo: HplAlgo,
    seed: u64,
) -> f64 {
    let spec = ClusterSpec::new(nodes, ppn).without_byte_movement();
    let n = matrix_order(nodes, mem_fraction);
    let out = collector::<f64>();
    let out2 = Arc::clone(&out);
    run_workload(spec, seed, algo.runtime(), move |h| {
        let fab = h.cluster().fabric().clone();
        let ep = h.cluster().host_ep(h.rank);
        let p = h.size();
        let (pr, qc) = dims2(p);
        let my_row = h.rank / qc;
        let my_col = h.rank % qc;
        let row: Vec<usize> = (0..qc).map(|c| my_row * qc + c).collect();
        let steps = n / NB;
        // One reusable panel buffer of the maximum chunk size; per-step
        // lengths differ, so registrations are per-step (as in real HPL,
        // where the panel lives at a moving offset of the matrix).
        let panel = fab.alloc(ep, n.div_ceil(pr as u64) * NB * 8 + 8);
        h.mpi.barrier();
        let t0 = h.ctx().now();
        let mut prev_update: Option<(SimDelta, u64)> = None;
        for k in 0..steps {
            let rem = n - k * NB;
            let root_col = (k as usize) % qc;
            if my_col == root_col {
                h.ctx().compute(factor_time(rem, pr));
            }
            // Each row-rank of the owning column broadcasts its chunk of
            // the panel along its row.
            let bytes = (rem.div_ceil(pr as u64)).max(1) * NB * 8;
            let bcast = start_bcast(h, algo, &row, root_col, panel, bytes, k);
            if let Some((upd, chunks)) = prev_update.take() {
                overlap_update(h, &bcast, upd, chunks);
            }
            wait_bcast(h, bcast);
            prev_update = Some((update_time(rem, p), (rem / NB) / qc as u64));
        }
        if let Some((upd, _)) = prev_update {
            h.ctx().compute(upd);
        }
        let total = h.elapsed_max_us(t0);
        if h.rank == 0 {
            collect(&out2, total);
        }
    });
    take(&out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_order_scales_with_fraction() {
        let small = matrix_order(16, 0.05);
        let large = matrix_order(16, 0.75);
        assert!(large > small * 3);
        assert_eq!(small % NB, 0);
    }

    #[test]
    fn proposed_beats_ring1_at_small_fraction() {
        // The 1ring penalty appears once the ring depth exceeds the number
        // of look-ahead test points per update (paper's 512-rank runs);
        // 16 ranks with a small matrix is the smallest config that shows it.
        let ring1 = hpl_runtime_us(2, 8, 0.02, HplAlgo::Ring1, 13);
        let prop = hpl_runtime_us(2, 8, 0.02, HplAlgo::Proposed, 13);
        assert!(
            prop < ring1,
            "proposed ({prop}us) should beat 1ring ({ring1}us) — paper Fig. 17"
        );
    }

    #[test]
    fn all_algorithms_complete() {
        for algo in [
            HplAlgo::Ring1,
            HplAlgo::IntelIbcast,
            HplAlgo::Blues,
            HplAlgo::Proposed,
        ] {
            let t = hpl_runtime_us(2, 1, 0.01, algo, 17);
            assert!(t > 0.0, "{} produced no time", algo.label());
        }
    }
}
