//! Non-blocking ping-pong (paper Fig. 4): concurrent two-way
//! isend/irecv pairs followed by a wait-all, between one rank on each of
//! two nodes. Compares host MPI against the staging and GVMI offload
//! engines.

use std::sync::Arc;

use minimpi::{Mpi, MpiConfig};
use offload::{Offload, OffloadConfig};
use rdma::{ClusterBuilder, ClusterSpec, Inbox};

use crate::harness::{collect, collector, take};

/// Which engine carries the ping-pong payload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum P2pEngine {
    /// Host MPI (eager/rendezvous; paper's "Host" bars).
    Host,
    /// Offload framework, staging data path (paper's "Staging" bars).
    Staging,
    /// Offload framework, cross-GVMI data path (the proposed mechanism).
    Gvmi,
}

impl P2pEngine {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            P2pEngine::Host => "Host",
            P2pEngine::Staging => "Staging",
            P2pEngine::Gvmi => "GVMI",
        }
    }
}

/// Average one-way latency (µs) of a concurrent two-way non-blocking
/// exchange of `size` bytes, measured over `iters` iterations after
/// `warmup` warm-up iterations.
pub fn nonblocking_pingpong_us(
    size: u64,
    iters: u32,
    warmup: u32,
    engine: P2pEngine,
    seed: u64,
) -> f64 {
    let spec = ClusterSpec::new(2, 1);
    let out = collector::<f64>();
    let out2 = Arc::clone(&out);
    let builder = crate::observe::apply(ClusterBuilder::new(spec, seed));

    let body = move |rank: usize,
                     ctx: simnet::ProcessCtx,
                     cluster: rdma::ClusterCtx,
                     engine: P2pEngine| {
        let inbox = Inbox::new();
        let fab = cluster.fabric().clone();
        let ep = cluster.host_ep(rank);
        let sbuf = fab.alloc(ep, size);
        let rbuf = fab.alloc(ep, size);
        let peer = 1 - rank;
        let mpi = Mpi::attach(
            rank,
            ctx.clone(),
            cluster.clone(),
            &inbox,
            MpiConfig::default(),
        );
        let off = match engine {
            P2pEngine::Host => None,
            P2pEngine::Staging => Some(Offload::init(
                rank,
                ctx.clone(),
                cluster.clone(),
                &inbox,
                OffloadConfig::staging(),
            )),
            P2pEngine::Gvmi => Some(Offload::init(
                rank,
                ctx.clone(),
                cluster.clone(),
                &inbox,
                OffloadConfig::proposed(),
            )),
        };
        let mut total_us = 0.0;
        for i in 0..(warmup + iters) {
            mpi.barrier();
            let t0 = ctx.now();
            let tag = 2 * i as u64;
            match &off {
                None => {
                    let s = mpi.isend(sbuf, size, peer, tag);
                    let r = mpi.irecv(rbuf, size, peer, tag);
                    mpi.wait_all(&[s, r]);
                }
                Some(off) => {
                    let s = off.send_offload(sbuf, size, peer, tag);
                    let r = off.recv_offload(rbuf, size, peer, tag);
                    off.wait_all(&[s, r]);
                }
            }
            let us = (ctx.now() - t0).as_us_f64();
            if i >= warmup {
                total_us += us;
            }
        }
        if let Some(off) = &off {
            // Quiesce before finalize: every request already waited.
            off.finalize();
        }
        if rank == 0 {
            collect(&out2, total_us / iters as f64);
        }
    };

    let report = match engine {
        P2pEngine::Host => {
            builder.run_hosts(move |rank, ctx, cluster| body(rank, ctx, cluster, P2pEngine::Host))
        }
        P2pEngine::Staging => builder.run(
            move |rank, ctx, cluster| body(rank, ctx, cluster, P2pEngine::Staging),
            Some(offload::proxy_fn(OffloadConfig::staging())),
        ),
        P2pEngine::Gvmi => builder.run(
            move |rank, ctx, cluster| body(rank, ctx, cluster, P2pEngine::Gvmi),
            Some(offload::proxy_fn(OffloadConfig::proposed())),
        ),
    };
    report.expect("pingpong run");
    take(&out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staging_is_slowest_for_large_messages() {
        let host = nonblocking_pingpong_us(256 * 1024, 3, 2, P2pEngine::Host, 5);
        let gvmi = nonblocking_pingpong_us(256 * 1024, 3, 2, P2pEngine::Gvmi, 5);
        let staging = nonblocking_pingpong_us(256 * 1024, 3, 2, P2pEngine::Staging, 5);
        assert!(
            staging > host * 1.3,
            "staging {staging}us should clearly exceed host {host}us (paper Fig. 4)"
        );
        assert!(
            staging > gvmi * 1.2,
            "staging {staging}us should clearly exceed GVMI {gvmi}us"
        );
    }

    #[test]
    fn latencies_are_positive_and_ordered_by_size() {
        let small = nonblocking_pingpong_us(1024, 3, 1, P2pEngine::Host, 6);
        let large = nonblocking_pingpong_us(1 << 20, 3, 1, P2pEngine::Host, 6);
        assert!(small > 0.0 && large > small);
    }
}
