//! P3DFFT application skeleton (paper §VIII-D, Fig. 16).
//!
//! The paper profiled P3DFFT's compute loop: each transform phase
//! *"initiates two `MPI_Ialltoall` calls with different buffers ...
//! performs some computation, waits for one call to complete ... further
//! computation before waiting for another"*, with **no warm-up
//! iterations** — which is exactly where BluesMPI's cold-start showed up.
//! We reproduce that loop over a pencil-decomposed `x × y × z` grid:
//! forward and backward transforms per iteration, two persistent
//! all-to-all buffer pairs, FFT compute modelled as
//! `cells/rank × log₂(max dim) × NS_PER_POINT`.

use std::sync::Arc;

use rdma::{ClusterSpec, VAddr};
use simnet::SimDelta;

use crate::harness::{collect, collector, run_workload, take, Harness, Runtime};

/// Modelled FFT compute cost per grid point per transform phase.
pub const NS_PER_POINT: f64 = 4.0;

/// Complex-double element size.
const ELEM: u64 = 16;

/// Result of one P3DFFT run (times in µs, agreed across ranks).
#[derive(Debug, Clone, Copy)]
pub struct P3dfftResult {
    /// Whole-run wall time.
    pub total_us: f64,
    /// Profile of the first forward phase (paper Fig. 16c): compute part.
    pub phase_compute_us: f64,
    /// Profile of the first forward phase: time spent inside MPI
    /// (call + wait).
    pub phase_mpi_us: f64,
}

enum A2a {
    Intel(minimpi::Req),
    Blues(baselines::BluesReq),
    Prop(offload::GroupRequest),
}

struct TransposeSet {
    sendbuf: VAddr,
    recvbuf: VAddr,
    block: u64,
    group: Option<offload::GroupRequest>,
}

impl TransposeSet {
    fn new(h: &Harness, block: u64) -> Self {
        let fab = h.cluster().fabric().clone();
        let ep = h.cluster().host_ep(h.rank);
        let p = h.size() as u64;
        let sendbuf = fab.alloc(ep, block * p);
        let recvbuf = fab.alloc(ep, block * p);
        let group = h
            .off
            .as_ref()
            .map(|off| off.record_alltoall(sendbuf, recvbuf, block));
        TransposeSet {
            sendbuf,
            recvbuf,
            block,
            group,
        }
    }

    fn start(&self, h: &Harness) -> A2a {
        if let Some(off) = &h.off {
            let g = self.group.expect("recorded");
            off.group_call(g);
            A2a::Prop(g)
        } else if let Some(blues) = &h.blues {
            A2a::Blues(blues.ialltoall(self.sendbuf, self.recvbuf, self.block))
        } else {
            A2a::Intel(h.mpi.ialltoall(self.sendbuf, self.recvbuf, self.block))
        }
    }

    fn wait(&self, h: &Harness, r: A2a) {
        match r {
            A2a::Intel(r) => h.mpi.wait(r),
            A2a::Blues(r) => h.blues.as_ref().expect("blues").wait(r),
            A2a::Prop(g) => h
                .off
                .as_ref()
                .expect("off")
                .group_wait(g)
                .expect("group offload failed"),
        }
    }
}

/// Run the P3DFFT skeleton (`iters` forward+backward iterations, no
/// warm-up) and report run time plus the first-forward-phase profile.
pub fn p3dfft(
    nodes: usize,
    ppn: usize,
    grid: (u64, u64, u64),
    iters: u32,
    runtime: Runtime,
    seed: u64,
) -> P3dfftResult {
    let spec = ClusterSpec::new(nodes, ppn).without_byte_movement();
    let out = collector::<P3dfftResult>();
    let out2 = Arc::clone(&out);
    run_workload(spec, seed, runtime, move |h| {
        let p = h.size() as u64;
        let (x, y, z) = grid;
        let cells = x * y * z;
        let block = (cells * ELEM / (p * p)).max(1024);
        let set_a = TransposeSet::new(h, block);
        let set_b = TransposeSet::new(h, block);
        let max_dim = x.max(y).max(z) as f64;
        let phase_compute =
            SimDelta::from_us_f64((cells / p) as f64 * NS_PER_POINT * max_dim.log2() / 1000.0);
        let half = phase_compute.scale(0.5);

        let mut phase_profile: Option<(f64, f64)> = None;
        h.mpi.barrier();
        let t_run = h.ctx().now();
        for iter in 0..iters {
            // Forward and backward transform phases share the loop shape.
            for dirn in 0..2 {
                let t_phase = h.ctx().now();
                let mut mpi_us = 0.0;
                let mut timed = |f: &mut dyn FnMut()| {
                    let t0 = h.ctx().now();
                    f();
                    mpi_us += (h.ctx().now() - t0).as_us_f64();
                };
                let mut r1 = None;
                let mut r2 = None;
                timed(&mut || r1 = Some(set_a.start(h)));
                timed(&mut || r2 = Some(set_b.start(h)));
                h.ctx().compute(half);
                timed(&mut || set_a.wait(h, r1.take().expect("started")));
                h.ctx().compute(half);
                timed(&mut || set_b.wait(h, r2.take().expect("started")));
                if iter == 0 && dirn == 0 {
                    let total = (h.ctx().now() - t_phase).as_us_f64();
                    let mpi_max = h.mpi.allreduce_max_f64(mpi_us);
                    phase_profile = Some((total - mpi_us, mpi_max));
                    let _ = total;
                }
            }
        }
        let total_us = h.elapsed_max_us(t_run);
        if h.rank == 0 {
            let (pc, pm) = phase_profile.expect("first phase profiled");
            collect(
                &out2,
                P3dfftResult {
                    total_us,
                    phase_compute_us: pc,
                    phase_mpi_us: pm,
                },
            );
        }
    });
    take(&out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposed_beats_blues_without_warmup() {
        // Paper Fig. 16: without warm-up, BluesMPI's cold start makes it
        // the slowest; the proposed framework beats both.
        let intel = p3dfft(2, 2, (64, 64, 128), 2, Runtime::Intel, 21);
        let blues = p3dfft(2, 2, (64, 64, 128), 2, Runtime::blues(), 21);
        let prop = p3dfft(2, 2, (64, 64, 128), 2, Runtime::proposed(), 21);
        assert!(
            prop.total_us < intel.total_us,
            "proposed {} vs intel {}",
            prop.total_us,
            intel.total_us
        );
        assert!(
            blues.total_us > prop.total_us,
            "blues {} should trail proposed {}",
            blues.total_us,
            prop.total_us
        );
        // Fig. 16c shape: BluesMPI spends the most time in MPI in the
        // unwarmed first phase.
        assert!(
            blues.phase_mpi_us > prop.phase_mpi_us,
            "blues phase mpi {} vs proposed {}",
            blues.phase_mpi_us,
            prop.phase_mpi_us
        );
    }
}
