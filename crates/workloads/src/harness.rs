//! Per-rank runtime bundles and the workload runner.
//!
//! Every benchmark in this crate runs under one of three *runtimes*,
//! matching the paper's comparison set:
//!
//! * [`Runtime::Intel`] — host-progress MPI only;
//! * [`Runtime::Blues`] — host MPI plus BluesMPI staging offload of
//!   specific collectives;
//! * [`Runtime::Proposed`] — host MPI plus the paper's framework (GVMI
//!   data path, all caches).
//!
//! The MPI engine is always present: applications use it for setup,
//! barriers and timing reductions (as real apps do), and intra-node
//! transfers under the proposed runtime keep using host MPI, as the paper
//! notes for its 3DStencil results.

use std::sync::Arc;

use parking_lot::Mutex;

use baselines::{bluesmpi_proxy_config, BluesConfig, BluesMpi};
use minimpi::{Mpi, MpiConfig};
use offload::{Offload, OffloadConfig};
use rdma::{ClusterBuilder, ClusterSpec, Inbox};
use simnet::{Report, SimTime};

/// Which communication runtime a benchmark run uses.
#[derive(Clone, Debug)]
pub enum Runtime {
    /// Host-based MPI (the Intel MPI stand-in).
    Intel,
    /// BluesMPI staging offload (collectives only).
    Blues(BluesConfig),
    /// The paper's framework with the given configuration.
    Proposed(OffloadConfig),
}

impl Runtime {
    /// The proposed framework with its default (GVMI + caches) setup.
    pub fn proposed() -> Runtime {
        Runtime::Proposed(OffloadConfig::proposed())
    }

    /// BluesMPI with default cold-start parameters.
    pub fn blues() -> Runtime {
        Runtime::Blues(BluesConfig::default())
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Runtime::Intel => "IntelMPI",
            Runtime::Blues(_) => "BluesMPI",
            Runtime::Proposed(c) if c.data_path == offload::DataPath::Staging => "Staging",
            Runtime::Proposed(_) => "Proposed",
        }
    }
}

/// Everything one rank has at its disposal during a benchmark.
pub struct Harness {
    /// This rank.
    pub rank: usize,
    /// Host MPI engine (always available).
    pub mpi: Mpi,
    /// The proposed framework, when the runtime is `Proposed`.
    pub off: Option<Offload>,
    /// BluesMPI, when the runtime is `Blues`.
    pub blues: Option<BluesMpi>,
}

impl Harness {
    /// World size.
    pub fn size(&self) -> usize {
        self.mpi.size()
    }

    /// Process context.
    pub fn ctx(&self) -> &simnet::ProcessCtx {
        self.mpi.ctx()
    }

    /// The cluster roster.
    pub fn cluster(&self) -> &rdma::ClusterCtx {
        self.mpi.cluster()
    }

    /// Seconds of virtual time since `t0`, agreed by max-reduction across
    /// all ranks (how MPI benchmarks report a step time).
    pub fn elapsed_max_us(&self, t0: SimTime) -> f64 {
        let local = (self.ctx().now() - t0).as_us_f64();
        self.mpi.allreduce_max_f64(local)
    }
}

/// A slot for carrying one value out of the simulation (typically filled
/// by rank 0).
pub type Collector<T> = Arc<Mutex<Option<T>>>;

/// Create an empty collector.
pub fn collector<T>() -> Collector<T> {
    Arc::new(Mutex::new(None))
}

/// Fill a collector.
pub fn collect<T>(c: &Collector<T>, v: T) {
    *c.lock() = Some(v);
}

/// Take a collector's value after the run.
pub fn take<T>(c: &Collector<T>) -> T {
    c.lock().take().expect("collector filled during run")
}

/// Run `body(&harness)` on every rank of a `spec` cluster under `runtime`.
/// Spawns DPU proxies when the runtime needs them and finalizes the
/// offload engines afterwards.
pub fn run_workload(
    spec: ClusterSpec,
    seed: u64,
    runtime: Runtime,
    body: impl Fn(&Harness) + Send + Sync + 'static,
) -> Report {
    let builder = crate::observe::apply(ClusterBuilder::new(spec, seed));
    match runtime {
        Runtime::Intel => builder
            .run_hosts(move |rank, ctx, cluster| {
                let inbox = Inbox::new();
                let h = Harness {
                    rank,
                    mpi: Mpi::attach(rank, ctx, cluster, &inbox, MpiConfig::default()),
                    off: None,
                    blues: None,
                };
                body(&h);
            })
            .expect("intel run"),
        Runtime::Blues(bcfg) => builder
            .run(
                move |rank, ctx, cluster| {
                    let inbox = Inbox::new();
                    let blues =
                        BluesMpi::attach(rank, ctx.clone(), cluster.clone(), &inbox, bcfg.clone());
                    let h = Harness {
                        rank,
                        mpi: Mpi::attach(rank, ctx, cluster, &inbox, MpiConfig::default()),
                        off: None,
                        blues: Some(blues),
                    };
                    body(&h);
                    h.blues.as_ref().expect("blues present").finalize();
                },
                Some(offload::proxy_fn(bluesmpi_proxy_config())),
            )
            .expect("blues run"),
        Runtime::Proposed(ocfg) => {
            let proxy_cfg = ocfg.clone();
            builder
                .run(
                    move |rank, ctx, cluster| {
                        let inbox = Inbox::new();
                        let off =
                            Offload::init(rank, ctx.clone(), cluster.clone(), &inbox, ocfg.clone());
                        let h = Harness {
                            rank,
                            mpi: Mpi::attach(rank, ctx, cluster, &inbox, MpiConfig::default()),
                            off: Some(off),
                            blues: None,
                        };
                        body(&h);
                        h.off.as_ref().expect("offload present").finalize();
                    },
                    Some(offload::proxy_fn(proxy_cfg)),
                )
                .expect("proposed run")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimDelta;

    #[test]
    fn all_runtimes_bring_up_their_engines() {
        for rt in [Runtime::Intel, Runtime::blues(), Runtime::proposed()] {
            let label = rt.label();
            let c = collector::<(bool, bool)>();
            let c2 = Arc::clone(&c);
            run_workload(ClusterSpec::new(2, 1), 1, rt, move |h| {
                h.mpi.barrier();
                if h.rank == 0 {
                    collect(&c2, (h.off.is_some(), h.blues.is_some()));
                }
            });
            let (has_off, has_blues) = take(&c);
            match label {
                "IntelMPI" => assert!(!has_off && !has_blues),
                "BluesMPI" => assert!(!has_off && has_blues),
                "Proposed" => assert!(has_off && !has_blues),
                other => panic!("unexpected label {other}"),
            }
        }
    }

    #[test]
    fn elapsed_max_agrees_across_ranks() {
        let c = collector::<f64>();
        let c2 = Arc::clone(&c);
        run_workload(ClusterSpec::new(2, 1), 2, Runtime::Intel, move |h| {
            let t0 = h.ctx().now();
            // Rank 1 computes longer; both must report its time.
            h.ctx()
                .compute(SimDelta::from_us(100 * (h.rank as u64 + 1)));
            let us = h.elapsed_max_us(t0);
            assert!(us >= 200.0, "max time is the slower rank's: {us}");
            if h.rank == 0 {
                collect(&c2, us);
            }
        });
        assert!(take(&c) >= 200.0);
    }
}
