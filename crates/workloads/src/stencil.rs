//! 3-D stencil halo-exchange benchmark (paper §VIII-A, Figs. 11–12).
//!
//! Each rank owns a block of an `n³` grid under a near-cubic 3-D
//! decomposition and exchanges ghost faces with up to six neighbours every
//! iteration, overlapping a dummy compute proportional to its cell count.
//! Under the proposed runtime, **inter-node** faces ride the Basic offload
//! primitives while **intra-node** faces keep using host MPI — the paper
//! notes its intra-node transfers are not offloaded, which caps overlap
//! around ~78 %.

use std::sync::Arc;

use rdma::ClusterSpec;
use simnet::SimDelta;

use crate::harness::{collect, collector, run_workload, take, Harness, Runtime};
use crate::overlap::OverlapResult;

/// Near-cubic factorization of `p` into three factors, largest spread
/// minimized (the usual MPI_Dims_create heuristic, brute force).
pub fn dims3(p: usize) -> (usize, usize, usize) {
    let mut best = (1, 1, p);
    let mut best_score = usize::MAX;
    for a in 1..=p {
        if !p.is_multiple_of(a) {
            continue;
        }
        let q = p / a;
        for b in 1..=q {
            if !q.is_multiple_of(b) {
                continue;
            }
            let c = q / b;
            let score = a.max(b).max(c) - a.min(b).min(c);
            if score < best_score {
                best_score = score;
                best = (a, b, c);
            }
        }
    }
    best
}

/// Modelled per-cell compute time for the dummy stencil update.
pub const NS_PER_CELL: u64 = 2;

struct Neighbors {
    /// `(peer rank, face bytes, direction tag)` for each existing face.
    faces: Vec<(usize, u64, u64)>,
}

fn neighbors(rank: usize, p: usize, n: u64) -> (Neighbors, u64) {
    let (px, py, pz) = dims3(p);
    let (lx, ly, lz) = (
        n.div_ceil(px as u64),
        n.div_ceil(py as u64),
        n.div_ceil(pz as u64),
    );
    let coords = (rank % px, (rank / px) % py, rank / (px * py));
    let at = |x: usize, y: usize, z: usize| x + y * px + z * px * py;
    let elem = 8u64;
    let mut faces = Vec::new();
    let mut dir = 0u64;
    let mut add = |cond: bool, peer: (usize, usize, usize), bytes: u64| {
        if cond {
            faces.push((at(peer.0, peer.1, peer.2), bytes, dir));
        }
        dir += 1;
    };
    let (cx, cy, cz) = coords;
    add(cx > 0, (cx.wrapping_sub(1), cy, cz), ly * lz * elem);
    add(cx + 1 < px, (cx + 1, cy, cz), ly * lz * elem);
    add(cy > 0, (cx, cy.wrapping_sub(1), cz), lx * lz * elem);
    add(cy + 1 < py, (cx, cy + 1, cz), lx * lz * elem);
    add(cz > 0, (cx, cy, cz.wrapping_sub(1)), lx * ly * elem);
    add(cz + 1 < pz, (cx, cy, cz + 1), lx * ly * elem);
    (Neighbors { faces }, lx * ly * lz)
}

/// Opposite direction of a face tag (0↔1, 2↔3, 4↔5).
fn opposite(dir: u64) -> u64 {
    dir ^ 1
}

enum FaceReq {
    Mpi(minimpi::Req),
    Off(offload::OffloadReq),
}

fn exchange(
    h: &Harness,
    nb: &Neighbors,
    bufs: &[(rdma::VAddr, rdma::VAddr)],
    round: u64,
) -> Vec<FaceReq> {
    let my_node = h.cluster().spec().node_of_rank(h.rank);
    let mut reqs = Vec::with_capacity(nb.faces.len() * 2);
    for (i, &(peer, bytes, dir)) in nb.faces.iter().enumerate() {
        let (sbuf, rbuf) = bufs[i];
        let peer_node = h.cluster().spec().node_of_rank(peer);
        // Proposed runtime: offload inter-node faces; intra-node stays on
        // host MPI (paper §VIII-A).
        let use_off = h.off.is_some() && peer_node != my_node;
        let stag = round * 16 + dir;
        let rtag = round * 16 + opposite(dir);
        if use_off {
            let off = h.off.as_ref().expect("checked");
            reqs.push(FaceReq::Off(off.send_offload(sbuf, bytes, peer, stag)));
            reqs.push(FaceReq::Off(off.recv_offload(rbuf, bytes, peer, rtag)));
        } else {
            reqs.push(FaceReq::Mpi(h.mpi.isend(sbuf, bytes, peer, stag)));
            reqs.push(FaceReq::Mpi(h.mpi.irecv(rbuf, bytes, peer, rtag)));
        }
    }
    reqs
}

fn wait_faces(h: &Harness, reqs: Vec<FaceReq>) {
    for r in reqs {
        let t0 = h.ctx().now();
        match r {
            FaceReq::Mpi(r) => {
                h.mpi.wait(r);
                h.ctx().stat_time("stencil.wait.mpi", h.ctx().now() - t0);
            }
            FaceReq::Off(r) => {
                h.off.as_ref().expect("offload req").wait(r);
                h.ctx().stat_time("stencil.wait.off", h.ctx().now() - t0);
            }
        }
    }
}

/// Run the 3-D stencil benchmark: `n³` grid on `nodes × ppn` ranks for
/// `iters` measured iterations. Returns the averaged overlap measurement
/// (paper Figs. 11 and 12 plot `overall_us` and `overlap_pct`).
pub fn stencil3d(
    nodes: usize,
    ppn: usize,
    n: u64,
    iters: u32,
    warmup: u32,
    runtime: Runtime,
    seed: u64,
) -> OverlapResult {
    stencil3d_with_stats(nodes, ppn, n, iters, warmup, runtime, seed).0
}

/// As [`stencil3d`], also returning the run's statistics (wait-time
/// breakdowns, cache counters) for diagnostics.
pub fn stencil3d_with_stats(
    nodes: usize,
    ppn: usize,
    n: u64,
    iters: u32,
    warmup: u32,
    runtime: Runtime,
    seed: u64,
) -> (OverlapResult, simnet::Stats) {
    let spec = ClusterSpec::new(nodes, ppn).without_byte_movement();
    let out = collector::<OverlapResult>();
    let out2 = Arc::clone(&out);
    let report = run_workload(spec, seed, runtime, move |h| {
        let fab = h.cluster().fabric().clone();
        let ep = h.cluster().host_ep(h.rank);
        let (nb, cells) = neighbors(h.rank, h.size(), n);
        let bufs: Vec<_> = nb
            .faces
            .iter()
            .map(|&(_, bytes, _)| (fab.alloc(ep, bytes), fab.alloc(ep, bytes)))
            .collect();
        let compute = SimDelta::from_ns(cells * NS_PER_CELL);
        let mut round = 0u64;
        let mut run_iter = |with_compute: bool, h: &Harness| -> f64 {
            h.mpi.barrier();
            let t0 = h.ctx().now();
            let reqs = exchange(h, &nb, &bufs, round);
            round += 1;
            if with_compute {
                h.ctx().compute(compute);
            }
            wait_faces(h, reqs);
            h.elapsed_max_us(t0)
        };
        for _ in 0..warmup {
            run_iter(true, h);
        }
        let mut pure_us = 0.0;
        for _ in 0..iters {
            pure_us += run_iter(false, h);
        }
        pure_us /= iters as f64;
        let mut overall_us = 0.0;
        for _ in 0..iters {
            overall_us += run_iter(true, h);
        }
        overall_us /= iters as f64;
        if h.rank == 0 {
            collect(
                &out2,
                OverlapResult {
                    pure_us,
                    overall_us,
                    compute_us: compute.as_us_f64(),
                },
            );
        }
    });
    (take(&out), report.stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims3_factorizations() {
        assert_eq!(dims3(8), (2, 2, 2));
        assert_eq!(dims3(64), (4, 4, 4));
        let (a, b, c) = dims3(12);
        assert_eq!(a * b * c, 12);
        let (a, b, c) = dims3(7);
        assert_eq!(a * b * c, 7);
    }

    #[test]
    fn neighbor_faces_are_symmetric() {
        // If rank r lists (peer, bytes, dir), peer lists (r, bytes, opp).
        let p = 8;
        let n = 64;
        for r in 0..p {
            let (nb, _) = neighbors(r, p, n);
            for &(peer, bytes, dir) in &nb.faces {
                let (pnb, _) = neighbors(peer, p, n);
                assert!(
                    pnb.faces
                        .iter()
                        .any(|&(q, b, d)| q == r && b == bytes && d == opposite(dir)),
                    "rank {peer} must mirror rank {r}'s face {dir}"
                );
            }
        }
    }

    #[test]
    fn proposed_overlaps_better_than_intel() {
        let intel = stencil3d(2, 4, 128, 2, 1, Runtime::Intel, 3);
        let prop = stencil3d(2, 4, 128, 2, 1, Runtime::proposed(), 3);
        assert!(
            prop.overlap_pct() > intel.overlap_pct(),
            "proposed {} <= intel {}",
            prop.overlap_pct(),
            intel.overlap_pct()
        );
        assert!(
            prop.overall_us < intel.overall_us * 1.05,
            "proposed overall {} vs intel {}",
            prop.overall_us,
            intel.overall_us
        );
    }
}
