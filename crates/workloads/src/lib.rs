//! # workloads — the paper's micro-benchmarks and application skeletons
//!
//! Every figure in the paper's evaluation maps to a function here (the
//! `bench-harness` crate drives the sweeps):
//!
//! | Paper | Function |
//! |---|---|
//! | Fig. 4 (pingpong, host vs staging) | [`nonblocking_pingpong_us`] |
//! | Figs. 11–12 (3DStencil) | [`stencil3d`] |
//! | Figs. 13–14 (Ialltoall overlap) | [`ialltoall_overlap`] |
//! | Fig. 15 (simple vs group) | [`scatter_dest_time`] |
//! | Fig. 16 (P3DFFT) | [`p3dfft`] |
//! | Fig. 17 (HPL) | [`hpl_runtime_us`] |
//!
//! All benchmarks run under a [`Runtime`] (IntelMPI / BluesMPI /
//! Proposed), built by [`run_workload`].

#![warn(missing_docs)]

mod alltoall;
mod drivers;
mod harness;
mod hpl;
mod observe;
mod overlap;
mod p3dfft;
mod pingpong;
mod scale;
mod stencil;

pub use alltoall::{
    iallgather_overlap, ialltoall_overlap, ialltoall_overlap_on, scatter_dest_time, ScatterImpl,
};
pub use drivers::{
    drive_alltoall, drive_breaker_recovery, drive_brownout, drive_ctrl_undeliverable,
    drive_data_integrity, drive_deadline, drive_flood, drive_group_abandon, drive_group_stencil,
    drive_noisy_neighbor, drive_quota_retry, drive_stencil, drive_tenant_flood,
    drive_verified_stencil, CheckRun,
};
pub use harness::{collect, collector, run_workload, take, Collector, Harness, Runtime};
pub use hpl::{hpl_runtime_us, matrix_order, HplAlgo, MODEL_MEM_PER_NODE, NB};
pub use observe::{fanout, with_metrics, with_observer, with_tenant_metrics, Observer};
pub use overlap::{omb_overlap_pct, OverlapResult};
pub use p3dfft::{p3dfft, P3dfftResult, NS_PER_POINT};
pub use pingpong::{nonblocking_pingpong_us, P2pEngine};
pub use scale::{
    scale_alltoall, scale_alltoall_with, scale_stencil, scale_stencil_with, ScaleObs, ScaleRun,
    ScaleSpec,
};
pub use stencil::{dims3, stencil3d, stencil3d_with_stats, NS_PER_CELL};
