//! OMB-style `MPI_Ialltoall` overlap benchmark (paper Figs. 13–14) and the
//! scatter-destination Simple-vs-Group comparison (paper Fig. 15).

use std::sync::Arc;

use rdma::{ClusterSpec, VAddr};
use simnet::SimDelta;

use crate::harness::{collect, collector, run_workload, take, Harness, Runtime};
use crate::overlap::OverlapResult;

/// A started non-blocking all-to-all under any runtime.
enum A2aReq {
    Intel(minimpi::Req),
    Blues(baselines::BluesReq),
    Proposed(offload::GroupRequest),
}

/// Per-rank all-to-all driver that hides the runtime differences.
struct A2aDriver<'a> {
    h: &'a Harness,
    sendbuf: VAddr,
    recvbuf: VAddr,
    block: u64,
    group: Option<offload::GroupRequest>,
}

impl<'a> A2aDriver<'a> {
    fn new(h: &'a Harness, block: u64) -> Self {
        let fab = h.cluster().fabric().clone();
        let ep = h.cluster().host_ep(h.rank);
        let p = h.size() as u64;
        let sendbuf = fab.alloc(ep, block * p);
        let recvbuf = fab.alloc(ep, block * p);
        // Record the scatter-destination pattern once; later calls hit
        // the metadata caches (paper §VII-D).
        let group = h
            .off
            .as_ref()
            .map(|off| off.record_alltoall(sendbuf, recvbuf, block));
        A2aDriver {
            h,
            sendbuf,
            recvbuf,
            block,
            group,
        }
    }

    fn start(&self) -> A2aReq {
        if let Some(off) = &self.h.off {
            let g = self.group.expect("group recorded");
            off.group_call(g);
            A2aReq::Proposed(g)
        } else if let Some(blues) = &self.h.blues {
            A2aReq::Blues(blues.ialltoall(self.sendbuf, self.recvbuf, self.block))
        } else {
            A2aReq::Intel(self.h.mpi.ialltoall(self.sendbuf, self.recvbuf, self.block))
        }
    }

    fn wait(&self, r: A2aReq) {
        match r {
            A2aReq::Intel(r) => self.h.mpi.wait(r),
            A2aReq::Blues(r) => self.h.blues.as_ref().expect("blues").wait(r),
            A2aReq::Proposed(g) => self
                .h
                .off
                .as_ref()
                .expect("off")
                .group_wait(g)
                .expect("group offload failed"),
        }
    }
}

/// Fig. 13/14 data point: pure latency, overall time with overlapped
/// compute, and the OMB overlap percentage for one `(runtime, scale,
/// message size)` combination.
pub fn ialltoall_overlap(
    nodes: usize,
    ppn: usize,
    block: u64,
    iters: u32,
    warmup: u32,
    runtime: Runtime,
    seed: u64,
) -> OverlapResult {
    let spec = ClusterSpec::new(nodes, ppn).without_byte_movement();
    ialltoall_overlap_on(spec, block, iters, warmup, runtime, seed)
}

/// As [`ialltoall_overlap`], on a caller-prepared [`ClusterSpec`] — used
/// for hardware-generation and proxy-count studies.
pub fn ialltoall_overlap_on(
    spec: ClusterSpec,
    block: u64,
    iters: u32,
    warmup: u32,
    runtime: Runtime,
    seed: u64,
) -> OverlapResult {
    let out = collector::<OverlapResult>();
    let out2 = Arc::clone(&out);
    run_workload(spec, seed, runtime, move |h| {
        let driver = A2aDriver::new(h, block);
        for _ in 0..warmup {
            driver.wait(driver.start());
        }
        // Pure communication latency.
        let mut pure_us = 0.0;
        for _ in 0..iters {
            h.mpi.barrier();
            let t0 = h.ctx().now();
            driver.wait(driver.start());
            pure_us += h.elapsed_max_us(t0);
        }
        pure_us /= iters as f64;
        // Overall with compute ≈ pure latency injected (OMB method).
        let compute = SimDelta::from_us_f64(pure_us);
        let mut overall_us = 0.0;
        for _ in 0..iters {
            h.mpi.barrier();
            let t0 = h.ctx().now();
            let r = driver.start();
            h.ctx().compute(compute);
            driver.wait(r);
            overall_us += h.elapsed_max_us(t0);
        }
        overall_us /= iters as f64;
        if h.rank == 0 {
            collect(
                &out2,
                OverlapResult {
                    pure_us,
                    overall_us,
                    compute_us: pure_us,
                },
            );
        }
    });
    take(&out)
}

/// Which implementation of the personalized scatter-destination exchange
/// (paper Fig. 15).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScatterImpl {
    /// Basic primitives: one RTS/RTR/FIN×2 exchange per transfer.
    Simple,
    /// Group primitives: one gathered packet per call, metadata cached.
    Group,
}

impl ScatterImpl {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ScatterImpl::Simple => "Simple",
            ScatterImpl::Group => "Group",
        }
    }
}

/// Fig. 15 data point: average per-iteration completion time (µs) of the
/// scatter-destination pattern under the proposed framework, implemented
/// with Simple or Group primitives. Also returns the host↔DPU control
/// message count.
pub fn scatter_dest_time(
    nodes: usize,
    ppn: usize,
    block: u64,
    iters: u32,
    warmup: u32,
    which: ScatterImpl,
    seed: u64,
) -> (f64, u64) {
    let spec = ClusterSpec::new(nodes, ppn).without_byte_movement();
    let out = collector::<f64>();
    let out2 = Arc::clone(&out);
    let report = run_workload(spec, seed, Runtime::proposed(), move |h| {
        let off = h.off.as_ref().expect("proposed runtime");
        let fab = h.cluster().fabric().clone();
        let ep = h.cluster().host_ep(h.rank);
        let p = h.size();
        let me = h.rank;
        let sendbuf = fab.alloc(ep, block * p as u64);
        let recvbuf = fab.alloc(ep, block * p as u64);
        let group = match which {
            ScatterImpl::Group => Some(off.record_alltoall(sendbuf, recvbuf, block)),
            ScatterImpl::Simple => None,
        };
        let one_round = || match group {
            Some(g) => {
                off.group_call(g);
                off.group_wait(g).expect("group offload failed");
            }
            None => {
                let mut reqs = Vec::with_capacity(2 * (p - 1));
                for k in 1..p {
                    let dst = (me + k) % p;
                    let src = (me + p - k) % p;
                    reqs.push(off.send_offload(
                        sendbuf.offset(dst as u64 * block),
                        block,
                        dst,
                        dst as u64,
                    ));
                    reqs.push(off.recv_offload(
                        recvbuf.offset(src as u64 * block),
                        block,
                        src,
                        me as u64,
                    ));
                }
                off.wait_all(&reqs);
            }
        };
        for _ in 0..warmup {
            one_round();
        }
        let mut total = 0.0;
        for _ in 0..iters {
            h.mpi.barrier();
            let t0 = h.ctx().now();
            one_round();
            total += h.elapsed_max_us(t0);
        }
        if h.rank == 0 {
            collect(&out2, total / iters as f64);
        }
    });
    (take(&out), report.stats.counter("offload.ctrl.host_dpu"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposed_beats_blues_on_latency_and_both_overlap() {
        let blues = ialltoall_overlap(2, 4, 32 * 1024, 2, 2, Runtime::blues(), 7);
        let prop = ialltoall_overlap(2, 4, 32 * 1024, 2, 2, Runtime::proposed(), 7);
        let intel = ialltoall_overlap(2, 4, 32 * 1024, 2, 2, Runtime::Intel, 7);
        // Paper Fig. 13: proposed < BluesMPI on overall time; Fig. 14:
        // both offloads overlap nearly fully, Intel does not.
        assert!(
            prop.pure_us < blues.pure_us,
            "proposed ({}) should beat BluesMPI ({}) latency",
            prop.pure_us,
            blues.pure_us
        );
        assert!(
            prop.overlap_pct() > 90.0,
            "proposed overlap {}",
            prop.overlap_pct()
        );
        assert!(
            blues.overlap_pct() > 90.0,
            "blues overlap {}",
            blues.overlap_pct()
        );
        assert!(
            intel.overlap_pct() < prop.overlap_pct(),
            "intel {} vs proposed {}",
            intel.overlap_pct(),
            prop.overlap_pct()
        );
    }

    #[test]
    fn group_beats_simple_for_dense_patterns() {
        let (simple_us, simple_msgs) =
            scatter_dest_time(2, 4, 16 * 1024, 2, 2, ScatterImpl::Simple, 9);
        let (group_us, group_msgs) =
            scatter_dest_time(2, 4, 16 * 1024, 2, 2, ScatterImpl::Group, 9);
        assert!(
            group_us < simple_us,
            "group ({group_us}us) should beat simple ({simple_us}us) — paper Fig. 15"
        );
        assert!(
            group_msgs < simple_msgs / 2,
            "group sends far fewer host-DPU control messages ({group_msgs} vs {simple_msgs})"
        );
    }
}

/// Extension data point: `MPI_Iallgather` overlap under the three
/// runtimes (the second collective BluesMPI's authors offloaded, in their
/// HiPC'21 follow-up, reference \[9\]). Layout: `buf` holds `size()` blocks of `block`
/// bytes, own block pre-filled.
pub fn iallgather_overlap(
    nodes: usize,
    ppn: usize,
    block: u64,
    iters: u32,
    warmup: u32,
    runtime: Runtime,
    seed: u64,
) -> OverlapResult {
    let spec = ClusterSpec::new(nodes, ppn).without_byte_movement();
    let out = collector::<OverlapResult>();
    let out2 = Arc::clone(&out);
    run_workload(spec, seed, runtime, move |h| {
        let fab = h.cluster().fabric().clone();
        let ep = h.cluster().host_ep(h.rank);
        let p = h.size() as u64;
        let buf = fab.alloc(ep, block * p);
        let group = h
            .off
            .as_ref()
            .map(|off| off.record_allgather_ring(buf, block));
        let run_once = |h: &Harness| {
            if let Some(g) = group {
                let off = h.off.as_ref().expect("proposed");
                off.group_call(g);
                off.group_wait(g).expect("group offload failed");
            } else if let Some(blues) = &h.blues {
                let r = blues.iallgather(buf, block);
                blues.wait(r);
            } else {
                let r = h.mpi.iallgather(buf, block);
                h.mpi.wait(r);
            }
        };
        for _ in 0..warmup {
            run_once(h);
        }
        let mut pure_us = 0.0;
        for _ in 0..iters {
            h.mpi.barrier();
            let t0 = h.ctx().now();
            run_once(h);
            pure_us += h.elapsed_max_us(t0);
        }
        pure_us /= iters as f64;
        let compute = SimDelta::from_us_f64(pure_us);
        let mut overall_us = 0.0;
        for _ in 0..iters {
            h.mpi.barrier();
            let t0 = h.ctx().now();
            if let Some(g) = group {
                let off = h.off.as_ref().expect("proposed");
                off.group_call(g);
                h.ctx().compute(compute);
                off.group_wait(g).expect("group offload failed");
            } else if let Some(blues) = &h.blues {
                let r = blues.iallgather(buf, block);
                h.ctx().compute(compute);
                blues.wait(r);
            } else {
                let r = h.mpi.iallgather(buf, block);
                h.ctx().compute(compute);
                h.mpi.wait(r);
            }
            overall_us += h.elapsed_max_us(t0);
        }
        overall_us /= iters as f64;
        if h.rank == 0 {
            collect(
                &out2,
                OverlapResult {
                    pure_us,
                    overall_us,
                    compute_us: pure_us,
                },
            );
        }
    });
    take(&out)
}

#[cfg(test)]
mod allgather_tests {
    use super::*;

    #[test]
    fn allgather_offloads_overlap_where_host_mpi_cannot() {
        // The ring allgather is the worst case for host progress: every
        // step depends on the previous one.
        // Warm-up count exceeds BluesMPI's cold-start call count.
        let intel = iallgather_overlap(2, 2, 64 * 1024, 1, 4, Runtime::Intel, 3);
        let prop = iallgather_overlap(2, 2, 64 * 1024, 1, 4, Runtime::proposed(), 3);
        let blues = iallgather_overlap(2, 2, 64 * 1024, 1, 4, Runtime::blues(), 3);
        assert!(prop.overlap_pct() > 90.0, "proposed {}", prop.overlap_pct());
        assert!(blues.overlap_pct() > 90.0, "blues {}", blues.overlap_pct());
        assert!(
            intel.overlap_pct() < 50.0,
            "host-progressed dependent ring cannot overlap: {}",
            intel.overlap_pct()
        );
    }
}
