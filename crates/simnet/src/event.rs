//! The pending-event queue.
//!
//! Events are ordered by `(time, sequence)`: ties in virtual time are broken
//! by insertion order, which makes the whole simulation deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::process::{Payload, Pid};
use crate::time::SimTime;

/// What happens when an event fires.
pub(crate) enum EventKind {
    /// Wake a process that is sleeping/computing.
    Wake(Pid),
    /// Deposit a message into a process mailbox (waking it if it is waiting
    /// for mail).
    Deliver(Pid, Payload),
}

pub(crate) struct QueuedEvent {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for QueuedEvent {}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedEvent {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the earliest event.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Min-queue of future events.
#[derive(Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<QueuedEvent>,
    next_seq: u64,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub(crate) fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent { at, seq, kind });
    }

    pub(crate) fn pop(&mut self) -> Option<QueuedEvent> {
        self.heap.pop()
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wake(pid: u32) -> EventKind {
        EventKind::Wake(Pid(pid))
    }

    fn pid_of(ev: &QueuedEvent) -> u32 {
        match ev.kind {
            EventKind::Wake(p) => p.0,
            EventKind::Deliver(p, _) => p.0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(30), wake(3));
        q.push(SimTime::from_ps(10), wake(1));
        q.push(SimTime::from_ps(20), wake(2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| pid_of(&e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ps(5);
        for pid in 0..10 {
            q.push(t, wake(pid));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| pid_of(&e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, wake(0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
