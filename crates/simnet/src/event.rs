//! The pending-event queue.
//!
//! Events are ordered by the **canonical key** `(time, source shard,
//! source sequence)`. The single-threaded engine always stamps source
//! shard 0 and a queue-local insertion counter, which reduces the key to
//! the historical `(time, sequence)` pair — ties in virtual time break
//! by insertion order and the whole simulation is deterministic.
//!
//! The sharded engine stamps each event with the id of the shard that
//! *created* it and that shard's private monotone counter. Because a
//! shard's execution between synchronization windows is sequential and
//! deterministic, the key is a pure function of virtual time and the
//! event's causal origin — never of OS thread scheduling — which is what
//! makes cross-shard delivery order reproducible at any thread count.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::process::{Payload, Pid};
use crate::time::SimTime;

/// What happens when an event fires.
pub(crate) enum EventKind {
    /// Wake a process that is sleeping/computing.
    Wake(Pid),
    /// Deposit a message into a process mailbox (waking it if it is waiting
    /// for mail).
    Deliver(Pid, Payload),
}

pub(crate) struct QueuedEvent {
    pub(crate) at: SimTime,
    /// Shard that created the event (0 for the single-threaded engine).
    pub(crate) src: u32,
    /// Monotone counter of the creating shard (queue-local insertion
    /// order for the single-threaded engine).
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

impl QueuedEvent {
    /// The canonical ordering key.
    fn key(&self) -> (SimTime, u32, u64) {
        (self.at, self.src, self.seq)
    }
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for QueuedEvent {}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedEvent {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the earliest event.
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().cmp(&self.key())
    }
}

/// Min-queue of future events.
#[derive(Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<QueuedEvent>,
    next_seq: u64,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Push with the queue's own insertion counter as the key (source
    /// shard 0) — the single-threaded engine's path.
    pub(crate) fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent {
            at,
            src: 0,
            seq,
            kind,
        });
    }

    /// Push with an explicit canonical key — the sharded engine's path.
    /// `(src, seq)` must be globally unique (each shard stamps its own id
    /// and a private monotone counter).
    pub(crate) fn push_keyed(&mut self, at: SimTime, src: u32, seq: u64, kind: EventKind) {
        self.heap.push(QueuedEvent { at, src, seq, kind });
    }

    pub(crate) fn pop(&mut self) -> Option<QueuedEvent> {
        self.heap.pop()
    }

    /// Virtual time of the earliest pending event, if any.
    pub(crate) fn peek_at(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wake(pid: u32) -> EventKind {
        EventKind::Wake(Pid(pid))
    }

    fn pid_of(ev: &QueuedEvent) -> u32 {
        match ev.kind {
            EventKind::Wake(p) => p.0,
            EventKind::Deliver(p, _) => p.0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(30), wake(3));
        q.push(SimTime::from_ps(10), wake(1));
        q.push(SimTime::from_ps(20), wake(2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| pid_of(&e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ps(5);
        for pid in 0..10 {
            q.push(t, wake(pid));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| pid_of(&e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn keyed_ties_break_by_shard_then_seq() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ps(5);
        // Insert deliberately out of canonical order.
        q.push_keyed(t, 2, 0, wake(4));
        q.push_keyed(t, 0, 9, wake(1));
        q.push_keyed(t, 1, 3, wake(2));
        q.push_keyed(t, 1, 7, wake(3));
        q.push_keyed(t, 0, 2, wake(0));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| pid_of(&e)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_at(), None);
        q.push(SimTime::from_ps(20), wake(0));
        q.push(SimTime::from_ps(10), wake(1));
        assert_eq!(q.peek_at(), Some(SimTime::from_ps(10)));
        q.pop();
        assert_eq!(q.peek_at(), Some(SimTime::from_ps(20)));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, wake(0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
