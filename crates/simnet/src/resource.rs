//! FIFO resources with capacity-accurate out-of-order handling.
//!
//! A [`Resource`] models a serial device — a NIC port, a PCIe DMA channel.
//! Reserving it for a span returns the granted `(start, end)` service
//! window.
//!
//! Reservations arrive with a *service-start instant* (`now`) that the
//! caller computed — and because simulated NICs schedule whole transfers
//! at post time, reservations are **not** always made in arrival order
//! (many posters interleave). Two disciplines cover this:
//!
//! * **In-order** (arrival ≥ any seen before): exact FIFO — the window
//!   starts when the previous one ends. This is the common case and keeps
//!   latency modelling exact.
//! * **Out-of-order** (arrival before the newest seen): the work is
//!   slotted into per-bucket residual capacity (20 µs buckets) starting at
//!   its arrival. It neither waits behind work that arrives later (no
//!   false holes) nor retroactively changes already-granted windows.
//!   Placement within a bucket is approximate, so such messages carry up
//!   to one bucket of timing noise — irrelevant for the congested bulk
//!   traffic that triggers this path.

use std::collections::BTreeMap;

use crate::time::{SimDelta, SimTime};

/// Handle to a resource created via `Simulation::create_resource` /
/// `ProcessCtx::create_resource`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ResourceId(pub(crate) u32);

/// Width of a capacity bucket (20 µs in picoseconds).
const BUCKET_PS: u64 = 20_000_000;

/// Scheduler-side state of one resource.
#[derive(Debug, Clone)]
pub(crate) struct ResourceState {
    pub(crate) name: String,
    /// Latest arrival instant seen (orders the two disciplines).
    last_arrive: SimTime,
    /// End of the in-order FIFO's last granted window.
    busy_until: SimTime,
    /// Used capacity (ps) per 20 µs bucket, for out-of-order insertion.
    buckets: BTreeMap<u64, u64>,
    /// Total busy time, for utilization reporting.
    pub(crate) busy_total: SimDelta,
    /// Number of reservations, for reporting.
    pub(crate) reservations: u64,
}

impl ResourceState {
    pub(crate) fn new(name: String) -> Self {
        ResourceState {
            name,
            last_arrive: SimTime::ZERO,
            busy_until: SimTime::ZERO,
            buckets: BTreeMap::new(),
            busy_total: SimDelta::ZERO,
            reservations: 0,
        }
    }

    /// Mark `[start_ps, start_ps + dur_ps)` of capacity consumed,
    /// spilling into later buckets where one is already full.
    fn occupy(&mut self, start_ps: u64, dur_ps: u64) {
        let mut idx = start_ps / BUCKET_PS;
        let mut remaining = dur_ps;
        while remaining > 0 {
            let used = self.buckets.entry(idx).or_insert(0);
            let free = BUCKET_PS - *used;
            let take = free.min(remaining);
            *used += take;
            remaining -= take;
            idx += 1;
        }
    }

    /// Reserve the resource for `dur` of work arriving at `now`.
    /// Returns the granted `(start, end)` service window.
    pub(crate) fn reserve(&mut self, now: SimTime, dur: SimDelta) -> (SimTime, SimTime) {
        self.busy_total += dur;
        self.reservations += 1;
        if dur == SimDelta::ZERO {
            return (now, now);
        }
        if now >= self.last_arrive {
            // Exact FIFO for in-order arrivals.
            self.last_arrive = now;
            let start = self.busy_until.max(now);
            let end = start + dur;
            self.busy_until = end;
            self.occupy(start.as_ps(), dur.as_ps());
            return (start, end);
        }
        // Out-of-order: serve from residual bucket capacity at `now`.
        let arrive_ps = now.as_ps();
        let mut idx = arrive_ps / BUCKET_PS;
        let mut remaining = dur.as_ps();
        let finish_ps = loop {
            let bstart = idx * BUCKET_PS;
            let used = self.buckets.entry(idx).or_insert(0);
            let free = BUCKET_PS - *used;
            let take = free.min(remaining);
            if take > 0 {
                let used_before = *used;
                *used += take;
                remaining -= take;
                if remaining == 0 {
                    // Approximate completion point inside this bucket.
                    let f = arrive_ps.max(bstart) + used_before + take;
                    break f.min(bstart + BUCKET_PS).max(arrive_ps + 1);
                }
            }
            idx += 1;
        };
        let end = SimTime::from_ps(finish_ps.max(arrive_ps + dur.as_ps().min(BUCKET_PS)));
        // Later in-order work queues behind this service too.
        self.busy_until = self.busy_until.max(end);
        let start_ps = end.as_ps().saturating_sub(dur.as_ps());
        (SimTime::from_ps(start_ps.max(arrive_ps)), end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservations_serialize() {
        let mut r = ResourceState::new("nic".into());
        let now = SimTime::from_ps(100);
        let (s1, e1) = r.reserve(now, SimDelta::from_ps(50));
        assert_eq!(s1, now);
        assert_eq!(e1, SimTime::from_ps(150));
        // Second reservation at the same instant queues behind the first.
        let (s2, e2) = r.reserve(now, SimDelta::from_ps(30));
        assert_eq!(s2, SimTime::from_ps(150));
        assert_eq!(e2, SimTime::from_ps(180));
    }

    #[test]
    fn idle_gap_resets_start() {
        let mut r = ResourceState::new("nic".into());
        r.reserve(SimTime::from_ps(0), SimDelta::from_ps(10));
        // Much later request starts immediately.
        let (s, e) = r.reserve(SimTime::from_ps(1000), SimDelta::from_ps(5));
        assert_eq!(s, SimTime::from_ps(1000));
        assert_eq!(e, SimTime::from_ps(1005));
        assert_eq!(r.reservations, 2);
        assert_eq!(r.busy_total, SimDelta::from_ps(15));
    }

    #[test]
    fn zero_duration_reservation() {
        let mut r = ResourceState::new("x".into());
        let (s, e) = r.reserve(SimTime::from_ps(7), SimDelta::ZERO);
        assert_eq!(s, e);
    }

    #[test]
    fn out_of_order_arrival_does_not_wait_behind_future_work() {
        let mut r = ResourceState::new("nic".into());
        // Bulk work arriving far in the future reserves first.
        let (_, e_future) = r.reserve(
            SimTime::from_ps(10 * BUCKET_PS),
            SimDelta::from_ps(BUCKET_PS / 2),
        );
        assert!(e_future >= SimTime::from_ps(10 * BUCKET_PS));
        // An earlier-arriving message posted afterwards is served from the
        // idle capacity at its own arrival, not behind the future bulk.
        let (_, e_early) = r.reserve(SimTime::from_ps(1_000), SimDelta::from_ps(2_000));
        assert!(
            e_early < SimTime::from_ps(BUCKET_PS),
            "early arrival served promptly, got {e_early:?}"
        );
    }

    #[test]
    fn out_of_order_respects_consumed_capacity() {
        let mut r = ResourceState::new("nic".into());
        // Saturate the first bucket entirely with in-order work.
        r.reserve(SimTime::from_ps(0), SimDelta::from_ps(BUCKET_PS));
        // Jump ahead: in-order arrival at bucket 3.
        r.reserve(SimTime::from_ps(3 * BUCKET_PS), SimDelta::from_ps(100));
        // Out-of-order arrival at time 0 must spill past the full first
        // bucket into bucket 1.
        let (_, e) = r.reserve(SimTime::from_ps(0), SimDelta::from_ps(1_000));
        assert!(
            e > SimTime::from_ps(BUCKET_PS) && e < SimTime::from_ps(2 * BUCKET_PS),
            "spilled into the second bucket, got {e:?}"
        );
    }

    #[test]
    fn aggregate_throughput_is_conserved_under_interleaving() {
        // Two "sources" each posting a window of future-arriving work in
        // batch order (source A fully, then source B) must still complete
        // in ~total-work time, not 2x.
        let mut r = ResourceState::new("nic".into());
        let msg = SimDelta::from_ps(BUCKET_PS / 4);
        let mut last_end = SimTime::ZERO;
        for source in 0..2 {
            let _ = source;
            for k in 0..40u64 {
                // Arrivals spread so combined flux ≈ capacity.
                let arrive = SimTime::from_ps(k * BUCKET_PS / 2);
                let (_, e) = r.reserve(arrive, msg);
                last_end = last_end.max(e);
            }
        }
        let total_work_ps = 2 * 40 * (BUCKET_PS / 4);
        assert!(
            last_end.as_ps() < total_work_ps + 3 * BUCKET_PS,
            "completion {last_end:?} should be close to total work {total_work_ps}ps"
        );
    }
}
