//! Lightweight statistics collected during a run.

use std::collections::BTreeMap;

use crate::time::SimDelta;

/// Named counters and time accumulators. Keys are free-form strings; upper
/// layers use dotted names like `"gvmi.cache.hit"`.
#[derive(Default, Debug, Clone)]
pub struct Stats {
    counters: BTreeMap<String, u64>,
    times: BTreeMap<String, SimDelta>,
}

impl Stats {
    /// Empty stats.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Add `n` to counter `name` (creating it at zero).
    pub fn incr(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Read counter `name` (zero if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Accumulate virtual time under `name`.
    pub fn add_time(&mut self, name: &str, d: SimDelta) {
        *self.times.entry(name.to_string()).or_insert(SimDelta::ZERO) += d;
    }

    /// Read accumulated time under `name`.
    pub fn time(&self, name: &str) -> SimDelta {
        self.times.get(name).copied().unwrap_or(SimDelta::ZERO)
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate time accumulators in name order.
    pub fn times(&self) -> impl Iterator<Item = (&str, SimDelta)> {
        self.times.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merge another stats object into this one.
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.times {
            *self.times.entry(k.clone()).or_insert(SimDelta::ZERO) += *v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        assert_eq!(s.counter("x"), 0);
        s.incr("x", 2);
        s.incr("x", 3);
        assert_eq!(s.counter("x"), 5);
    }

    #[test]
    fn times_accumulate() {
        let mut s = Stats::new();
        s.add_time("t", SimDelta::from_us(1));
        s.add_time("t", SimDelta::from_us(2));
        assert_eq!(s.time("t"), SimDelta::from_us(3));
        assert_eq!(s.time("missing"), SimDelta::ZERO);
    }

    #[test]
    fn merge_combines() {
        let mut a = Stats::new();
        a.incr("c", 1);
        a.add_time("t", SimDelta::from_ns(10));
        let mut b = Stats::new();
        b.incr("c", 2);
        b.incr("d", 7);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("d"), 7);
        assert_eq!(a.time("t"), SimDelta::from_ns(10));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut s = Stats::new();
        s.incr("b", 1);
        s.incr("a", 1);
        let keys: Vec<&str> = s.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }
}
