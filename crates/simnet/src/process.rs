//! Simulated processes.
//!
//! Each simulated process is an OS thread running a user closure against a
//! [`ProcessCtx`]. Execution is strictly sequential: a single "baton" per
//! process is passed between the scheduler thread and the process thread, so
//! at any moment at most one thread in the whole simulation is running. That
//! makes the engine deterministic and lets user code use ordinary Rust
//! control flow (loops, recursion, panics) instead of hand-written state
//! machines.

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::time::{SimDelta, SimTime};

/// Identifier of a simulated process. Indexes into the simulation's process
/// table; never reused within one simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub(crate) u32);

impl Pid {
    /// Raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct a pid from a raw index — for observers replaying or
    /// synthesizing event streams outside a simulation. The simulation
    /// itself only hands out pids via `spawn`.
    pub fn from_index(i: usize) -> Pid {
        Pid(i as u32)
    }
}

impl fmt::Debug for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// A message deposited into a process mailbox. The engine is payload-
/// agnostic; upper layers define their own message enums and downcast.
pub type Payload = Box<dyn Any + Send>;

/// Why a process is currently not runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Sleeping (or computing) until a scheduled wake-up.
    Sleep,
    /// Waiting for a mailbox message.
    WaitMessage,
}

/// Run state of a process, as seen by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcStatus {
    /// Eligible to run at the current instant.
    Ready,
    /// Currently holding the baton.
    Running,
    /// Blocked; see the reason.
    Blocked(BlockReason),
    /// The closure returned (or panicked).
    Finished,
}

/// Which side currently holds a process's baton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BatonHolder {
    Scheduler,
    Process,
}

/// Per-process handshake used to transfer control between the scheduler
/// thread and the process thread.
pub(crate) struct Baton {
    holder: Mutex<BatonHolder>,
    cv: Condvar,
}

impl Baton {
    pub(crate) fn new() -> Arc<Baton> {
        Arc::new(Baton {
            holder: Mutex::new(BatonHolder::Scheduler),
            cv: Condvar::new(),
        })
    }

    /// Called by the scheduler: hand the baton to the process and wait until
    /// the process yields it back (by blocking or finishing).
    pub(crate) fn resume_process(&self) {
        let mut holder = self.holder.lock();
        debug_assert_eq!(*holder, BatonHolder::Scheduler);
        *holder = BatonHolder::Process;
        self.cv.notify_all();
        while *holder != BatonHolder::Scheduler {
            self.cv.wait(&mut holder);
        }
    }

    /// Called by the process thread: hand the baton back to the scheduler
    /// and wait until the scheduler resumes this process.
    pub(crate) fn yield_to_scheduler(&self) {
        let mut holder = self.holder.lock();
        debug_assert_eq!(*holder, BatonHolder::Process);
        *holder = BatonHolder::Scheduler;
        self.cv.notify_all();
        while *holder != BatonHolder::Process {
            self.cv.wait(&mut holder);
        }
    }

    /// Called by the process thread on exit: release the baton for good.
    pub(crate) fn finish(&self) {
        let mut holder = self.holder.lock();
        debug_assert_eq!(*holder, BatonHolder::Process);
        *holder = BatonHolder::Scheduler;
        self.cv.notify_all();
    }

    /// Called by the process thread before its first instruction: wait for
    /// the scheduler to start it.
    pub(crate) fn wait_for_start(&self) {
        let mut holder = self.holder.lock();
        while *holder != BatonHolder::Process {
            self.cv.wait(&mut holder);
        }
    }
}

/// Scheduler-side bookkeeping for one process.
pub(crate) struct ProcSlot {
    pub(crate) name: String,
    pub(crate) status: ProcStatus,
    pub(crate) mailbox: VecDeque<Payload>,
    pub(crate) baton: Arc<Baton>,
    pub(crate) join: Option<std::thread::JoinHandle<()>>,
    /// Panic payload captured from the process closure, if any.
    pub(crate) panic: Option<String>,
    /// Total virtual time this process spent in `compute()`.
    pub(crate) compute_time: SimDelta,
    /// Instant the process finished, if it has.
    pub(crate) finished_at: Option<SimTime>,
}

impl ProcSlot {
    pub(crate) fn new(name: String, baton: Arc<Baton>) -> Self {
        ProcSlot {
            name,
            status: ProcStatus::Ready,
            mailbox: VecDeque::new(),
            baton,
            join: None,
            panic: None,
            compute_time: SimDelta::ZERO,
            finished_at: None,
        }
    }
}

/// Convert a panic payload into a printable message.
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "process panicked with a non-string payload".to_string()
    }
}
