//! Virtual time for the simulation.
//!
//! The clock is an integer number of **picoseconds** since the start of the
//! simulation. Integer time keeps the engine deterministic (no float
//! accumulation error) while still being fine-grained enough to express
//! per-byte serialization at hundreds of Gb/s: at 400 Gb/s one byte takes
//! 20 ps on the wire.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds in one nanosecond.
const PS_PER_NS: u64 = 1_000;
/// Picoseconds in one microsecond.
const PS_PER_US: u64 = 1_000_000;
/// Picoseconds in one millisecond.
const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds in one second.
const PS_PER_S: u64 = 1_000_000_000_000;

/// An instant on the simulation clock (picoseconds since time zero).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (picoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDelta(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinity" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Time as fractional nanoseconds (for reporting only).
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Time as fractional microseconds (for reporting only).
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Time as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Span since an earlier instant. Panics if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDelta {
        SimDelta(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier instant is in the future"),
        )
    }

    /// Saturating difference: zero if `earlier` is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDelta {
        SimDelta(self.0.saturating_sub(earlier.0))
    }
}

impl SimDelta {
    /// Zero-length span.
    pub const ZERO: SimDelta = SimDelta(0);

    /// Construct from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDelta(ps)
    }

    /// Construct from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDelta(ns * PS_PER_NS)
    }

    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDelta(us * PS_PER_US)
    }

    /// Construct from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDelta(ms * PS_PER_MS)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDelta(s * PS_PER_S)
    }

    /// Construct from fractional microseconds (model parameters are often
    /// quoted in µs). Rounds to the nearest picosecond.
    pub fn from_us_f64(us: f64) -> Self {
        assert!(us >= 0.0, "negative duration");
        SimDelta((us * PS_PER_US as f64).round() as u64)
    }

    /// Serialization time of `bytes` at `bytes_per_sec`, rounded up to a
    /// whole picosecond so a transfer never takes zero time.
    pub fn for_bytes(bytes: u64, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "zero bandwidth");
        let ps = (bytes as u128 * PS_PER_S as u128).div_ceil(bytes_per_sec as u128);
        SimDelta(u64::try_from(ps).expect("transfer time overflows u64 picoseconds"))
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Span as fractional nanoseconds (for reporting only).
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Span as fractional microseconds (for reporting only).
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Span as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDelta) -> SimDelta {
        SimDelta(self.0.saturating_sub(other.0))
    }

    /// Scale by a float factor (for calibration knobs). Rounds to ps.
    pub fn scale(self, factor: f64) -> SimDelta {
        assert!(factor >= 0.0, "negative scale factor");
        SimDelta((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDelta> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDelta) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDelta> for SimTime {
    fn add_assign(&mut self, rhs: SimDelta) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDelta;
    fn sub(self, rhs: SimTime) -> SimDelta {
        self.since(rhs)
    }
}

impl Add for SimDelta {
    type Output = SimDelta;
    fn add(self, rhs: SimDelta) -> SimDelta {
        SimDelta(self.0.checked_add(rhs.0).expect("SimDelta overflow"))
    }
}

impl AddAssign for SimDelta {
    fn add_assign(&mut self, rhs: SimDelta) {
        *self = *self + rhs;
    }
}

impl Sub for SimDelta {
    type Output = SimDelta;
    fn sub(self, rhs: SimDelta) -> SimDelta {
        SimDelta(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDelta underflow; use saturating_sub"),
        )
    }
}

impl SubAssign for SimDelta {
    fn sub_assign(&mut self, rhs: SimDelta) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDelta {
    type Output = SimDelta;
    fn mul(self, rhs: u64) -> SimDelta {
        SimDelta(self.0.checked_mul(rhs).expect("SimDelta overflow"))
    }
}

impl Div<u64> for SimDelta {
    type Output = SimDelta;
    fn div(self, rhs: u64) -> SimDelta {
        SimDelta(self.0 / rhs)
    }
}

impl Sum for SimDelta {
    fn sum<I: Iterator<Item = SimDelta>>(iter: I) -> SimDelta {
        iter.fold(SimDelta::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Debug for SimDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimDelta::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimDelta::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimDelta::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimDelta::from_secs(1).as_ps(), PS_PER_S);
        assert_eq!(SimDelta::from_us(3).as_us_f64(), 3.0);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDelta::from_ns(500);
        assert_eq!(t1.as_ps(), 500_000);
        assert_eq!((t1 - t0).as_ns_f64(), 500.0);
        assert_eq!(
            t1.saturating_since(t1 + SimDelta::from_ns(1)),
            SimDelta::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "earlier instant is in the future")]
    fn since_panics_on_negative_span() {
        let t0 = SimTime::from_ps(10);
        let t1 = SimTime::from_ps(20);
        let _ = t0.since(t1);
    }

    #[test]
    fn bandwidth_serialization() {
        // 1 GiB/s => 1 byte takes ~931 ps... use exact: 10^12 ps / 2^30 B.
        let d = SimDelta::for_bytes(1, 1 << 30);
        assert!(d.as_ps() >= 931 && d.as_ps() <= 932, "{}", d.as_ps());
        // 25 GB/s, 1 MiB message: ~41.9 us.
        let d = SimDelta::for_bytes(1 << 20, 25_000_000_000);
        let us = d.as_us_f64();
        assert!((41.0..43.0).contains(&us), "{us}");
        // Zero bytes takes zero time.
        assert_eq!(SimDelta::for_bytes(0, 1_000_000), SimDelta::ZERO);
    }

    #[test]
    fn rounding_up_never_zero_for_nonzero_bytes() {
        // Even one byte at an absurd bandwidth costs at least 1 ps.
        let d = SimDelta::for_bytes(1, u64::MAX / 2);
        assert!(d.as_ps() >= 1);
    }

    #[test]
    fn from_us_f64_rounds() {
        assert_eq!(SimDelta::from_us_f64(1.5).as_ps(), 1_500_000);
        assert_eq!(SimDelta::from_us_f64(0.0), SimDelta::ZERO);
    }

    #[test]
    fn scale_and_sum() {
        let d = SimDelta::from_us(10).scale(0.5);
        assert_eq!(d, SimDelta::from_us(5));
        let total: SimDelta = [SimDelta::from_us(1), SimDelta::from_us(2)]
            .into_iter()
            .sum();
        assert_eq!(total, SimDelta::from_us(3));
    }
}
