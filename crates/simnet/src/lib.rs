//! # simnet — deterministic discrete-event simulation engine
//!
//! `simnet` is the substrate under the whole repository: a sequential,
//! bit-for-bit reproducible discrete-event simulator whose "processes" are
//! ordinary Rust closures running on dedicated OS threads. A per-process
//! baton guarantees that at most one thread executes at a time, so simulated
//! code can use natural blocking control flow while the engine keeps a
//! virtual clock in integer picoseconds.
//!
//! The crates above this one model an HPC cluster: `rdma` adds verbs-style
//! NICs, memory registration and GVMI keys; `minimpi` adds an MPI-like
//! library; the `offload` crate implements the paper's DPU offload
//! framework.
//!
//! ## Quick example
//!
//! ```
//! use simnet::{Simulation, SimDelta};
//!
//! let mut sim = Simulation::new(1);
//! let rx = sim.spawn("receiver", |ctx| {
//!     let msg = ctx.recv();
//!     assert_eq!(*msg.downcast::<&str>().unwrap(), "ping");
//! });
//! sim.spawn("sender", move |ctx| {
//!     ctx.compute(SimDelta::from_us(2));
//!     ctx.deliver(rx, SimDelta::from_ns(900), Box::new("ping"));
//! });
//! let report = sim.run().unwrap();
//! assert_eq!(report.end_time.as_ns_f64(), 2_900.0);
//! ```

#![warn(missing_docs)]

mod event;
mod process;
mod resource;
mod rng;
mod shard;
mod sim;
mod stats;
mod time;
mod trace;

pub use process::{BlockReason, Payload, Pid, ProcStatus};
pub use resource::ResourceId;
pub use rng::SimRng;
pub use shard::{
    EngineProfile, ShardStats, SCOPE_ENGINE_BARRIER_WAIT, SCOPE_ENGINE_COORDINATOR,
    SCOPE_ENGINE_EMIT_MERGE, SCOPE_ENGINE_EXEC,
};
pub use sim::{
    engine_events, EventSink, OpenSpan, ProcReport, ProcessCtx, Report, SimError, Simulation,
    SIMNET_CHAOS_ENV, SIMNET_THREADS_ENV,
};
pub use stats::Stats;
pub use time::{SimDelta, SimTime};
pub use trace::{SpanRecord, Trace, TraceRecord};
