//! Optional event tracing.
//!
//! When enabled, every `ProcessCtx::trace` call appends a record. The trace
//! is used by the determinism tests (two runs with the same seed must yield
//! identical traces) and by the Fig. 1 timeline example.

use crate::process::Pid;
use crate::time::SimTime;

/// One trace record: which process logged what, and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time of the record.
    pub at: SimTime,
    /// Logging process.
    pub pid: Pid,
    /// Free-form label.
    pub label: String,
}

/// One typed span: a named interval of a process's virtual time.
///
/// Spans complement the point [`TraceRecord`]s: where a record marks an
/// instant ("RTS sent"), a span covers a duration ("compute", "group
/// wait") and maps directly onto a Chrome-trace `"X"` (complete) event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Virtual time the interval opened.
    pub start: SimTime,
    /// Virtual time the interval closed (`end >= start`).
    pub end: SimTime,
    /// Process the interval belongs to.
    pub pid: Pid,
    /// Category, e.g. `"compute"` or `"offload"` (Chrome-trace `cat`).
    pub cat: String,
    /// Span name, e.g. `"group_wait"`.
    pub name: String,
}

/// A collected trace.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Trace {
    records: Vec<TraceRecord>,
    spans: Vec<SpanRecord>,
}

impl Trace {
    pub(crate) fn push(&mut self, at: SimTime, pid: Pid, label: String) {
        self.records.push(TraceRecord { at, pid, label });
    }

    pub(crate) fn push_span(
        &mut self,
        start: SimTime,
        end: SimTime,
        pid: Pid,
        cat: String,
        name: String,
    ) {
        debug_assert!(end >= start, "span must not end before it starts");
        self.spans.push(SpanRecord {
            start,
            end,
            pid,
            cat,
            name,
        });
    }

    /// Merge per-shard traces into one canonical trace: records sorted
    /// by time, spans by close time, ties broken by shard id (the order
    /// of `parts`) via stable sort — thread-count independent.
    pub(crate) fn merge_parts(parts: Vec<Trace>) -> Trace {
        let mut records = Vec::new();
        let mut spans = Vec::new();
        for p in parts {
            records.extend(p.records);
            spans.extend(p.spans);
        }
        records.sort_by_key(|r| r.at);
        spans.sort_by_key(|s| s.end);
        Trace { records, spans }
    }

    /// All records in chronological (execution) order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// All spans, in the order they *closed*.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Records whose label starts with `prefix`.
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceRecord> {
        self.records
            .iter()
            .filter(move |r| r.label.starts_with(prefix))
    }

    /// Render as lines of `time pid label` (stable across runs).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.records {
            let _ = writeln!(out, "{:>14} {} {}", r.at.as_ps(), r.pid, r.label);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_stable() {
        let mut t = Trace::default();
        t.push(SimTime::from_ps(5), Pid(0), "a".into());
        t.push(SimTime::from_ps(9), Pid(1), "b".into());
        let r1 = t.render();
        let r2 = t.render();
        assert_eq!(r1, r2);
        assert!(r1.contains("pid0 a"));
    }

    #[test]
    fn spans_record_intervals() {
        let mut t = Trace::default();
        t.push_span(
            SimTime::from_ps(10),
            SimTime::from_ps(30),
            Pid(2),
            "compute".into(),
            "update".into(),
        );
        assert_eq!(t.spans().len(), 1);
        let s = &t.spans()[0];
        assert_eq!(s.start, SimTime::from_ps(10));
        assert_eq!(s.end, SimTime::from_ps(30));
        assert_eq!(s.cat, "compute");
    }

    #[test]
    fn prefix_filter() {
        let mut t = Trace::default();
        t.push(SimTime::ZERO, Pid(0), "send.start".into());
        t.push(SimTime::ZERO, Pid(0), "recv.start".into());
        t.push(SimTime::ZERO, Pid(0), "send.end".into());
        assert_eq!(t.with_prefix("send.").count(), 2);
    }
}
