//! The sharded conservative-lookahead engine.
//!
//! Processes spawned with [`Simulation::spawn_on`] are partitioned into
//! **shards** (one per model node, typically). Each shard owns a private
//! event queue, clock, RNG stream, stats, trace buffer and resource
//! table, all behind a single mutex, so shards never contend on shared
//! state while running.
//!
//! # Synchronization protocol (barrier windows)
//!
//! The run proceeds in rounds driven by a coordinator (the thread that
//! called [`Simulation::run`]):
//!
//! 1. **Flush** — cross-shard events buffered in per-shard outboxes are
//!    moved into their destination queues; buffered `emit` events are
//!    merged in canonical order and handed to the sink.
//! 2. **Horizon** — for each shard, the *effective head* `h_s` is its
//!    next event time (or its clock, if processes are ready to run).
//!    The window end is `W = min over shards of (h_s + la_out(s))`
//!    where `la_out(s)` is the smallest lookahead of any link leaving
//!    shard `s`.
//! 3. **Window** — every shard independently processes events strictly
//!    before `W`. A cross-shard delivery must carry a delay of at least
//!    the link lookahead, so every event it generates lands at or after
//!    `W` — no shard can receive an event in its past, hence no
//!    speculation and no rollback. The flush step asserts this
//!    invariant on every crossing event.
//!
//! # Determinism
//!
//! Every event carries the canonical key `(virtual time, source shard,
//! source sequence)` (see [`crate::event`]). A shard's execution inside
//! a window is sequential, so its sequence numbers are a pure function
//! of the simulation's history, never of OS scheduling. Cross-shard
//! events are sunk into destination queues between windows, where the
//! canonical key — not arrival order — decides processing order. The
//! result is bit-for-bit identical at any worker-thread count,
//! including 1.
//!
//! # Locking
//!
//! Workers only ever lock the state of shards they own; the coordinator
//! locks one shard at a time between windows; process threads lock only
//! their own shard (plus a read lock on the immutable pid directory).
//! No code path holds two shard locks at once, so the engine adds no
//! edges to the analyzer's lock-order graph.
//!
//! [`Simulation::spawn_on`]: crate::Simulation::spawn_on
//! [`Simulation::run`]: crate::Simulation::run

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock, RwLock};

use parking_lot::{Condvar, Mutex};

use crate::event::{EventKind, EventQueue};
use crate::process::{panic_message, Baton, BlockReason, Payload, Pid, ProcSlot, ProcStatus};
use crate::resource::{ResourceId, ResourceState};
use crate::rng::SimRng;
use crate::sim::{EventSink, ProcReport, ProcessCtx, Report, Route, SimError, LIVELOCK_LIMIT};
use crate::stats::Stats;
use crate::time::{SimDelta, SimTime};
use crate::trace::Trace;

/// Hard cap on shard count: resource ids reserve 8 bits for the shard.
pub(crate) const MAX_SHARDS: usize = 256;

/// Bit position of the shard id inside a sharded [`ResourceId`].
const RESOURCE_SHARD_SHIFT: u32 = 24;

/// Per-link lookahead map: the minimum cross-shard delivery latency the
/// model guarantees, per `(from, to)` pair, with a default for
/// unconfigured links.
#[derive(Clone)]
pub(crate) struct LookaheadCfg {
    pub(crate) default: SimDelta,
    pub(crate) links: BTreeMap<(u32, u32), SimDelta>,
}

impl LookaheadCfg {
    pub(crate) fn new(default: SimDelta) -> Self {
        LookaheadCfg {
            default,
            links: BTreeMap::new(),
        }
    }

    /// Lookahead of the directed link `from -> to`.
    pub(crate) fn of(&self, from: u32, to: u32) -> SimDelta {
        self.links.get(&(from, to)).copied().unwrap_or(self.default)
    }
}

/// Where a pid lives: which shard, and at which local slot index. The
/// index is only needed at spawn time; routing uses the shard.
#[derive(Clone, Copy)]
struct ProcLoc {
    shard: u32,
    #[allow(dead_code)]
    idx: u32,
}

/// A cross-shard event parked in its source shard's outbox until the
/// next flush.
struct OutEvent {
    at: SimTime,
    src: u32,
    seq: u64,
    dest: u32,
    kind: EventKind,
}

/// A buffered `emit` awaiting canonical-order delivery to the sink.
struct EmitRec {
    at: SimTime,
    pid: Pid,
    seq: u64,
    payload: Payload,
}

/// A process panic captured inside a window, re-raised by the
/// coordinator with the classic engine's message format.
struct FatalPanic {
    msg: String,
    join: Option<std::thread::JoinHandle<()>>,
}

/// Profile bucket name: wall-clock time spent executing events inside
/// windows, per shard (see [`ShardStats::exec_ns`]).
pub const SCOPE_ENGINE_EXEC: &str = "engine_exec";
/// Profile bucket name: wall-clock time workers spent parked at the
/// round gate waiting for the next window (see
/// [`ShardStats::barrier_wait_ns`]).
pub const SCOPE_ENGINE_BARRIER_WAIT: &str = "engine_barrier_wait";
/// Profile bucket name: coordinator time merging cross-shard events and
/// emits between windows (see [`EngineProfile::emit_merge_ns`]).
pub const SCOPE_ENGINE_EMIT_MERGE: &str = "engine_emit_merge";
/// Profile bucket name: coordinator time computing conservative window
/// horizons (see [`EngineProfile::coordinator_ns`]).
pub const SCOPE_ENGINE_COORDINATOR: &str = "engine_coordinator";

/// Wall-clock time attribution for one shard of a profiled run
/// ([`crate::Simulation::set_profile`]).
///
/// All `_ns` fields are **wall-clock** durations: they vary run to run
/// and must never feed back into simulation results (the engine only
/// reads them into the final [`crate::Report`]). The `windows`/`events`
/// counts are virtual-time-deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard id.
    pub shard: u32,
    /// Windows dispatched to this shard (equals the run's window count).
    pub windows: u64,
    /// Events this shard executed.
    pub events: u64,
    /// Wall-clock nanoseconds spent inside [`run_window`] execution.
    pub exec_ns: u64,
    /// Wall-clock nanoseconds the owning worker spent waiting at the
    /// round gate, attributed evenly across the shards it owns. Zero
    /// when the run is single-threaded (windows run inline, no gate).
    pub barrier_wait_ns: u64,
}

/// Engine-level wall-clock attribution of a profiled sharded run,
/// attached to [`crate::Report::profile`].
///
/// The buckets attribute where the *engine's own* overhead goes —
/// event-execute vs barrier-wait vs emit-merge vs coordinator — they are
/// not a partition of the run's total wall time (worker execution and
/// the coordinator's wait for workers overlap).
#[derive(Debug, Clone, Default)]
pub struct EngineProfile {
    /// Per-shard buckets, in shard-id order.
    pub shards: Vec<ShardStats>,
    /// Coordinator wall-clock nanoseconds in the flush step: moving
    /// outbox events into destination queues and merging buffered emits
    /// in canonical order.
    pub emit_merge_ns: u64,
    /// Coordinator wall-clock nanoseconds computing window horizons.
    pub coordinator_ns: u64,
    /// Barrier windows the run executed.
    pub windows: u64,
    /// Worker threads the run used.
    pub threads: usize,
}

impl EngineProfile {
    /// Sum of per-shard event-execution time.
    pub fn exec_ns_total(&self) -> u64 {
        self.shards.iter().map(|s| s.exec_ns).sum()
    }

    /// Sum of per-shard barrier-wait time.
    pub fn barrier_wait_ns_total(&self) -> u64 {
        self.shards.iter().map(|s| s.barrier_wait_ns).sum()
    }

    /// Events executed across all shards.
    pub fn events_total(&self) -> u64 {
        self.shards.iter().map(|s| s.events).sum()
    }

    /// The engine buckets as `(scope name, wall ns)` rows, aggregated
    /// across shards — the shape the profile report and the `cargo
    /// xtask profile` table consume.
    pub fn buckets(&self) -> Vec<(&'static str, u64)> {
        vec![
            (SCOPE_ENGINE_EXEC, self.exec_ns_total()),
            (SCOPE_ENGINE_BARRIER_WAIT, self.barrier_wait_ns_total()),
            (SCOPE_ENGINE_EMIT_MERGE, self.emit_merge_ns),
            (SCOPE_ENGINE_COORDINATOR, self.coordinator_ns),
        ]
    }
}

/// Everything one shard owns. Exactly one thread touches this at a time:
/// a worker (or the coordinator) during a window, the coordinator
/// between windows, or a running process via its `ProcessCtx`.
struct ShardState {
    now: SimTime,
    queue: EventQueue,
    slots: Vec<ProcSlot>,
    /// Local slot index -> global pid.
    pids: Vec<Pid>,
    /// Global pid (raw) -> local slot index.
    local: BTreeMap<u32, u32>,
    /// Local slot indexes ready to run at `now`.
    ready: VecDeque<u32>,
    resources: Vec<ResourceState>,
    stats: Stats,
    trace: Option<Trace>,
    rng: SimRng,
    /// Shard-private monotone counter stamping every queue push, outbox
    /// entry and emit — the `seq` half of the canonical event key.
    next_seq: u64,
    outbox: Vec<OutEvent>,
    emits: Vec<EmitRec>,
    events: u64,
    error: Option<SimError>,
    fatal: Option<FatalPanic>,
    /// Windows dispatched to this shard (profiled runs only).
    prof_windows: u64,
    /// Wall-clock ns spent executing windows (profiled runs only).
    prof_exec_ns: u64,
    /// Wall-clock ns of gate wait attributed to this shard (profiled
    /// multi-threaded runs only).
    prof_barrier_ns: u64,
}

/// One shard: an id plus its mutex-guarded state.
pub(crate) struct ShardCell {
    pub(crate) id: u32,
    state: Mutex<ShardState>,
}

impl ShardCell {
    fn new(id: u32) -> ShardCell {
        ShardCell {
            id,
            state: Mutex::new(ShardState {
                now: SimTime::ZERO,
                queue: EventQueue::new(),
                slots: Vec::new(),
                pids: Vec::new(),
                local: BTreeMap::new(),
                ready: VecDeque::new(),
                resources: Vec::new(),
                stats: Stats::new(),
                trace: None,
                rng: SimRng::new(0),
                next_seq: 0,
                outbox: Vec::new(),
                emits: Vec::new(),
                events: 0,
                error: None,
                fatal: None,
                prof_windows: 0,
                prof_exec_ns: 0,
                prof_barrier_ns: 0,
            }),
        }
    }
}

/// Run-time configuration frozen at the start of `run_sharded`.
struct Sealed {
    la: LookaheadCfg,
    sink: Option<EventSink>,
}

/// The shared runtime of a sharded simulation.
pub(crate) struct ShardedRt {
    shards: RwLock<Vec<Arc<ShardCell>>>,
    dir: RwLock<Vec<ProcLoc>>,
    sealed: OnceLock<Sealed>,
}

impl ShardedRt {
    pub(crate) fn new() -> ShardedRt {
        ShardedRt {
            shards: RwLock::new(Vec::new()),
            dir: RwLock::new(Vec::new()),
            sealed: OnceLock::new(),
        }
    }

    pub(crate) fn num_shards(&self) -> usize {
        self.shards.read().expect("shard list poisoned").len()
    }
}

/// Options for one sharded run, assembled by [`crate::Simulation::run`].
pub(crate) struct RunOpts {
    pub(crate) seed: u64,
    pub(crate) threads: usize,
    pub(crate) time_limit: Option<SimTime>,
    pub(crate) trace: bool,
    pub(crate) sink: Option<EventSink>,
    pub(crate) lookahead: LookaheadCfg,
    /// Seed for the OS-level yield-injection shim (tests only): workers
    /// randomly call `thread::yield_now` between events to stress
    /// thread-interleaving independence.
    pub(crate) chaos: Option<u64>,
    /// Collect wall-clock [`EngineProfile`] buckets into the report.
    pub(crate) profile: bool,
}

/// Deterministic per-shard RNG stream. Shard 0 gets the raw seed (so a
/// one-shard sharded sim draws the same stream as the classic engine);
/// other shards get a SplitMix-scrambled derivative.
fn shard_seed(seed: u64, shard: u32) -> u64 {
    if shard == 0 {
        return seed;
    }
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn encode_resource(shard: u32, idx: u32) -> ResourceId {
    assert!(
        idx < (1 << RESOURCE_SHARD_SHIFT),
        "too many resources on shard {shard}"
    );
    ResourceId((shard << RESOURCE_SHARD_SHIFT) | idx)
}

fn decode_resource(res: ResourceId) -> (u32, u32) {
    (
        res.0 >> RESOURCE_SHARD_SHIFT,
        res.0 & ((1 << RESOURCE_SHARD_SHIFT) - 1),
    )
}

/// The shard cell for `shard`, growing the shard list as needed.
/// Build-phase only (single-threaded).
fn cell_of(rt: &ShardedRt, shard: usize) -> Arc<ShardCell> {
    assert!(
        shard < MAX_SHARDS,
        "shard id {shard} out of range (max {})",
        MAX_SHARDS - 1
    );
    let mut g = rt.shards.write().expect("shard list poisoned");
    while g.len() <= shard {
        let id = g.len() as u32;
        g.push(Arc::new(ShardCell::new(id)));
    }
    Arc::clone(&g[shard])
}

/// Location of `pid`, panicking on an unknown pid.
fn loc_of(rt: &ShardedRt, pid: Pid) -> ProcLoc {
    let dir = rt.dir.read().expect("pid directory poisoned");
    *dir.get(pid.index())
        .unwrap_or_else(|| panic!("delivery to unknown {pid:?}"))
}

/// Spawn a process onto `shard`. Build-phase only: the sharded engine
/// fixes the process population before `run()` so pid assignment can
/// never depend on thread timing.
pub(crate) fn spawn_on_shard<F>(
    rt: &Arc<ShardedRt>,
    stack_size: usize,
    shard: usize,
    name: String,
    f: F,
) -> Pid
where
    F: FnOnce(ProcessCtx) + Send + 'static,
{
    assert!(
        rt.sealed.get().is_none(),
        "dynamic spawn is not supported by the sharded engine; \
         spawn every process before run()"
    );
    let cell = cell_of(rt, shard);
    let baton = Baton::new();
    let pid = Pid(rt.dir.read().expect("pid directory poisoned").len() as u32);
    let idx;
    {
        let mut st = cell.state.lock();
        idx = st.slots.len() as u32;
        st.slots
            .push(ProcSlot::new(name.clone(), Arc::clone(&baton)));
        st.pids.push(pid);
        st.local.insert(pid.0, idx);
        st.ready.push_back(idx);
    }
    rt.dir
        .write()
        .expect("pid directory poisoned")
        .push(ProcLoc {
            shard: shard as u32,
            idx,
        });
    let ctx = ProcessCtx {
        route: Route::Sharded {
            rt: Arc::clone(rt),
            cell: Arc::clone(&cell),
            idx,
        },
        pid,
        baton: Arc::clone(&baton),
        stack_size,
    };
    let tcell = Arc::clone(&cell);
    let handle = std::thread::Builder::new()
        .name(name)
        .stack_size(stack_size)
        .spawn(move || {
            ctx.baton.wait_for_start();
            let ctx2 = ctx.clone();
            let result = catch_unwind(AssertUnwindSafe(move || f(ctx2)));
            let mut st = tcell.state.lock();
            let now = st.now;
            let slot = &mut st.slots[idx as usize];
            slot.status = ProcStatus::Finished;
            slot.finished_at = Some(now);
            if let Err(payload) = result {
                slot.panic = Some(panic_message(&*payload));
            }
            drop(st);
            ctx.baton.finish();
        })
        .expect("failed to spawn process thread");
    {
        let mut st = cell.state.lock();
        st.slots[idx as usize].join = Some(handle);
    }
    pid
}

/// Create a resource on `shard` from outside the simulation
/// (build-phase `Simulation::create_resource`).
pub(crate) fn create_resource_on(rt: &ShardedRt, shard: usize, name: String) -> ResourceId {
    let cell = cell_of(rt, shard);
    let mut st = cell.state.lock();
    let idx = st.resources.len() as u32;
    st.resources.push(ResourceState::new(name));
    encode_resource(cell.id, idx)
}

// ---------------------------------------------------------------------
// The coordinator: window loop, flush, horizon computation, reporting.
// ---------------------------------------------------------------------

/// Run a sharded simulation to completion. Mirrors the classic engine's
/// contract: same error variants, same panic message format, and — for
/// a fixed seed and topology — the same result at every thread count.
pub(crate) fn run_sharded(rt: &Arc<ShardedRt>, opts: RunOpts) -> Result<Report, SimError> {
    let shards: Vec<Arc<ShardCell>> = {
        let g = rt.shards.read().expect("shard list poisoned");
        g.clone()
    };
    let n = shards.len();
    if n == 0 {
        return Ok(Report {
            end_time: SimTime::ZERO,
            stats: Stats::new(),
            trace: opts.trace.then(Trace::default),
            procs: Vec::new(),
            events: 0,
            resources: Vec::new(),
            profile: opts.profile.then(EngineProfile::default),
        });
    }
    // Freeze the lookahead map and precompute each shard's smallest
    // outgoing-link lookahead.
    let mut out_min: Vec<Option<SimDelta>> = Vec::with_capacity(n);
    for s in 0..n as u32 {
        let mut min: Option<SimDelta> = None;
        for t in 0..n as u32 {
            if t == s {
                continue;
            }
            let la = opts.lookahead.of(s, t);
            assert!(
                la > SimDelta::ZERO,
                "lookahead for link {s}->{t} must be positive"
            );
            min = Some(match min {
                Some(m) => m.min(la),
                None => la,
            });
        }
        out_min.push(min);
    }
    if rt
        .sealed
        .set(Sealed {
            la: opts.lookahead.clone(),
            sink: opts.sink.clone(),
        })
        .is_err()
    {
        panic!("a sharded simulation can only run once");
    }
    // Seed per-shard RNG streams and trace buffers.
    for cell in &shards {
        let mut st = cell.state.lock();
        st.rng = SimRng::new(shard_seed(opts.seed, cell.id));
        if opts.trace {
            st.trace = Some(Trace::default());
        }
    }
    let workers = opts.threads.max(1).min(n);
    let prof = opts.profile;
    let mut pool =
        (workers > 1).then(|| Pool::start(&shards, workers, opts.time_limit, opts.chaos, prof));

    let mut window_end = SimTime::ZERO;
    let mut windows: u64 = 0;
    let mut xshard: u64 = 0;
    let mut emit_merge_ns: u64 = 0;
    let mut coordinator_ns: u64 = 0;
    let outcome: Result<(), SimError> = loop {
        // 1. Flush the previous window's cross-shard traffic and emits.
        let t0 = prof.then(std::time::Instant::now); // lint:allow(wall-clock)
        flush_cross_shard(&shards, rt, window_end, &mut xshard);
        if let Some(t0) = t0 {
            emit_merge_ns += t0.elapsed().as_nanos() as u64;
        }
        // 2. Resolve panics/errors from the previous window, in shard
        //    order (deterministic regardless of which worker hit them).
        if let Some(f) = take_fatal(&shards) {
            stop_pool(&mut pool);
            if let Some(h) = f.join {
                let _ = h.join();
            }
            panic!("{}", f.msg);
        }
        if let Some(err) = take_error(&shards) {
            break Err(err);
        }
        // 3. Compute the conservative window end.
        let t0 = prof.then(std::time::Instant::now); // lint:allow(wall-clock)
        let mut w = SimTime::MAX;
        let mut any_active = false;
        for cell in &shards {
            let head = {
                let st = cell.state.lock();
                if st.ready.is_empty() {
                    st.queue.peek_at()
                } else {
                    Some(st.now)
                }
            };
            if let Some(h) = head {
                any_active = true;
                if let Some(la) = out_min[cell.id as usize] {
                    let end = SimTime::from_ps(h.as_ps().saturating_add(la.as_ps()));
                    w = w.min(end);
                }
            }
        }
        if let Some(t0) = t0 {
            coordinator_ns += t0.elapsed().as_nanos() as u64;
        }
        if !any_active {
            break Ok(());
        }
        windows += 1;
        window_end = w;
        // 4. Run the window on every shard.
        match &pool {
            Some(p) => p.run_round(w),
            None => {
                for cell in &shards {
                    run_window(cell, w, opts.time_limit, None, prof);
                }
            }
        }
    };
    stop_pool(&mut pool);
    outcome?;

    // Termination: everything must have finished.
    let mut end_time = SimTime::ZERO;
    let mut blocked: Vec<(u32, String, BlockReason)> = Vec::new();
    for cell in &shards {
        let st = cell.state.lock();
        end_time = end_time.max(st.now);
        for (i, slot) in st.slots.iter().enumerate() {
            if let ProcStatus::Blocked(r) = slot.status {
                blocked.push((st.pids[i].0, slot.name.clone(), r));
            }
        }
    }
    if !blocked.is_empty() {
        blocked.sort_by_key(|(pid, _, _)| *pid);
        return Err(SimError::Deadlock {
            now: end_time,
            blocked: blocked.into_iter().map(|(_, n, r)| (n, r)).collect(),
        });
    }
    // Merge per-shard state into one report, always in shard-id order.
    let mut procs: Vec<(u32, ProcReport)> = Vec::new();
    let mut stats = Stats::new();
    let mut events: u64 = 0;
    let mut resources: Vec<(String, SimDelta, u64)> = Vec::new();
    let mut traces: Vec<Trace> = Vec::new();
    let mut handles = Vec::new();
    let mut shard_stats: Vec<ShardStats> = Vec::new();
    for cell in &shards {
        let mut st = cell.state.lock();
        if prof {
            shard_stats.push(ShardStats {
                shard: cell.id,
                windows: st.prof_windows,
                events: st.events,
                exec_ns: st.prof_exec_ns,
                barrier_wait_ns: st.prof_barrier_ns,
            });
        }
        for (i, slot) in st.slots.iter().enumerate() {
            procs.push((
                st.pids[i].0,
                ProcReport {
                    name: slot.name.clone(),
                    compute_time: slot.compute_time,
                    finished_at: slot.finished_at.unwrap_or(end_time),
                },
            ));
        }
        for slot in st.slots.iter_mut() {
            if let Some(h) = slot.join.take() {
                handles.push(h);
            }
        }
        stats.merge(&st.stats);
        events += st.events;
        for r in &st.resources {
            resources.push((r.name.clone(), r.busy_total, r.reservations));
        }
        if let Some(t) = st.trace.take() {
            traces.push(t);
        }
    }
    procs.sort_by_key(|(pid, _)| *pid);
    stats.incr("simnet.sharded.shards", n as u64);
    stats.incr("simnet.sharded.windows", windows);
    stats.incr("simnet.sharded.xshard_events", xshard);
    let report = Report {
        end_time,
        stats,
        trace: opts.trace.then(|| Trace::merge_parts(traces)),
        procs: procs.into_iter().map(|(_, p)| p).collect(),
        events,
        resources,
        profile: prof.then_some(EngineProfile {
            shards: shard_stats,
            emit_merge_ns,
            coordinator_ns,
            windows,
            threads: workers,
        }),
    };
    for h in handles {
        let _ = h.join();
    }
    Ok(report)
}

/// Move every outbox event into its destination queue and hand buffered
/// emits to the sink in canonical order. Asserts the conservative
/// invariant: nothing generated inside the last window may land before
/// that window's end.
fn flush_cross_shard(
    shards: &[Arc<ShardCell>],
    rt: &ShardedRt,
    horizon: SimTime,
    xshard: &mut u64,
) {
    let sealed = rt.sealed.get().expect("sharded runtime not sealed");
    let mut moved: Vec<OutEvent> = Vec::new();
    let mut emits: Vec<(u32, EmitRec)> = Vec::new();
    for cell in shards {
        let mut st = cell.state.lock();
        moved.append(&mut st.outbox);
        let id = cell.id;
        emits.extend(st.emits.drain(..).map(|e| (id, e)));
    }
    for ev in &moved {
        assert!(
            ev.at >= horizon,
            "conservative lookahead violated: a cross-shard event for {} \
             was generated inside a window that ended at {} \
             (shard {} -> shard {})",
            ev.at,
            horizon,
            ev.src,
            ev.dest
        );
    }
    *xshard += moved.len() as u64;
    moved.sort_by_key(|e| e.dest);
    let mut iter = moved.into_iter().peekable();
    while let Some(first) = iter.next() {
        let dest = first.dest;
        let mut st = shards[dest as usize].state.lock();
        st.queue
            .push_keyed(first.at, first.src, first.seq, first.kind);
        while iter.peek().is_some_and(|e| e.dest == dest) {
            let e = iter.next().expect("peeked event");
            st.queue.push_keyed(e.at, e.src, e.seq, e.kind);
        }
        drop(st);
    }
    // Canonical emit order: (virtual time, shard, shard-local seq).
    emits.sort_by_key(|a| (a.1.at, a.0, a.1.seq));
    if let Some(sink) = &sealed.sink {
        for (_, e) in emits {
            sink(e.at, e.pid, &*e.payload);
        }
    }
}

/// First captured process panic in shard order, if any.
fn take_fatal(shards: &[Arc<ShardCell>]) -> Option<FatalPanic> {
    for cell in shards {
        let mut st = cell.state.lock();
        if let Some(f) = st.fatal.take() {
            return Some(f);
        }
    }
    None
}

/// First recorded engine error in shard order, if any.
fn take_error(shards: &[Arc<ShardCell>]) -> Option<SimError> {
    for cell in shards {
        let mut st = cell.state.lock();
        if let Some(e) = st.error.take() {
            return Some(e);
        }
    }
    None
}

fn stop_pool(pool: &mut Option<Pool>) {
    if let Some(p) = pool.take() {
        p.shutdown();
    }
}

// ---------------------------------------------------------------------
// The worker pool: a round-based fork/join gate.
// ---------------------------------------------------------------------

struct GateState {
    round: u64,
    window: SimTime,
    done: usize,
    shutdown: bool,
}

struct Gate {
    m: Mutex<GateState>,
    cv: Condvar,
}

struct Pool {
    gate: Arc<Gate>,
    workers: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    fn start(
        shards: &[Arc<ShardCell>],
        workers: usize,
        limit: Option<SimTime>,
        chaos: Option<u64>,
        prof: bool,
    ) -> Pool {
        let gate = Arc::new(Gate {
            m: Mutex::new(GateState {
                round: 0,
                window: SimTime::ZERO,
                done: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let mut handles = Vec::new();
        for w in 0..workers {
            // Static shard->worker assignment; each worker walks its
            // shards in id order. The assignment is invisible to
            // results — windows are independent per shard.
            let mine: Vec<Arc<ShardCell>> = shards
                .iter()
                .filter(|c| c.id as usize % workers == w)
                .cloned()
                .collect();
            let gate2 = Arc::clone(&gate);
            let handle = std::thread::Builder::new()
                .name(format!("simnet-worker{w}"))
                .spawn(move || worker_loop(gate2, mine, limit, chaos, w as u64, prof))
                .expect("failed to spawn shard worker");
            handles.push(handle);
        }
        Pool {
            gate,
            workers,
            handles,
        }
    }

    /// Dispatch one window to every worker and wait for all of them.
    fn run_round(&self, window: SimTime) {
        {
            let mut g = self.gate.m.lock();
            g.round += 1;
            g.window = window;
            g.done = 0;
            self.gate.cv.notify_all();
        }
        {
            let mut g = self.gate.m.lock();
            while g.done < self.workers {
                self.gate.cv.wait(&mut g);
            }
        }
    }

    fn shutdown(mut self) {
        {
            let mut g = self.gate.m.lock();
            g.shutdown = true;
            self.gate.cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    gate: Arc<Gate>,
    shards: Vec<Arc<ShardCell>>,
    limit: Option<SimTime>,
    chaos: Option<u64>,
    worker: u64,
    prof: bool,
) {
    let mut chaos_rng = chaos.map(|c| {
        let mut z = c ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(worker + 1);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        SimRng::new(z)
    });
    let mut seen = 0u64;
    let mut wait_ns: u64 = 0;
    loop {
        let window;
        {
            let mut g = gate.m.lock();
            loop {
                if g.shutdown {
                    drop(g);
                    if prof {
                        distribute_gate_wait(&shards, wait_ns);
                    }
                    return;
                }
                if g.round > seen {
                    break;
                }
                if prof {
                    let t0 = std::time::Instant::now(); // lint:allow(wall-clock)
                    gate.cv.wait(&mut g);
                    wait_ns += t0.elapsed().as_nanos() as u64;
                } else {
                    gate.cv.wait(&mut g);
                }
            }
            seen = g.round;
            window = g.window;
        }
        for cell in &shards {
            run_window(cell, window, limit, chaos_rng.as_mut(), prof);
        }
        {
            let mut g = gate.m.lock();
            g.done += 1;
            gate.cv.notify_all();
        }
    }
}

/// Attribute a worker's total gate-wait time evenly across the shards it
/// owns: the wait is a property of the worker thread, not of any single
/// shard, so an even split is the only assignment that does not invent
/// per-shard precision the measurement lacks.
fn distribute_gate_wait(shards: &[Arc<ShardCell>], wait_ns: u64) {
    if shards.is_empty() || wait_ns == 0 {
        return;
    }
    let share = wait_ns / shards.len() as u64;
    for cell in shards {
        cell.state.lock().prof_barrier_ns += share;
    }
}

// ---------------------------------------------------------------------
// Inside one window: the per-shard scheduler loop (mirrors the classic
// engine's two phases, bounded by the window end).
// ---------------------------------------------------------------------

/// Process one shard's events strictly before `w_end`, timing the whole
/// window into the shard's `exec_ns` bucket on profiled runs. The timer
/// reads wall clock strictly *outside* the execution path it measures,
/// so profiling can never perturb virtual-time results.
fn run_window(
    cell: &Arc<ShardCell>,
    w_end: SimTime,
    limit: Option<SimTime>,
    chaos: Option<&mut SimRng>,
    prof: bool,
) {
    if !prof {
        run_window_inner(cell, w_end, limit, chaos);
        return;
    }
    let t0 = std::time::Instant::now(); // lint:allow(wall-clock)
    run_window_inner(cell, w_end, limit, chaos);
    let dt = t0.elapsed().as_nanos() as u64;
    let mut st = cell.state.lock();
    st.prof_exec_ns += dt;
    st.prof_windows += 1;
}

/// Process one shard's events strictly before `w_end`. Errors and
/// process panics are parked in the shard state for the coordinator to
/// resolve deterministically after the round.
fn run_window_inner(
    cell: &Arc<ShardCell>,
    w_end: SimTime,
    limit: Option<SimTime>,
    mut chaos: Option<&mut SimRng>,
) {
    let mut execs: u64 = 0;
    loop {
        // Phase 1: drain ready processes.
        loop {
            let next = {
                let mut st = cell.state.lock();
                st.ready.pop_front()
            };
            let Some(idx) = next else { break };
            if let Some(rng) = chaos.as_deref_mut() {
                // Yield-injection shim: perturb OS scheduling, which
                // must never perturb results.
                if rng.gen_range(4) == 0 {
                    std::thread::yield_now();
                }
            }
            if !run_one_local(cell, idx) {
                return;
            }
            execs += 1;
            if execs > LIVELOCK_LIMIT {
                let mut st = cell.state.lock();
                let now = st.now;
                st.error = Some(SimError::Livelock { now });
                return;
            }
        }
        // Phase 2: advance to the next event inside the window.
        let mut st = cell.state.lock();
        let Some(head) = st.queue.peek_at() else {
            return;
        };
        if head >= w_end {
            return;
        }
        if let Some(l) = limit {
            if head > l {
                st.error = Some(SimError::TimeLimitExceeded { limit: l });
                return;
            }
        }
        let ev = st.queue.pop().expect("event vanished under the shard lock");
        debug_assert!(ev.at >= st.now, "event in the past");
        if ev.at > st.now {
            st.now = ev.at;
            execs = 0;
        }
        st.events += 1;
        match ev.kind {
            EventKind::Wake(pid) => {
                let idx = *st
                    .local
                    .get(&pid.0)
                    .expect("wake routed to the wrong shard");
                let slot = &mut st.slots[idx as usize];
                debug_assert_eq!(slot.status, ProcStatus::Blocked(BlockReason::Sleep));
                slot.status = ProcStatus::Ready;
                st.ready.push_back(idx);
            }
            EventKind::Deliver(pid, payload) => {
                let idx = *st
                    .local
                    .get(&pid.0)
                    .expect("delivery routed to the wrong shard");
                let slot = &mut st.slots[idx as usize];
                if slot.status == ProcStatus::Finished {
                    st.stats.incr("simnet.deliver_to_finished", 1);
                } else {
                    slot.mailbox.push_back(payload);
                    if slot.status == ProcStatus::Blocked(BlockReason::WaitMessage) {
                        slot.status = ProcStatus::Ready;
                        st.ready.push_back(idx);
                    }
                }
            }
        }
        drop(st);
    }
}

/// Run the process at local slot `idx` until it blocks or finishes.
/// Returns `false` when the process panicked (parked as a fatal).
fn run_one_local(cell: &Arc<ShardCell>, idx: u32) -> bool {
    let baton = {
        let mut st = cell.state.lock();
        let slot = &mut st.slots[idx as usize];
        debug_assert_eq!(slot.status, ProcStatus::Ready);
        slot.status = ProcStatus::Running;
        Arc::clone(&slot.baton)
    };
    baton.resume_process();
    let mut st = cell.state.lock();
    let slot = &mut st.slots[idx as usize];
    debug_assert_ne!(
        slot.status,
        ProcStatus::Running,
        "process yielded without blocking"
    );
    if let Some(msg) = slot.panic.take() {
        let name = slot.name.clone();
        let join = slot.join.take();
        st.fatal = Some(FatalPanic {
            msg: format!("simulated process '{name}' panicked: {msg}"),
            join,
        });
        return false;
    }
    true
}

// ---------------------------------------------------------------------
// ProcessCtx operations, sharded side. Each locks only the caller's own
// shard; the pid directory is read (never locked for writing) first.
// ---------------------------------------------------------------------

pub(crate) fn ctx_now(cell: &ShardCell) -> SimTime {
    cell.state.lock().now
}

pub(crate) fn ctx_name(cell: &ShardCell, idx: u32) -> String {
    cell.state.lock().slots[idx as usize].name.clone()
}

pub(crate) fn ctx_block_for(
    cell: &ShardCell,
    baton: &Baton,
    idx: u32,
    pid: Pid,
    d: SimDelta,
    is_compute: bool,
) {
    let span_start = {
        let mut st = cell.state.lock();
        let at = st.now + d;
        let seq = st.next_seq;
        st.next_seq += 1;
        st.queue.push_keyed(at, cell.id, seq, EventKind::Wake(pid));
        let slot = &mut st.slots[idx as usize];
        slot.status = ProcStatus::Blocked(BlockReason::Sleep);
        if is_compute {
            slot.compute_time += d;
        }
        (is_compute && st.trace.is_some()).then_some(st.now)
    };
    baton.yield_to_scheduler();
    if let Some(start) = span_start {
        let mut st = cell.state.lock();
        let end = st.now;
        if let Some(trace) = st.trace.as_mut() {
            trace.push_span(start, end, pid, "compute".into(), "compute".into());
        }
    }
}

pub(crate) fn ctx_yield(cell: &ShardCell, baton: &Baton, idx: u32) {
    {
        let mut st = cell.state.lock();
        st.slots[idx as usize].status = ProcStatus::Ready;
        st.ready.push_back(idx);
    }
    baton.yield_to_scheduler();
}

pub(crate) fn ctx_recv(cell: &ShardCell, baton: &Baton, idx: u32) -> Payload {
    loop {
        {
            let mut st = cell.state.lock();
            if let Some(msg) = st.slots[idx as usize].mailbox.pop_front() {
                return msg;
            }
            st.slots[idx as usize].status = ProcStatus::Blocked(BlockReason::WaitMessage);
        }
        baton.yield_to_scheduler();
    }
}

pub(crate) fn ctx_try_recv(cell: &ShardCell, idx: u32) -> Option<Payload> {
    cell.state.lock().slots[idx as usize].mailbox.pop_front()
}

pub(crate) fn ctx_mailbox_len(cell: &ShardCell, idx: u32) -> usize {
    cell.state.lock().slots[idx as usize].mailbox.len()
}

pub(crate) fn ctx_deliver(
    rt: &ShardedRt,
    cell: &ShardCell,
    to: Pid,
    delay: SimDelta,
    payload: Payload,
) {
    let dest = loc_of(rt, to).shard;
    let sealed = rt.sealed.get().expect("sharded runtime not sealed");
    let src = cell.id;
    let mut st = cell.state.lock();
    let at = st.now + delay;
    let seq = st.next_seq;
    st.next_seq += 1;
    if dest == src {
        st.queue
            .push_keyed(at, src, seq, EventKind::Deliver(to, payload));
    } else {
        let la = sealed.la.of(src, dest);
        assert!(
            delay >= la,
            "cross-shard delivery from shard {src} to shard {dest} with delay \
             {}ps below the link lookahead {}ps; raise the delay or lower the \
             lookahead (Simulation::set_lookahead / set_link_lookahead)",
            delay.as_ps(),
            la.as_ps()
        );
        st.outbox.push(OutEvent {
            at,
            src,
            seq,
            dest,
            kind: EventKind::Deliver(to, payload),
        });
    }
}

pub(crate) fn ctx_deliver_at(
    rt: &ShardedRt,
    cell: &ShardCell,
    to: Pid,
    at: SimTime,
    payload: Payload,
) {
    let dest = loc_of(rt, to).shard;
    let sealed = rt.sealed.get().expect("sharded runtime not sealed");
    let src = cell.id;
    let mut st = cell.state.lock();
    let at = at.max(st.now);
    let seq = st.next_seq;
    st.next_seq += 1;
    if dest == src {
        st.queue
            .push_keyed(at, src, seq, EventKind::Deliver(to, payload));
    } else {
        let la = sealed.la.of(src, dest);
        assert!(
            at >= st.now + la,
            "cross-shard delivery from shard {src} to shard {dest} at {} is \
             inside the lookahead window ending {} (lookahead {}ps)",
            at,
            st.now + la,
            la.as_ps()
        );
        st.outbox.push(OutEvent {
            at,
            src,
            seq,
            dest,
            kind: EventKind::Deliver(to, payload),
        });
    }
}

pub(crate) fn ctx_create_resource(cell: &ShardCell, name: String) -> ResourceId {
    let mut st = cell.state.lock();
    let idx = st.resources.len() as u32;
    st.resources.push(ResourceState::new(name));
    encode_resource(cell.id, idx)
}

pub(crate) fn ctx_reserve(
    cell: &ShardCell,
    res: ResourceId,
    earliest: Option<SimTime>,
    dur: SimDelta,
) -> (SimTime, SimTime) {
    let (shard, idx) = decode_resource(res);
    assert_eq!(
        shard, cell.id,
        "cross-shard resource reservation is not supported by the sharded engine"
    );
    let mut st = cell.state.lock();
    let from = match earliest {
        Some(e) => e.max(st.now),
        None => st.now,
    };
    st.resources[idx as usize].reserve(from, dur)
}

pub(crate) fn ctx_trace(cell: &ShardCell, pid: Pid, label: String) {
    let mut st = cell.state.lock();
    let now = st.now;
    if let Some(trace) = st.trace.as_mut() {
        trace.push(now, pid, label);
    }
}

/// Span-open half: the current instant if tracing is on.
pub(crate) fn ctx_span_start(cell: &ShardCell) -> Option<SimTime> {
    let st = cell.state.lock();
    st.trace.is_some().then_some(st.now)
}

pub(crate) fn ctx_span_end(cell: &ShardCell, pid: Pid, start: SimTime, cat: String, name: String) {
    let mut st = cell.state.lock();
    let end = st.now;
    if let Some(trace) = st.trace.as_mut() {
        trace.push_span(start, end, pid, cat, name);
    }
}

/// `true` when an event sink is installed (so `emit` can skip boxing).
pub(crate) fn sink_installed(rt: &ShardedRt) -> bool {
    rt.sealed.get().is_some_and(|s| s.sink.is_some())
}

/// Buffer an emitted event; the coordinator delivers it to the sink in
/// canonical `(time, shard, seq)` order at the next flush.
pub(crate) fn ctx_emit(cell: &ShardCell, pid: Pid, payload: Payload) {
    let mut st = cell.state.lock();
    let at = st.now;
    let seq = st.next_seq;
    st.next_seq += 1;
    st.emits.push(EmitRec {
        at,
        pid,
        seq,
        payload,
    });
}

pub(crate) fn ctx_stat_incr(cell: &ShardCell, name: &str, n: u64) {
    cell.state.lock().stats.incr(name, n);
}

pub(crate) fn ctx_stat_time(cell: &ShardCell, name: &str, d: SimDelta) {
    cell.state.lock().stats.add_time(name, d);
}

pub(crate) fn ctx_stat_counter(cell: &ShardCell, name: &str) -> u64 {
    cell.state.lock().stats.counter(name)
}

pub(crate) fn ctx_gen_range(cell: &ShardCell, bound: u64) -> u64 {
    cell.state.lock().rng.gen_range(bound)
}

pub(crate) fn ctx_gen_f64(cell: &ShardCell) -> f64 {
    cell.state.lock().rng.gen_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookahead_map_overrides_default() {
        let mut la = LookaheadCfg::new(SimDelta::from_us(1));
        la.links.insert((0, 1), SimDelta::from_ns(200));
        assert_eq!(la.of(0, 1), SimDelta::from_ns(200));
        assert_eq!(la.of(1, 0), SimDelta::from_us(1));
        assert_eq!(la.of(2, 3), SimDelta::from_us(1));
    }

    #[test]
    fn resource_ids_round_trip_shard_and_index() {
        let id = encode_resource(7, 42);
        assert_eq!(decode_resource(id), (7, 42));
        let id0 = encode_resource(0, 3);
        assert_eq!(id0.0, 3, "shard 0 encodes like the classic engine");
    }

    #[test]
    fn shard_zero_keeps_the_raw_seed() {
        assert_eq!(shard_seed(42, 0), 42);
        assert_ne!(shard_seed(42, 1), shard_seed(42, 2));
        assert_ne!(shard_seed(42, 1), shard_seed(43, 1));
    }
}
