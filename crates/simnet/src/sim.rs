//! The simulation kernel: scheduler, process control, and the public
//! [`Simulation`] / [`ProcessCtx`] API.
//!
//! # Execution model
//!
//! At most one thread runs at a time: either the scheduler (inside
//! [`Simulation::run`]) or exactly one process thread. Control is handed
//! over through per-process batons. The scheduler:
//!
//! 1. runs every `Ready` process until it blocks,
//! 2. pops the earliest pending event, advances the clock, and handles it
//!    (which may make processes `Ready` again),
//! 3. repeats until no events remain.
//!
//! If processes are still blocked when the queue drains, the run reports a
//! **deadlock** naming them. If the clock stops advancing while processes
//! keep re-readying each other, the run reports a **livelock**.
//!
//! # Locking rule for upper layers
//!
//! Simulated code often shares state through an `Arc<Mutex<World>>`. Never
//! hold such a lock across a blocking [`ProcessCtx`] call (`sleep`,
//! `compute`, `recv`, `yield_now`): the next process to run would block on
//! the mutex while the scheduler waits for it to yield, wedging the whole
//! simulation (a real deadlock of OS threads, not a simulated one).

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::event::{EventKind, EventQueue};
use crate::process::{panic_message, Baton, BlockReason, Payload, Pid, ProcSlot, ProcStatus};
use crate::resource::{ResourceId, ResourceState};
use crate::rng::SimRng;
use crate::shard;
use crate::stats::Stats;
use crate::time::{SimDelta, SimTime};
use crate::trace::Trace;

/// Maximum process executions without the clock advancing before the engine
/// declares a livelock. Generous: legitimate same-instant cascades (e.g. a
/// 512-rank barrier release) touch each process a handful of times.
pub(crate) const LIVELOCK_LIMIT: u64 = 50_000_000;

/// Process-global count of simulated events handled by completed runs,
/// on either engine. The engine self-benchmarks read this to report
/// simulated-events-per-second without threading a handle through every
/// layer.
static ENGINE_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Total simulated events handled by every completed [`Simulation::run`]
/// in this process so far (monotone; both engines contribute).
pub fn engine_events() -> u64 {
    ENGINE_EVENTS.load(Ordering::Relaxed)
}

fn record_engine_events(n: u64) {
    ENGINE_EVENTS.fetch_add(n, Ordering::Relaxed);
}

/// Environment knob naming the sharded engine's worker-thread count
/// (default 1). Results are bit-identical at any value; only wall-clock
/// speed changes. [`Simulation::set_threads`] overrides it.
pub const SIMNET_THREADS_ENV: &str = "SIMNET_THREADS";

/// Environment knob seeding the sharded engine's yield-injection shim
/// (tests only): workers randomly yield the OS thread between events to
/// stress thread-interleaving independence.
pub const SIMNET_CHAOS_ENV: &str = "SIMNET_CHAOS";

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Observer for structured events published with [`ProcessCtx::emit`].
///
/// The engine stays protocol-agnostic: upper layers define their own event
/// types and the sink downcasts the `&dyn Any`. The sink runs synchronously
/// on the emitting process's thread with the simulation state **unlocked**,
/// so it may read the clock via the captured `SimTime` but must not call
/// back into blocking [`ProcessCtx`] operations.
pub type EventSink = Arc<dyn Fn(SimTime, Pid, &dyn Any) + Send + Sync>;

/// Errors surfaced by [`Simulation::run`].
#[derive(Debug)]
pub enum SimError {
    /// No pending events but some processes are still blocked.
    Deadlock {
        /// Virtual time at which the simulation wedged.
        now: SimTime,
        /// `(process name, why it is blocked)` for every blocked process.
        blocked: Vec<(String, BlockReason)>,
    },
    /// The configured time limit was reached.
    TimeLimitExceeded {
        /// The limit that was hit.
        limit: SimTime,
    },
    /// The clock stopped advancing while processes kept running.
    Livelock {
        /// Virtual time at which progress stopped.
        now: SimTime,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { now, blocked } => {
                write!(f, "simulation deadlock at {now}: blocked processes: ")?;
                for (i, (name, why)) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name} ({why:?})")?;
                }
                Ok(())
            }
            SimError::TimeLimitExceeded { limit } => {
                write!(f, "simulation exceeded time limit {limit}")
            }
            SimError::Livelock { now } => {
                write!(f, "simulation livelocked at {now} (clock not advancing)")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Summary of one process at the end of a run.
#[derive(Debug, Clone)]
pub struct ProcReport {
    /// Name given at spawn time.
    pub name: String,
    /// Total virtual time spent in `compute()`.
    pub compute_time: SimDelta,
    /// When the process closure returned.
    pub finished_at: SimTime,
}

/// Result of a completed run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Virtual time when the last event was processed.
    pub end_time: SimTime,
    /// Engine and upper-layer statistics.
    pub stats: Stats,
    /// Trace records, if tracing was enabled.
    pub trace: Option<Trace>,
    /// Per-process summaries, in pid order.
    pub procs: Vec<ProcReport>,
    /// Number of events handled.
    pub events: u64,
    /// Per-resource utilization: `(name, total busy time, reservations)`.
    pub resources: Vec<(String, SimDelta, u64)>,
    /// Engine wall-clock self-profile, present only when
    /// [`Simulation::set_profile`] enabled it on a sharded run (the
    /// classic engine has no windows or barriers to attribute, so it
    /// always reports `None`). Durations are wall-clock and
    /// nondeterministic; the shard/window/event counts inside are not.
    pub profile: Option<shard::EngineProfile>,
}

impl Report {
    /// Spawn-time name of `pid`, for labeling event streams and dumps
    /// (`procs` is in pid order). `None` for an out-of-range pid.
    pub fn proc_name(&self, pid: Pid) -> Option<&str> {
        self.procs.get(pid.index()).map(|p| p.name.as_str())
    }
}

pub(crate) struct SimState {
    now: SimTime,
    queue: EventQueue,
    procs: Vec<ProcSlot>,
    ready: VecDeque<Pid>,
    resources: Vec<ResourceState>,
    stats: Stats,
    trace: Option<Trace>,
    rng: SimRng,
    time_limit: Option<SimTime>,
    events: u64,
    sink: Option<EventSink>,
}

pub(crate) struct SimInner {
    state: Mutex<SimState>,
}

/// A deterministic discrete-event simulation.
///
/// Build it, spawn processes, then call [`run`](Simulation::run).
///
/// ```
/// use simnet::{Simulation, SimDelta};
///
/// let mut sim = Simulation::new(42);
/// sim.spawn("worker", |ctx| {
///     ctx.compute(SimDelta::from_us(5));
/// });
/// let report = sim.run().unwrap();
/// assert_eq!(report.end_time, simnet::SimTime::ZERO + SimDelta::from_us(5));
/// ```
pub struct Simulation {
    inner: Arc<SimInner>,
    stack_size: usize,
    seed: u64,
    /// Worker-thread override for the sharded engine (else
    /// `SIMNET_THREADS`, else 1).
    threads: Option<usize>,
    /// Yield-injection seed override (else `SIMNET_CHAOS`, else off).
    chaos: Option<u64>,
    /// Lookahead map used when the simulation is sharded.
    lookahead: shard::LookaheadCfg,
    /// Present once `spawn_on` has been called: the simulation runs on
    /// the sharded conservative-lookahead engine.
    sharded: Option<Arc<shard::ShardedRt>>,
    /// Collect [`shard::EngineProfile`] wall-clock buckets (sharded
    /// engine only; off by default).
    profile: bool,
}

/// A typed span opened by [`ProcessCtx::span_begin`] and not yet closed.
///
/// Carries its own start time, so nested and interleaved spans need no
/// bookkeeping in the trace. `start` is `None` when tracing was disabled
/// at open time, making the eventual [`ProcessCtx::span_end`] a no-op.
#[must_use = "close the span with ProcessCtx::span_end"]
#[derive(Debug)]
pub struct OpenSpan {
    start: Option<SimTime>,
    cat: String,
    name: String,
}

/// Which engine a [`ProcessCtx`] talks to.
#[derive(Clone)]
pub(crate) enum Route {
    /// The classic single-queue engine.
    Classic(Arc<SimInner>),
    /// The sharded engine: the shared runtime plus this process's own
    /// shard cell and local slot index.
    Sharded {
        rt: Arc<shard::ShardedRt>,
        cell: Arc<shard::ShardCell>,
        idx: u32,
    },
}

/// Handle given to each simulated process. Cheap to clone.
#[derive(Clone)]
pub struct ProcessCtx {
    pub(crate) route: Route,
    pub(crate) pid: Pid,
    pub(crate) baton: Arc<Baton>,
    pub(crate) stack_size: usize,
}

impl Simulation {
    /// Create a simulation with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Simulation {
            inner: Arc::new(SimInner {
                state: Mutex::new(SimState {
                    now: SimTime::ZERO,
                    queue: EventQueue::new(),
                    procs: Vec::new(),
                    ready: VecDeque::new(),
                    resources: Vec::new(),
                    stats: Stats::new(),
                    trace: None,
                    rng: SimRng::new(seed),
                    time_limit: None,
                    events: 0,
                    sink: None,
                }),
            }),
            stack_size: 1 << 20,
            seed,
            threads: None,
            chaos: None,
            lookahead: shard::LookaheadCfg::new(SimDelta::from_us(1)),
            sharded: None,
            profile: false,
        }
    }

    /// Enable trace collection (off by default; it allocates per record).
    pub fn enable_trace(&mut self) {
        self.inner.state.lock().trace = Some(Trace::default());
    }

    /// Abort the run with [`SimError::TimeLimitExceeded`] if the clock would
    /// pass `limit`.
    pub fn set_time_limit(&mut self, limit: SimTime) {
        self.inner.state.lock().time_limit = Some(limit);
    }

    /// Stack size for process threads (default 1 MiB).
    pub fn set_stack_size(&mut self, bytes: usize) {
        self.stack_size = bytes;
    }

    /// Install an observer for [`ProcessCtx::emit`] events (e.g. a protocol
    /// conformance checker). At most one sink; later calls replace it.
    pub fn set_event_sink(&mut self, sink: EventSink) {
        self.inner.state.lock().sink = Some(sink);
    }

    /// Spawn a simulated process. It becomes runnable at time zero (or, when
    /// spawned from a running process, at the current instant). In a sharded
    /// simulation (one where [`spawn_on`](Self::spawn_on) has been used),
    /// the process lands on shard 0.
    pub fn spawn<F>(&mut self, name: impl Into<String>, f: F) -> Pid
    where
        F: FnOnce(ProcessCtx) + Send + 'static,
    {
        if let Some(rt) = &self.sharded {
            return shard::spawn_on_shard(rt, self.stack_size, 0, name.into(), f);
        }
        spawn_process(&self.inner, self.stack_size, name.into(), f)
    }

    /// Spawn a simulated process onto `shard`, switching the simulation to
    /// the **sharded conservative-lookahead engine** (see [`crate::shard`]'s
    /// module docs reflected in DESIGN.md §16).
    ///
    /// Each shard runs on its own event queue; a cross-shard
    /// [`ProcessCtx::deliver`] must carry a delay of at least the link
    /// lookahead (see [`set_lookahead`](Self::set_lookahead)). Results are
    /// bit-for-bit identical at every worker-thread count.
    ///
    /// The first `spawn_on` must come before any plain [`spawn`](Self::spawn)
    /// (later plain spawns land on shard 0), and all processes must be
    /// spawned before [`run`](Self::run) — the sharded engine rejects
    /// dynamic spawns so pid assignment can never depend on thread timing.
    pub fn spawn_on<F>(&mut self, shard_id: usize, name: impl Into<String>, f: F) -> Pid
    where
        F: FnOnce(ProcessCtx) + Send + 'static,
    {
        if self.sharded.is_none() {
            let classic = {
                let st = self.inner.state.lock();
                st.procs.len()
            };
            assert_eq!(
                classic, 0,
                "spawn_on must come before any plain spawn ({classic} processes \
                 were already spawned on the classic engine)"
            );
            self.sharded = Some(Arc::new(shard::ShardedRt::new()));
        }
        let rt = self.sharded.as_ref().expect("just initialized");
        shard::spawn_on_shard(rt, self.stack_size, shard_id, name.into(), f)
    }

    /// Default per-link lookahead for the sharded engine: the minimum
    /// cross-shard delivery delay the model guarantees (default 1 µs).
    /// Must be positive. Larger lookahead means longer synchronization
    /// windows and less coordination overhead; every cross-shard
    /// delivery must have `delay >= lookahead`.
    pub fn set_lookahead(&mut self, la: SimDelta) {
        assert!(la > SimDelta::ZERO, "lookahead must be positive");
        self.lookahead.default = la;
    }

    /// Override the lookahead of one directed shard link `from -> to`.
    pub fn set_link_lookahead(&mut self, from: usize, to: usize, la: SimDelta) {
        assert!(la > SimDelta::ZERO, "lookahead must be positive");
        self.lookahead.links.insert((from as u32, to as u32), la);
    }

    /// Worker threads for the sharded engine (overrides the
    /// `SIMNET_THREADS` environment variable; default 1). Purely a
    /// speed knob: results are identical at any value.
    pub fn set_threads(&mut self, threads: usize) {
        assert!(threads >= 1, "thread count must be at least 1");
        self.threads = Some(threads);
    }

    /// Seed the sharded engine's OS-level yield-injection shim
    /// (overrides `SIMNET_CHAOS`; tests only). Workers randomly yield
    /// between events to stress that thread interleaving cannot affect
    /// results.
    pub fn set_chaos(&mut self, seed: u64) {
        self.chaos = Some(seed);
    }

    /// Collect the sharded engine's wall-clock self-profile into
    /// [`Report::profile`]: per-shard event-execute and barrier-wait
    /// buckets plus coordinator flush/horizon time. Off by default —
    /// when off, the engine takes no timestamps at all. Profiling never
    /// affects virtual-time results; only the run's wall speed (bounded
    /// overhead, gated in CI).
    pub fn set_profile(&mut self, on: bool) {
        self.profile = on;
    }

    /// Number of shards (0 for a classic, unsharded simulation).
    pub fn shards(&self) -> usize {
        self.sharded.as_ref().map_or(0, |rt| rt.num_shards())
    }

    /// Create a FIFO resource (see [`crate::ResourceId`]). In a sharded
    /// simulation the resource lives on shard 0 and only shard-0
    /// processes may reserve it; runtime code creates node-local
    /// resources via [`ProcessCtx::create_resource`] instead.
    pub fn create_resource(&mut self, name: impl Into<String>) -> ResourceId {
        if let Some(rt) = &self.sharded {
            return shard::create_resource_on(rt, 0, name.into());
        }
        let mut st = self.inner.state.lock();
        let id = ResourceId(st.resources.len() as u32);
        st.resources.push(ResourceState::new(name.into()));
        id
    }

    /// Run to completion. Returns the report, or an error describing a
    /// deadlock / livelock / time-limit overrun. Panics raised inside a
    /// simulated process are re-raised here with the process name attached.
    pub fn run(self) -> Result<Report, SimError> {
        if let Some(rt) = &self.sharded {
            let (time_limit, trace, sink) = {
                let mut st = self.inner.state.lock();
                (st.time_limit, st.trace.is_some(), st.sink.take())
            };
            let threads = self
                .threads
                .or_else(|| env_u64(SIMNET_THREADS_ENV).map(|n| n as usize))
                .unwrap_or(1);
            let chaos = self.chaos.or_else(|| env_u64(SIMNET_CHAOS_ENV));
            let report = shard::run_sharded(
                rt,
                shard::RunOpts {
                    seed: self.seed,
                    threads,
                    time_limit,
                    trace,
                    sink,
                    lookahead: self.lookahead.clone(),
                    chaos,
                    profile: self.profile,
                },
            )?;
            record_engine_events(report.events);
            return Ok(report);
        }
        let inner = self.inner;
        let mut executions_since_advance: u64 = 0;
        loop {
            // Phase 1: drain ready processes.
            loop {
                let next = {
                    let mut st = inner.state.lock();
                    st.ready.pop_front()
                };
                let Some(pid) = next else { break };
                run_one(&inner, pid);
                executions_since_advance += 1;
                if executions_since_advance > LIVELOCK_LIMIT {
                    let now = inner.state.lock().now;
                    return Err(SimError::Livelock { now });
                }
            }
            // Phase 2: advance to the next event.
            let popped = {
                let mut st = inner.state.lock();
                st.queue.pop()
            };
            let Some(ev) = popped else { break };
            {
                let mut st = inner.state.lock();
                debug_assert!(ev.at >= st.now, "event in the past");
                if let Some(limit) = st.time_limit {
                    if ev.at > limit {
                        return Err(SimError::TimeLimitExceeded { limit });
                    }
                }
                if ev.at > st.now {
                    st.now = ev.at;
                    executions_since_advance = 0;
                }
                st.events += 1;
                match ev.kind {
                    EventKind::Wake(pid) => {
                        let slot = &mut st.procs[pid.index()];
                        debug_assert_eq!(slot.status, ProcStatus::Blocked(BlockReason::Sleep));
                        slot.status = ProcStatus::Ready;
                        st.ready.push_back(pid);
                    }
                    EventKind::Deliver(pid, payload) => {
                        let slot = &mut st.procs[pid.index()];
                        if slot.status == ProcStatus::Finished {
                            st.stats.incr("simnet.deliver_to_finished", 1);
                        } else {
                            slot.mailbox.push_back(payload);
                            if slot.status == ProcStatus::Blocked(BlockReason::WaitMessage) {
                                slot.status = ProcStatus::Ready;
                                st.ready.push_back(pid);
                            }
                        }
                    }
                }
            }
        }

        // Termination: everything must have finished.
        let mut st = inner.state.lock();
        let blocked: Vec<(String, BlockReason)> = st
            .procs
            .iter()
            .filter_map(|p| match p.status {
                ProcStatus::Blocked(r) => Some((p.name.clone(), r)),
                _ => None,
            })
            .collect();
        if !blocked.is_empty() {
            let now = st.now;
            return Err(SimError::Deadlock { now, blocked });
        }
        // Join finished threads so nothing lingers.
        let handles: Vec<_> = st.procs.iter_mut().filter_map(|p| p.join.take()).collect();
        let report = Report {
            end_time: st.now,
            stats: st.stats.clone(),
            trace: st.trace.take(),
            procs: st
                .procs
                .iter()
                .map(|p| ProcReport {
                    name: p.name.clone(),
                    compute_time: p.compute_time,
                    finished_at: p.finished_at.unwrap_or(st.now),
                })
                .collect(),
            events: st.events,
            resources: st
                .resources
                .iter()
                .map(|r| (r.name.clone(), r.busy_total, r.reservations))
                .collect(),
            profile: None,
        };
        drop(st);
        for h in handles {
            let _ = h.join();
        }
        record_engine_events(report.events);
        Ok(report)
    }
}

/// Run process `pid` until it blocks or finishes; propagate its panic.
fn run_one(inner: &Arc<SimInner>, pid: Pid) {
    let baton = {
        let mut st = inner.state.lock();
        let slot = &mut st.procs[pid.index()];
        debug_assert_eq!(slot.status, ProcStatus::Ready);
        slot.status = ProcStatus::Running;
        Arc::clone(&slot.baton)
    };
    baton.resume_process();
    let mut st = inner.state.lock();
    let slot = &mut st.procs[pid.index()];
    debug_assert_ne!(
        slot.status,
        ProcStatus::Running,
        "process yielded without blocking"
    );
    if let Some(msg) = slot.panic.take() {
        let name = slot.name.clone();
        // Join the dead thread before re-raising.
        let join = slot.join.take();
        drop(st);
        if let Some(h) = join {
            let _ = h.join();
        }
        panic!("simulated process '{name}' panicked: {msg}");
    }
}

fn spawn_process<F>(inner: &Arc<SimInner>, stack_size: usize, name: String, f: F) -> Pid
where
    F: FnOnce(ProcessCtx) + Send + 'static,
{
    let baton = Baton::new();
    let pid = {
        let mut st = inner.state.lock();
        let pid = Pid(st.procs.len() as u32);
        st.procs
            .push(ProcSlot::new(name.clone(), Arc::clone(&baton)));
        st.ready.push_back(pid);
        pid
    };
    let ctx = ProcessCtx {
        route: Route::Classic(Arc::clone(inner)),
        pid,
        baton: Arc::clone(&baton),
        stack_size,
    };
    let tinner = Arc::clone(inner);
    let handle = std::thread::Builder::new()
        .name(name)
        .stack_size(stack_size)
        .spawn(move || {
            ctx.baton.wait_for_start();
            let pid = ctx.pid;
            let ctx2 = ctx.clone();
            let result = catch_unwind(AssertUnwindSafe(move || f(ctx2)));
            let mut st = tinner.state.lock();
            let now = st.now;
            let slot = &mut st.procs[pid.index()];
            slot.status = ProcStatus::Finished;
            slot.finished_at = Some(now);
            if let Err(payload) = result {
                slot.panic = Some(panic_message(&*payload));
            }
            drop(st);
            ctx.baton.finish();
        })
        .expect("failed to spawn process thread");
    inner.state.lock().procs[pid.index()].join = Some(handle);
    pid
}

impl ProcessCtx {
    /// This process's pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Current virtual time (of this process's shard, on the sharded
    /// engine — shards are loosely synchronized within one lookahead
    /// window).
    pub fn now(&self) -> SimTime {
        match &self.route {
            Route::Classic(inner) => inner.state.lock().now,
            Route::Sharded { cell, .. } => shard::ctx_now(cell),
        }
    }

    /// Name this process was spawned with.
    pub fn name(&self) -> String {
        match &self.route {
            Route::Classic(inner) => inner.state.lock().procs[self.pid.index()].name.clone(),
            Route::Sharded { cell, idx, .. } => shard::ctx_name(cell, *idx),
        }
    }

    /// Block for `d` of virtual time.
    pub fn sleep(&self, d: SimDelta) {
        self.block_for(d, false);
    }

    /// Model computation for `d`: identical to [`sleep`](Self::sleep) but
    /// accounted in the process's `compute_time` (used by overlap metrics).
    pub fn compute(&self, d: SimDelta) {
        self.block_for(d, true);
    }

    fn block_for(&self, d: SimDelta, is_compute: bool) {
        let inner = match &self.route {
            Route::Classic(inner) => inner,
            Route::Sharded { cell, idx, .. } => {
                shard::ctx_block_for(cell, &self.baton, *idx, self.pid, d, is_compute);
                return;
            }
        };
        let span_start = {
            let mut st = inner.state.lock();
            let at = st.now + d;
            st.queue.push(at, EventKind::Wake(self.pid));
            let slot = &mut st.procs[self.pid.index()];
            slot.status = ProcStatus::Blocked(BlockReason::Sleep);
            if is_compute {
                slot.compute_time += d;
            }
            (is_compute && st.trace.is_some()).then_some(st.now)
        };
        self.baton.yield_to_scheduler();
        if let Some(start) = span_start {
            let mut st = inner.state.lock();
            let end = st.now;
            let pid = self.pid;
            if let Some(trace) = st.trace.as_mut() {
                trace.push_span(start, end, pid, "compute".into(), "compute".into());
            }
        }
    }

    /// Let every other ready process and same-instant event run, then
    /// continue. Time does not advance. (On the sharded engine, "every
    /// other" means this shard's processes; other shards run their own
    /// schedules.)
    pub fn yield_now(&self) {
        let inner = match &self.route {
            Route::Classic(inner) => inner,
            Route::Sharded { cell, idx, .. } => {
                shard::ctx_yield(cell, &self.baton, *idx);
                return;
            }
        };
        {
            let mut st = inner.state.lock();
            let pid = self.pid;
            st.procs[pid.index()].status = ProcStatus::Ready;
            st.ready.push_back(pid);
        }
        self.baton.yield_to_scheduler();
    }

    /// Blocking receive: the next mailbox message, waiting if necessary.
    pub fn recv(&self) -> Payload {
        let inner = match &self.route {
            Route::Classic(inner) => inner,
            Route::Sharded { cell, idx, .. } => {
                return shard::ctx_recv(cell, &self.baton, *idx);
            }
        };
        loop {
            {
                let mut st = inner.state.lock();
                if let Some(msg) = st.procs[self.pid.index()].mailbox.pop_front() {
                    return msg;
                }
                st.procs[self.pid.index()].status = ProcStatus::Blocked(BlockReason::WaitMessage);
            }
            self.baton.yield_to_scheduler();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Payload> {
        match &self.route {
            Route::Classic(inner) => inner.state.lock().procs[self.pid.index()]
                .mailbox
                .pop_front(),
            Route::Sharded { cell, idx, .. } => shard::ctx_try_recv(cell, *idx),
        }
    }

    /// Number of messages currently queued.
    pub fn mailbox_len(&self) -> usize {
        match &self.route {
            Route::Classic(inner) => inner.state.lock().procs[self.pid.index()].mailbox.len(),
            Route::Sharded { cell, idx, .. } => shard::ctx_mailbox_len(cell, *idx),
        }
    }

    /// Deliver `payload` to `to` after `delay` of virtual time.
    ///
    /// On the sharded engine a delivery to a process on another shard
    /// must have `delay >= ` the link lookahead (the model's minimum
    /// cross-node latency) — the engine asserts this, because it is
    /// exactly what makes speculation-free parallel execution safe.
    pub fn deliver(&self, to: Pid, delay: SimDelta, payload: Payload) {
        let inner = match &self.route {
            Route::Classic(inner) => inner,
            Route::Sharded { rt, cell, .. } => {
                shard::ctx_deliver(rt, cell, to, delay, payload);
                return;
            }
        };
        let mut st = inner.state.lock();
        let at = st.now + delay;
        st.queue.push(at, EventKind::Deliver(to, payload));
    }

    /// Deliver `payload` back to the calling process after `delay` of
    /// virtual time — a one-shot timer. The process observes it as an
    /// ordinary mailbox message, so timers interleave deterministically
    /// with network deliveries (retransmission timeouts are the canonical
    /// use).
    pub fn deliver_self(&self, delay: SimDelta, payload: Payload) {
        self.deliver(self.pid, delay, payload);
    }

    /// Deliver `payload` to `to` at absolute time `at` (clamped to now).
    /// Cross-shard deliveries must satisfy `at >= now + lookahead`.
    pub fn deliver_at(&self, to: Pid, at: SimTime, payload: Payload) {
        let inner = match &self.route {
            Route::Classic(inner) => inner,
            Route::Sharded { rt, cell, .. } => {
                shard::ctx_deliver_at(rt, cell, to, at, payload);
                return;
            }
        };
        let mut st = inner.state.lock();
        let at = at.max(st.now);
        st.queue.push(at, EventKind::Deliver(to, payload));
    }

    /// Create a FIFO resource at runtime. On the sharded engine the
    /// resource belongs to this process's shard; only same-shard
    /// processes may reserve it.
    pub fn create_resource(&self, name: impl Into<String>) -> ResourceId {
        let inner = match &self.route {
            Route::Classic(inner) => inner,
            Route::Sharded { cell, .. } => {
                return shard::ctx_create_resource(cell, name.into());
            }
        };
        let mut st = inner.state.lock();
        let id = ResourceId(st.resources.len() as u32);
        st.resources.push(ResourceState::new(name.into()));
        id
    }

    /// Reserve `res` for `dur`, starting no earlier than now. Returns the
    /// granted `(start, end)` window. Does not block the caller.
    pub fn reserve(&self, res: ResourceId, dur: SimDelta) -> (SimTime, SimTime) {
        let inner = match &self.route {
            Route::Classic(inner) => inner,
            Route::Sharded { cell, .. } => {
                return shard::ctx_reserve(cell, res, None, dur);
            }
        };
        let mut st = inner.state.lock();
        let now = st.now;
        st.resources[res.0 as usize].reserve(now, dur)
    }

    /// Reserve `res` for `dur`, starting no earlier than `earliest` (which
    /// may be in the future — e.g. after a posting-overhead delay).
    pub fn reserve_from(
        &self,
        res: ResourceId,
        earliest: SimTime,
        dur: SimDelta,
    ) -> (SimTime, SimTime) {
        let inner = match &self.route {
            Route::Classic(inner) => inner,
            Route::Sharded { cell, .. } => {
                return shard::ctx_reserve(cell, res, Some(earliest), dur);
            }
        };
        let mut st = inner.state.lock();
        let from = earliest.max(st.now);
        st.resources[res.0 as usize].reserve(from, dur)
    }

    /// Append a trace record (no-op unless tracing is enabled).
    pub fn trace(&self, label: impl Into<String>) {
        let inner = match &self.route {
            Route::Classic(inner) => inner,
            Route::Sharded { cell, .. } => {
                shard::ctx_trace(cell, self.pid, label.into());
                return;
            }
        };
        let mut st = inner.state.lock();
        let now = st.now;
        let pid = self.pid;
        if let Some(trace) = st.trace.as_mut() {
            trace.push(now, pid, label.into());
        }
    }

    /// Open a typed span at the current instant (no-op unless tracing is
    /// enabled). Close it with [`span_end`](Self::span_end); the span is
    /// recorded only then, covering the virtual time in between.
    pub fn span_begin(&self, cat: impl Into<String>, name: impl Into<String>) -> OpenSpan {
        let start = match &self.route {
            Route::Classic(inner) => {
                let st = inner.state.lock();
                st.trace.is_some().then_some(st.now)
            }
            Route::Sharded { cell, .. } => shard::ctx_span_start(cell),
        };
        OpenSpan {
            start,
            cat: cat.into(),
            name: name.into(),
        }
    }

    /// Close a span opened by [`span_begin`](Self::span_begin), appending
    /// it to the trace. A span opened while tracing was disabled is
    /// dropped silently.
    pub fn span_end(&self, span: OpenSpan) {
        let Some(start) = span.start else { return };
        let inner = match &self.route {
            Route::Classic(inner) => inner,
            Route::Sharded { cell, .. } => {
                shard::ctx_span_end(cell, self.pid, start, span.cat, span.name);
                return;
            }
        };
        let mut st = inner.state.lock();
        let end = st.now;
        let pid = self.pid;
        if let Some(trace) = st.trace.as_mut() {
            trace.push_span(start, end, pid, span.cat, span.name);
        }
    }

    /// Publish a structured event to the installed [`EventSink`], if any.
    ///
    /// On the classic engine the sink runs on this thread with the
    /// simulation state unlocked, so emitting from protocol code can never
    /// deadlock the scheduler. On the sharded engine the event is cloned
    /// into a buffer and the sink runs on the coordinator thread between
    /// windows, in canonical `(time, shard, sequence)` order — identical
    /// at every thread count.
    pub fn emit<E: Any + Clone + Send>(&self, event: &E) {
        let inner = match &self.route {
            Route::Classic(inner) => inner,
            Route::Sharded { rt, cell, .. } => {
                if shard::sink_installed(rt) {
                    shard::ctx_emit(cell, self.pid, Box::new(event.clone()));
                }
                return;
            }
        };
        let (now, sink) = {
            let st = inner.state.lock();
            match st.sink.as_ref() {
                Some(s) => (st.now, Arc::clone(s)),
                None => return,
            }
        };
        sink(now, self.pid, event);
    }

    /// Increment a named counter.
    pub fn stat_incr(&self, name: &str, n: u64) {
        match &self.route {
            Route::Classic(inner) => inner.state.lock().stats.incr(name, n),
            Route::Sharded { cell, .. } => shard::ctx_stat_incr(cell, name, n),
        }
    }

    /// Accumulate virtual time under a named stat.
    pub fn stat_time(&self, name: &str, d: SimDelta) {
        match &self.route {
            Route::Classic(inner) => inner.state.lock().stats.add_time(name, d),
            Route::Sharded { cell, .. } => shard::ctx_stat_time(cell, name, d),
        }
    }

    /// Read a counter (mainly for tests). Sharded engine: reads this
    /// shard's slice of the counter only.
    pub fn stat_counter(&self, name: &str) -> u64 {
        match &self.route {
            Route::Classic(inner) => inner.state.lock().stats.counter(name),
            Route::Sharded { cell, .. } => shard::ctx_stat_counter(cell, name),
        }
    }

    /// Uniform random value in `[0, bound)` from the simulation's RNG
    /// (this shard's private stream, on the sharded engine).
    pub fn gen_range(&self, bound: u64) -> u64 {
        match &self.route {
            Route::Classic(inner) => inner.state.lock().rng.gen_range(bound),
            Route::Sharded { cell, .. } => shard::ctx_gen_range(cell, bound),
        }
    }

    /// Uniform random f64 in `[0, 1)` from the simulation's RNG.
    pub fn gen_f64(&self) -> f64 {
        match &self.route {
            Route::Classic(inner) => inner.state.lock().rng.gen_f64(),
            Route::Sharded { cell, .. } => shard::ctx_gen_f64(cell),
        }
    }

    /// Spawn another process from inside the simulation. It becomes
    /// runnable at the current instant.
    ///
    /// Classic engine only: the sharded engine fixes the process
    /// population before `run()` (pid assignment from concurrently
    /// running shards could depend on thread timing) and panics here.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> Pid
    where
        F: FnOnce(ProcessCtx) + Send + 'static,
    {
        let inner = match &self.route {
            Route::Classic(inner) => inner,
            Route::Sharded { .. } => panic!(
                "dynamic spawn is not supported by the sharded engine; \
                 spawn every process with spawn_on() before run()"
            ),
        };
        spawn_process(inner, self.stack_size, name.into(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn empty_simulation_completes() {
        let sim = Simulation::new(0);
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::ZERO);
        assert_eq!(report.events, 0);
    }

    #[test]
    fn single_process_computes() {
        let mut sim = Simulation::new(0);
        sim.spawn("p", |ctx| {
            ctx.compute(SimDelta::from_us(10));
            ctx.compute(SimDelta::from_us(5));
        });
        let report = sim.run().unwrap();
        assert_eq!(report.end_time.as_us_f64(), 15.0);
        assert_eq!(report.procs[0].compute_time, SimDelta::from_us(15));
    }

    #[test]
    fn message_passing_advances_time() {
        let mut sim = Simulation::new(0);
        let got = Arc::new(AtomicU64::new(0));
        let got2 = Arc::clone(&got);
        let receiver = sim.spawn("rx", move |ctx| {
            let msg = ctx.recv();
            let v = *msg.downcast::<u64>().unwrap();
            got2.store(v, Ordering::SeqCst);
            assert_eq!(ctx.now(), SimTime::ZERO + SimDelta::from_us(3));
        });
        sim.spawn("tx", move |ctx| {
            ctx.deliver(receiver, SimDelta::from_us(3), Box::new(77u64));
        });
        let report = sim.run().unwrap();
        assert_eq!(got.load(Ordering::SeqCst), 77);
        assert_eq!(report.end_time, SimTime::ZERO + SimDelta::from_us(3));
    }

    #[test]
    fn mailbox_is_fifo() {
        let mut sim = Simulation::new(0);
        let order = Arc::new(Mutex::new(Vec::new()));
        let order2 = Arc::clone(&order);
        let rx = sim.spawn("rx", move |ctx| {
            for _ in 0..3 {
                let v = *ctx.recv().downcast::<u32>().unwrap();
                order2.lock().push(v);
            }
        });
        sim.spawn("tx", move |ctx| {
            // Same delivery instant: sequence numbers keep FIFO order.
            ctx.deliver(rx, SimDelta::from_ns(5), Box::new(1u32));
            ctx.deliver(rx, SimDelta::from_ns(5), Box::new(2u32));
            ctx.deliver(rx, SimDelta::from_ns(5), Box::new(3u32));
        });
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn deadlock_is_reported() {
        let mut sim = Simulation::new(0);
        sim.spawn("stuck", |ctx| {
            let _ = ctx.recv(); // nobody ever sends
        });
        match sim.run() {
            Err(SimError::Deadlock { blocked, .. }) => {
                assert_eq!(blocked.len(), 1);
                assert_eq!(blocked[0].0, "stuck");
                assert_eq!(blocked[0].1, BlockReason::WaitMessage);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn time_limit_is_enforced() {
        let mut sim = Simulation::new(0);
        sim.set_time_limit(SimTime::ZERO + SimDelta::from_us(1));
        sim.spawn("slow", |ctx| ctx.sleep(SimDelta::from_ms(1)));
        match sim.run() {
            Err(SimError::TimeLimitExceeded { .. }) => {}
            other => panic!("expected time limit error, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "simulated process 'boom' panicked: bang")]
    fn process_panic_propagates() {
        let mut sim = Simulation::new(0);
        sim.spawn("boom", |_ctx| panic!("bang"));
        let _ = sim.run();
    }

    #[test]
    fn dynamic_spawn_runs() {
        let mut sim = Simulation::new(0);
        let hits = Arc::new(AtomicU64::new(0));
        let hits2 = Arc::clone(&hits);
        sim.spawn("parent", move |ctx| {
            ctx.sleep(SimDelta::from_us(2));
            let h = Arc::clone(&hits2);
            ctx.spawn("child", move |cctx| {
                cctx.sleep(SimDelta::from_us(1));
                h.fetch_add(1, Ordering::SeqCst);
            });
        });
        let report = sim.run().unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(report.end_time.as_us_f64(), 3.0);
    }

    #[test]
    fn resource_reservation_serializes_transfers() {
        let mut sim = Simulation::new(0);
        let windows = Arc::new(Mutex::new(Vec::new()));
        let w2 = Arc::clone(&windows);
        sim.spawn("poster", move |ctx| {
            let nic = ctx.create_resource("nic");
            let a = ctx.reserve(nic, SimDelta::from_us(4));
            let b = ctx.reserve(nic, SimDelta::from_us(4));
            w2.lock().push((a, b));
        });
        sim.run().unwrap();
        let (a, b) = windows.lock()[0];
        assert_eq!(a.1, b.0, "second reservation starts when first ends");
    }

    #[test]
    fn yield_now_interleaves_same_instant() {
        let mut sim = Simulation::new(0);
        let log = Arc::new(Mutex::new(Vec::new()));
        let l1 = Arc::clone(&log);
        let l2 = Arc::clone(&log);
        sim.spawn("a", move |ctx| {
            l1.lock().push("a1");
            ctx.yield_now();
            l1.lock().push("a2");
        });
        sim.spawn("b", move |ctx| {
            l2.lock().push("b1");
            ctx.yield_now();
            l2.lock().push("b2");
        });
        sim.run().unwrap();
        assert_eq!(*log.lock(), vec!["a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn trace_records_are_collected() {
        let mut sim = Simulation::new(0);
        sim.enable_trace();
        sim.spawn("p", |ctx| {
            ctx.trace("step.one");
            ctx.sleep(SimDelta::from_us(1));
            ctx.trace("step.two");
        });
        let report = sim.run().unwrap();
        let trace = report.trace.unwrap();
        assert_eq!(trace.records().len(), 2);
        assert_eq!(trace.records()[1].at.as_us_f64(), 1.0);
    }

    #[test]
    fn identical_seeds_identical_traces() {
        fn run_once(seed: u64) -> String {
            let mut sim = Simulation::new(seed);
            sim.enable_trace();
            for i in 0..4 {
                sim.spawn(format!("p{i}"), move |ctx| {
                    let jitter = ctx.gen_range(1000);
                    ctx.sleep(SimDelta::from_ns(jitter));
                    ctx.trace(format!("done.{i}"));
                });
            }
            sim.run().unwrap().trace.unwrap().render()
        }
        assert_eq!(run_once(7), run_once(7));
        assert_ne!(run_once(7), run_once(8));
    }

    #[test]
    fn stats_visible_in_report() {
        let mut sim = Simulation::new(0);
        sim.spawn("p", |ctx| {
            ctx.stat_incr("my.counter", 3);
            ctx.stat_time("my.time", SimDelta::from_us(2));
        });
        let report = sim.run().unwrap();
        assert_eq!(report.stats.counter("my.counter"), 3);
        assert_eq!(report.stats.time("my.time"), SimDelta::from_us(2));
    }

    #[test]
    fn deliver_to_finished_process_is_dropped() {
        let mut sim = Simulation::new(0);
        let rx = sim.spawn("short", |_ctx| {});
        sim.spawn("late", move |ctx| {
            ctx.sleep(SimDelta::from_us(1));
            ctx.deliver(rx, SimDelta::from_us(1), Box::new(1u8));
        });
        let report = sim.run().unwrap();
        assert_eq!(report.stats.counter("simnet.deliver_to_finished"), 1);
    }

    #[test]
    fn emitted_events_reach_the_sink_with_time_and_pid() {
        let mut sim = Simulation::new(0);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        sim.set_event_sink(Arc::new(move |now, pid, ev| {
            if let Some(v) = ev.downcast_ref::<u64>() {
                seen2.lock().push((now, pid, *v));
            }
        }));
        let p = sim.spawn("emitter", |ctx| {
            ctx.emit(&1u64);
            ctx.sleep(SimDelta::from_us(2));
            ctx.emit(&2u64);
            ctx.emit(&"ignored: not a u64");
        });
        sim.run().unwrap();
        let seen = seen.lock();
        assert_eq!(
            *seen,
            vec![
                (SimTime::ZERO, p, 1),
                (SimTime::ZERO + SimDelta::from_us(2), p, 2),
            ]
        );
    }

    #[test]
    fn emit_without_sink_is_a_noop() {
        let mut sim = Simulation::new(0);
        sim.spawn("quiet", |ctx| ctx.emit(&7u32));
        sim.run().unwrap();
    }

    #[test]
    fn many_processes_scale() {
        let mut sim = Simulation::new(0);
        let count = Arc::new(AtomicU64::new(0));
        for i in 0..300 {
            let c = Arc::clone(&count);
            sim.spawn(format!("p{i}"), move |ctx| {
                ctx.sleep(SimDelta::from_ns(i));
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        sim.run().unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 300);
    }
}
