//! A small, fast, deterministic PRNG for the simulator.
//!
//! We deliberately avoid pulling a `rand` dependency into the engine: the
//! simulation must be bit-for-bit reproducible from a seed, and the engine's
//! needs are modest (jitter, workload shuffles). The generator is
//! xoshiro256++ seeded through SplitMix64, a well-studied combination.

/// Deterministic xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. Panics if `bound == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased output.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Derive an independent child generator (for per-process streams).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SimRng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 3] {
            for _ in 0..100 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = SimRng::new(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = SimRng::new(11);
        for _ in 0..1000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(13);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::new(99);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..16).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }
}
