//! Property-based tests of the simulation engine: event causality,
//! determinism under arbitrary process graphs, and resource-model
//! invariants.

use proptest::prelude::*;
use simnet::{SimDelta, SimTime, Simulation};
use std::sync::{Arc, Mutex};

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Messages between two processes are received in timestamp order and
    /// never before they were sent.
    #[test]
    fn deliveries_respect_time_order(delays in prop::collection::vec(1u64..10_000, 1..40)) {
        let mut sim = Simulation::new(0);
        let log: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        let n = delays.len();
        let rx = sim.spawn("rx", move |ctx| {
            for _ in 0..n {
                let sent_at = *ctx.recv().downcast::<u64>().unwrap();
                log2.lock().unwrap().push((ctx.now().as_ps(), sent_at));
            }
        });
        sim.spawn("tx", move |ctx| {
            for d in delays {
                // Send a message carrying its own send time, then advance.
                ctx.deliver(rx, SimDelta::from_ns(d), Box::new(ctx.now().as_ps()));
                ctx.sleep(SimDelta::from_ns(d / 2 + 1));
            }
        });
        sim.run().unwrap();
        let log = log.lock().unwrap();
        let mut last = 0;
        for &(recv_at, sent_at) in log.iter() {
            prop_assert!(recv_at >= sent_at, "received before sent");
            prop_assert!(recv_at >= last, "mailbox receipt went backwards");
            last = recv_at;
        }
    }

    /// Any DAG of sleeps/computes finishes at exactly the max path length,
    /// independent of spawn order.
    #[test]
    fn end_time_is_max_of_process_spans(spans in prop::collection::vec(1u64..100_000, 1..20)) {
        let expected = *spans.iter().max().unwrap();
        let mut sim = Simulation::new(9);
        for (i, s) in spans.into_iter().enumerate() {
            sim.spawn(format!("p{i}"), move |ctx| {
                // Split the span arbitrarily between sleep and compute.
                ctx.sleep(SimDelta::from_ns(s / 3));
                ctx.compute(SimDelta::from_ns(s - s / 3));
            });
        }
        let report = sim.run().unwrap();
        prop_assert_eq!(report.end_time, SimTime::ZERO + SimDelta::from_ns(expected));
    }

    /// The resource model conserves work: any reservation sequence ends no
    /// earlier than total-work-after-first-arrival, and in-order sequences
    /// are exactly FIFO.
    #[test]
    fn resource_conserves_work(reqs in prop::collection::vec((0u64..1_000_000, 1u64..50_000), 1..60)) {
        let mut sim = Simulation::new(7);
        let done = Arc::new(Mutex::new((SimTime::ZERO, SimTime::MAX)));
        let done2 = Arc::clone(&done);
        sim.spawn("driver", move |ctx| {
            let res = ctx.create_resource("r");
            let mut max_end = SimTime::ZERO;
            let mut min_arrive = u64::MAX;
            let total: u64 = reqs.iter().map(|&(_, d)| d).sum();
            for &(at, dur) in &reqs {
                min_arrive = min_arrive.min(at);
                let (start, end) = ctx.reserve_from(
                    res,
                    SimTime::from_ps(at),
                    SimDelta::from_ps(dur),
                );
                // Service windows are sane.
                assert!(start.as_ps() >= at, "service before arrival");
                assert_eq!((end - start).as_ps(), dur, "window shorter than work");
                max_end = max_end.max(end);
            }
            // Work conservation: you cannot finish all work earlier than
            // first-arrival + total work.
            assert!(
                max_end.as_ps() >= min_arrive + total,
                "finished {max_end:?} before arrival {min_arrive} + work {total}"
            );
            *done2.lock().unwrap() = (max_end, SimTime::from_ps(min_arrive));
        });
        sim.run().unwrap();
    }

    /// In-order reservation sequences behave exactly like a busy-until
    /// FIFO queue.
    #[test]
    fn resource_in_order_is_exact_fifo(mut reqs in prop::collection::vec((0u64..1_000_000, 1u64..50_000), 1..60)) {
        reqs.sort_by_key(|&(at, _)| at);
        let mut sim = Simulation::new(7);
        sim.spawn("driver", move |ctx| {
            let res = ctx.create_resource("r");
            let mut model_busy = 0u64;
            for &(at, dur) in &reqs {
                let (start, end) = ctx.reserve_from(
                    res,
                    SimTime::from_ps(at),
                    SimDelta::from_ps(dur),
                );
                let expect_start = at.max(model_busy);
                assert_eq!(start.as_ps(), expect_start, "FIFO start");
                assert_eq!(end.as_ps(), expect_start + dur, "FIFO end");
                model_busy = expect_start + dur;
            }
        });
        sim.run().unwrap();
    }

    /// Same seed, same spawn script → identical traces, for arbitrary
    /// random jitters drawn inside the simulation.
    #[test]
    fn determinism_under_random_jitter(seed in any::<u64>(), n in 1usize..8) {
        fn run(seed: u64, n: usize) -> String {
            let mut sim = Simulation::new(seed);
            sim.enable_trace();
            for i in 0..n {
                sim.spawn(format!("p{i}"), move |ctx| {
                    for round in 0..4 {
                        let jitter = ctx.gen_range(10_000) + 1;
                        ctx.sleep(SimDelta::from_ns(jitter));
                        ctx.trace(format!("p{i}.r{round}"));
                    }
                });
            }
            sim.run().unwrap().trace.unwrap().render()
        }
        prop_assert_eq!(run(seed, n), run(seed, n));
    }
}
