//! Tests of the sharded conservative-lookahead engine.
//!
//! Three families:
//!
//! 1. behavioral parity — a one-shard sharded run reproduces the classic
//!    engine bit-for-bit; errors and panics keep the classic shapes;
//! 2. the lookahead contract — cross-shard deliveries below the link
//!    lookahead are rejected, legal ones arrive exactly on time;
//! 3. determinism properties — random topologies, latency maps and
//!    message schedules produce byte-identical results at every worker
//!    thread count, including under the seeded yield-injection shim
//!    (`set_chaos`) that randomly perturbs OS scheduling.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use simnet::{Pid, Report, SimDelta, SimError, SimTime, Simulation};

/// Per-receiver message log: receiver rank -> [(recv time ps, sender, k)].
/// Each receiver appends only to its own entry, so the contents are
/// deterministic even though receivers run on different worker threads.
type RecvEntries = BTreeMap<u32, Vec<(u64, u32, u32)>>;
type RecvLog = Arc<Mutex<RecvEntries>>;

/// Fixed mesh workload: `n` single-process shards; process `r` sends
/// `rounds` messages (message `k` goes to `(r + k) % n`), then receives
/// exactly `rounds` messages. Returns the report and the receive log.
fn run_mesh(
    n: u32,
    rounds: u32,
    seed: u64,
    threads: usize,
    chaos: Option<u64>,
    extra_ns: &[u64],
) -> (Report, RecvEntries) {
    let mut sim = Simulation::new(seed);
    sim.set_lookahead(SimDelta::from_us(1));
    sim.set_threads(threads);
    if let Some(c) = chaos {
        sim.set_chaos(c);
    }
    let log: RecvLog = Arc::new(Mutex::new(BTreeMap::new()));
    let mut pids: Vec<Pid> = Vec::new();
    // Two passes so every pid exists before any closure needs the list.
    for r in 0..n {
        let pid = sim.spawn_on(r as usize, format!("idle{r}"), |_ctx| {});
        pids.push(pid);
    }
    for r in 0..n {
        let log2 = Arc::clone(&log);
        let targets = pids.clone();
        let extra = extra_ns.to_vec();
        sim.spawn_on(r as usize, format!("rank{r}"), move |ctx| {
            for k in 0..rounds {
                let dest_rank = (r + k) % n;
                // `targets` holds the idle pids; the real receiver is the
                // worker on the same shard, at idle-pid + n.
                let dest = Pid::from_index(targets[dest_rank as usize].index() + n as usize);
                let jitter = extra[((r + k) as usize) % extra.len()];
                let delay = SimDelta::from_us(1) + SimDelta::from_ns(jitter);
                ctx.deliver(dest, delay, Box::new((ctx.now().as_ps(), r, k)));
            }
            for _ in 0..rounds {
                let msg = ctx.recv();
                let (sent_ps, from, k) = *msg.downcast::<(u64, u32, u32)>().unwrap();
                let now = ctx.now().as_ps();
                assert!(
                    now >= sent_ps + SimDelta::from_us(1).as_ps(),
                    "message arrived before the link lookahead elapsed"
                );
                log2.lock()
                    .unwrap()
                    .entry(r)
                    .or_default()
                    .push((now, from, k));
            }
        });
    }
    let report = sim.run().unwrap();
    let log = log.lock().unwrap().clone();
    (report, log)
}

fn counters_without_engine(report: &Report) -> Vec<(String, u64)> {
    report
        .stats
        .counters()
        .filter(|(k, _)| !k.starts_with("simnet.sharded."))
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

#[test]
fn one_shard_sharded_run_matches_the_classic_engine() {
    fn workload(ctx: &simnet::ProcessCtx, i: u64) {
        ctx.trace(format!("start.{i}"));
        let jitter = ctx.gen_range(1000);
        ctx.sleep(SimDelta::from_ns(jitter));
        ctx.compute(SimDelta::from_us(i + 1));
        ctx.stat_incr("w.done", 1);
        ctx.trace(format!("done.{i}"));
    }
    let classic = {
        let mut sim = Simulation::new(7);
        sim.enable_trace();
        for i in 0..4 {
            sim.spawn(format!("p{i}"), move |ctx| workload(&ctx, i));
        }
        sim.run().unwrap()
    };
    let sharded = {
        let mut sim = Simulation::new(7);
        sim.enable_trace();
        for i in 0..4 {
            sim.spawn_on(0, format!("p{i}"), move |ctx| workload(&ctx, i));
        }
        sim.run().unwrap()
    };
    assert_eq!(classic.end_time, sharded.end_time);
    assert_eq!(classic.events, sharded.events);
    assert_eq!(
        classic.trace.as_ref().unwrap().render(),
        sharded.trace.as_ref().unwrap().render(),
        "single-shard sharded trace must be byte-identical to classic"
    );
    assert_eq!(
        counters_without_engine(&classic),
        counters_without_engine(&sharded)
    );
    assert_eq!(sharded.stats.counter("simnet.sharded.shards"), 1);
}

#[test]
fn profiled_run_accounts_every_event_without_perturbing_results() {
    fn mesh(threads: usize, profile: bool) -> Report {
        let mut sim = Simulation::new(13);
        sim.set_lookahead(SimDelta::from_us(1));
        sim.set_threads(threads);
        sim.set_profile(profile);
        for r in 0..4u32 {
            sim.spawn_on(r as usize, format!("rank{r}"), move |ctx| {
                let dest = Pid::from_index(((r + 1) % 4) as usize);
                let jitter = ctx.gen_range(500);
                ctx.deliver(
                    dest,
                    SimDelta::from_us(1) + SimDelta::from_ns(jitter),
                    Box::new(r),
                );
                let msg = ctx.recv();
                assert_eq!(*msg.downcast::<u32>().unwrap(), (r + 3) % 4);
            });
        }
        sim.run().unwrap()
    }

    let plain = mesh(2, false);
    assert!(plain.profile.is_none(), "profiling is off by default");
    let profiled = mesh(2, true);
    // Profiling is observation only: every virtual-time result matches.
    assert_eq!(plain.end_time, profiled.end_time);
    assert_eq!(plain.events, profiled.events);
    assert_eq!(
        counters_without_engine(&plain),
        counters_without_engine(&profiled)
    );
    let ep = profiled.profile.expect("profiled sharded run attaches one");
    assert_eq!(ep.shards.len(), 4, "one ShardStats per shard");
    assert_eq!(
        ep.events_total(),
        profiled.events,
        "per-shard event counts must partition the run's event total"
    );
    assert_eq!(ep.threads, 2);
    assert!(ep.windows > 0);
    assert!(
        ep.shards.iter().all(|s| s.windows == ep.windows),
        "every shard sees every window"
    );
    // The classic (threads=1 via one shard) engine never profiles —
    // only the sharded runtime has windows to attribute. A profiled
    // single-threaded sharded run still reports, with no gate waits.
    let single = mesh(1, true);
    let ep1 = single.profile.expect("single-threaded sharded profile");
    assert_eq!(ep1.barrier_wait_ns_total(), 0, "no gate when inline");
    assert_eq!(ep1.events_total(), single.events);
}

#[test]
fn cross_shard_messages_arrive_exactly_on_time() {
    let mut sim = Simulation::new(0);
    sim.set_lookahead(SimDelta::from_ns(500));
    let rx = sim.spawn_on(1, "rx", |ctx| {
        let msg = ctx.recv();
        let v = *msg.downcast::<u64>().unwrap();
        assert_eq!(v, 99);
        assert_eq!(ctx.now(), SimTime::ZERO + SimDelta::from_ns(750));
    });
    sim.spawn_on(0, "tx", move |ctx| {
        ctx.deliver(rx, SimDelta::from_ns(750), Box::new(99u64));
    });
    let report = sim.run().unwrap();
    assert_eq!(report.end_time, SimTime::ZERO + SimDelta::from_ns(750));
    assert_eq!(report.stats.counter("simnet.sharded.xshard_events"), 1);
}

#[test]
#[should_panic(expected = "below the link lookahead")]
fn cross_shard_delivery_below_lookahead_is_rejected() {
    let mut sim = Simulation::new(0);
    sim.set_lookahead(SimDelta::from_us(1));
    let rx = sim.spawn_on(1, "rx", |ctx| {
        let _ = ctx.recv();
    });
    sim.spawn_on(0, "tx", move |ctx| {
        ctx.deliver(rx, SimDelta::from_ns(10), Box::new(0u8));
    });
    let _ = sim.run();
}

#[test]
fn per_link_lookahead_overrides_allow_tighter_delays() {
    let mut sim = Simulation::new(0);
    sim.set_lookahead(SimDelta::from_us(1));
    sim.set_link_lookahead(0, 1, SimDelta::from_ns(100));
    let rx = sim.spawn_on(1, "rx", |ctx| {
        let _ = ctx.recv();
    });
    sim.spawn_on(0, "tx", move |ctx| {
        ctx.deliver(rx, SimDelta::from_ns(150), Box::new(1u8));
    });
    sim.run().unwrap();
}

#[test]
#[should_panic(expected = "simulated process 'boom' panicked: bang")]
fn sharded_process_panic_keeps_the_classic_message() {
    let mut sim = Simulation::new(0);
    sim.spawn_on(0, "ok", |ctx| ctx.sleep(SimDelta::from_us(1)));
    sim.spawn_on(1, "boom", |_ctx| panic!("bang"));
    let _ = sim.run();
}

#[test]
#[should_panic(expected = "dynamic spawn is not supported")]
fn sharded_dynamic_spawn_is_rejected() {
    let mut sim = Simulation::new(0);
    sim.spawn_on(0, "parent", |ctx| {
        ctx.spawn("child", |_c| {});
    });
    let _ = sim.run();
}

#[test]
fn sharded_deadlock_names_processes_in_pid_order() {
    let mut sim = Simulation::new(0);
    sim.spawn_on(0, "stuck-a", |ctx| {
        let _ = ctx.recv();
    });
    sim.spawn_on(1, "stuck-b", |ctx| {
        let _ = ctx.recv();
    });
    match sim.run() {
        Err(SimError::Deadlock { blocked, .. }) => {
            let names: Vec<&str> = blocked.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(names, vec!["stuck-a", "stuck-b"]);
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn sharded_time_limit_is_enforced() {
    let mut sim = Simulation::new(0);
    sim.set_time_limit(SimTime::ZERO + SimDelta::from_us(3));
    sim.spawn_on(0, "fast", |ctx| ctx.sleep(SimDelta::from_us(1)));
    sim.spawn_on(1, "slow", |ctx| ctx.sleep(SimDelta::from_ms(5)));
    match sim.run() {
        Err(SimError::TimeLimitExceeded { limit }) => {
            assert_eq!(limit, SimTime::ZERO + SimDelta::from_us(3));
        }
        other => panic!("expected time limit error, got {other:?}"),
    }
}

#[test]
fn emits_reach_the_sink_in_canonical_order_at_any_thread_count() {
    fn run(threads: usize) -> Vec<(u64, usize, u64)> {
        let mut sim = Simulation::new(3);
        sim.set_threads(threads);
        sim.set_lookahead(SimDelta::from_us(1));
        let seen: Arc<Mutex<Vec<(u64, usize, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        sim.set_event_sink(Arc::new(move |now, pid, ev| {
            if let Some(v) = ev.downcast_ref::<u64>() {
                seen2.lock().unwrap().push((now.as_ps(), pid.index(), *v));
            }
        }));
        for s in 0..4u64 {
            sim.spawn_on(s as usize, format!("rank{s}"), move |ctx| {
                for round in 0..3u64 {
                    ctx.emit(&(s * 100 + round));
                    ctx.sleep(SimDelta::from_us(2));
                }
            });
        }
        sim.run().unwrap();
        let out = seen.lock().unwrap().clone();
        out
    }
    let one = run(1);
    assert_eq!(one.len(), 12);
    // Canonical order: time-major, then shard.
    let mut sorted = one.clone();
    sorted.sort();
    assert_eq!(one, sorted);
    assert_eq!(one, run(2));
    assert_eq!(one, run(4));
}

#[test]
fn mesh_results_are_identical_at_every_thread_count() {
    let extra = [7u64, 311, 23, 1900, 450];
    let (r1, log1) = run_mesh(5, 4, 42, 1, None, &extra);
    for threads in [2usize, 4, 8] {
        let (rt, logt) = run_mesh(5, 4, 42, threads, Some(0xC0FFEE), &extra);
        assert_eq!(log1, logt, "receive log diverged at {threads} threads");
        assert_eq!(r1.end_time, rt.end_time);
        assert_eq!(r1.events, rt.events);
        assert_eq!(
            counters_without_engine(&r1),
            counters_without_engine(&rt),
            "stats diverged at {threads} threads"
        );
        assert_eq!(
            r1.stats.counter("simnet.sharded.windows"),
            rt.stats.counter("simnet.sharded.windows"),
            "window count must be thread-count independent"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Random topology + latency map + schedule: no message is ever seen
    /// before its send time plus the link lookahead (the source shard's
    /// guaranteed horizon), at any thread count, chaos shim on.
    #[test]
    fn random_topologies_never_deliver_before_the_horizon(
        n in 2u32..6,
        rounds in 1u32..5,
        seed in 0u64..1_000,
        chaos in 0u64..1_000,
        la_ns in prop::collection::vec(500u64..3_000, 36),
        extra in prop::collection::vec(0u64..2_000, 1..8),
    ) {
        // Receiver-side lookahead assertion lives inside the workload
        // (recv asserts now >= sent + 1us default link); here we vary
        // per-link lookaheads and delays above them.
        let mut sim = Simulation::new(seed);
        sim.set_lookahead(SimDelta::from_us(1));
        let mut la = BTreeMap::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let v = la_ns[(i * 6 + j) as usize % la_ns.len()];
                    sim.set_link_lookahead(i as usize, j as usize, SimDelta::from_ns(v));
                    la.insert((i, j), v);
                }
            }
        }
        sim.set_threads(1 + (seed as usize % 4));
        sim.set_chaos(chaos);
        let log: RecvLog = Arc::new(Mutex::new(BTreeMap::new()));
        let mut pids = Vec::new();
        for r in 0..n {
            pids.push(sim.spawn_on(r as usize, format!("idle{r}"), |_ctx| {}));
        }
        for r in 0..n {
            let log2 = Arc::clone(&log);
            let la2 = la.clone();
            let extra2 = extra.clone();
            sim.spawn_on(r as usize, format!("rank{r}"), move |ctx| {
                for k in 0..rounds {
                    let dest_rank = (r + k) % n;
                    let dest = Pid::from_index((dest_rank + n) as usize);
                    let link = la2.get(&(r, dest_rank)).copied().unwrap_or(0);
                    let jitter = extra2[((r + k) as usize) % extra2.len()];
                    let delay = SimDelta::from_ns(link.max(1) + jitter);
                    ctx.deliver(dest, delay, Box::new((ctx.now().as_ps(), r, k)));
                }
                for _ in 0..rounds {
                    let msg = ctx.recv();
                    let (sent_ps, from, k) = *msg.downcast::<(u64, u32, u32)>().unwrap();
                    let now = ctx.now().as_ps();
                    if from != r {
                        let link = la2.get(&(from, r)).copied().unwrap_or(0);
                        // Plain assert: a violation panics the process, the
                        // engine re-raises it, and proptest records a failure.
                        assert!(
                            now >= sent_ps + SimDelta::from_ns(link).as_ps(),
                            "cross-shard message beat the lookahead horizon"
                        );
                    }
                    log2.lock().unwrap().entry(r).or_default().push((now, from, k));
                }
            });
        }
        sim.run().unwrap();
    }

    /// The delivered-event order is a pure function of the seed: chaos
    /// yield-injection and worker count cannot change any observable.
    #[test]
    fn delivered_order_is_independent_of_thread_interleaving(
        n in 2u32..6,
        rounds in 1u32..5,
        seed in 0u64..1_000,
        chaos in 1u64..1_000,
        extra in prop::collection::vec(0u64..2_000, 1..6),
    ) {
        let (r1, log1) = run_mesh(n, rounds, seed, 1, None, &extra);
        let (r2, log2) = run_mesh(n, rounds, seed, n as usize, Some(chaos), &extra);
        let (r3, log3) = run_mesh(n, rounds, seed, 2, Some(chaos.wrapping_mul(31)), &extra);
        prop_assert_eq!(&log1, &log2);
        prop_assert_eq!(&log1, &log3);
        prop_assert_eq!(r1.end_time, r2.end_time);
        prop_assert_eq!(r1.events, r2.events);
        prop_assert_eq!(r1.events, r3.events);
        prop_assert_eq!(counters_without_engine(&r1), counters_without_engine(&r2));
        prop_assert_eq!(counters_without_engine(&r1), counters_without_engine(&r3));
    }
}
