//! `cargo xtask bench-diff` — the benchmark regression gate.
//!
//! Compares two benchmark artifact trees (or two single files) of
//! `*.metrics.json` documents, counter by counter, and fails on
//! regression. The simulation is deterministic, so the default
//! tolerance is **zero**: any drift in a counter is a behaviour change
//! someone must either justify (regenerate the committed baselines) or
//! fix. `--tol PCT` relaxes the gate to percentage drift for use on
//! trees produced at different scales.
//!
//! Regression policy:
//!
//! * A counter present in the old tree but missing from the new one is
//!   a regression (a silently vanished measurement is the worst kind).
//! * A counter whose value drifts beyond the tolerance is a regression.
//! * Counters whose name ends in `interventions` regress on **any**
//!   increase, tolerance notwithstanding — the paper's headline claim
//!   is that warm windows need zero host interventions, and no
//!   tolerance buys that back.
//! * Wall-clock counters (`wall_ms`, `events_per_sec`, `speedup` path
//!   suffixes — the engine self-benchmark numbers — plus everything
//!   under a `profile` section, which is wall-derived overhead data)
//!   are held to their own `--wall-tol` band (default 900%) instead of
//!   the exact gate: host time varies with machine and load, simulated
//!   counters never do.
//! * New-only counters are fine (instrumentation grows).
//! * Files only in the old tree are reported but do not fail the gate
//!   (benches can be retired); files only in the new tree are ignored.

use std::fmt;
use std::fs;
use std::path::Path;

use obs::Json;

/// Gate configuration.
#[derive(Clone, Copy, Debug)]
pub struct DiffOptions {
    /// Allowed relative drift per counter, in percent.
    pub tol_pct: f64,
    /// Allowed relative drift for wall-clock counters (`wall_ms`,
    /// `events_per_sec`, `speedup` suffixes), in percent. Wall numbers
    /// come from the engine self-benchmark and vary with machine and
    /// load, so they get their own generous band while every simulated
    /// counter stays under `tol_pct` (zero by default). Disappearance is
    /// still a regression — a wall counter may drift, not vanish.
    pub wall_tol_pct: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            tol_pct: 0.0,
            wall_tol_pct: 900.0,
        }
    }
}

/// One counter that regressed.
#[derive(Clone, Debug)]
pub struct Regression {
    /// Artifact file (relative name, e.g. `fig11_stencil_time`).
    pub file: String,
    /// Dotted counter path, e.g. `totals.warm_window_interventions`.
    pub counter: String,
    /// Old value (`None` when the counter is new-only — not emitted).
    pub old: Option<f64>,
    /// New value (`None` when the counter disappeared).
    pub new: Option<f64>,
    /// Why this counts as a regression.
    pub why: &'static str,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_v = |v: Option<f64>| match v {
            Some(v) => format!("{v}"),
            None => "<missing>".to_string(),
        };
        write!(
            f,
            "{}: {}: {} -> {} ({})",
            self.file,
            self.counter,
            fmt_v(self.old),
            fmt_v(self.new),
            self.why
        )
    }
}

/// Outcome of one tree comparison.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Artifact files compared.
    pub files: usize,
    /// Counters compared across all files.
    pub counters: usize,
    /// Regressions found (gate fails if non-empty).
    pub regressions: Vec<Regression>,
    /// Non-fatal observations (old-only files, parse notes).
    pub notes: Vec<String>,
}

impl DiffReport {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }

    /// The report as a machine-readable JSON document
    /// (`bluefield-offload/bench-diff/v1`), for `--json` mode. Rendering
    /// is deterministic: members keep insertion order and regressions
    /// keep discovery order.
    pub fn to_json(&self, opts: &DiffOptions) -> Json {
        let opt_num = |v: Option<f64>| match v {
            Some(v) => Json::Num(v),
            None => Json::Null,
        };
        let regressions = self
            .regressions
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("file".into(), Json::Str(r.file.clone())),
                    ("counter".into(), Json::Str(r.counter.clone())),
                    ("old".into(), opt_num(r.old)),
                    ("new".into(), opt_num(r.new)),
                    ("why".into(), Json::Str(r.why.to_string())),
                ])
            })
            .collect();
        let notes = self.notes.iter().map(|n| Json::Str(n.clone())).collect();
        Json::Obj(vec![
            (
                "schema".into(),
                Json::Str("bluefield-offload/bench-diff/v1".into()),
            ),
            ("ok".into(), Json::Bool(self.ok())),
            ("tol_pct".into(), Json::Num(opts.tol_pct)),
            ("wall_tol_pct".into(), Json::Num(opts.wall_tol_pct)),
            ("files".into(), Json::Num(self.files as f64)),
            ("counters".into(), Json::Num(self.counters as f64)),
            ("regressions".into(), Json::Arr(regressions)),
            ("notes".into(), Json::Arr(notes)),
        ])
    }
}

/// Flatten every numeric leaf of a metrics document into dotted paths.
/// The identity fields (`bench`, `schema`) are skipped at top level.
fn flatten(j: &Json, prefix: &str, out: &mut Vec<(String, f64)>) {
    match j {
        Json::Obj(members) => {
            for (k, v) in members {
                if prefix.is_empty() && (k == "bench" || k == "schema") {
                    continue;
                }
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(v, &path, out);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten(v, &format!("{prefix}[{i}]"), out);
            }
        }
        Json::Num(n) => out.push((prefix.to_string(), *n)),
        _ => {}
    }
}

/// Counters where any increase is a regression regardless of tolerance.
fn increase_is_always_bad(counter: &str) -> bool {
    counter.ends_with("interventions")
}

/// Wall-clock counters: host-time measurements from the engine
/// self-benchmark, compared under `wall_tol_pct` instead of `tol_pct`.
/// Matched by the last path segment so per-thread variants
/// (`engine.t4_wall_ms`, `engine.t4_speedup`) land in the band too.
/// Everything under a `profile` section (the `BENCH_PROFILE=1` ext
/// section: overhead ratios, profiled wall times) is wall-derived by
/// construction and lands in the band wholesale.
fn is_wall_counter(counter: &str) -> bool {
    if counter.split('.').any(|seg| seg == "profile") {
        return true;
    }
    let last = counter.rsplit('.').next().unwrap_or(counter);
    last.ends_with("wall_ms") || last.ends_with("events_per_sec") || last.ends_with("speedup")
}

/// Diff two parsed documents under `file`, appending to `report`.
pub fn diff_docs(file: &str, old: &Json, new: &Json, opts: &DiffOptions, report: &mut DiffReport) {
    let mut old_counters = Vec::new();
    let mut new_counters = Vec::new();
    flatten(old, "", &mut old_counters);
    flatten(new, "", &mut new_counters);
    let new_map: std::collections::BTreeMap<&str, f64> =
        new_counters.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    for (counter, old_v) in &old_counters {
        report.counters += 1;
        let Some(&new_v) = new_map.get(counter.as_str()) else {
            report.regressions.push(Regression {
                file: file.to_string(),
                counter: counter.clone(),
                old: Some(*old_v),
                new: None,
                why: "counter disappeared",
            });
            continue;
        };
        let drift_pct = if *old_v == 0.0 {
            if new_v == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            ((new_v - old_v) / old_v).abs() * 100.0
        };
        let (tol, why) = if is_wall_counter(counter) {
            (
                opts.tol_pct.max(opts.wall_tol_pct),
                "drift beyond wall-clock tolerance",
            )
        } else {
            (opts.tol_pct, "drift beyond tolerance")
        };
        if increase_is_always_bad(counter) && new_v > *old_v {
            report.regressions.push(Regression {
                file: file.to_string(),
                counter: counter.clone(),
                old: Some(*old_v),
                new: Some(new_v),
                why: "interventions may never increase",
            });
        } else if drift_pct > tol {
            report.regressions.push(Regression {
                file: file.to_string(),
                counter: counter.clone(),
                old: Some(*old_v),
                new: Some(new_v),
                why,
            });
        }
    }
}

fn read_doc(path: &Path) -> Result<Json, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("{}: unreadable: {e}", path.display()))?;
    obs::parse(&text).map_err(|e| format!("{}: malformed JSON: {e}", path.display()))
}

fn metrics_files(dir: &Path) -> Result<Vec<String>, String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("{}: unreadable dir: {e}", dir.display()))?;
    let mut names: Vec<String> = entries
        .flatten()
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".metrics.json"))
        .collect();
    names.sort();
    Ok(names)
}

/// Compare two artifact trees (directories of `*.metrics.json`) or two
/// single files.
pub fn diff_trees(old: &Path, new: &Path, opts: &DiffOptions) -> Result<DiffReport, String> {
    let mut report = DiffReport::default();
    if old.is_file() && new.is_file() {
        let name = old
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("old")
            .to_string();
        report.files = 1;
        diff_docs(&name, &read_doc(old)?, &read_doc(new)?, opts, &mut report);
        return Ok(report);
    }
    if !old.is_dir() || !new.is_dir() {
        return Err(format!(
            "bench-diff expects two directories or two files, got {} and {}",
            old.display(),
            new.display()
        ));
    }
    let old_names = metrics_files(old)?;
    let new_names = metrics_files(new)?;
    for name in &old_names {
        if !new_names.contains(name) {
            report
                .notes
                .push(format!("{name}: only in {} (skipped)", old.display()));
            continue;
        }
        report.files += 1;
        diff_docs(
            name,
            &read_doc(&old.join(name))?,
            &read_doc(&new.join(name))?,
            opts,
            &mut report,
        );
    }
    if report.files == 0 {
        return Err(format!(
            "no common *.metrics.json between {} and {}",
            old.display(),
            new.display()
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(src: &str) -> Json {
        obs::parse(src).expect("fixture parses")
    }

    const BASE: &str = r#"{
        "schema": "bluefield-offload/metrics/v1",
        "bench": "fixture",
        "totals": {"events": 100, "fin_send": 4, "warm_window_interventions": 0},
        "ranks": [{"rank": 0, "wakeups": 7}]
    }"#;

    #[test]
    fn self_compare_is_clean() {
        let mut r = DiffReport::default();
        diff_docs("f", &doc(BASE), &doc(BASE), &DiffOptions::default(), &mut r);
        assert!(r.ok(), "{:?}", r.regressions);
        assert_eq!(r.counters, 5);
    }

    #[test]
    fn drift_beyond_tolerance_regresses() {
        let new = BASE.replace("\"events\": 100", "\"events\": 103");
        let mut r = DiffReport::default();
        diff_docs("f", &doc(BASE), &doc(&new), &DiffOptions::default(), &mut r);
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].counter, "totals.events");
        // The same drift passes under a 5% tolerance.
        let mut r = DiffReport::default();
        diff_docs(
            "f",
            &doc(BASE),
            &doc(&new),
            &DiffOptions {
                tol_pct: 5.0,
                ..Default::default()
            },
            &mut r,
        );
        assert!(r.ok(), "{:?}", r.regressions);
    }

    const WALL_BASE: &str = r#"{
        "schema": "bluefield-offload/metrics/v1",
        "bench": "fixture",
        "totals": {"events": 100},
        "engine": {"events": 4032, "wall_ms": 20.0, "events_per_sec": 201600.0, "t4_speedup": 1.5}
    }"#;

    #[test]
    fn wall_counters_get_their_own_band() {
        // 5x slower wall: inside the default 900% band, no regression —
        // while the exact counters still hold at zero tolerance.
        let new = WALL_BASE
            .replace("\"wall_ms\": 20.0", "\"wall_ms\": 100.0")
            .replace(
                "\"events_per_sec\": 201600.0",
                "\"events_per_sec\": 40320.0",
            )
            .replace("\"t4_speedup\": 1.5", "\"t4_speedup\": 0.4");
        let mut r = DiffReport::default();
        diff_docs(
            "f",
            &doc(WALL_BASE),
            &doc(&new),
            &DiffOptions::default(),
            &mut r,
        );
        assert!(r.ok(), "{:?}", r.regressions);
        // 20x slower wall: beyond the band.
        let new = WALL_BASE.replace("\"wall_ms\": 20.0", "\"wall_ms\": 400.0");
        let mut r = DiffReport::default();
        diff_docs(
            "f",
            &doc(WALL_BASE),
            &doc(&new),
            &DiffOptions::default(),
            &mut r,
        );
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].why, "drift beyond wall-clock tolerance");
        // The band never loosens a simulated counter.
        let new = WALL_BASE.replace("\"events\": 4032", "\"events\": 4033");
        let mut r = DiffReport::default();
        diff_docs(
            "f",
            &doc(WALL_BASE),
            &doc(&new),
            &DiffOptions::default(),
            &mut r,
        );
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].counter, "engine.events");
        // A vanished wall counter is still a regression.
        let new = WALL_BASE.replace("\"wall_ms\": 20.0, ", "");
        let mut r = DiffReport::default();
        diff_docs(
            "f",
            &doc(WALL_BASE),
            &doc(&new),
            &DiffOptions::default(),
            &mut r,
        );
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].why, "counter disappeared");
    }

    const PROFILE_BASE: &str = r#"{
        "schema": "bluefield-offload/metrics/v1",
        "bench": "fixture",
        "totals": {"events": 100},
        "profile": {"snapshots": 2, "scopes": 11, "overhead_pct": 0.4}
    }"#;

    #[test]
    fn profile_section_lands_in_the_wall_band() {
        // A profiling-overhead swing inside the wall band passes at
        // zero exact tolerance...
        let new = PROFILE_BASE.replace("\"overhead_pct\": 0.4", "\"overhead_pct\": 3.1");
        let mut r = DiffReport::default();
        diff_docs(
            "f",
            &doc(PROFILE_BASE),
            &doc(&new),
            &DiffOptions::default(),
            &mut r,
        );
        assert!(r.ok(), "{:?}", r.regressions);
        // ...a swing beyond it fails with the wall-band reason...
        let new = PROFILE_BASE.replace("\"overhead_pct\": 0.4", "\"overhead_pct\": 40.4");
        let mut r = DiffReport::default();
        diff_docs(
            "f",
            &doc(PROFILE_BASE),
            &doc(&new),
            &DiffOptions::default(),
            &mut r,
        );
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].why, "drift beyond wall-clock tolerance");
        // ...and a vanished profile counter is still a regression.
        let new = PROFILE_BASE.replace("\"snapshots\": 2, ", "");
        let mut r = DiffReport::default();
        diff_docs(
            "f",
            &doc(PROFILE_BASE),
            &doc(&new),
            &DiffOptions::default(),
            &mut r,
        );
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].why, "counter disappeared");
    }

    #[test]
    fn interventions_increase_ignores_tolerance() {
        let new = BASE.replace(
            "\"warm_window_interventions\": 0",
            "\"warm_window_interventions\": 1",
        );
        let mut r = DiffReport::default();
        diff_docs(
            "f",
            &doc(BASE),
            &doc(&new),
            &DiffOptions {
                tol_pct: 1000.0,
                ..Default::default()
            },
            &mut r,
        );
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].why, "interventions may never increase");
        // A *decrease* is an improvement, not a regression (here: from a
        // baseline where the counter was 1).
        let old = BASE.replace(
            "\"warm_window_interventions\": 0",
            "\"warm_window_interventions\": 1",
        );
        let mut r = DiffReport::default();
        diff_docs(
            "f",
            &doc(&old),
            &doc(BASE),
            &DiffOptions {
                tol_pct: 1000.0,
                ..Default::default()
            },
            &mut r,
        );
        assert!(r.ok(), "{:?}", r.regressions);
    }

    #[test]
    fn missing_counter_regresses_and_new_counter_is_fine() {
        let new = BASE.replace("\"fin_send\": 4, ", "");
        let mut r = DiffReport::default();
        diff_docs(
            "f",
            &doc(BASE),
            &doc(&new),
            &DiffOptions {
                tol_pct: 1000.0,
                ..Default::default()
            },
            &mut r,
        );
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].why, "counter disappeared");
        // Extra counters in the new tree don't fail the gate.
        let wider = BASE.replace("\"fin_send\": 4", "\"fin_send\": 4, \"fin_extra\": 9");
        let mut r = DiffReport::default();
        diff_docs(
            "f",
            &doc(BASE),
            &doc(&wider),
            &DiffOptions::default(),
            &mut r,
        );
        assert!(r.ok(), "{:?}", r.regressions);
    }

    #[test]
    fn tenant_sections_are_additions_not_disappearances() {
        // Committed baselines predate per-tenant attribution: a new doc
        // that grows a `tenants` section and the per-tenant totals
        // (`quota_sheds`, `drr_grants`) must pass the zero-tolerance
        // gate against them — new-only counters are instrumentation
        // growth, not drift.
        let widened = BASE.replace(
            "\"ranks\": [{\"rank\": 0, \"wakeups\": 7}]",
            "\"ranks\": [{\"rank\": 0, \"wakeups\": 7}], \
             \"tenants\": [{\"tenant\": 0, \"credit_deferrals\": 0, \"quota_sheds\": 0}, \
                           {\"tenant\": 1, \"credit_deferrals\": 9, \"quota_sheds\": 1}]",
        );
        let mut r = DiffReport::default();
        diff_docs(
            "f",
            &doc(BASE),
            &doc(&widened),
            &DiffOptions::default(),
            &mut r,
        );
        assert!(
            r.ok(),
            "tenant section must be an addition: {:?}",
            r.regressions
        );
        // The reverse — a tenants section the old tree had and the new
        // one lost — is exactly the vanished-measurement case the gate
        // exists for.
        let mut r = DiffReport::default();
        diff_docs(
            "f",
            &doc(&widened),
            &doc(BASE),
            &DiffOptions::default(),
            &mut r,
        );
        assert!(!r.ok(), "a vanished tenants section must regress");
        assert!(r
            .regressions
            .iter()
            .all(|reg| reg.why == "counter disappeared" && reg.counter.starts_with("tenants[")));
    }

    #[test]
    fn health_sections_are_additions_not_disappearances() {
        // Committed baselines predate the fabric health engine (and the
        // engine defaults to disabled, so clean regenerations never emit
        // a `health` section at all). A new doc that grows one — e.g. a
        // fault-injected bench run with breakers armed — must pass the
        // zero-tolerance gate against a baseline without it.
        let widened = BASE.replace(
            "\"ranks\": [{\"rank\": 0, \"wakeups\": 7}]",
            "\"ranks\": [{\"rank\": 0, \"wakeups\": 7}], \
             \"health\": {\"breaker_trips\": 2, \"breaker_half_opens\": 2, \
                          \"breaker_closes\": 2, \"breaker_probes\": 2, \
                          \"breaker_fastpaths\": 11, \"retry_budget_sheds\": 0}",
        );
        let mut r = DiffReport::default();
        diff_docs(
            "f",
            &doc(BASE),
            &doc(&widened),
            &DiffOptions::default(),
            &mut r,
        );
        assert!(
            r.ok(),
            "health section must be an addition: {:?}",
            r.regressions
        );
        // A health section the old tree had and the new one lost is a
        // vanished measurement — the breakers silently stopped being
        // observed, which is the regression the gate exists to catch.
        let mut r = DiffReport::default();
        diff_docs(
            "f",
            &doc(&widened),
            &doc(BASE),
            &DiffOptions::default(),
            &mut r,
        );
        assert!(!r.ok(), "a vanished health section must regress");
        assert!(r
            .regressions
            .iter()
            .all(|reg| reg.why == "counter disappeared" && reg.counter.starts_with("health.")));
    }

    #[test]
    fn json_report_round_trips_and_carries_regressions() {
        let new = BASE
            .replace("\"events\": 100", "\"events\": 103")
            .replace("\"fin_send\": 4, ", "");
        let mut r = DiffReport::default();
        diff_docs("f", &doc(BASE), &doc(&new), &DiffOptions::default(), &mut r);
        assert_eq!(r.regressions.len(), 2);

        let rendered = r
            .to_json(&DiffOptions {
                tol_pct: 0.0,
                ..Default::default()
            })
            .render();
        let parsed = obs::parse(&rendered).expect("report JSON parses back");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("bluefield-offload/bench-diff/v1")
        );
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(parsed.get("counters").and_then(Json::as_u64), Some(5));
        let regs = parsed
            .get("regressions")
            .and_then(Json::as_arr)
            .expect("regressions array");
        assert_eq!(regs.len(), 2);
        // The vanished counter serializes its missing side as null.
        let gone = regs
            .iter()
            .find(|r| r.get("why").and_then(Json::as_str) == Some("counter disappeared"))
            .expect("disappearance regression present");
        assert_eq!(gone.get("new"), Some(&Json::Null));
        assert_eq!(gone.get("old").and_then(Json::as_u64), Some(4));

        // A clean self-compare reports ok with an empty regression list.
        let mut clean = DiffReport::default();
        diff_docs(
            "f",
            &doc(BASE),
            &doc(BASE),
            &DiffOptions::default(),
            &mut clean,
        );
        let parsed = obs::parse(
            &clean
                .to_json(&DiffOptions {
                    tol_pct: 2.5,
                    ..Default::default()
                })
                .render(),
        )
        .unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(parsed.get("tol_pct").and_then(Json::as_num), Some(2.5));
        assert_eq!(
            parsed
                .get("regressions")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(0)
        );
    }

    #[test]
    fn tree_diff_over_real_dirs() {
        let scratch = std::env::temp_dir().join(format!("bench-diff-test-{}", std::process::id()));
        let old_dir = scratch.join("old");
        let new_dir = scratch.join("new");
        fs::create_dir_all(&old_dir).expect("mkdir old");
        fs::create_dir_all(&new_dir).expect("mkdir new");
        fs::write(old_dir.join("a.metrics.json"), BASE).expect("write");
        fs::write(new_dir.join("a.metrics.json"), BASE).expect("write");
        fs::write(old_dir.join("retired.metrics.json"), BASE).expect("write");
        fs::write(old_dir.join("ignored.txt"), "not metrics").expect("write");

        let r = diff_trees(&old_dir, &new_dir, &DiffOptions::default()).expect("diff runs");
        assert!(r.ok(), "{:?}", r.regressions);
        assert_eq!(r.files, 1);
        assert_eq!(r.notes.len(), 1, "old-only file is noted: {:?}", r.notes);

        let mutated = BASE.replace("\"fin_send\": 4", "\"fin_send\": 5");
        fs::write(new_dir.join("a.metrics.json"), mutated).expect("write");
        let r = diff_trees(&old_dir, &new_dir, &DiffOptions::default()).expect("diff runs");
        assert!(!r.ok(), "mutated tree must regress");

        fs::remove_dir_all(&scratch).expect("cleanup");
    }
}
