//! Workspace automation, run as `cargo xtask <cmd>` (see
//! `.cargo/config.toml` for the alias) and from `ci.sh`:
//!
//! * `lint` — the determinism lint wall (`hash-iteration-order`,
//!   `wall-clock`, `decode-unwrap`), running on the [`analyzer`]
//!   crate's comment/string-aware token engine. See
//!   [`analyzer::rules::lint`] for the rules and their rationale.
//! * `analyze` — the cross-layer drift and parallel-readiness gates
//!   ([`analyzer::rules::drift`], [`analyzer::rules::parallel`]).
//!   Writes a `bluefield-offload/analyzer/v1` report to
//!   `target/analyze/report.json`; `--json` prints it to stdout;
//!   `--update-baseline` refreshes the committed panic-path baseline.
//! * `validate-metrics` — schema check for benchmark metrics artifacts.
//! * `bench-diff` — the benchmark regression gate (see [`bench_diff`]).
//!
//! Escapes for both lint and analyze: a `lint:allow(<rule>)` or
//! `analyzer:allow(<rule>)` comment on the offending line.

mod bench_diff;

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use analyzer::{Config, Tree};

/// Committed panic-path allowlist (see [`analyzer::baseline`]).
const BASELINE_PATH: &str = "crates/analyzer/panic-baseline.tsv";
/// Where `analyze` writes its machine-readable report.
const REPORT_PATH: &str = "target/analyze/report.json";

fn repo_root() -> PathBuf {
    // crates/xtask/ -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the repo root")
        .to_path_buf()
}

/// Load every crate source in the workspace into an analyzer [`Tree`].
fn load_tree(repo: &Path) -> Result<Tree, String> {
    Tree::load(repo, &["crates"]).map_err(|e| format!("loading workspace sources: {e}"))
}

/// `cargo xtask lint`: the determinism wall. Prints findings as
/// `file:line: [rule] text`; nonzero exit on any finding.
fn cmd_lint() -> ExitCode {
    let tree = match load_tree(&repo_root()) {
        Ok(t) => t,
        Err(e) => {
            println!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = analyzer::lint(&tree);
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!(
            "xtask lint: clean ({} rules, {} files)",
            analyzer::rules::lint::WHY.len(),
            tree.len()
        );
        ExitCode::SUCCESS
    } else {
        for (rule, why) in analyzer::rules::lint::WHY {
            if findings.iter().any(|f| f.rule == *rule) {
                println!("note: [{rule}] {why}");
            }
        }
        println!("xtask lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// `cargo xtask analyze [--json] [--update-baseline]`: drift +
/// parallel-readiness gates.
fn cmd_analyze(args: &[String]) -> ExitCode {
    let json = args.iter().any(|a| a == "--json");
    let update = args.iter().any(|a| a == "--update-baseline");
    let repo = repo_root();
    let tree = match load_tree(&repo) {
        Ok(t) => t,
        Err(e) => {
            println!("xtask analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let cfg = Config::repo();
    let baseline_path = repo.join(BASELINE_PATH);
    if update {
        let text = analyzer::render_baseline(&tree, &cfg);
        let entries = text.lines().filter(|l| !l.starts_with('#')).count();
        if let Err(e) = fs::write(&baseline_path, &text) {
            println!("xtask analyze: writing {BASELINE_PATH}: {e}");
            return ExitCode::from(2);
        }
        println!("xtask analyze: baseline refreshed ({entries} entries) -> {BASELINE_PATH}");
        return ExitCode::SUCCESS;
    }
    let baseline = fs::read_to_string(&baseline_path).unwrap_or_default();
    let analysis = analyzer::analyze(&tree, &cfg, &baseline);
    let doc = analyzer::report::render(&analysis);
    let report_path = repo.join(REPORT_PATH);
    if let Some(dir) = report_path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    if let Err(e) = fs::write(&report_path, &doc) {
        println!("xtask analyze: writing {REPORT_PATH}: {e}");
        return ExitCode::from(2);
    }
    if json {
        // Machine-readable mode: the report document on stdout, nothing
        // else. The exit code still carries the gate verdict.
        print!("{doc}");
        return if analysis.clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    for f in &analysis.findings {
        println!("{f}");
    }
    for s in &analysis.stale_baseline {
        println!(
            "note: stale baseline entry (debt paid down — refresh with --update-baseline): {s}"
        );
    }
    if analysis.clean() {
        println!(
            "xtask analyze: clean ({} files, {} rules, {} baselined panic site(s)) -> {REPORT_PATH}",
            analysis.files_scanned,
            analyzer::report::RULES.len(),
            analysis.baselined
        );
        ExitCode::SUCCESS
    } else {
        println!("xtask analyze: {} finding(s)", analysis.findings.len());
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("validate-metrics") if args.len() > 1 => {
            let mut bad = 0usize;
            for path in &args[1..] {
                let doc = match fs::read_to_string(path) {
                    Ok(doc) => doc,
                    Err(e) => {
                        println!("{path}: unreadable: {e}");
                        bad += 1;
                        continue;
                    }
                };
                match obs::validate_metrics(&doc) {
                    Ok(_) => println!("{path}: ok"),
                    Err(e) => {
                        println!("{path}: INVALID: {e}");
                        bad += 1;
                    }
                }
            }
            if bad == 0 {
                println!("xtask validate-metrics: {} file(s) ok", args.len() - 1);
                ExitCode::SUCCESS
            } else {
                println!("xtask validate-metrics: {bad} invalid file(s)");
                ExitCode::FAILURE
            }
        }
        Some("bench-diff") => {
            let mut opts = bench_diff::DiffOptions::default();
            let mut json = false;
            let mut paths: Vec<&String> = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                if a == "--tol" {
                    match it.next().and_then(|v| v.parse().ok()) {
                        Some(v) => opts.tol_pct = v,
                        None => {
                            println!("bench-diff: --tol expects a percentage");
                            return ExitCode::from(2);
                        }
                    }
                } else if a == "--wall-tol" {
                    match it.next().and_then(|v| v.parse().ok()) {
                        Some(v) => opts.wall_tol_pct = v,
                        None => {
                            println!("bench-diff: --wall-tol expects a percentage");
                            return ExitCode::from(2);
                        }
                    }
                } else if a == "--json" {
                    json = true;
                } else {
                    paths.push(a);
                }
            }
            let [old, new] = paths[..] else {
                println!(
                    "usage: cargo xtask bench-diff <old> <new> [--tol PCT] [--wall-tol PCT] [--json]"
                );
                return ExitCode::from(2);
            };
            match bench_diff::diff_trees(Path::new(old), Path::new(new), &opts) {
                Ok(report) => {
                    if json {
                        // Machine-readable mode: the whole report as one
                        // JSON document on stdout, nothing else. The exit
                        // code still carries the gate verdict.
                        println!("{}", report.to_json(&opts).render());
                        return if report.ok() {
                            ExitCode::SUCCESS
                        } else {
                            ExitCode::FAILURE
                        };
                    }
                    for note in &report.notes {
                        println!("note: {note}");
                    }
                    for r in &report.regressions {
                        println!("REGRESSION: {r}");
                    }
                    if report.ok() {
                        println!(
                            "xtask bench-diff: ok ({} file(s), {} counter(s), tol {}%, wall tol {}%)",
                            report.files, report.counters, opts.tol_pct, opts.wall_tol_pct
                        );
                        ExitCode::SUCCESS
                    } else {
                        println!(
                            "xtask bench-diff: {} regression(s) across {} file(s)",
                            report.regressions.len(),
                            report.files
                        );
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    println!("bench-diff: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => {
            println!(
                "usage: cargo xtask lint | analyze [--json] [--update-baseline] | \
                 validate-metrics <file.json>... | bench-diff <old> <new> [--tol PCT] \
                 [--wall-tol PCT] [--json]"
            );
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lint `src` as if it lived on a patrolled root.
    fn lint_str(src: &str) -> Vec<&'static str> {
        let mut tree = Tree::new();
        tree.insert("crates/core/src/fixture_under_test.rs", src);
        analyzer::lint(&tree).into_iter().map(|f| f.rule).collect()
    }

    fn fixture(name: &str) -> String {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(name);
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
    }

    #[test]
    fn fixture_hash_iteration_fails() {
        assert!(lint_str(&fixture("hash_iteration.rs")).contains(&"hash-iteration-order"));
    }

    #[test]
    fn fixture_wall_clock_fails() {
        assert!(lint_str(&fixture("wall_clock.rs")).contains(&"wall-clock"));
    }

    #[test]
    fn fixture_decode_unwrap_fails() {
        assert!(lint_str(&fixture("decode_unwrap.rs")).contains(&"decode-unwrap"));
    }

    /// Regression: the old line scanner truncated code at a `//` inside
    /// a string literal, hiding the rest of the line from the rules —
    /// and, conversely, matched banned names inside string literals.
    #[test]
    fn fixture_string_comment_scanning() {
        let mut tree = Tree::new();
        let src = fixture("string_comment.rs");
        tree.insert("crates/core/src/fixture_under_test.rs", &src);
        let findings = analyzer::lint(&tree);
        let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
        // `use` line, signature line, and the line whose HashMap::new()
        // sits *after* a "http://…" string literal.
        let after_string_line = src
            .lines()
            .position(|l| l.contains("http://"))
            .map(|i| i as u32 + 1)
            .expect("fixture has the url line");
        assert!(
            lines.contains(&after_string_line),
            "HashMap after a // inside a string must fire (got lines {lines:?})"
        );
        // The line whose only "HashMap" lives inside a string must not.
        let string_only_line = src
            .lines()
            .position(|l| l.contains("walks into a bar"))
            .map(|i| i as u32 + 1)
            .expect("fixture has the string-only line");
        assert!(
            !lines.contains(&string_only_line),
            "HashMap inside a string literal must not fire"
        );
    }

    /// Regression: the old line scanner stopped at a column-0
    /// `#[cfg(test)]`, exempting all live code after the test module.
    #[test]
    fn fixture_inline_cfg_test_scanning() {
        let mut tree = Tree::new();
        let src = fixture("inline_cfg_test.rs");
        tree.insert("crates/core/src/fixture_under_test.rs", &src);
        let findings = analyzer::lint(&tree);
        let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
        let live_use_line = src
            .lines()
            .position(|l| l.contains("must fire"))
            .map(|i| i as u32 + 1)
            .expect("fixture has the live use line");
        assert!(
            lines.contains(&live_use_line),
            "live code after an inline test module must fire (got lines {lines:?})"
        );
        // Nothing inside the test module itself fires.
        let module_hash_line = src
            .lines()
            .position(|l| l.contains("test code: exempt"))
            .map(|i| i as u32 + 1)
            .expect("fixture has the exempt line");
        assert!(!lines.contains(&module_hash_line));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn comments_are_exempt() {
        assert!(
            lint_str("/// Instant the process finished.\nfn f() {} // a HashMap tale\n").is_empty()
        );
    }

    #[test]
    fn allow_escape_works() {
        let src = "use std::collections::HashMap; // lint:allow(hash-iteration-order)\n";
        assert!(lint_str(src).is_empty());
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lint_str(src), vec!["hash-iteration-order"]);
    }

    #[test]
    fn token_matching_is_word_bounded() {
        assert!(lint_str("struct InstantaneousRate;\n").is_empty());
        assert_eq!(lint_str("let t = Instant::now();\n"), vec!["wall-clock"]);
    }

    #[test]
    fn workspace_is_clean() {
        let tree = load_tree(&repo_root()).expect("workspace sources load");
        let findings = analyzer::lint(&tree);
        let report: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
        assert!(
            findings.is_empty(),
            "lint wall breached:\n{}",
            report.join("\n")
        );
    }

    #[test]
    fn workspace_analyze_is_clean() {
        let repo = repo_root();
        let tree = load_tree(&repo).expect("workspace sources load");
        let baseline = fs::read_to_string(repo.join(BASELINE_PATH)).unwrap_or_default();
        let analysis = analyzer::analyze(&tree, &Config::repo(), &baseline);
        let report: Vec<String> = analysis.findings.iter().map(|f| f.to_string()).collect();
        assert!(
            analysis.clean(),
            "analyzer gate breached:\n{}",
            report.join("\n")
        );
        assert!(
            analysis.stale_baseline.is_empty(),
            "stale panic-path baseline entries:\n{}",
            analysis.stale_baseline.join("\n")
        );
    }
}
