//! Workspace automation: `lint`, a custom lint wall for the
//! simulator/protocol code, `validate-metrics`, a schema check for
//! benchmark metrics artifacts, and `bench-diff`, the benchmark
//! regression gate (see [`bench_diff`]). All run as `cargo xtask <cmd>`
//! (see `.cargo/config.toml` for the alias) and from `ci.sh`.
//!
//! The rules target bug classes clippy cannot see because they are
//! properties of *this* codebase's design, not of Rust:
//!
//! * `hash-iteration-order` — `HashMap`/`HashSet` are banned from the
//!   message-matching paths (`crates/core`, `crates/rdma`). Their
//!   iteration order is randomized per process, so any matching or
//!   scheduling decision that walks one diverges between reruns and
//!   breaks the simulator's determinism guarantee. Use `BTreeMap`,
//!   `BTreeSet` or `VecDeque`.
//! * `wall-clock` — `std::time` / `Instant` / `SystemTime` are banned
//!   from simnet-driven crates. Simulated code must read virtual time
//!   from its `ProcessCtx`; wall-clock reads smuggle host timing into
//!   deterministic runs.
//! * `decode-unwrap` — `unwrap()`/`expect()` on `downcast` results is
//!   banned in `crates/core`/`crates/rdma`. Cross-rank message decode
//!   must tolerate unexpected payloads (count a stat, drop the packet)
//!   instead of taking the whole simulated rank down.
//!
//! Escapes: test code below a column-0 `#[cfg(test)]` is ignored, and a
//! line carrying a `lint:allow(<rule>)` comment is exempt from that rule.

mod bench_diff;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One lint rule: a name, the path prefixes (relative to the repo root)
/// it patrols, and a predicate over comment-stripped code lines.
struct Rule {
    name: &'static str,
    roots: &'static [&'static str],
    hit: fn(&str) -> bool,
    why: &'static str,
}

/// `true` if `line` contains `token` delimited by non-identifier chars,
/// so `Instant` matches but `InstantaneousRate` does not.
fn has_token(line: &str, token: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(token) {
        let at = start + pos;
        let before_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + token.len();
        let after_ok = !line[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = after;
    }
    false
}

const RULES: &[Rule] = &[
    Rule {
        name: "hash-iteration-order",
        roots: &["crates/core/src", "crates/rdma/src"],
        hit: |l| has_token(l, "HashMap") || has_token(l, "HashSet"),
        why: "randomized iteration order breaks deterministic matching; \
              use BTreeMap/BTreeSet/VecDeque",
    },
    Rule {
        name: "wall-clock",
        roots: &[
            "crates/simnet/src",
            "crates/core/src",
            "crates/rdma/src",
            "crates/workloads/src",
            "crates/checker/src",
        ],
        hit: |l| l.contains("std::time") || has_token(l, "Instant") || has_token(l, "SystemTime"),
        why: "simulated code must use virtual time (SimTime/SimDelta), \
              never the host clock",
    },
    Rule {
        name: "decode-unwrap",
        roots: &["crates/core/src", "crates/rdma/src"],
        hit: |l| l.contains("downcast") && (l.contains(".unwrap(") || l.contains(".expect(")),
        why: "cross-rank message decode must not panic on unexpected \
              payloads; drop and count a stat instead",
    },
];

/// One lint hit.
struct Finding {
    rule: &'static str,
    path: PathBuf,
    line: usize,
    text: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.text.trim()
        )
    }
}

/// The code part of a source line: empty for pure comment lines,
/// truncated at an inline `//`. (A `//` inside a string literal also
/// truncates — acceptable for a lint; use `lint:allow` if it ever
/// misfires the other way.)
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Scan one file's contents against `rules`. Stops at a column-0
/// `#[cfg(test)]`; honors per-line `lint:allow(rule)` escapes.
fn scan_source(path: &Path, src: &str, rules: &[Rule], out: &mut Vec<Finding>) {
    for (idx, line) in src.lines().enumerate() {
        if line.starts_with("#[cfg(test)]") {
            break;
        }
        let code = code_part(line);
        if code.trim().is_empty() {
            continue;
        }
        for rule in rules {
            if line.contains(&format!("lint:allow({})", rule.name)) {
                continue;
            }
            if (rule.hit)(code) {
                out.push(Finding {
                    rule: rule.name,
                    path: path.to_path_buf(),
                    line: idx + 1,
                    text: line.to_string(),
                });
            }
        }
    }
}

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Run every rule over its roots under `repo`, returning all findings.
fn lint_tree(repo: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rule in RULES {
        for root in rule.roots {
            let mut files = Vec::new();
            rs_files(&repo.join(root), &mut files);
            for file in files {
                let Ok(src) = fs::read_to_string(&file) else {
                    continue;
                };
                let rel = file.strip_prefix(repo).unwrap_or(&file);
                scan_source(rel, &src, std::slice::from_ref(rule), &mut findings);
            }
        }
    }
    findings
}

fn repo_root() -> PathBuf {
    // crates/xtask/ -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the repo root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let findings = lint_tree(&repo_root());
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                println!("xtask lint: clean ({} rules)", RULES.len());
                ExitCode::SUCCESS
            } else {
                for rule in RULES {
                    if findings.iter().any(|f| f.rule == rule.name) {
                        println!("note: [{}] {}", rule.name, rule.why);
                    }
                }
                println!("xtask lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Some("validate-metrics") if args.len() > 1 => {
            let mut bad = 0usize;
            for path in &args[1..] {
                let doc = match fs::read_to_string(path) {
                    Ok(doc) => doc,
                    Err(e) => {
                        println!("{path}: unreadable: {e}");
                        bad += 1;
                        continue;
                    }
                };
                match obs::validate_metrics(&doc) {
                    Ok(_) => println!("{path}: ok"),
                    Err(e) => {
                        println!("{path}: INVALID: {e}");
                        bad += 1;
                    }
                }
            }
            if bad == 0 {
                println!("xtask validate-metrics: {} file(s) ok", args.len() - 1);
                ExitCode::SUCCESS
            } else {
                println!("xtask validate-metrics: {bad} invalid file(s)");
                ExitCode::FAILURE
            }
        }
        Some("bench-diff") => {
            let mut tol_pct = 0.0f64;
            let mut json = false;
            let mut paths: Vec<&String> = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                if a == "--tol" {
                    match it.next().and_then(|v| v.parse().ok()) {
                        Some(v) => tol_pct = v,
                        None => {
                            println!("bench-diff: --tol expects a percentage");
                            return ExitCode::from(2);
                        }
                    }
                } else if a == "--json" {
                    json = true;
                } else {
                    paths.push(a);
                }
            }
            let [old, new] = paths[..] else {
                println!("usage: cargo xtask bench-diff <old> <new> [--tol PCT] [--json]");
                return ExitCode::from(2);
            };
            let opts = bench_diff::DiffOptions { tol_pct };
            match bench_diff::diff_trees(Path::new(old), Path::new(new), &opts) {
                Ok(report) => {
                    if json {
                        // Machine-readable mode: the whole report as one
                        // JSON document on stdout, nothing else. The exit
                        // code still carries the gate verdict.
                        println!("{}", report.to_json(&opts).render());
                        return if report.ok() {
                            ExitCode::SUCCESS
                        } else {
                            ExitCode::FAILURE
                        };
                    }
                    for note in &report.notes {
                        println!("note: {note}");
                    }
                    for r in &report.regressions {
                        println!("REGRESSION: {r}");
                    }
                    if report.ok() {
                        println!(
                            "xtask bench-diff: ok ({} file(s), {} counter(s), tol {tol_pct}%)",
                            report.files, report.counters
                        );
                        ExitCode::SUCCESS
                    } else {
                        println!(
                            "xtask bench-diff: {} regression(s) across {} file(s)",
                            report.regressions.len(),
                            report.files
                        );
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    println!("bench-diff: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => {
            println!(
                "usage: cargo xtask lint | validate-metrics <file.json>... | \
                 bench-diff <old> <new> [--tol PCT] [--json]"
            );
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_str(src: &str) -> Vec<&'static str> {
        let mut out = Vec::new();
        scan_source(Path::new("test.rs"), src, RULES, &mut out);
        out.into_iter().map(|f| f.rule).collect()
    }

    fn fixture(name: &str) -> String {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(name);
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
    }

    #[test]
    fn fixture_hash_iteration_fails() {
        assert!(scan_str(&fixture("hash_iteration.rs")).contains(&"hash-iteration-order"));
    }

    #[test]
    fn fixture_wall_clock_fails() {
        assert!(scan_str(&fixture("wall_clock.rs")).contains(&"wall-clock"));
    }

    #[test]
    fn fixture_decode_unwrap_fails() {
        assert!(scan_str(&fixture("decode_unwrap.rs")).contains(&"decode-unwrap"));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(scan_str(src).is_empty());
    }

    #[test]
    fn comments_are_exempt() {
        assert!(
            scan_str("/// Instant the process finished.\nfn f() {} // a HashMap tale\n").is_empty()
        );
    }

    #[test]
    fn allow_escape_works() {
        let src = "use std::collections::HashMap; // lint:allow(hash-iteration-order)\n";
        assert!(scan_str(src).is_empty());
        let src = "use std::collections::HashMap;\n";
        assert_eq!(scan_str(src), vec!["hash-iteration-order"]);
    }

    #[test]
    fn token_matching_is_word_bounded() {
        assert!(scan_str("struct InstantaneousRate;\n").is_empty());
        assert_eq!(scan_str("let t = Instant::now();\n"), vec!["wall-clock"]);
    }

    #[test]
    fn workspace_is_clean() {
        let findings = lint_tree(&repo_root());
        let report: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
        assert!(
            findings.is_empty(),
            "lint wall breached:\n{}",
            report.join("\n")
        );
    }
}
