//! Workspace automation, run as `cargo xtask <cmd>` (see
//! `.cargo/config.toml` for the alias) and from `ci.sh`:
//!
//! * `lint` — the determinism lint wall (`hash-iteration-order`,
//!   `wall-clock`, `decode-unwrap`), running on the [`analyzer`]
//!   crate's comment/string-aware token engine. See
//!   [`analyzer::rules::lint`] for the rules and their rationale.
//! * `analyze` — the cross-layer drift and parallel-readiness gates
//!   ([`analyzer::rules::drift`], [`analyzer::rules::parallel`]).
//!   Writes a `bluefield-offload/analyzer/v1` report to
//!   `target/analyze/report.json`; `--json` prints it to stdout;
//!   `--update-baseline` refreshes the committed panic-path baseline.
//! * `profile` — top-K self-time tables from `bluefield-offload/profile/v1`
//!   self-profiling reports (`BENCH_PROFILE=1` bench runs).
//! * `validate-metrics` — schema check for benchmark metrics artifacts;
//!   `*.profile.json` files validate against the profile schema.
//! * `bench-diff` — the benchmark regression gate (see [`bench_diff`]).
//!
//! Escapes for both lint and analyze: a `lint:allow(<rule>)` or
//! `analyzer:allow(<rule>)` comment on the offending line.

mod bench_diff;

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use analyzer::{Config, Tree};

/// Committed panic-path allowlist (see [`analyzer::baseline`]).
const BASELINE_PATH: &str = "crates/analyzer/panic-baseline.tsv";
/// Where `analyze` writes its machine-readable report.
const REPORT_PATH: &str = "target/analyze/report.json";

fn repo_root() -> PathBuf {
    // crates/xtask/ -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the repo root")
        .to_path_buf()
}

/// Load every crate source in the workspace into an analyzer [`Tree`].
fn load_tree(repo: &Path) -> Result<Tree, String> {
    Tree::load(repo, &["crates"]).map_err(|e| format!("loading workspace sources: {e}"))
}

/// `cargo xtask lint`: the determinism wall. Prints findings as
/// `file:line: [rule] text`; nonzero exit on any finding.
fn cmd_lint() -> ExitCode {
    let tree = match load_tree(&repo_root()) {
        Ok(t) => t,
        Err(e) => {
            println!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = analyzer::lint(&tree);
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!(
            "xtask lint: clean ({} rules, {} files)",
            analyzer::rules::lint::WHY.len(),
            tree.len()
        );
        ExitCode::SUCCESS
    } else {
        for (rule, why) in analyzer::rules::lint::WHY {
            if findings.iter().any(|f| f.rule == *rule) {
                println!("note: [{rule}] {why}");
            }
        }
        println!("xtask lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// `cargo xtask analyze [--json] [--update-baseline]`: drift +
/// parallel-readiness gates.
fn cmd_analyze(args: &[String]) -> ExitCode {
    let json = args.iter().any(|a| a == "--json");
    let update = args.iter().any(|a| a == "--update-baseline");
    let repo = repo_root();
    let tree = match load_tree(&repo) {
        Ok(t) => t,
        Err(e) => {
            println!("xtask analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let cfg = Config::repo();
    let baseline_path = repo.join(BASELINE_PATH);
    if update {
        let text = analyzer::render_baseline(&tree, &cfg);
        let entries = text.lines().filter(|l| !l.starts_with('#')).count();
        if let Err(e) = fs::write(&baseline_path, &text) {
            println!("xtask analyze: writing {BASELINE_PATH}: {e}");
            return ExitCode::from(2);
        }
        println!("xtask analyze: baseline refreshed ({entries} entries) -> {BASELINE_PATH}");
        return ExitCode::SUCCESS;
    }
    let baseline = fs::read_to_string(&baseline_path).unwrap_or_default();
    let analysis = analyzer::analyze(&tree, &cfg, &baseline);
    let doc = analyzer::report::render(&analysis);
    let report_path = repo.join(REPORT_PATH);
    if let Some(dir) = report_path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    if let Err(e) = fs::write(&report_path, &doc) {
        println!("xtask analyze: writing {REPORT_PATH}: {e}");
        return ExitCode::from(2);
    }
    if json {
        // Machine-readable mode: the report document on stdout, nothing
        // else. The exit code still carries the gate verdict.
        print!("{doc}");
        return if analysis.clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    for f in &analysis.findings {
        println!("{f}");
    }
    for s in &analysis.stale_baseline {
        println!(
            "note: stale baseline entry (debt paid down — refresh with --update-baseline): {s}"
        );
    }
    if analysis.clean() {
        println!(
            "xtask analyze: clean ({} files, {} rules, {} baselined panic site(s)) -> {REPORT_PATH}",
            analysis.files_scanned,
            analyzer::report::RULES.len(),
            analysis.baselined
        );
        ExitCode::SUCCESS
    } else {
        println!("xtask analyze: {} finding(s)", analysis.findings.len());
        ExitCode::FAILURE
    }
}

/// Render the top-K self-time table of a parsed `profile/v1` document.
/// Scopes sort by `self_ns` when the document carries wall durations;
/// in the `BENCH_NO_WALL=1` regime (durations omitted by design) the
/// fallback order is scope-entry count.
fn profile_table(doc: &obs::Json, top_k: usize) -> Result<String, String> {
    use obs::Json;
    let bench = doc.get("bench").and_then(Json::as_str).unwrap_or("?");
    let scopes = doc
        .get("scopes")
        .and_then(Json::as_arr)
        .ok_or("profile document has no scopes array")?;
    let snapshots = doc
        .get("snapshots")
        .and_then(Json::as_arr)
        .map_or(0, <[Json]>::len);
    let mut rows: Vec<(String, u64, Option<[u64; 4]>)> = scopes
        .iter()
        .map(|s| {
            let path = s.get("path").and_then(Json::as_str).unwrap_or("?");
            let count = s.get("count").and_then(Json::as_u64).unwrap_or(0);
            let get = |k: &str| s.get(k).and_then(Json::as_u64).unwrap_or(0);
            let wall = s
                .get("self_ns")
                .and_then(Json::as_u64)
                .map(|self_ns| [self_ns, get("total_ns"), get("p50_ns"), get("p99_ns")]);
            (path.to_string(), count, wall)
        })
        .collect();
    let has_wall = rows.iter().any(|r| r.2.is_some());
    if has_wall {
        rows.sort_by(|a, b| {
            let key = |r: &(String, u64, Option<[u64; 4]>)| r.2.map_or(0, |w| w[0]);
            key(b).cmp(&key(a)).then_with(|| a.0.cmp(&b.0))
        });
    } else {
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    }
    let total = rows.len();
    rows.truncate(top_k);

    let mut table: Vec<Vec<String>> = Vec::new();
    let header: &[&str] = if has_wall {
        &["scope", "count", "self_ns", "total_ns", "p50_ns", "p99_ns"]
    } else {
        &["scope", "count"]
    };
    table.push(header.iter().map(|h| (*h).to_string()).collect());
    for (path, count, wall) in &rows {
        let mut row = vec![path.clone(), count.to_string()];
        if has_wall {
            let w = wall.unwrap_or([0; 4]);
            row.extend(w.iter().map(u64::to_string));
        }
        table.push(row);
    }
    let widths: Vec<usize> = (0..header.len())
        .map(|c| table.iter().map(|r| r[c].len()).max().unwrap_or(0))
        .collect();
    let mut out = format!(
        "profile: {bench} — top {} of {} scope(s) by {}, {} snapshot(s)\n",
        rows.len(),
        total,
        if has_wall { "self time" } else { "entry count" },
        snapshots
    );
    for (i, row) in table.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .enumerate()
            .map(|(c, (cell, w))| {
                if c == 0 {
                    format!("{cell:<w$}")
                } else {
                    format!("{cell:>w$}")
                }
            })
            .collect();
        out.push_str(line.join("  ").trim_end());
        out.push('\n');
        if i == 0 {
            let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
            out.push_str(&rule.join("  "));
            out.push('\n');
        }
    }
    if let Some(Json::Obj(totals)) = doc.get("engine_totals") {
        let parts: Vec<String> = totals
            .iter()
            .map(|(k, v)| format!("{k}={}", v.as_u64().unwrap_or(0)))
            .collect();
        out.push_str(&format!("engine: {}\n", parts.join(" ")));
    }
    Ok(out)
}

/// Render the human-readable per-tenant fairness summary of a metrics
/// document's `tenants` section: one row per tenant plus a headline
/// naming who holds the deferral/shed load. `None` for single-tenant
/// documents (no `tenants` section), which is every pre-tenant
/// baseline.
fn tenant_fairness(doc: &obs::Json) -> Option<String> {
    use obs::Json;
    let tenants = doc.get("tenants").and_then(Json::as_arr)?;
    if tenants.is_empty() {
        return None;
    }
    let get = |t: &Json, k: &str| t.get(k).and_then(Json::as_u64).unwrap_or(0);
    let total_deferrals: u64 = tenants.iter().map(|t| get(t, "credit_deferrals")).sum();
    let total_sheds: u64 = tenants.iter().map(|t| get(t, "quota_sheds")).sum();
    let pct = |part: u64, whole: u64| (part * 100).checked_div(whole).unwrap_or(0);
    let mut out = format!("  fairness: {} tenant(s)\n", tenants.len());
    let mut busiest: Option<(u64, u64)> = None;
    for t in tenants {
        let id = get(t, "tenant");
        let ranks = get(t, "ranks").max(1);
        let deferrals = get(t, "credit_deferrals");
        out.push_str(&format!(
            "    tenant {id}: ranks={ranks} fin_send={} deferrals={deferrals} ({}%) \
             drr_grants={} sheds={} wakeups/rank={}\n",
            get(t, "fin_send"),
            pct(deferrals, total_deferrals),
            get(t, "drr_grants"),
            get(t, "quota_sheds"),
            get(t, "wakeups") / ranks,
        ));
        if busiest.is_none_or(|(_, d)| deferrals > d) {
            busiest = Some((id, deferrals));
        }
    }
    match busiest {
        Some((id, d)) if total_deferrals > 0 => out.push_str(&format!(
            "    headline: tenant {id} holds {}% of credit deferrals; {} hard shed(s) total\n",
            pct(d, total_deferrals),
            total_sheds
        )),
        _ => out.push_str("    headline: no credit pressure recorded\n"),
    }
    Some(out)
}

/// Render the breaker/budget summary of a metrics document's optional
/// `health` section. `None` for documents without one, which is every
/// run with the health engine left at its disabled default.
fn breaker_health(doc: &obs::Json) -> Option<String> {
    use obs::Json;
    let health = doc.get("health")?;
    let get = |k: &str| health.get(k).and_then(Json::as_u64).unwrap_or(0);
    let trips = get("breaker_trips");
    let closes = get("breaker_closes");
    let sheds = get("retry_budget_sheds");
    let mut out = format!(
        "  health: trips={trips} half_opens={} closes={closes} probes={} \
         fastpaths={} budget_sheds={sheds}\n",
        get("breaker_half_opens"),
        get("breaker_probes"),
        get("breaker_fastpaths"),
    );
    let headline = if trips > 0 && closes == trips && sheds == 0 {
        "every tripped breaker recovered; no retry budget exhausted".to_string()
    } else if trips > closes {
        format!("{} breaker(s) still open at end of run", trips - closes)
    } else if sheds > 0 {
        format!("{sheds} request(s) shed by retry budgets")
    } else {
        "degraded-mode machinery fired without residual damage".to_string()
    };
    out.push_str(&format!("    headline: {headline}\n"));
    Some(out)
}

/// `cargo xtask profile [<file.profile.json>...] [--top K]`: validate
/// `profile/v1` report(s) and render their top-K self-time tables. With
/// no paths, scans `target/profile/` for `*.profile.json`.
fn cmd_profile(args: &[String]) -> ExitCode {
    let mut top_k = 10usize;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--top" {
            match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => top_k = v,
                None => {
                    println!("profile: --top expects a count");
                    return ExitCode::from(2);
                }
            }
        } else {
            paths.push(PathBuf::from(a));
        }
    }
    if paths.is_empty() {
        let dir = repo_root().join("target/profile");
        if let Ok(entries) = fs::read_dir(&dir) {
            paths = entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.ends_with(".profile.json"))
                })
                .collect();
            paths.sort();
        }
        if paths.is_empty() {
            println!(
                "profile: no *.profile.json under {} — run a bench with BENCH_PROFILE=1 \
                 or pass report paths explicitly",
                dir.display()
            );
            return ExitCode::from(2);
        }
    }
    let mut bad = 0usize;
    for path in &paths {
        let shown = path.display();
        let doc = match fs::read_to_string(path) {
            Ok(text) => match obs::validate_profile(&text) {
                Ok(doc) => doc,
                Err(e) => {
                    println!("{shown}: INVALID: {e}");
                    bad += 1;
                    continue;
                }
            },
            Err(e) => {
                println!("{shown}: unreadable: {e}");
                bad += 1;
                continue;
            }
        };
        match profile_table(&doc, top_k) {
            Ok(table) => print!("{table}"),
            Err(e) => {
                println!("{shown}: {e}");
                bad += 1;
            }
        }
    }
    if bad == 0 {
        ExitCode::SUCCESS
    } else {
        println!("xtask profile: {bad} bad file(s)");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("validate-metrics") if args.len() > 1 => {
            let mut bad = 0usize;
            for path in &args[1..] {
                let doc = match fs::read_to_string(path) {
                    Ok(doc) => doc,
                    Err(e) => {
                        println!("{path}: unreadable: {e}");
                        bad += 1;
                        continue;
                    }
                };
                // Dispatch on the artifact flavour: self-profiling
                // reports carry their own schema and validator.
                let verdict = if path.ends_with(".profile.json") {
                    obs::validate_profile(&doc).map(|_| None)
                } else {
                    obs::validate_metrics(&doc).map(|d| {
                        let mut s = String::new();
                        s.push_str(&tenant_fairness(&d).unwrap_or_default());
                        s.push_str(&breaker_health(&d).unwrap_or_default());
                        (!s.is_empty()).then_some(s)
                    })
                };
                match verdict {
                    Ok(fairness) => {
                        println!("{path}: ok");
                        if let Some(summary) = fairness {
                            print!("{summary}");
                        }
                    }
                    Err(e) => {
                        println!("{path}: INVALID: {e}");
                        bad += 1;
                    }
                }
            }
            if bad == 0 {
                println!("xtask validate-metrics: {} file(s) ok", args.len() - 1);
                ExitCode::SUCCESS
            } else {
                println!("xtask validate-metrics: {bad} invalid file(s)");
                ExitCode::FAILURE
            }
        }
        Some("bench-diff") => {
            let mut opts = bench_diff::DiffOptions::default();
            let mut json = false;
            let mut paths: Vec<&String> = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                if a == "--tol" {
                    match it.next().and_then(|v| v.parse().ok()) {
                        Some(v) => opts.tol_pct = v,
                        None => {
                            println!("bench-diff: --tol expects a percentage");
                            return ExitCode::from(2);
                        }
                    }
                } else if a == "--wall-tol" {
                    match it.next().and_then(|v| v.parse().ok()) {
                        Some(v) => opts.wall_tol_pct = v,
                        None => {
                            println!("bench-diff: --wall-tol expects a percentage");
                            return ExitCode::from(2);
                        }
                    }
                } else if a == "--json" {
                    json = true;
                } else {
                    paths.push(a);
                }
            }
            let [old, new] = paths[..] else {
                println!(
                    "usage: cargo xtask bench-diff <old> <new> [--tol PCT] [--wall-tol PCT] [--json]"
                );
                return ExitCode::from(2);
            };
            match bench_diff::diff_trees(Path::new(old), Path::new(new), &opts) {
                Ok(report) => {
                    if json {
                        // Machine-readable mode: the whole report as one
                        // JSON document on stdout, nothing else. The exit
                        // code still carries the gate verdict.
                        println!("{}", report.to_json(&opts).render());
                        return if report.ok() {
                            ExitCode::SUCCESS
                        } else {
                            ExitCode::FAILURE
                        };
                    }
                    for note in &report.notes {
                        println!("note: {note}");
                    }
                    for r in &report.regressions {
                        println!("REGRESSION: {r}");
                    }
                    if report.ok() {
                        println!(
                            "xtask bench-diff: ok ({} file(s), {} counter(s), tol {}%, wall tol {}%)",
                            report.files, report.counters, opts.tol_pct, opts.wall_tol_pct
                        );
                        ExitCode::SUCCESS
                    } else {
                        println!(
                            "xtask bench-diff: {} regression(s) across {} file(s)",
                            report.regressions.len(),
                            report.files
                        );
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    println!("bench-diff: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => {
            println!(
                "usage: cargo xtask lint | analyze [--json] [--update-baseline] | \
                 profile [<file.profile.json>...] [--top K] | \
                 validate-metrics <file.json>... | bench-diff <old> <new> [--tol PCT] \
                 [--wall-tol PCT] [--json]"
            );
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lint `src` as if it lived on a patrolled root.
    fn lint_str(src: &str) -> Vec<&'static str> {
        let mut tree = Tree::new();
        tree.insert("crates/core/src/fixture_under_test.rs", src);
        analyzer::lint(&tree).into_iter().map(|f| f.rule).collect()
    }

    fn fixture(name: &str) -> String {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(name);
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
    }

    #[test]
    fn fixture_hash_iteration_fails() {
        assert!(lint_str(&fixture("hash_iteration.rs")).contains(&"hash-iteration-order"));
    }

    #[test]
    fn fixture_wall_clock_fails() {
        assert!(lint_str(&fixture("wall_clock.rs")).contains(&"wall-clock"));
    }

    #[test]
    fn fixture_decode_unwrap_fails() {
        assert!(lint_str(&fixture("decode_unwrap.rs")).contains(&"decode-unwrap"));
    }

    /// Regression: the old line scanner truncated code at a `//` inside
    /// a string literal, hiding the rest of the line from the rules —
    /// and, conversely, matched banned names inside string literals.
    #[test]
    fn fixture_string_comment_scanning() {
        let mut tree = Tree::new();
        let src = fixture("string_comment.rs");
        tree.insert("crates/core/src/fixture_under_test.rs", &src);
        let findings = analyzer::lint(&tree);
        let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
        // `use` line, signature line, and the line whose HashMap::new()
        // sits *after* a "http://…" string literal.
        let after_string_line = src
            .lines()
            .position(|l| l.contains("http://"))
            .map(|i| i as u32 + 1)
            .expect("fixture has the url line");
        assert!(
            lines.contains(&after_string_line),
            "HashMap after a // inside a string must fire (got lines {lines:?})"
        );
        // The line whose only "HashMap" lives inside a string must not.
        let string_only_line = src
            .lines()
            .position(|l| l.contains("walks into a bar"))
            .map(|i| i as u32 + 1)
            .expect("fixture has the string-only line");
        assert!(
            !lines.contains(&string_only_line),
            "HashMap inside a string literal must not fire"
        );
    }

    /// Regression: the old line scanner stopped at a column-0
    /// `#[cfg(test)]`, exempting all live code after the test module.
    #[test]
    fn fixture_inline_cfg_test_scanning() {
        let mut tree = Tree::new();
        let src = fixture("inline_cfg_test.rs");
        tree.insert("crates/core/src/fixture_under_test.rs", &src);
        let findings = analyzer::lint(&tree);
        let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
        let live_use_line = src
            .lines()
            .position(|l| l.contains("must fire"))
            .map(|i| i as u32 + 1)
            .expect("fixture has the live use line");
        assert!(
            lines.contains(&live_use_line),
            "live code after an inline test module must fire (got lines {lines:?})"
        );
        // Nothing inside the test module itself fires.
        let module_hash_line = src
            .lines()
            .position(|l| l.contains("test code: exempt"))
            .map(|i| i as u32 + 1)
            .expect("fixture has the exempt line");
        assert!(!lines.contains(&module_hash_line));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn comments_are_exempt() {
        assert!(
            lint_str("/// Instant the process finished.\nfn f() {} // a HashMap tale\n").is_empty()
        );
    }

    #[test]
    fn allow_escape_works() {
        let src = "use std::collections::HashMap; // lint:allow(hash-iteration-order)\n";
        assert!(lint_str(src).is_empty());
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lint_str(src), vec!["hash-iteration-order"]);
    }

    #[test]
    fn token_matching_is_word_bounded() {
        assert!(lint_str("struct InstantaneousRate;\n").is_empty());
        assert_eq!(lint_str("let t = Instant::now();\n"), vec!["wall-clock"]);
    }

    const PROFILE_DOC: &str = r#"{
        "schema": "bluefield-offload/profile/v1",
        "bench": "unit",
        "scopes": [
            {"path": "cq_poll", "count": 4, "self_ns": 100, "total_ns": 400, "max_ns": 90, "p50_ns": 25, "p99_ns": 90},
            {"path": "cq_poll;crc_verify", "count": 9, "self_ns": 300, "total_ns": 300, "max_ns": 80, "p50_ns": 33, "p99_ns": 80}
        ],
        "snapshots": [{"seq": 1, "upto_ps": 1000, "deltas": {"bus_events": 3}}]
    }"#;

    #[test]
    fn profile_table_sorts_by_self_time_when_wall_present() {
        let doc = obs::validate_profile(PROFILE_DOC).expect("fixture validates");
        let table = profile_table(&doc, 10).expect("renders");
        let crc = table.find("crc_verify").expect("crc row present");
        let poll = table.find("cq_poll ").expect("cq_poll row present");
        assert!(crc < poll, "300ns self must sort above 100ns:\n{table}");
        assert!(table.contains("self_ns"), "{table}");
        assert!(table.contains("1 snapshot(s)"), "{table}");
    }

    #[test]
    fn profile_table_falls_back_to_counts_without_wall() {
        // The BENCH_NO_WALL regime: no duration fields at all.
        let doc = PROFILE_DOC
            .replace(
                ", \"self_ns\": 100, \"total_ns\": 400, \"max_ns\": 90, \"p50_ns\": 25, \"p99_ns\": 90",
                "",
            )
            .replace(
                ", \"self_ns\": 300, \"total_ns\": 300, \"max_ns\": 80, \"p50_ns\": 33, \"p99_ns\": 80",
                "",
            );
        let doc = obs::validate_profile(&doc).expect("no-wall fixture validates");
        let table = profile_table(&doc, 10).expect("renders");
        assert!(!table.contains("self_ns"), "{table}");
        assert!(table.contains("entry count"), "{table}");
        let crc = table.find("crc_verify").expect("crc row present");
        let poll = table.find("cq_poll ").expect("cq_poll row present");
        assert!(crc < poll, "count 9 must sort above count 4:\n{table}");
        // Top-K truncation keeps only the heaviest scope.
        let table = profile_table(&doc, 1).expect("renders");
        assert!(table.contains("crc_verify"), "{table}");
        assert!(!table.contains("cq_poll "), "{table}");
    }

    const TENANT_DOC: &str = r#"{
        "schema": "bluefield-offload/metrics/v1",
        "bench": "unit",
        "totals": {"events": 10},
        "tenants": [
            {"tenant": 0, "ranks": 2, "wakeups": 12, "interventions": 0, "fin_send": 8,
             "fin_recv": 8, "fin_group": 4, "credit_deferrals": 0, "quota_sheds": 0, "drr_grants": 0},
            {"tenant": 1, "ranks": 2, "wakeups": 40, "interventions": 0, "fin_send": 48,
             "fin_recv": 48, "fin_group": 0, "credit_deferrals": 37, "quota_sheds": 1, "drr_grants": 37}
        ]
    }"#;

    #[test]
    fn tenant_fairness_names_the_noisy_tenant() {
        let doc = obs::parse(TENANT_DOC).expect("fixture parses");
        let summary = tenant_fairness(&doc).expect("two-tenant doc summarizes");
        assert!(summary.contains("fairness: 2 tenant(s)"), "{summary}");
        assert!(
            summary.contains("tenant 1: ranks=2 fin_send=48 deferrals=37 (100%)"),
            "{summary}"
        );
        assert!(summary.contains("wakeups/rank=20"), "{summary}");
        assert!(
            summary.contains("headline: tenant 1 holds 100% of credit deferrals; 1 hard shed(s)"),
            "{summary}"
        );
    }

    #[test]
    fn tenant_fairness_is_silent_on_single_tenant_docs() {
        let doc = obs::parse(r#"{"totals": {"events": 3}}"#).expect("parses");
        assert!(tenant_fairness(&doc).is_none());
        // No pressure: the headline says so instead of dividing by zero.
        let calm = TENANT_DOC
            .replace("\"credit_deferrals\": 37", "\"credit_deferrals\": 0")
            .replace("\"quota_sheds\": 1", "\"quota_sheds\": 0");
        let doc = obs::parse(&calm).expect("parses");
        let summary = tenant_fairness(&doc).expect("still two tenants");
        assert!(summary.contains("no credit pressure"), "{summary}");
    }

    const HEALTH_DOC: &str = r#"{
        "schema": "bluefield-offload/metrics/v1",
        "bench": "unit",
        "totals": {"events": 10},
        "health": {"breaker_trips": 2, "breaker_half_opens": 2, "breaker_closes": 2,
                   "breaker_probes": 2, "breaker_fastpaths": 9, "retry_budget_sheds": 0}
    }"#;

    #[test]
    fn breaker_health_headlines_full_recovery() {
        let doc = obs::parse(HEALTH_DOC).expect("fixture parses");
        let summary = breaker_health(&doc).expect("health doc summarizes");
        assert!(
            summary.contains("health: trips=2 half_opens=2 closes=2 probes=2 fastpaths=9"),
            "{summary}"
        );
        assert!(
            summary.contains("every tripped breaker recovered"),
            "{summary}"
        );
    }

    #[test]
    fn breaker_health_names_open_breakers_and_sheds() {
        let open = HEALTH_DOC.replace("\"breaker_closes\": 2", "\"breaker_closes\": 1");
        let doc = obs::parse(&open).expect("parses");
        let summary = breaker_health(&doc).expect("summarizes");
        assert!(summary.contains("1 breaker(s) still open"), "{summary}");
        let shed = HEALTH_DOC.replace("\"retry_budget_sheds\": 0", "\"retry_budget_sheds\": 3");
        let doc = obs::parse(&shed).expect("parses");
        let summary = breaker_health(&doc).expect("summarizes");
        assert!(
            summary.contains("3 request(s) shed by retry budgets"),
            "{summary}"
        );
    }

    #[test]
    fn breaker_health_is_silent_without_a_health_section() {
        let doc = obs::parse(r#"{"totals": {"events": 3}}"#).expect("parses");
        assert!(breaker_health(&doc).is_none());
    }

    #[test]
    fn workspace_is_clean() {
        let tree = load_tree(&repo_root()).expect("workspace sources load");
        let findings = analyzer::lint(&tree);
        let report: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
        assert!(
            findings.is_empty(),
            "lint wall breached:\n{}",
            report.join("\n")
        );
    }

    #[test]
    fn workspace_analyze_is_clean() {
        let repo = repo_root();
        let tree = load_tree(&repo).expect("workspace sources load");
        let baseline = fs::read_to_string(repo.join(BASELINE_PATH)).unwrap_or_default();
        let analysis = analyzer::analyze(&tree, &Config::repo(), &baseline);
        let report: Vec<String> = analysis.findings.iter().map(|f| f.to_string()).collect();
        assert!(
            analysis.clean(),
            "analyzer gate breached:\n{}",
            report.join("\n")
        );
        assert!(
            analysis.stale_baseline.is_empty(),
            "stale panic-path baseline entries:\n{}",
            analysis.stale_baseline.join("\n")
        );
    }
}
