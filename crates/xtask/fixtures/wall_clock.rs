// Lint fixture: must trip the `wall-clock` rule.
// Not compiled — scanned by xtask's unit tests.
use std::time::Instant;

fn elapsed_us() -> u128 {
    let start = Instant::now();
    start.elapsed().as_micros()
}
