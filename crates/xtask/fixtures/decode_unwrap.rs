// Lint fixture: must trip the `decode-unwrap` rule.
// Not compiled — scanned by xtask's unit tests.
fn decode(body: Box<dyn std::any::Any>) -> u64 {
    *body.downcast::<u64>().expect("peer sent garbage")
}
