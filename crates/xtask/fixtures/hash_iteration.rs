// Lint fixture: must trip the `hash-iteration-order` rule.
// Not compiled — scanned by xtask's unit tests.
use std::collections::HashMap;

fn pending_by_tag() -> HashMap<u64, usize> {
    HashMap::new()
}
