// Lint fixture: regression for the line-regex scanner bug where the
// `//` inside a string literal truncated the rest of the line, hiding
// real code from the rules. Not compiled — scanned by xtask's tests.
use std::collections::HashMap;

fn endpoints() -> (&'static str, HashMap<u8, u8>) {
    // The "//" in the URL must not hide the HashMap::new() call after it.
    ("http://proxy.local/metrics", HashMap::new())
}

fn label() -> &'static str {
    // Conversely, a banned name *inside* a string must not fire.
    "a HashMap walks into a bar"
}
