// Lint fixture: regression for the line-regex scanner bug where a
// column-0 `#[cfg(test)]` stopped the scan for the whole remainder of
// the file, exempting any live code declared after the test module.
// Not compiled — scanned by xtask's unit tests.
fn live_before() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap; // test code: exempt

    fn _t() -> HashMap<u8, u8> {
        HashMap::new()
    }
}

use std::collections::HashMap; // live code after the module: must fire

fn live_after() -> HashMap<u8, u8> {
    HashMap::new()
}
