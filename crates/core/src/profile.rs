//! Zero-dependency hot-path span profiler (`profile_scope!`).
//!
//! The offload framework's ARM-side hot path must stay cheap for the
//! paper's crossover argument to hold, and optimizing it needs
//! attribution first: *where* does the proxy's wall time go — ctrl
//! encode/decode, CRC verification, credit admission, journal
//! truncation, registration-cache lookups, CQ polling? This module
//! answers that with thread-local enter/exit timestamps aggregated into
//! a self/total-time call tree over named scopes.
//!
//! # Design constraints
//!
//! * **Off by default, free when off.** [`profile_scope!`] consults a
//!   thread-local cache of the enabled flag; when disabled it takes no
//!   timestamp, allocates nothing, and touches no lock.
//! * **Virtual-time safe.** Wall-clock reads happen strictly outside
//!   simulated decision-making: samples flow one way, out of the run,
//!   into the final report. Nothing in the simulation ever reads them
//!   back, so enabling the profiler cannot change results (asserted by
//!   the `engine_speed` bench, which compares profiled and unprofiled
//!   runs for exact equality).
//! * **Deterministic aggregation.** Scopes are keyed by their
//!   `;`-joined call path in a `BTreeMap`, so report ordering is a
//!   function of the scope names alone, never of thread timing.
//!   Durations, of course, are wall-clock and vary run to run.
//!
//! # Lifecycle
//!
//! Each thread accumulates into its own tree. When a thread exits (the
//! sharded engine joins its process and worker threads before `run()`
//! returns), the tree is folded into a process-global registry;
//! [`take_report`] merges the calling thread's data with the registry
//! and drains both. Export as collapsed-stack text
//! ([`ProfileReport::collapsed_stack`], flamegraph-compatible) or as a
//! `bluefield-offload/profile/v1` JSON document via `obs`.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

use parking_lot::Mutex;

/// Environment knob that arms the profiler on first use (`BENCH_PROFILE=1`).
/// [`set_enabled`] overrides it either way.
pub const BENCH_PROFILE_ENV: &str = "BENCH_PROFILE";

/// Histogram bucket count: bucket `b` holds durations in
/// `[2^(b-1), 2^b)` nanoseconds (bucket 0 holds zero), matching
/// `obs::lifecycle`'s mergeable log2 histograms.
pub const PROFILE_BUCKETS: usize = 65;

/// Sentinel parent index for root scopes.
const ROOT: usize = usize::MAX;

/// Process-global enabled flag. `None` until first consulted, then
/// latched from [`BENCH_PROFILE_ENV`] unless [`set_enabled`] set it
/// first.
static ENABLED: Mutex<Option<bool>> = Mutex::new(None);

/// Completed per-thread trees, folded in at thread exit or report time.
static REGISTRY: Mutex<BTreeMap<String, ScopeAgg>> = Mutex::new(BTreeMap::new());

/// Whether the profiler is collecting. The fast path reads a
/// thread-local cache; the global flag is consulted (and latched from
/// the environment) only on each thread's first call.
pub fn enabled() -> bool {
    ENABLED_CACHE.with(|c| match c.get() {
        Some(v) => v,
        None => {
            let v = *ENABLED
                .lock()
                .get_or_insert_with(|| std::env::var(BENCH_PROFILE_ENV).is_ok_and(|v| v == "1"));
            c.set(Some(v));
            v
        }
    })
}

/// Turn collection on or off, overriding [`BENCH_PROFILE_ENV`].
///
/// Affects the calling thread immediately and any thread that has not
/// yet taken its first sample; call it before spawning the simulation
/// (benches do) and every thread agrees.
pub fn set_enabled(on: bool) {
    *ENABLED.lock() = Some(on);
    ENABLED_CACHE.with(|c| c.set(Some(on)));
}

thread_local! {
    static ENABLED_CACHE: Cell<Option<bool>> = const { Cell::new(None) };
    static TLS: TlsSlot = TlsSlot(RefCell::new(ThreadProfile::default()));
}

/// One scope node in a thread's call tree.
struct Node {
    name: &'static str,
    parent: usize,
    count: u64,
    self_ns: u64,
    total_ns: u64,
    max_ns: u64,
    buckets: [u64; PROFILE_BUCKETS],
}

/// An open scope on the thread's stack.
struct Frame {
    idx: usize,
    start: std::time::Instant, // lint:allow(wall-clock)
    child_ns: u64,
}

#[derive(Default)]
struct ThreadProfile {
    nodes: Vec<Node>,
    /// `(parent index, name)` -> node index.
    index: BTreeMap<(usize, &'static str), usize>,
    stack: Vec<Frame>,
}

/// Wrapper whose `Drop` folds the thread's tree into the registry when
/// the thread exits, so worker-thread samples survive into the report.
struct TlsSlot(RefCell<ThreadProfile>);

impl Drop for TlsSlot {
    fn drop(&mut self) {
        merge_into_registry(&mut self.0.borrow_mut());
    }
}

/// `;`-joined path of node `i` (collapsed-stack convention).
fn path_of(tp: &ThreadProfile, mut i: usize) -> String {
    let mut parts = Vec::new();
    loop {
        parts.push(tp.nodes[i].name);
        if tp.nodes[i].parent == ROOT {
            break;
        }
        i = tp.nodes[i].parent;
    }
    parts.reverse();
    parts.join(";")
}

/// Fold a thread's tree into [`REGISTRY`] and zero it in place (indices
/// stay valid for any still-open frames).
fn merge_into_registry(tp: &mut ThreadProfile) {
    if tp.nodes.iter().all(|n| n.count == 0) {
        return;
    }
    let mut reg = REGISTRY.lock();
    for i in 0..tp.nodes.len() {
        if tp.nodes[i].count == 0 {
            continue;
        }
        let path = path_of(tp, i);
        let agg = reg.entry(path).or_default();
        let n = &tp.nodes[i];
        agg.count += n.count;
        agg.self_ns += n.self_ns;
        agg.total_ns += n.total_ns;
        agg.max_ns = agg.max_ns.max(n.max_ns);
        for (dst, src) in agg.buckets.iter_mut().zip(n.buckets.iter()) {
            *dst += src;
        }
    }
    for n in &mut tp.nodes {
        n.count = 0;
        n.self_ns = 0;
        n.total_ns = 0;
        n.max_ns = 0;
        n.buckets = [0; PROFILE_BUCKETS];
    }
}

/// Log2 bucket index of a nanosecond duration (bucket 0 = zero),
/// mirroring `obs::lifecycle::Histogram`.
fn bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// RAII guard closing a profiled scope; created by [`profile_scope!`].
#[must_use = "binding the guard keeps the scope open until end of block"]
pub struct ScopeGuard {
    _priv: (),
}

/// Open a profiled scope named `name` on this thread's call tree.
/// Returns `None` (no timestamp taken) when profiling is disabled —
/// [`profile_scope!`] binds the result either way so the guard drops at
/// end of scope.
pub fn scope_guard(name: &'static str) -> Option<ScopeGuard> {
    if !enabled() {
        return None;
    }
    TLS.with(|slot| {
        let mut tp = slot.0.borrow_mut();
        let parent = tp.stack.last().map(|f| f.idx).unwrap_or(ROOT);
        let idx = match tp.index.get(&(parent, name)) {
            Some(&i) => i,
            None => {
                let i = tp.nodes.len();
                tp.nodes.push(Node {
                    name,
                    parent,
                    count: 0,
                    self_ns: 0,
                    total_ns: 0,
                    max_ns: 0,
                    buckets: [0; PROFILE_BUCKETS],
                });
                tp.index.insert((parent, name), i);
                i
            }
        };
        tp.stack.push(Frame {
            idx,
            start: std::time::Instant::now(), // lint:allow(wall-clock)
            child_ns: 0,
        });
    });
    Some(ScopeGuard { _priv: () })
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        TLS.with(|slot| {
            let mut tp = slot.0.borrow_mut();
            let frame = tp.stack.pop().expect("profile scope stack underflow");
            let dur = frame.start.elapsed().as_nanos() as u64;
            let self_ns = dur.saturating_sub(frame.child_ns);
            let b = bucket(dur);
            let node = &mut tp.nodes[frame.idx];
            node.count += 1;
            node.self_ns += self_ns;
            node.total_ns += dur;
            node.max_ns = node.max_ns.max(dur);
            node.buckets[b] += 1;
            if let Some(pf) = tp.stack.last_mut() {
                pf.child_ns += dur;
            }
        });
    }
}

/// Profile the enclosing scope under a string-literal name. Expands to
/// an RAII guard binding; when profiling is disabled the guard is
/// `None` and the whole thing costs one thread-local flag read.
///
/// ```
/// fn hot_path() {
///     offload::profile_scope!("ctrl_decode");
///     // ... work measured under "ctrl_decode" ...
/// }
/// ```
#[macro_export]
macro_rules! profile_scope {
    ($name:literal) => {
        let _profile_guard = $crate::profile::scope_guard($name);
    };
}

/// Aggregated samples for one scope path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeAgg {
    /// Enter/exit pairs observed.
    pub count: u64,
    /// Wall nanoseconds excluding child scopes.
    pub self_ns: u64,
    /// Wall nanoseconds including child scopes.
    pub total_ns: u64,
    /// Longest single span.
    pub max_ns: u64,
    /// Log2 duration histogram of span totals (bucket `b` holds
    /// durations in `[2^(b-1), 2^b)` ns; bucket 0 holds zero).
    pub buckets: [u64; PROFILE_BUCKETS],
}

impl ScopeAgg {
    /// An empty aggregate.
    pub fn new() -> ScopeAgg {
        ScopeAgg {
            count: 0,
            self_ns: 0,
            total_ns: 0,
            max_ns: 0,
            buckets: [0; PROFILE_BUCKETS],
        }
    }
}

impl Default for ScopeAgg {
    fn default() -> Self {
        ScopeAgg::new()
    }
}

/// A merged self/total-time call tree keyed by `;`-joined scope path.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Path -> aggregate, in path order (deterministic).
    pub scopes: BTreeMap<String, ScopeAgg>,
}

impl ProfileReport {
    /// Whether any scope recorded a sample.
    pub fn is_empty(&self) -> bool {
        self.scopes.is_empty()
    }

    /// Collapsed-stack text: one `path;to;scope self_ns` line per
    /// scope, directly consumable by flamegraph tooling.
    pub fn collapsed_stack(&self) -> String {
        let mut out = String::new();
        for (path, agg) in &self.scopes {
            out.push_str(path);
            out.push(' ');
            out.push_str(&agg.self_ns.to_string());
            out.push('\n');
        }
        out
    }

    /// Fold `other` into `self` (reports from separate runs merge the
    /// same way per-thread trees do).
    pub fn merge(&mut self, other: &ProfileReport) {
        for (path, src) in &other.scopes {
            let agg = self.scopes.entry(path.clone()).or_default();
            agg.count += src.count;
            agg.self_ns += src.self_ns;
            agg.total_ns += src.total_ns;
            agg.max_ns = agg.max_ns.max(src.max_ns);
            for (d, s) in agg.buckets.iter_mut().zip(src.buckets.iter()) {
                *d += s;
            }
        }
    }
}

/// Drain everything collected so far — the calling thread's tree plus
/// every exited thread's contribution in the global registry — into one
/// merged report. Scopes still open on other live threads appear once
/// those threads exit (the sharded engine joins its threads before
/// `run()` returns, so bench callers see complete data).
pub fn take_report() -> ProfileReport {
    TLS.with(|slot| merge_into_registry(&mut slot.0.borrow_mut()));
    let scopes = std::mem::take(&mut *REGISTRY.lock());
    ProfileReport { scopes }
}

/// Entry counts per scope path currently visible to this thread (its
/// own tree plus the registry), without draining anything. The
/// telemetry bus samples this between windows; counts are deterministic
/// wherever the sampling thread and the sampled scopes coincide (the
/// classic engine runs everything on one thread).
pub fn scope_counts() -> Vec<(String, u64)> {
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for (p, a) in REGISTRY.lock().iter() {
        if a.count > 0 {
            *counts.entry(p.clone()).or_default() += a.count;
        }
    }
    TLS.with(|slot| {
        let tp = slot.0.borrow();
        for i in 0..tp.nodes.len() {
            if tp.nodes[i].count > 0 {
                *counts.entry(path_of(&tp, i)).or_default() += tp.nodes[i].count;
            }
        }
    });
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The profiler is process-global state shared by parallel tests,
    /// so assertions here are containment-style, never exact-drain.
    #[test]
    fn scopes_nest_and_report_self_vs_total() {
        set_enabled(true);
        {
            crate::profile_scope!("outer_test_scope");
            std::thread::sleep(std::time::Duration::from_millis(2)); // lint:allow(wall-clock)
            {
                crate::profile_scope!("inner_test_scope");
                std::thread::sleep(std::time::Duration::from_millis(1)); // lint:allow(wall-clock)
            }
        }
        let report = take_report();
        set_enabled(false);
        let outer = report.scopes.get("outer_test_scope").expect("outer scope");
        let inner = report
            .scopes
            .get("outer_test_scope;inner_test_scope")
            .expect("inner scope nests under outer");
        assert!(outer.count >= 1);
        assert!(inner.count >= 1);
        assert!(
            outer.total_ns >= outer.self_ns + inner.total_ns,
            "outer total covers inner total plus own self time"
        );
        assert!(inner.self_ns > 0);
        let collapsed = report.collapsed_stack();
        assert!(collapsed.contains("outer_test_scope;inner_test_scope "));
    }

    #[test]
    fn disabled_profiler_collects_nothing() {
        set_enabled(false);
        {
            crate::profile_scope!("never_recorded_scope");
        }
        let report = take_report();
        assert!(!report.scopes.contains_key("never_recorded_scope"));
    }

    #[test]
    fn worker_thread_samples_survive_thread_exit() {
        set_enabled(true);
        std::thread::spawn(|| {
            crate::profile_scope!("thread_exit_scope");
        })
        .join()
        .expect("profiled thread");
        let report = take_report();
        set_enabled(false);
        assert!(report.scopes.contains_key("thread_exit_scope"));
    }

    #[test]
    fn merge_accumulates_counts_and_buckets() {
        let mut a = ProfileReport::default();
        let mut agg = ScopeAgg::new();
        agg.count = 2;
        agg.self_ns = 100;
        agg.total_ns = 150;
        agg.max_ns = 90;
        agg.buckets[bucket(90)] = 2;
        a.scopes.insert("x".into(), agg.clone());
        let mut b = ProfileReport::default();
        agg.max_ns = 200;
        b.scopes.insert("x".into(), agg);
        a.merge(&b);
        let x = &a.scopes["x"];
        assert_eq!(x.count, 4);
        assert_eq!(x.self_ns, 200);
        assert_eq!(x.max_ns, 200);
        assert_eq!(x.buckets[bucket(90)], 4);
    }

    #[test]
    fn log2_bucket_matches_lifecycle_convention() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(1024), 11);
        assert_eq!(bucket(u64::MAX), 64);
    }
}
