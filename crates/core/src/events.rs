//! Structured protocol events for external conformance checking.
//!
//! Every protocol-relevant transition in the offload engine emits one of
//! these events through [`simnet::ProcessCtx::emit`]. A checker (see the
//! `checker` crate) installs an [`simnet::EventSink`] on the cluster and
//! replays the stream against the protocol's invariants: RTS-before-RTR
//! matching, FIN-after-completion, cross-registration before mkey2 use,
//! cache coherence, at-most-once metadata exchange, and barrier-counter
//! monotonicity.
//!
//! The events deliberately use plain field types (`usize`, `u64`,
//! [`rdma::MrKey`], [`rdma::VAddr`]) so observers outside this crate can
//! consume them without access to crate-private protocol structures.

use rdma::{MrKey, VAddr};

/// Which FIN message a proxy sent for a completed transfer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FinKind {
    /// `FinSend` — completion notice to the sending rank.
    Send,
    /// `FinRecv` — completion notice to the receiving rank.
    Recv,
    /// `GroupFin` — completion notice for a whole group generation.
    Group,
}

/// Outcome of a registration-cache lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheOutcome {
    /// A valid entry for exactly `(rank, addr, len)` was found.
    Hit,
    /// No entry was found.
    Miss,
    /// An entry was found but failed validation and was evicted.
    Stale,
}

/// Which leg of a data transfer an RDMA work request implements.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PathKind {
    /// Direct host-to-host write through a cross-GVMI mkey2.
    CrossGvmi,
    /// Staging path, first hop: RDMA read from the source host into the
    /// proxy's staging buffer.
    StagingHop1,
    /// Staging path, second hop: RDMA write from the staging buffer to
    /// the destination host.
    StagingHop2,
}

/// Direction of a host-posted basic request, as seen by the posting rank.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReqDir {
    /// `Send_offload` — the rank is the data source.
    Send,
    /// `Recv_offload` — the rank is the data destination.
    Recv,
    /// A one-sided put/get posted through the SHMEM facade.
    OneSided,
}

/// Which host-side registration cache a lookup touched.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HostCacheKind {
    /// The per-proxy GVMI registration cache (mkey for offloaded sends).
    Gvmi,
    /// The plain IB registration cache (lkey/rkey for host verbs).
    Ib,
}

/// Which cache an eviction came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheSide {
    /// Host-side GVMI registration cache.
    HostGvmi,
    /// Host-side IB registration cache.
    HostIb,
    /// DPU-side cross-registration cache.
    DpuCross,
}

/// Path class a health-engine breaker or retry budget governs
/// (DESIGN.md §19). Coarser than [`PathKind`]: both staging hops share
/// one breaker, and the ctrl plane gets its own class.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum HealthPath {
    /// The direct cross-GVMI data path (registration + host-to-host
    /// write). Tripped: posts reroute to staging without probing.
    CrossGvmi,
    /// The staging store-and-forward data path. Tripped: posts degrade
    /// to a host-direct write where the registration material allows.
    Staging,
    /// The reliable ctrl plane (retry budgets only; ctrl has no
    /// alternate route to break to).
    Ctrl,
}

impl HealthPath {
    /// Stable lowercase name for reports and flight records.
    pub fn name(self) -> &'static str {
        match self {
            HealthPath::CrossGvmi => "cross_gvmi",
            HealthPath::Staging => "staging",
            HealthPath::Ctrl => "ctrl",
        }
    }
}

/// Kind of a ctrl-plane message, for drop/retransmit attribution in
/// lifecycle timelines (the wire enum itself is crate-private).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CtrlKind {
    /// Ready-to-send.
    Rts,
    /// Ready-to-receive.
    Rtr,
    /// Send-side completion.
    FinSend,
    /// Receive-side completion.
    FinRecv,
    /// Host→host receive metadata.
    RecvMeta,
    /// Full group metadata packet.
    GroupPacket,
    /// Cached group execution doorbell.
    GroupExec,
    /// Group completion.
    GroupFin,
    /// Proxy→proxy barrier counter write.
    BarrierCntr,
    /// Data-write arrival marker.
    GroupArrival,
    /// One-sided put.
    Put,
    /// One-sided get.
    Get,
    /// Symmetric-heap handshake.
    ShmemHello,
    /// Rank shutdown notice.
    Shutdown,
    /// Reliability envelope.
    Seq,
    /// Reliability acknowledgement.
    Ack,
    /// Retransmission timer tick.
    RetxTick,
    /// Proxy restart notice.
    ProxyRestarted,
    /// Admission-control nack: the proxy's bounded queues were full.
    QueueFull,
    /// Host-initiated cancellation of an in-flight request.
    Cancel,
    /// Data-path retransmission budget exhausted for a transfer.
    DataError,
    /// Undecodable or foreign message.
    Unknown,
}

/// One structured protocol event. Emitted by the host engine, the DPU
/// proxy, and the SHMEM facade at every protocol transition.
#[derive(Clone, Debug)]
pub enum ProtoEvent {
    /// A host posted a basic-primitive request (`Send_offload`,
    /// `Recv_offload`, or a one-sided put/get). Opens the causal timeline
    /// for `msg_id`.
    HostReqPosted {
        /// Posting rank.
        rank: usize,
        /// Stable per-transfer id: `(rank << 32) | seq`, unique per run.
        msg_id: u64,
        /// Peer rank of the transfer.
        peer: usize,
        /// Message tag (0 for one-sided operations).
        tag: u64,
        /// Payload bytes requested.
        bytes: u64,
        /// Direction of the request from the poster's point of view.
        dir: ReqDir,
    },
    /// The host observed the FIN for one of its basic requests; the
    /// causal timeline for `msg_id` closes here and the matching `Wait`
    /// is now satisfiable.
    HostReqDone {
        /// Rank whose request finished.
        rank: usize,
        /// Stable per-transfer id assigned at post time.
        msg_id: u64,
        /// True when other offloaded requests were still outstanding on
        /// this rank when the FIN landed — the host-resident segment the
        /// basic path pays and warm group windows avoid.
        more_outstanding: bool,
    },
    /// A proxy accepted an RTS control message (or synthesized one for a
    /// pre-matched one-sided put).
    RtsAtProxy {
        /// Sending rank.
        src_rank: usize,
        /// Receiving rank.
        dst_rank: usize,
        /// Message tag.
        tag: u64,
        /// Sender-side transfer id carried by the RTS.
        msg_id: u64,
    },
    /// A proxy accepted an RTR control message (or synthesized one for a
    /// pre-matched one-sided put).
    RtrAtProxy {
        /// Sending rank.
        src_rank: usize,
        /// Receiving rank.
        dst_rank: usize,
        /// Message tag.
        tag: u64,
        /// Receiver-side transfer id carried by the RTR.
        msg_id: u64,
    },
    /// A proxy matched an RTS with an RTR and is about to move data.
    PairMatched {
        /// Sending rank.
        src_rank: usize,
        /// Receiving rank.
        dst_rank: usize,
        /// Message tag.
        tag: u64,
        /// Transfer id of the matched send side.
        send_msg_id: u64,
        /// Transfer id of the matched receive side.
        recv_msg_id: u64,
    },
    /// A proxy posted an RDMA write (or read) carrying payload; `wrid` is
    /// the work-request id the completion will carry.
    WritePosted {
        /// Work-request id of the posted operation.
        wrid: u64,
        /// Payload bytes the work request moves.
        bytes: u64,
        /// Which transfer leg the work request implements.
        path: PathKind,
        /// Send-side transfer id whose payload this work request moves
        /// (both staging hops carry the same id).
        msg_id: u64,
    },
    /// The completion for `wrid` arrived at the posting proxy.
    WriteCompleted {
        /// Work-request id of the completed operation.
        wrid: u64,
    },
    /// A proxy sent a FIN control message for a completed transfer.
    FinSent {
        /// Rank the FIN is addressed to.
        rank: usize,
        /// Host-side request index being finished.
        req: usize,
        /// Work-request id whose completion triggered this FIN. Group
        /// FINs aggregate many writes and instead carry a fresh id from
        /// the proxy's work-request namespace, so every FIN is uniquely
        /// attributable (never 0).
        wrid: u64,
        /// Which FIN variant was sent.
        kind: FinKind,
        /// Transfer id the FIN finishes (the send-side id for
        /// `FinKind::Send`, the receive-side id for `FinKind::Recv`, 0
        /// for group FINs, which finish a generation, not a message).
        msg_id: u64,
    },
    /// A proxy cross-registered host memory, producing `mkey2` from the
    /// host's `mkey`.
    CrossReg {
        /// Rank owning the memory.
        host_rank: usize,
        /// Base address of the region.
        addr: VAddr,
        /// Region length in bytes.
        len: u64,
        /// The host's GVMI mkey.
        mkey: MrKey,
        /// The proxy-side cross-registration key.
        mkey2: MrKey,
    },
    /// A proxy looked up its cross-registration cache.
    CrossRegCacheLookup {
        /// Rank owning the memory.
        host_rank: usize,
        /// Base address of the region.
        addr: VAddr,
        /// Region length in bytes.
        len: u64,
        /// Hit, miss, or stale-evicted.
        outcome: CacheOutcome,
        /// On a hit: the cached host mkey.
        mkey: Option<MrKey>,
        /// On a hit: the cached cross-registration key.
        mkey2: Option<MrKey>,
    },
    /// A proxy used `mkey2` as the local key of a data transfer.
    Mkey2Used {
        /// The cross-registration key driving the transfer.
        mkey2: MrKey,
    },
    /// A host shipped its receive metadata for a group request to the
    /// sending host (at most once per `(from, to, req_id)` triple).
    RecvMetaSent {
        /// Rank sending the metadata (the receiver of the data).
        from_rank: usize,
        /// Rank the metadata is addressed to (the sender of the data).
        to_rank: usize,
        /// Group request id on the receiving side.
        req_id: usize,
    },
    /// A host shipped a full group metadata packet to its proxy. With the
    /// group cache enabled this happens at most once per group request.
    GroupPacketSent {
        /// Rank shipping the packet.
        host_rank: usize,
        /// Group request id on that rank.
        req_id: usize,
    },
    /// A proxy wrote a barrier counter into a peer proxy's instance.
    BarrierCntr {
        /// Rank whose instance produced the counter.
        src_rank: usize,
        /// `host_rank` of the destination instance key.
        dst_host_rank: usize,
        /// `req_id` of the destination instance key.
        dst_req_id: usize,
        /// Generation of the destination instance.
        gen: u64,
        /// Counter value written (must increase monotonically per edge).
        value: u64,
    },
    /// A host looked up one of its registration caches.
    HostCacheLookup {
        /// Rank owning the cache.
        rank: usize,
        /// Which host cache was consulted.
        cache: HostCacheKind,
        /// Hit or miss (host caches validate by key, never go stale).
        outcome: CacheOutcome,
    },
    /// A registration cache evicted an entry to make room.
    CacheEvicted {
        /// Rank owning the cache (host rank, also for the DPU-side
        /// cross-cache, whose entries are keyed by host rank).
        rank: usize,
        /// Which cache evicted.
        side: CacheSide,
    },
    /// A control message was dropped: either a malformed/foreign body the
    /// decoder refused, or a loss injected by the run's `FaultPlan`.
    CtrlDropped {
        /// True when dropped on the proxy side, false on the host side.
        at_proxy: bool,
        /// Kind of the dropped message (`Unknown` for undecodable ones).
        kind: CtrlKind,
        /// Transfer id the message was about (0 when it carried none).
        msg_id: u64,
    },
    /// The reliability layer retransmitted an unacked ctrl message after
    /// its backoff timer fired.
    CtrlRetransmit {
        /// True when the retransmitting side is a proxy.
        at_proxy: bool,
        /// Kind of the retransmitted message.
        kind: CtrlKind,
        /// Transfer id the message was about (0 when it carried none).
        msg_id: u64,
        /// Retransmission attempt number (1 = first retransmit).
        attempt: u32,
    },
    /// Receiver-side dedup discarded a duplicate ctrl message (an
    /// injected duplicate or a retransmit whose original arrived).
    CtrlDuplicateDropped {
        /// True when the deduplicating side is a proxy.
        at_proxy: bool,
        /// Kind of the duplicate message.
        kind: CtrlKind,
        /// Transfer id the message was about (0 when it carried none).
        msg_id: u64,
    },
    /// The reliability layer gave up on a ctrl message after exhausting
    /// its retransmission budget.
    CtrlAbandoned {
        /// True when the abandoning side is a proxy.
        at_proxy: bool,
        /// Kind of the abandoned message.
        kind: CtrlKind,
        /// Transfer id the message was about (0 when it carried none).
        msg_id: u64,
    },
    /// Cross-GVMI registration failed for one transfer; the proxy fell
    /// back to the staging data path for it (graceful degradation).
    FallbackToStaging {
        /// Sending rank of the affected transfer.
        src_rank: usize,
        /// Receiving rank of the affected transfer.
        dst_rank: usize,
        /// Message tag of the affected transfer.
        tag: u64,
        /// Send-side transfer id of the affected transfer.
        msg_id: u64,
    },
    /// A proxy crashed and restarted with a fresh state and a bumped
    /// epoch; hosts react by invalidating caches and replaying.
    ProxyRestarted {
        /// The proxy's post-restart epoch (monotonically increasing).
        epoch: u64,
    },
    /// A host replayed an in-flight request to a restarted proxy.
    ReqReplayed {
        /// Replaying rank.
        rank: usize,
        /// Transfer id of the replayed request (0 for group replays).
        msg_id: u64,
    },
    /// A host request failed permanently: its ctrl message exhausted the
    /// retransmission budget and a typed `OffloadError` was surfaced.
    ReqFailed {
        /// Rank whose request failed.
        rank: usize,
        /// Transfer id of the failed request.
        msg_id: u64,
        /// Send attempts made before giving up.
        attempts: u32,
    },
    /// A completion arrived for a work request the proxy no longer
    /// tracks (it was in flight across a crash); the data landed, the
    /// completion is ignored.
    StaleCqe {
        /// Work-request id of the orphaned completion.
        wrid: u64,
    },
    /// The host CPU woke up to process a control message from the
    /// offload plane.
    HostWakeup {
        /// The rank that woke.
        rank: usize,
        /// True when, after applying the message, offloaded work is
        /// still outstanding on this rank — i.e. the host had to
        /// intervene mid-operation rather than merely observe a
        /// terminal completion.
        intervention: bool,
    },
    /// `Group_Offload_call` returned control to the application; the
    /// overlap window for this generation opens here.
    GroupCallReturned {
        /// Calling rank.
        host_rank: usize,
        /// Group request id on that rank.
        req_id: usize,
        /// Generation just launched (1-based).
        gen: u64,
    },
    /// `Group_Wait` observed the generation's completion; the overlap
    /// window closes here.
    GroupWaitDone {
        /// Waiting rank.
        host_rank: usize,
        /// Group request id on that rank.
        req_id: usize,
        /// Generation waited for.
        gen: u64,
    },
    /// A host re-armed an already-installed group with a `GroupExec`
    /// doorbell (the cached warm path, no metadata resend).
    GroupExecSent {
        /// Calling rank.
        host_rank: usize,
        /// Group request id on that rank.
        req_id: usize,
        /// Generation being launched.
        gen: u64,
    },
    /// A proxy's group instance blocked at a barrier entry it could not
    /// yet cross (emitted once per barrier crossing, on first block).
    BarrierStall {
        /// Rank owning the stalled instance.
        host_rank: usize,
        /// Group request id of the stalled instance.
        req_id: usize,
        /// Generation of the stalled instance.
        gen: u64,
    },
    /// A proxy enqueued a posted descriptor; carries the queue depths
    /// right after the enqueue so observers can track high-water marks.
    ProxyQueueDepth {
        /// Entries across the proxy's pending-send queues.
        send_depth: usize,
        /// Entries across the proxy's pending-receive queues.
        recv_depth: usize,
    },
    /// A host rank completed `Finalize_Offload`; its counters are final.
    HostFinalized {
        /// The finalizing rank.
        rank: usize,
    },
    /// End-to-end CRC verification failed for a transfer at FIN time on
    /// the posting proxy; a bounded data-path retransmission follows.
    PayloadCorrupt {
        /// Send-side transfer id whose payload failed verification.
        msg_id: u64,
        /// Data-path delivery attempt that failed (1 = first write).
        attempt: u32,
    },
    /// A previously corrupt transfer verified clean after one or more
    /// data-path retransmissions; the FIN was released.
    PayloadRecovered {
        /// Send-side transfer id that recovered.
        msg_id: u64,
        /// Total data-path delivery attempts including the clean one.
        attempts: u32,
    },
    /// The data-path retransmission budget was exhausted without a clean
    /// CRC; a typed `DataIntegrity` error was surfaced to the host.
    DataIntegrityFailed {
        /// Send-side transfer id that failed permanently.
        msg_id: u64,
        /// Data-path delivery attempts made before giving up.
        attempts: u32,
    },
    /// A proxy refused to admit a descriptor because its bounded queues
    /// were at capacity; a `QueueFull` nack went back to the poster.
    QueueFullNack {
        /// Transfer id of the refused descriptor.
        msg_id: u64,
    },
    /// The host deferred posting a request because its per-proxy credit
    /// window was exhausted; the request waits in the host's overflow
    /// queue until a FIN returns credit.
    CreditDeferred {
        /// Deferring rank.
        rank: usize,
        /// Transfer id of the deferred request.
        msg_id: u64,
    },
    /// The host shed a post at admission because the posting rank's
    /// tenant is over its hard quota (multi-tenant runs only). A typed
    /// `QuotaExceeded` error surfaces on the request; a `ReqFailed`
    /// event follows for the same transfer id.
    QuotaShed {
        /// Tenant whose hard quota was hit.
        tenant: usize,
        /// Shedding rank.
        rank: usize,
        /// Transfer id of the shed request.
        msg_id: u64,
    },
    /// The host's deficit-round-robin scheduler admitted a previously
    /// deferred post (multi-tenant runs only; the single-tenant flush
    /// path is the PR-5 FIFO and emits nothing).
    DrrGrant {
        /// Tenant whose deferred queue was served.
        tenant: usize,
        /// Rank whose post was admitted.
        rank: usize,
        /// Transfer id of the admitted request.
        msg_id: u64,
    },
    /// The proxy reused an idle staging buffer from its bounded free
    /// pool instead of allocating fresh staging memory.
    StagingReclaimed {
        /// Byte length of the reclaimed buffer.
        len: u64,
    },
    /// A host cancelled an in-flight request (deadline expiry or explicit
    /// cancel); the matching `Wait` surfaces a typed error and any late
    /// FIN for this id is ignored.
    ReqCancelled {
        /// Cancelling rank.
        rank: usize,
        /// Transfer id of the cancelled request.
        msg_id: u64,
    },
    /// A proxy reaped the queued descriptor of a cancelled request
    /// before it matched; no data will move for this id.
    ReqReaped {
        /// Transfer id of the reaped descriptor.
        msg_id: u64,
    },
    /// A group generation failed permanently: a group ctrl message
    /// exhausted its retransmission budget (or its data path failed) and
    /// `Group_Wait` surfaces a typed error instead of stalling.
    GroupFailed {
        /// Rank whose group failed.
        host_rank: usize,
        /// Group request id on that rank.
        req_id: usize,
        /// Generation that failed.
        gen: u64,
    },
    /// The proxy truncated its durable FIN journal after every host
    /// acknowledged past the truncation horizon.
    JournalTruncated {
        /// Entries dropped by this truncation.
        dropped: u64,
    },
    /// Periodic journal-size sample, emitted only when a journal cap is
    /// configured (observability for the bounded-journal regression test).
    JournalSize {
        /// Journal entries currently retained.
        len: u64,
    },
    /// A health-engine breaker tripped open: the sliding failure window
    /// for `(peer, path)` crossed the trip threshold (or a half-open
    /// probe failed). Posts toward this peer now reroute without
    /// touching the path (health-armed runs only, DESIGN.md §19).
    BreakerTripped {
        /// Peer rank the breaker guards.
        peer: usize,
        /// Path class that tripped.
        path: HealthPath,
    },
    /// An open breaker's cooldown expired: it moved to half-open and
    /// admitted its single probe (a `BreakerProbe` event follows).
    BreakerHalfOpen {
        /// Peer rank the breaker guards.
        peer: usize,
        /// Path class probing.
        path: HealthPath,
    },
    /// A half-open probe succeeded: the breaker closed and steady-state
    /// routing returns to the primary path. The probe's registration
    /// result was installed in the reg-cache, so warm state is rebuilt.
    BreakerClosed {
        /// Peer rank the breaker guards.
        peer: usize,
        /// Path class that recovered.
        path: HealthPath,
    },
    /// The single post a half-open breaker admitted onto the primary
    /// path; its outcome closes or re-opens the breaker.
    BreakerProbe {
        /// Peer rank being probed.
        peer: usize,
        /// Path class being probed.
        path: HealthPath,
        /// Transfer id of the probing post.
        msg_id: u64,
    },
    /// A post was routed around an open breaker without consulting the
    /// sick path — no registration attempt, no per-message
    /// `FallbackToStaging` round-trip. Cross-GVMI fast-paths go to
    /// staging; staging fast-paths degrade to a host-direct write.
    BreakerFastPath {
        /// Peer rank whose breaker is open.
        peer: usize,
        /// Path class that was bypassed.
        path: HealthPath,
        /// Transfer id of the rerouted post.
        msg_id: u64,
    },
    /// A retry was shed because the peer's retry-budget token bucket is
    /// empty; a typed `RetryBudgetExhausted` error surfaces on the
    /// owning basic request and a `ReqFailed` event follows for the
    /// same transfer id. (Group-entry budget sheds fail the generation
    /// through `GroupFailed` and do not emit this event.)
    RetryBudgetExhausted {
        /// Rank whose request was shed.
        rank: usize,
        /// Transfer id of the shed request.
        msg_id: u64,
        /// Plane the exhausted budget governs (`Ctrl` for ctrl-plane
        /// retransmits, a data class for payload retransmits).
        path: HealthPath,
    },
}
