//! Structured protocol events for external conformance checking.
//!
//! Every protocol-relevant transition in the offload engine emits one of
//! these events through [`simnet::ProcessCtx::emit`]. A checker (see the
//! `checker` crate) installs an [`simnet::EventSink`] on the cluster and
//! replays the stream against the protocol's invariants: RTS-before-RTR
//! matching, FIN-after-completion, cross-registration before mkey2 use,
//! cache coherence, at-most-once metadata exchange, and barrier-counter
//! monotonicity.
//!
//! The events deliberately use plain field types (`usize`, `u64`,
//! [`rdma::MrKey`], [`rdma::VAddr`]) so observers outside this crate can
//! consume them without access to crate-private protocol structures.

use rdma::{MrKey, VAddr};

/// Which FIN message a proxy sent for a completed transfer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FinKind {
    /// `FinSend` — completion notice to the sending rank.
    Send,
    /// `FinRecv` — completion notice to the receiving rank.
    Recv,
    /// `GroupFin` — completion notice for a whole group generation.
    Group,
}

/// Outcome of a registration-cache lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheOutcome {
    /// A valid entry for exactly `(rank, addr, len)` was found.
    Hit,
    /// No entry was found.
    Miss,
    /// An entry was found but failed validation and was evicted.
    Stale,
}

/// One structured protocol event. Emitted by the host engine, the DPU
/// proxy, and the SHMEM facade at every protocol transition.
#[derive(Clone, Debug)]
pub enum ProtoEvent {
    /// A proxy accepted an RTS control message (or synthesized one for a
    /// pre-matched one-sided put).
    RtsAtProxy {
        /// Sending rank.
        src_rank: usize,
        /// Receiving rank.
        dst_rank: usize,
        /// Message tag.
        tag: u64,
    },
    /// A proxy accepted an RTR control message (or synthesized one for a
    /// pre-matched one-sided put).
    RtrAtProxy {
        /// Sending rank.
        src_rank: usize,
        /// Receiving rank.
        dst_rank: usize,
        /// Message tag.
        tag: u64,
    },
    /// A proxy matched an RTS with an RTR and is about to move data.
    PairMatched {
        /// Sending rank.
        src_rank: usize,
        /// Receiving rank.
        dst_rank: usize,
        /// Message tag.
        tag: u64,
    },
    /// A proxy posted an RDMA write (or read) carrying payload; `wrid` is
    /// the work-request id the completion will carry.
    WritePosted {
        /// Work-request id of the posted operation.
        wrid: u64,
    },
    /// The completion for `wrid` arrived at the posting proxy.
    WriteCompleted {
        /// Work-request id of the completed operation.
        wrid: u64,
    },
    /// A proxy sent a FIN control message for a completed transfer.
    FinSent {
        /// Rank the FIN is addressed to.
        rank: usize,
        /// Host-side request index being finished.
        req: usize,
        /// Work-request id whose completion triggered this FIN (0 for
        /// group FINs, which aggregate many writes).
        wrid: u64,
        /// Which FIN variant was sent.
        kind: FinKind,
    },
    /// A proxy cross-registered host memory, producing `mkey2` from the
    /// host's `mkey`.
    CrossReg {
        /// Rank owning the memory.
        host_rank: usize,
        /// Base address of the region.
        addr: VAddr,
        /// Region length in bytes.
        len: u64,
        /// The host's GVMI mkey.
        mkey: MrKey,
        /// The proxy-side cross-registration key.
        mkey2: MrKey,
    },
    /// A proxy looked up its cross-registration cache.
    CrossRegCacheLookup {
        /// Rank owning the memory.
        host_rank: usize,
        /// Base address of the region.
        addr: VAddr,
        /// Region length in bytes.
        len: u64,
        /// Hit, miss, or stale-evicted.
        outcome: CacheOutcome,
        /// On a hit: the cached host mkey.
        mkey: Option<MrKey>,
        /// On a hit: the cached cross-registration key.
        mkey2: Option<MrKey>,
    },
    /// A proxy used `mkey2` as the local key of a data transfer.
    Mkey2Used {
        /// The cross-registration key driving the transfer.
        mkey2: MrKey,
    },
    /// A host shipped its receive metadata for a group request to the
    /// sending host (at most once per `(from, to, req_id)` triple).
    RecvMetaSent {
        /// Rank sending the metadata (the receiver of the data).
        from_rank: usize,
        /// Rank the metadata is addressed to (the sender of the data).
        to_rank: usize,
        /// Group request id on the receiving side.
        req_id: usize,
    },
    /// A host shipped a full group metadata packet to its proxy. With the
    /// group cache enabled this happens at most once per group request.
    GroupPacketSent {
        /// Rank shipping the packet.
        host_rank: usize,
        /// Group request id on that rank.
        req_id: usize,
    },
    /// A proxy wrote a barrier counter into a peer proxy's instance.
    BarrierCntr {
        /// Rank whose instance produced the counter.
        src_rank: usize,
        /// `host_rank` of the destination instance key.
        dst_host_rank: usize,
        /// `req_id` of the destination instance key.
        dst_req_id: usize,
        /// Generation of the destination instance.
        gen: u64,
        /// Counter value written (must increase monotonically per edge).
        value: u64,
    },
}
