//! Fabric health engine (DESIGN.md §19): per-(peer, path) circuit
//! breakers and per-peer retry budgets.
//!
//! PR 4/5 made individual faults survivable, but every fault is still
//! paid per message: a flaky cross-GVMI path eats the full
//! registration-fail → `FallbackToStaging` round-trip on *every* post,
//! and a browned-out peer can drive correlated retransmission storms
//! bounded only by `MAX_ATTEMPTS` per message. This module adds the
//! degradation layer between those mechanisms and the adaptive policy
//! engine of ROADMAP item 4:
//!
//! * **Circuit breakers**, one per `(peer, path-class)`, fed by a
//!   bounded sliding window of per-path outcomes (cross-registration
//!   results, staged-hop completions, payload-CRC verdicts). A breaker
//!   trips `Closed → Open` when the window's failure rate crosses
//!   [`HealthConfig::trip_permille`]; while open, posts are routed
//!   around the sick path without probing it (cross-GVMI → staging,
//!   staging → host-direct). After [`HealthConfig::probe_cooldown`]
//!   rerouted posts (plus seeded deterministic jitter) the breaker goes
//!   `Open → HalfOpen` and admits exactly one probe; the probe's result
//!   closes or re-opens it.
//! * **Retry budgets**: token buckets per peer, spanning the ctrl plane
//!   (`reliable.rs` spends one token per retransmission) and the data
//!   plane (`proxy.rs` spends one per payload retransmit). An empty
//!   bucket sheds the transfer with a typed
//!   [`crate::OffloadError::RetryBudgetExhausted`] instead of grinding
//!   through the full per-message attempt budget; successful deliveries
//!   refill the bucket, so an isolated fault never sheds.
//!
//! ## Determinism and gating
//!
//! The engine consumes no wall-clock time: the open-state cooldown is
//! counted in rerouted posts and its jitter comes from the same
//! splitmix64 [`FaultRng`] family as fault injection, salted per proxy,
//! so runs are byte-identical across `SIMNET_THREADS`.
//! [`HealthConfig::default`] is *disabled*: every hook collapses to the
//! pre-health behavior, no event is emitted, and fault-free runs stay
//! counter-identical to the committed bench baselines (the same gating
//! discipline as tenants in DESIGN.md §18).

use std::collections::BTreeMap;

use crate::events::HealthPath;
use crate::reliable::FaultRng;

/// Health-engine knobs ([`crate::OffloadConfig::health`]). The default
/// is **disabled** — breakers and budgets only arm when a run opts in
/// via [`HealthConfig::armed`] or the builder methods.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthConfig {
    /// Master switch. Off by default: clean runs stay byte-identical to
    /// the pre-health protocol.
    pub enabled: bool,
    /// Sliding-window length (outcomes) per `(peer, path)` breaker.
    pub window: usize,
    /// Failure-rate trip threshold, in permille of the window.
    pub trip_permille: u32,
    /// Minimum outcomes in the window before the breaker may trip (a
    /// single early failure must not open a breaker).
    pub min_samples: usize,
    /// Rerouted posts an open breaker absorbs before transitioning to
    /// half-open and admitting its single probe. Seeded jitter of up to
    /// a quarter of this value is added per episode.
    pub probe_cooldown: u32,
    /// Ctrl-plane retry-budget bucket capacity (tokens per peer; one
    /// token per retransmission). Zero disables the ctrl budget even
    /// when the engine is enabled.
    pub ctrl_budget: u32,
    /// Tokens returned to a peer's ctrl bucket per acknowledged
    /// delivery, capped at `ctrl_budget`.
    pub ctrl_refill: u32,
    /// Data-plane retry-budget bucket capacity (tokens per peer; one
    /// token per payload retransmit). Zero disables the data budget.
    pub data_budget: u32,
    /// Tokens returned to a peer's data bucket per recovered payload,
    /// capped at `data_budget`.
    pub data_refill: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            enabled: false,
            window: 16,
            trip_permille: 500,
            min_samples: 4,
            probe_cooldown: 8,
            ctrl_budget: 6,
            ctrl_refill: 2,
            data_budget: 4,
            data_refill: 2,
        }
    }
}

impl HealthConfig {
    /// The default knob set with the engine switched on.
    pub fn armed() -> HealthConfig {
        HealthConfig {
            enabled: true,
            ..HealthConfig::default()
        }
    }

    /// Override the breaker trip threshold (permille of the window).
    pub fn with_trip_permille(mut self, pm: u32) -> HealthConfig {
        self.trip_permille = pm;
        self
    }

    /// Override the open-state cooldown (rerouted posts before the
    /// half-open probe).
    pub fn with_probe_cooldown(mut self, posts: u32) -> HealthConfig {
        self.probe_cooldown = posts;
        self
    }

    /// Override the ctrl-plane retry budget `(capacity, refill-per-ack)`.
    pub fn with_ctrl_budget(mut self, cap: u32, refill: u32) -> HealthConfig {
        self.ctrl_budget = cap;
        self.ctrl_refill = refill;
        self
    }

    /// Override the data-plane retry budget `(capacity, refill)`.
    pub fn with_data_budget(mut self, cap: u32, refill: u32) -> HealthConfig {
        self.data_budget = cap;
        self.data_refill = refill;
        self
    }
}

/// Breaker state machine (DESIGN.md §19).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: posts take the primary path; outcomes feed the window.
    Closed,
    /// Tripped: posts are rerouted without touching the sick path.
    Open,
    /// Probing: exactly one in-flight probe decides open vs closed;
    /// everything else keeps the rerouted path.
    HalfOpen,
}

/// What the router decided for one post.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Route {
    /// Breaker closed (or engine disabled): take the primary path.
    Primary,
    /// Breaker open: take the degraded path; the primary path is not
    /// consulted at all.
    FastPath,
    /// Breaker just went half-open and this post is the probe: take the
    /// primary path and report the result via
    /// [`HealthEngine::on_outcome`].
    Probe,
}

/// A state transition the caller must surface as a `ProtoEvent`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BreakerEvent {
    /// `Closed|HalfOpen → Open`.
    Tripped,
    /// `HalfOpen → Closed` (the probe succeeded).
    Closed,
}

/// One `(peer, path)` breaker: bounded outcome ring + state machine.
#[derive(Debug)]
struct Breaker {
    state: BreakerState,
    /// Outcome ring (true = failure), bounded at `cfg.window`.
    ring: Vec<bool>,
    ring_at: usize,
    fails: usize,
    /// Rerouted posts remaining before an open breaker half-opens.
    cooldown: u32,
    /// A half-open probe is in flight (admit no second one).
    probe_inflight: bool,
}

impl Breaker {
    fn new() -> Breaker {
        Breaker {
            state: BreakerState::Closed,
            ring: Vec::new(),
            ring_at: 0,
            fails: 0,
            cooldown: 0,
            probe_inflight: false,
        }
    }

    fn push_outcome(&mut self, window: usize, failed: bool) {
        if window == 0 {
            return;
        }
        if self.ring.len() < window {
            self.ring.push(failed);
        } else {
            let evicted = std::mem::replace(&mut self.ring[self.ring_at], failed);
            if evicted {
                self.fails -= 1;
            }
            self.ring_at = (self.ring_at + 1) % window;
        }
        if failed {
            self.fails += 1;
        }
    }

    fn over_threshold(&self, cfg: &HealthConfig) -> bool {
        self.ring.len() >= cfg.min_samples.max(1)
            && (self.fails as u64) * 1000 >= u64::from(cfg.trip_permille) * self.ring.len() as u64
    }

    fn clear_window(&mut self) {
        self.ring.clear();
        self.ring_at = 0;
        self.fails = 0;
    }
}

/// Token bucket: starts full, spends one per retry, refills (capped) on
/// success. `cap == 0` means unlimited — the budget is disarmed.
#[derive(Debug)]
pub(crate) struct TokenBucket {
    cap: u32,
    refill: u32,
    tokens: u32,
}

impl TokenBucket {
    pub(crate) fn new(cap: u32, refill: u32) -> TokenBucket {
        TokenBucket {
            cap,
            refill,
            tokens: cap,
        }
    }

    /// Take one token; false when the bucket is empty (shed the retry).
    pub(crate) fn try_spend(&mut self) -> bool {
        if self.cap == 0 {
            return true;
        }
        if self.tokens == 0 {
            return false;
        }
        self.tokens -= 1;
        true
    }

    /// Return `refill` tokens, capped at the bucket's capacity.
    pub(crate) fn credit(&mut self) {
        if self.cap > 0 {
            self.tokens = (self.tokens + self.refill).min(self.cap);
        }
    }

    /// Refill to capacity (recovery reset).
    pub(crate) fn reset(&mut self) {
        self.tokens = self.cap;
    }

    #[cfg(test)]
    fn tokens(&self) -> u32 {
        self.tokens
    }
}

/// The per-process health engine: breakers keyed `(peer, path)`, data
/// retry-budget buckets keyed by peer. One lives in each proxy's state;
/// hosts interact with the ctrl-plane budget through `ReliableLink`.
pub(crate) struct HealthEngine {
    cfg: HealthConfig,
    rng: FaultRng,
    breakers: BTreeMap<(usize, HealthPath), Breaker>,
    data_buckets: BTreeMap<usize, TokenBucket>,
}

impl HealthEngine {
    pub(crate) fn new(cfg: HealthConfig, seed: u64, salt: u64) -> HealthEngine {
        HealthEngine {
            cfg,
            rng: FaultRng::new(seed, salt),
            breakers: BTreeMap::new(),
            data_buckets: BTreeMap::new(),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Open-state cooldown for one episode: the configured base plus
    /// seeded jitter of up to a quarter of it (deterministic per engine
    /// instance; no wall clock).
    fn episode_cooldown(&mut self) -> u32 {
        let base = self.cfg.probe_cooldown.max(1);
        base + (self.rng.next_u64() % (u64::from(base / 4) + 1)) as u32
    }

    /// Route one post over `(peer, path)`. Disabled engines and unknown
    /// peers route [`Route::Primary`]; open breakers count the post
    /// against their cooldown and route [`Route::FastPath`] until the
    /// cooldown expires, at which point the breaker half-opens and this
    /// post becomes the single admitted [`Route::Probe`].
    pub(crate) fn route(&mut self, peer: usize, path: HealthPath) -> Route {
        if !self.cfg.enabled {
            return Route::Primary;
        }
        let Some(b) = self.breakers.get_mut(&(peer, path)) else {
            return Route::Primary;
        };
        match b.state {
            BreakerState::Closed => Route::Primary,
            BreakerState::Open => {
                if b.cooldown > 1 {
                    b.cooldown -= 1;
                    Route::FastPath
                } else {
                    b.state = BreakerState::HalfOpen;
                    b.probe_inflight = true;
                    Route::Probe
                }
            }
            BreakerState::HalfOpen => {
                if b.probe_inflight {
                    Route::FastPath
                } else {
                    b.probe_inflight = true;
                    Route::Probe
                }
            }
        }
    }

    /// Feed one path outcome. In `Closed` this slides the failure
    /// window and may trip the breaker; in `HalfOpen` with a probe in
    /// flight it is the probe's verdict (success closes, failure
    /// re-opens). Returns the transition for the caller to emit.
    pub(crate) fn on_outcome(
        &mut self,
        peer: usize,
        path: HealthPath,
        ok: bool,
    ) -> Option<BreakerEvent> {
        if !self.cfg.enabled {
            return None;
        }
        let cfg = self.cfg;
        let b = self
            .breakers
            .entry((peer, path))
            .or_insert_with(Breaker::new);
        match b.state {
            BreakerState::Closed => {
                b.push_outcome(cfg.window, !ok);
                if b.over_threshold(&cfg) {
                    b.state = BreakerState::Open;
                    b.clear_window();
                    b.cooldown = 0; // set below, needs &mut self.rng
                } else {
                    return None;
                }
            }
            BreakerState::HalfOpen if b.probe_inflight => {
                b.probe_inflight = false;
                if ok {
                    b.state = BreakerState::Closed;
                    b.clear_window();
                    return Some(BreakerEvent::Closed);
                }
                b.state = BreakerState::Open;
                b.cooldown = 0;
            }
            // Outcomes landing while open (e.g. a straggling staged hop
            // completing after the trip) keep the window warm but cannot
            // transition the breaker.
            _ => {
                b.push_outcome(cfg.window, !ok);
                return None;
            }
        }
        let cooldown = self.episode_cooldown();
        let b = self.breakers.get_mut(&(peer, path)).expect("just present");
        b.cooldown = cooldown;
        Some(BreakerEvent::Tripped)
    }

    /// Current state of a breaker (implicitly closed when untracked).
    #[cfg(test)]
    pub(crate) fn state(&self, peer: usize, path: HealthPath) -> BreakerState {
        self.breakers
            .get(&(peer, path))
            .map(|b| b.state)
            .unwrap_or(BreakerState::Closed)
    }

    /// Whether any tracked breaker is not closed (degraded-mode flag).
    #[cfg(test)]
    pub(crate) fn any_degraded(&self) -> bool {
        self.breakers
            .values()
            .any(|b| b.state != BreakerState::Closed)
    }

    /// Spend one data-plane retry token for `peer`; false sheds the
    /// retry. Buckets start full and are created on first use.
    pub(crate) fn try_spend_data(&mut self, peer: usize) -> bool {
        if !self.cfg.enabled {
            return true;
        }
        let cfg = self.cfg;
        self.data_buckets
            .entry(peer)
            .or_insert_with(|| TokenBucket::new(cfg.data_budget, cfg.data_refill))
            .try_spend()
    }

    /// A retried payload for `peer` recovered: refill its bucket.
    pub(crate) fn credit_data(&mut self, peer: usize) {
        if let Some(b) = self.data_buckets.get_mut(&peer) {
            b.credit();
        }
    }

    /// Restart recovery: every tracked breaker drops to half-open with
    /// no probe in flight (the next routed post probes immediately) and
    /// every data bucket refills. Peer state learned before the crash
    /// is stale; the probe re-validates each path before trusting it.
    pub(crate) fn reset_half_open(&mut self) {
        for b in self.breakers.values_mut() {
            b.state = BreakerState::HalfOpen;
            b.probe_inflight = false;
            b.clear_window();
            b.cooldown = 0;
        }
        for bucket in self.data_buckets.values_mut() {
            bucket.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed() -> HealthConfig {
        HealthConfig::armed()
    }

    #[test]
    fn disabled_engine_is_inert() {
        let mut e = HealthEngine::new(HealthConfig::default(), 7, 1);
        assert!(!e.enabled());
        for _ in 0..64 {
            assert_eq!(e.route(0, HealthPath::CrossGvmi), Route::Primary);
            assert_eq!(e.on_outcome(0, HealthPath::CrossGvmi, false), None);
            assert!(e.try_spend_data(0));
        }
        assert_eq!(e.state(0, HealthPath::CrossGvmi), BreakerState::Closed);
        assert!(!e.any_degraded());
    }

    #[test]
    fn breaker_trips_reroutes_probes_and_recovers() {
        let mut e = HealthEngine::new(armed(), 7, 1);
        // Sustained failures trip the breaker once min_samples is met.
        let mut tripped = false;
        for _ in 0..armed().min_samples {
            tripped = matches!(
                e.on_outcome(3, HealthPath::CrossGvmi, false),
                Some(BreakerEvent::Tripped)
            );
        }
        assert!(tripped, "failure streak must trip");
        assert_eq!(e.state(3, HealthPath::CrossGvmi), BreakerState::Open);
        assert!(e.any_degraded());
        // While open: fast-path until the cooldown expires, then exactly
        // one probe.
        let mut probes = 0;
        let mut fastpaths = 0;
        for _ in 0..64 {
            match e.route(3, HealthPath::CrossGvmi) {
                Route::FastPath => fastpaths += 1,
                Route::Probe => {
                    probes += 1;
                    break;
                }
                Route::Primary => panic!("open breaker must not route primary"),
            }
        }
        assert_eq!(probes, 1);
        assert!(fastpaths >= 1, "cooldown absorbs posts before the probe");
        // Posts while the probe is in flight keep fast-pathing.
        assert_eq!(e.route(3, HealthPath::CrossGvmi), Route::FastPath);
        // Probe success closes; traffic returns to the primary path.
        assert_eq!(
            e.on_outcome(3, HealthPath::CrossGvmi, true),
            Some(BreakerEvent::Closed)
        );
        assert_eq!(e.state(3, HealthPath::CrossGvmi), BreakerState::Closed);
        assert_eq!(e.route(3, HealthPath::CrossGvmi), Route::Primary);
        assert!(!e.any_degraded());
    }

    #[test]
    fn failed_probe_reopens() {
        let mut e = HealthEngine::new(armed(), 7, 2);
        for _ in 0..armed().min_samples {
            e.on_outcome(1, HealthPath::Staging, false);
        }
        while e.route(1, HealthPath::Staging) != Route::Probe {}
        assert_eq!(
            e.on_outcome(1, HealthPath::Staging, false),
            Some(BreakerEvent::Tripped)
        );
        assert_eq!(e.state(1, HealthPath::Staging), BreakerState::Open);
        // And the next episode admits exactly one more probe.
        let mut probes = 0;
        for _ in 0..64 {
            if e.route(1, HealthPath::Staging) == Route::Probe {
                probes += 1;
            }
        }
        assert_eq!(probes, 1, "one probe per half-open episode");
    }

    #[test]
    fn mixed_outcomes_below_threshold_never_trip() {
        // 1-in-4 failures is below the 500‰ default threshold.
        let mut e = HealthEngine::new(armed(), 9, 3);
        for i in 0..128 {
            assert_eq!(e.on_outcome(0, HealthPath::CrossGvmi, i % 4 != 0), None);
        }
        assert_eq!(e.state(0, HealthPath::CrossGvmi), BreakerState::Closed);
    }

    #[test]
    fn reset_half_open_probes_every_tracked_breaker() {
        let mut e = HealthEngine::new(armed(), 7, 4);
        for _ in 0..armed().min_samples {
            e.on_outcome(2, HealthPath::CrossGvmi, false);
        }
        assert_eq!(e.state(2, HealthPath::CrossGvmi), BreakerState::Open);
        e.reset_half_open();
        assert_eq!(e.state(2, HealthPath::CrossGvmi), BreakerState::HalfOpen);
        // First post after the reset is the probe; success closes.
        assert_eq!(e.route(2, HealthPath::CrossGvmi), Route::Probe);
        assert_eq!(
            e.on_outcome(2, HealthPath::CrossGvmi, true),
            Some(BreakerEvent::Closed)
        );
    }

    #[test]
    fn data_budget_sheds_then_refills_on_recovery() {
        let cfg = armed().with_data_budget(2, 1);
        let mut e = HealthEngine::new(cfg, 7, 5);
        assert!(e.try_spend_data(4));
        assert!(e.try_spend_data(4));
        assert!(!e.try_spend_data(4), "empty bucket sheds");
        e.credit_data(4);
        assert!(e.try_spend_data(4), "recovery refills");
        // Peers have independent buckets.
        assert!(e.try_spend_data(5));
    }

    #[test]
    fn same_seed_same_cooldowns() {
        let mk = || {
            let mut e = HealthEngine::new(armed(), 11, 6);
            for _ in 0..armed().min_samples {
                e.on_outcome(0, HealthPath::CrossGvmi, false);
            }
            let mut fastpaths = 0u32;
            while e.route(0, HealthPath::CrossGvmi) == Route::FastPath {
                fastpaths += 1;
            }
            fastpaths
        };
        assert_eq!(mk(), mk(), "cooldown jitter is seed-deterministic");
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // Satellite: under arbitrary interleavings of outcomes and
            // routed posts, a half-open episode never admits a second
            // probe before the first one's verdict arrives.
            #[test]
            fn at_most_one_probe_in_flight(
                steps in prop::collection::vec((0u8..3, any::<bool>()), 1..400),
            ) {
                let mut e = HealthEngine::new(armed(), 13, 7);
                let mut inflight = 0u32;
                for (op, ok) in steps {
                    match op {
                        0 => {
                            if e.route(0, HealthPath::CrossGvmi) == Route::Probe {
                                inflight += 1;
                            }
                        }
                        1 => {
                            // A probe verdict (when one is in flight)
                            // retires it; other outcomes just feed the
                            // window.
                            let probing = e.state(0, HealthPath::CrossGvmi)
                                == BreakerState::HalfOpen
                                && inflight > 0;
                            e.on_outcome(0, HealthPath::CrossGvmi, ok);
                            if probing {
                                inflight -= 1;
                            }
                        }
                        _ => {
                            // Restart recovery mid-stream: tracked
                            // breakers half-open, probe slot free again.
                            e.reset_half_open();
                            inflight = 0;
                        }
                    }
                    prop_assert!(
                        inflight <= 1,
                        "a second probe was admitted while one was in flight"
                    );
                }
            }

            // Satellite: the token bucket conserves tokens — after any
            // spend/credit sequence, tokens held plus tokens spent
            // equals tokens granted (capacity + credits actually
            // applied), and the level never exceeds capacity.
            #[test]
            fn token_bucket_conserves(
                cap in 1u32..16,
                refill in 0u32..8,
                ops in prop::collection::vec(any::<bool>(), 0..200),
            ) {
                let mut b = TokenBucket::new(cap, refill);
                let mut spent = 0u64;
                let mut granted = u64::from(cap);
                for spend in ops {
                    if spend {
                        let before = b.tokens();
                        if b.try_spend() {
                            spent += 1;
                            prop_assert_eq!(b.tokens(), before - 1);
                        } else {
                            prop_assert_eq!(before, 0, "shed only when empty");
                        }
                    } else {
                        let before = b.tokens();
                        b.credit();
                        // Credits above the cap are clipped, not banked.
                        granted += u64::from(b.tokens() - before);
                    }
                    prop_assert!(b.tokens() <= cap, "level never exceeds capacity");
                    prop_assert_eq!(
                        u64::from(b.tokens()) + spent,
                        granted,
                        "held + spent == granted"
                    );
                }
            }
        }
    }
}
