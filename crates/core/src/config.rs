//! Configuration of the offload framework, including the ablation switches
//! called out in DESIGN.md and the fault-injection plan consumed by the
//! reliability layer (DESIGN.md §13).

use std::fmt;

use crate::health::HealthConfig;
use crate::reliable::RetryKnobs;

/// Identity of one tenant (job) sharing the offload plane. Ranks map to
/// tenants round-robin (`rank % tenants.len()`); tenant 0 is the
/// implicit identity of every rank in a single-tenant run.
pub type TenantId = usize;

/// Per-tenant overload policy and scheduling weight (DESIGN.md §18).
///
/// All-zero (the [`Default`]) means "inherit the global knobs": soft
/// quota falls back to [`OffloadConfig::queue_cap`], the hard quota is
/// unbounded, and the DRR weight is 1. A config whose `tenants` list
/// holds zero or one specs behaves byte-identically to the
/// pre-multi-tenant engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TenantSpec {
    /// Soft quota: the tenant's credit window — admitted-but-unfinished
    /// basic descriptors a rank of this tenant may have in flight before
    /// further posts are deferred (`CreditDeferred`). 0 = inherit the
    /// global `queue_cap`.
    pub soft_quota: usize,
    /// Hard quota: total live basic posts (admitted + deferred) a rank
    /// of this tenant may hold before new posts are shed with a typed
    /// [`crate::OffloadError::QuotaExceeded`]. 0 = never shed.
    pub hard_quota: usize,
    /// Deficit-round-robin weight (quantum) of this tenant's deferred
    /// queue, and its proportional share of the proxy descriptor pool.
    /// 0 = weight 1.
    pub weight: usize,
}

impl TenantSpec {
    /// The inherit-everything spec (see the type-level docs).
    pub const fn inherit() -> TenantSpec {
        TenantSpec {
            soft_quota: 0,
            hard_quota: 0,
            weight: 0,
        }
    }

    /// Builder: set the soft quota.
    pub const fn with_soft_quota(mut self, q: usize) -> TenantSpec {
        self.soft_quota = q;
        self
    }

    /// Builder: set the hard quota.
    pub const fn with_hard_quota(mut self, q: usize) -> TenantSpec {
        self.hard_quota = q;
        self
    }

    /// Builder: set the DRR weight.
    pub const fn with_weight(mut self, w: usize) -> TenantSpec {
        self.weight = w;
        self
    }
}

/// Which mechanism moves the payload (paper Fig. 6).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DataPath {
    /// Cross-GVMI: the proxy cross-registers host memory and RDMA-writes
    /// it straight to the destination host — no staging hop. The paper's
    /// proposed mechanism.
    Gvmi,
    /// Staging: the host first writes the payload into DPU memory over
    /// PCIe; the proxy then forwards it from its own memory. The
    /// BluesMPI-style mechanism, generalized to any pattern.
    Staging,
}

/// Deliberate protocol faults for checker validation. Each variant makes
/// the engine violate exactly one invariant so the conformance checker
/// and schedule explorer can prove they detect it. `None` in all real
/// runs.
///
/// Deprecated alias: new code should build a [`FaultPlan`] instead. Every
/// variant converts losslessly via `FaultPlan::from`, and the legacy
/// behaviour (an unrecovered drop / a skipped cross-registration) is
/// preserved so the checker's detection proofs keep holding.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FaultInjection {
    /// No fault: the engine follows the protocol.
    #[default]
    None,
    /// The proxy drops the first `FinRecv` it would send. The receiving
    /// rank waits forever, which the explorer reports as a deadlock.
    DropFirstFin,
    /// The proxy skips cross-registration and fabricates `mkey2 = mkey`.
    /// The conformance checker reports an `Mkey2Used`-before-`CrossReg`
    /// violation.
    SkipCrossReg,
}

/// Seeded probabilistic fault plan for the ctrl plane (DESIGN.md §13).
///
/// Rates are in permille (parts per thousand) so plans stay `Eq`/`Copy`
/// and filename-safe for the explorer's failure dumps. A plan with any
/// nonzero rate or a crash step arms the reliability layer (seq/ack
/// envelopes, retransmission timers, receiver dedup); the all-zero plan
/// leaves the engine byte-identical to the pre-reliability protocol so
/// committed bench baselines stay unchanged.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Probability (permille) that a ctrl message or ack is dropped.
    pub drop_pm: u16,
    /// Probability (permille) that a ctrl message is delivered twice.
    pub dup_pm: u16,
    /// Probability (permille) that a ctrl message is delayed by
    /// [`delay_ns`](FaultPlan::delay_ns) instead of sent immediately.
    pub delay_pm: u16,
    /// Virtual-time delay applied to delayed messages, in nanoseconds.
    pub delay_ns: u64,
    /// Crash each proxy once, after it has handled this many ctrl
    /// packets (0 = never). The proxy restarts with a bumped epoch.
    pub crash_at_step: u32,
    /// Probability (permille) that one cross-GVMI registration attempt
    /// fails; the transfer falls back to the staging path.
    pub xreg_fail_pm: u16,
    /// Probability (permille) that an RDMA payload lands with one byte
    /// flipped (data-plane fault; arms end-to-end CRC verification).
    pub flip_pm: u16,
    /// Probability (permille) that an RDMA payload lands torn: only a
    /// random prefix of the bytes is written.
    pub torn_pm: u16,
    /// Probability (permille) that an RDMA payload is dropped entirely on
    /// the wire while the operation still completes (silent loss).
    pub data_drop_pm: u16,
    /// Targeted fault: drop every transmit attempt of `GroupPacket`
    /// ctrl messages (including retransmissions), forcing the reliability
    /// layer to abandon them. Proves `Group_Wait` surfaces a typed error
    /// instead of stalling. Arms the reliability layer.
    pub drop_group_packets: bool,
    /// Seed for the fault RNG (independent of the schedule seed).
    pub seed: u64,
    /// Legacy one-shot fault: drop the first FIN, never retransmit.
    pub drop_first_fin: bool,
    /// Legacy one-shot fault: skip cross-registration, use mkey as mkey2.
    pub skip_cross_reg: bool,
}

impl FaultPlan {
    /// The empty plan: no faults, reliability layer disarmed.
    pub const fn none() -> FaultPlan {
        FaultPlan {
            drop_pm: 0,
            dup_pm: 0,
            delay_pm: 0,
            delay_ns: 0,
            crash_at_step: 0,
            xreg_fail_pm: 0,
            flip_pm: 0,
            torn_pm: 0,
            data_drop_pm: 0,
            drop_group_packets: false,
            seed: 0,
            drop_first_fin: false,
            skip_cross_reg: false,
        }
    }

    /// Whether the seq/ack reliability machinery is armed. The legacy
    /// one-shot faults deliberately do *not* arm it: they exist to prove
    /// the checker still detects unrecovered faults.
    pub fn reliable(&self) -> bool {
        self.drop_pm > 0
            || self.dup_pm > 0
            || self.delay_pm > 0
            || self.crash_at_step > 0
            || self.drop_group_packets
    }

    /// Whether data-plane payload faults are armed. Arming any of them
    /// also arms the end-to-end CRC integrity layer (checksums in RTS and
    /// group entries, verification at the posting proxy's CQE, bounded
    /// data-path retransmission).
    pub fn payload_faults(&self) -> bool {
        self.flip_pm > 0 || self.torn_pm > 0 || self.data_drop_pm > 0
    }

    /// Whether cross-GVMI registration may fail (staging fallback armed).
    /// Hosts then carry both an mkey and an rkey in each RTS so the proxy
    /// can take either path per message.
    pub fn fallback_enabled(&self) -> bool {
        self.xreg_fail_pm > 0
    }

    /// Whether any fault at all is configured.
    pub fn is_none(&self) -> bool {
        *self == FaultPlan::none()
    }

    /// Set the fault RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// Parse a comma-separated `key=value` list, e.g.
    /// `drop=100,dup=50,delay=20:5000,crash=40,xreg=80,seed=7` or the
    /// data-plane knobs `flip=5,torn=5,ddrop=3`.
    /// `delay` takes `permille:nanoseconds`. Unknown keys are an error.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault plan: `{part}` is not key=value"))?;
            let num = |v: &str| -> Result<u64, String> {
                v.parse::<u64>()
                    .map_err(|_| format!("fault plan: `{v}` is not a number in `{part}`"))
            };
            match key {
                "drop" => plan.drop_pm = num(value)? as u16,
                "dup" => plan.dup_pm = num(value)? as u16,
                "delay" => {
                    let (pm, ns) = value
                        .split_once(':')
                        .ok_or_else(|| format!("fault plan: delay wants pm:ns, got `{value}`"))?;
                    plan.delay_pm = num(pm)? as u16;
                    plan.delay_ns = num(ns)?;
                }
                "crash" => plan.crash_at_step = num(value)? as u32,
                "xreg" => plan.xreg_fail_pm = num(value)? as u16,
                "flip" => plan.flip_pm = num(value)? as u16,
                "torn" => plan.torn_pm = num(value)? as u16,
                "ddrop" => plan.data_drop_pm = num(value)? as u16,
                "seed" => plan.seed = num(value)?,
                other => return Err(format!("fault plan: unknown key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Read a plan from the `FAULT_PLAN` environment variable (see the
    /// README fault-injection quickstart). Unset or empty means
    /// [`FaultPlan::none`]; a malformed value is an error.
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var("FAULT_PLAN") {
            Ok(v) if !v.trim().is_empty() => FaultPlan::parse(&v),
            _ => Ok(FaultPlan::none()),
        }
    }
}

impl From<FaultInjection> for FaultPlan {
    fn from(fault: FaultInjection) -> FaultPlan {
        match fault {
            FaultInjection::None => FaultPlan::none(),
            FaultInjection::DropFirstFin => FaultPlan {
                drop_first_fin: true,
                ..FaultPlan::none()
            },
            FaultInjection::SkipCrossReg => FaultPlan {
                skip_cross_reg: true,
                ..FaultPlan::none()
            },
        }
    }
}

// Filename-safe: the explorer embeds `{:?}` of the plan in failure-dump
// names, so no spaces, braces, or colons.
impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return write!(f, "none");
        }
        if self.drop_first_fin {
            return write!(f, "drop-first-fin");
        }
        if self.skip_cross_reg {
            return write!(f, "skip-cross-reg");
        }
        write!(
            f,
            "d{}-u{}-y{}.{}-x{}-c{}-s{}",
            self.drop_pm,
            self.dup_pm,
            self.delay_pm,
            self.delay_ns,
            self.xreg_fail_pm,
            self.crash_at_step,
            self.seed
        )?;
        if self.payload_faults() {
            write!(
                f,
                "-p{}.{}.{}",
                self.flip_pm, self.torn_pm, self.data_drop_pm
            )?;
        }
        if self.drop_group_packets {
            write!(f, "-G")?;
        }
        Ok(())
    }
}

/// Framework configuration. One instance shared by hosts and proxies of a
/// run (like an `MPIRUN` environment).
#[derive(Clone, Debug)]
pub struct OffloadConfig {
    /// Payload mechanism.
    pub data_path: DataPath,
    /// Use the host/DPU GVMI registration caches (paper §VII-B). Off =
    /// register on every transfer (ablation 2).
    pub use_gvmi_cache: bool,
    /// Use the group-request metadata caches (paper §VII-D). Off = full
    /// metadata exchange on every `Group_Offload_call` (ablation 3).
    pub use_group_cache: bool,
    /// Modelled wire size of one control message (RTS/RTR/FIN/EXEC).
    pub ctrl_bytes: u64,
    /// Modelled wire size of one group-packet entry.
    pub entry_bytes: u64,
    /// ARM time the proxy spends interpreting one queue/packet entry.
    pub proxy_entry_overhead: simnet::SimDelta,
    /// Bound on the proxy's pending send+recv descriptor queues
    /// (0 = unbounded, the PR-4-identical default). When armed, hosts
    /// run credit-based admission: at most this many un-FINned basic
    /// descriptors in flight per proxy, overflow posts are deferred
    /// host-side, and a racing over-admission is bounced with a
    /// `QueueFull` nack the host retries after a backoff.
    pub queue_cap: usize,
    /// Bound on the number of per-message staging buffers a proxy keeps
    /// (0 = unbounded). When armed, idle buffers are reclaimed LRU and
    /// reused for same-size transfers instead of growing the pool.
    pub staging_cap: usize,
    /// Bound on the durable per-proxy FIN journal (0 = unbounded). When
    /// armed, hosts piggyback their contiguous completion horizon on
    /// RTS/RTR and the proxy truncates journal entries every host has
    /// acked past once the journal exceeds the cap.
    pub journal_cap: usize,
    /// Memory budget (entries) for the host registration caches
    /// (0 = unbounded). When armed, caches evict LRU — never an entry
    /// pinned by an in-flight request — and evicted keys are
    /// deregistered from the fabric.
    pub cache_budget: usize,
    /// Tenant roster (DESIGN.md §18). Empty or a single spec = the
    /// implicit single-tenant default: every rank is tenant 0 and the
    /// engine is byte-identical to the pre-multi-tenant protocol. Two
    /// or more specs arm per-tenant admission: ranks map to tenants
    /// round-robin, each tenant gets its own GVMI cross-registration
    /// namespace, staging pool and journal partition at the proxy, a
    /// weighted share of the proxy descriptor pool, and the host
    /// schedules deferred posts by deficit round-robin and enforces the
    /// per-tenant soft/hard quotas.
    pub tenants: Vec<TenantSpec>,
    /// Fault plan (checker validation and fault-soak only).
    pub fault: FaultPlan,
    /// Ctrl-plane retransmission backoff floor (PR 10 lifted the former
    /// `RETX_BASE` const; also paces data-path and backpressure retries).
    pub retx_base: simnet::SimDelta,
    /// Retransmission backoff ceiling (former `RETX_CAP` const).
    pub retx_cap: simnet::SimDelta,
    /// Ctrl-plane send attempts (original + retransmits) before a
    /// message is abandoned (former `MAX_ATTEMPTS` const).
    pub ctrl_max_attempts: u32,
    /// Data-path delivery attempts before a transfer fails integrity
    /// permanently (former `DATA_RETX_MAX` const in `proxy.rs`).
    pub data_retx_max: u32,
    /// Fabric health engine: per-(peer, path) circuit breakers and
    /// retry budgets (DESIGN.md §19). Disabled by default — clean runs
    /// stay counter-identical to the pre-health engine.
    pub health: HealthConfig,
}

impl Default for OffloadConfig {
    fn default() -> Self {
        OffloadConfig {
            data_path: DataPath::Gvmi,
            use_gvmi_cache: true,
            use_group_cache: true,
            ctrl_bytes: 64,
            entry_bytes: 48,
            proxy_entry_overhead: simnet::SimDelta::from_ns(120),
            queue_cap: 0,
            staging_cap: 0,
            journal_cap: 0,
            cache_budget: 0,
            tenants: Vec::new(),
            fault: FaultPlan::none(),
            retx_base: crate::reliable::DEFAULT_RETX_BASE,
            retx_cap: crate::reliable::DEFAULT_RETX_CAP,
            ctrl_max_attempts: crate::reliable::DEFAULT_CTRL_MAX_ATTEMPTS,
            data_retx_max: 8,
            health: HealthConfig::default(),
        }
    }
}

impl OffloadConfig {
    /// The paper's proposed configuration (GVMI + both caches).
    pub fn proposed() -> Self {
        Self::default()
    }

    /// Staging-based configuration (generalized BluesMPI mechanism).
    pub fn staging() -> Self {
        OffloadConfig {
            data_path: DataPath::Staging,
            ..Self::default()
        }
    }

    /// Disable the GVMI registration caches (ablation).
    pub fn without_gvmi_cache(mut self) -> Self {
        self.use_gvmi_cache = false;
        self
    }

    /// Disable the group metadata caches (ablation).
    pub fn without_group_cache(mut self) -> Self {
        self.use_group_cache = false;
        self
    }

    /// Inject a fault plan (checker validation and fault-soak only).
    /// Accepts a [`FaultPlan`] or a legacy [`FaultInjection`] variant.
    pub fn with_fault<F: Into<FaultPlan>>(mut self, fault: F) -> Self {
        self.fault = fault.into();
        self
    }

    /// Bound the proxy descriptor queues and arm credit-based admission.
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Bound the proxy staging-buffer pool.
    pub fn with_staging_cap(mut self, cap: usize) -> Self {
        self.staging_cap = cap;
        self
    }

    /// Bound the durable per-proxy FIN journal.
    pub fn with_journal_cap(mut self, cap: usize) -> Self {
        self.journal_cap = cap;
        self
    }

    /// Bound the host registration caches to a memory budget (entries).
    pub fn with_cache_budget(mut self, budget: usize) -> Self {
        self.cache_budget = budget;
        self
    }

    /// Install a tenant roster (two or more specs arm per-tenant
    /// admission; see [`OffloadConfig::tenants`]).
    pub fn with_tenants(mut self, tenants: Vec<TenantSpec>) -> Self {
        self.tenants = tenants;
        self
    }

    /// Install a health-engine config (circuit breakers + retry
    /// budgets; DESIGN.md §19).
    pub fn with_health(mut self, health: HealthConfig) -> Self {
        self.health = health;
        self
    }

    /// Tune the retry pacing knobs (backoff floor/ceiling, ctrl and
    /// data attempt bounds) lifted from the former compile-time consts.
    pub fn with_retry_tuning(
        mut self,
        base: simnet::SimDelta,
        cap: simnet::SimDelta,
        ctrl_max_attempts: u32,
        data_retx_max: u32,
    ) -> Self {
        self.retx_base = base;
        self.retx_cap = cap;
        self.ctrl_max_attempts = ctrl_max_attempts;
        self.data_retx_max = data_retx_max;
        self
    }

    /// The [`RetryKnobs`] a [`crate::reliable::ReliableLink`] should run
    /// with. `with_budget` arms the per-peer ctrl retry budget — hosts
    /// pass true; proxies pass false (a budget-shed proxy FIN could
    /// wedge a completion, so the proxy side stays attempt-bounded
    /// only). The budget arms only when the health engine is enabled.
    pub(crate) fn ctrl_knobs(&self, with_budget: bool) -> RetryKnobs {
        RetryKnobs {
            base: self.retx_base,
            cap: self.retx_cap,
            max_attempts: self.ctrl_max_attempts,
            budget: if with_budget && self.health.enabled {
                Some((self.health.ctrl_budget, self.health.ctrl_refill))
            } else {
                None
            },
        }
    }

    /// Whether per-tenant admission is armed (two or more tenants).
    pub fn multi_tenant(&self) -> bool {
        self.tenants.len() > 1
    }

    /// The tenant a rank belongs to: round-robin over the roster, and
    /// tenant 0 for everyone in a single-tenant run.
    pub fn tenant_of(&self, rank: usize) -> TenantId {
        if self.tenants.len() > 1 {
            rank % self.tenants.len()
        } else {
            0
        }
    }

    /// The spec of `tenant` ([`TenantSpec::inherit`] when the roster
    /// does not cover it).
    pub fn tenant_spec(&self, tenant: TenantId) -> TenantSpec {
        self.tenants
            .get(tenant)
            .copied()
            .unwrap_or(TenantSpec::inherit())
    }

    /// Effective soft quota (credit window) of `tenant`: its spec, or
    /// the global `queue_cap` when the spec inherits (0 = unbounded,
    /// exactly like a disarmed `queue_cap`).
    pub fn tenant_soft_quota(&self, tenant: TenantId) -> usize {
        let q = self.tenant_spec(tenant).soft_quota;
        if q == 0 {
            self.queue_cap
        } else {
            q
        }
    }

    /// Effective hard quota of `tenant` (0 = never shed).
    pub fn tenant_hard_quota(&self, tenant: TenantId) -> usize {
        self.tenant_spec(tenant).hard_quota
    }

    /// Effective DRR weight of `tenant` (at least 1).
    pub fn tenant_weight(&self, tenant: TenantId) -> usize {
        self.tenant_spec(tenant).weight.max(1)
    }

    /// The tenant's reserved share of the proxy descriptor pool:
    /// `queue_cap` split proportionally to the DRR weights, each
    /// tenant's slice at least 1 slot so no tenant can be starved
    /// outright. Meaningful only when both the queue cap and the
    /// multi-tenant roster are armed; otherwise the whole pool.
    pub fn tenant_share(&self, tenant: TenantId) -> usize {
        if !self.multi_tenant() || self.queue_cap == 0 {
            return self.queue_cap;
        }
        let total: usize = (0..self.tenants.len()).map(|t| self.tenant_weight(t)).sum();
        (self.queue_cap * self.tenant_weight(tenant) / total.max(1)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposed_uses_gvmi_and_caches() {
        let c = OffloadConfig::proposed();
        assert_eq!(c.data_path, DataPath::Gvmi);
        assert!(c.use_gvmi_cache && c.use_group_cache);
    }

    #[test]
    fn ablation_builders() {
        let c = OffloadConfig::staging()
            .without_gvmi_cache()
            .without_group_cache();
        assert_eq!(c.data_path, DataPath::Staging);
        assert!(!c.use_gvmi_cache && !c.use_group_cache);
    }

    #[test]
    fn fault_plan_arming_rules() {
        assert!(!FaultPlan::none().reliable());
        assert!(FaultPlan::none().is_none());
        // Legacy one-shot faults must NOT arm the reliability layer: the
        // checker proves they stay detectable (deadlock / violation).
        assert!(!FaultPlan::from(FaultInjection::DropFirstFin).reliable());
        assert!(!FaultPlan::from(FaultInjection::SkipCrossReg).reliable());
        let lossy = FaultPlan {
            drop_pm: 100,
            ..FaultPlan::none()
        };
        assert!(lossy.reliable() && !lossy.fallback_enabled());
        let flaky_reg = FaultPlan {
            xreg_fail_pm: 50,
            ..FaultPlan::none()
        };
        assert!(flaky_reg.fallback_enabled() && !flaky_reg.reliable());
    }

    #[test]
    fn fault_plan_parse_round_trip() {
        let plan = FaultPlan::parse("drop=100, dup=50, delay=20:5000, crash=40, xreg=80, seed=7")
            .expect("parses");
        assert_eq!(plan.drop_pm, 100);
        assert_eq!(plan.dup_pm, 50);
        assert_eq!(plan.delay_pm, 20);
        assert_eq!(plan.delay_ns, 5000);
        assert_eq!(plan.crash_at_step, 40);
        assert_eq!(plan.xreg_fail_pm, 80);
        assert_eq!(plan.seed, 7);
        assert_eq!(FaultPlan::parse("").expect("empty ok"), FaultPlan::none());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("drop").is_err());
    }

    #[test]
    fn fault_plan_debug_is_filename_safe() {
        let plan = FaultPlan::parse("drop=100,dup=50,delay=20:5000,crash=40,xreg=80,seed=7")
            .expect("parses");
        let names = [
            format!("{:?}", FaultPlan::none()),
            format!("{:?}", FaultPlan::from(FaultInjection::DropFirstFin)),
            format!("{:?}", FaultPlan::from(FaultInjection::SkipCrossReg)),
            format!("{plan:?}"),
        ];
        assert_eq!(names[0], "none");
        assert_eq!(names[1], "drop-first-fin");
        assert_eq!(names[2], "skip-cross-reg");
        for name in &names {
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '.'),
                "{name} is not filename-safe"
            );
        }
    }

    #[test]
    fn payload_fault_parse_arming_and_debug() {
        let plan = FaultPlan::parse("flip=5,torn=4,ddrop=3,seed=9").expect("parses");
        assert_eq!((plan.flip_pm, plan.torn_pm, plan.data_drop_pm), (5, 4, 3));
        assert!(plan.payload_faults());
        // Payload faults alone do not arm the ctrl-plane machinery.
        assert!(!plan.reliable());
        let name = format!("{plan:?}");
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '.'),
            "{name} is not filename-safe"
        );
        assert!(name.ends_with("-p5.4.3"), "{name}");
        // The targeted group-packet drop arms the reliability layer.
        let grp = FaultPlan {
            drop_group_packets: true,
            ..FaultPlan::none()
        };
        assert!(grp.reliable() && !grp.payload_faults());
        assert!(format!("{grp:?}").ends_with("-G"));
    }

    #[test]
    fn bound_knobs_default_unbounded() {
        let c = OffloadConfig::proposed();
        assert_eq!(
            (c.queue_cap, c.staging_cap, c.journal_cap, c.cache_budget),
            (0, 0, 0, 0)
        );
        let c = OffloadConfig::proposed()
            .with_queue_cap(4)
            .with_staging_cap(2)
            .with_journal_cap(16)
            .with_cache_budget(8);
        assert_eq!(
            (c.queue_cap, c.staging_cap, c.journal_cap, c.cache_budget),
            (4, 2, 16, 8)
        );
    }

    #[test]
    fn single_tenant_default_is_disarmed() {
        let c = OffloadConfig::proposed();
        assert!(!c.multi_tenant());
        assert_eq!(c.tenant_of(0), 0);
        assert_eq!(c.tenant_of(7), 0);
        // One spec is still single-tenant: the roster must hold at
        // least two tenants to change anything.
        let c = OffloadConfig::proposed().with_tenants(vec![TenantSpec::inherit()]);
        assert!(!c.multi_tenant());
        assert_eq!(c.tenant_of(5), 0);
    }

    #[test]
    fn tenant_mapping_is_round_robin() {
        let c = OffloadConfig::proposed()
            .with_tenants(vec![TenantSpec::inherit(), TenantSpec::inherit()]);
        assert!(c.multi_tenant());
        assert_eq!(c.tenant_of(0), 0);
        assert_eq!(c.tenant_of(1), 1);
        assert_eq!(c.tenant_of(2), 0);
        assert_eq!(c.tenant_of(3), 1);
    }

    #[test]
    fn tenant_quota_zero_inherits_global() {
        let c = OffloadConfig::proposed()
            .with_queue_cap(6)
            .with_tenants(vec![
                TenantSpec::inherit(),
                TenantSpec::inherit().with_soft_quota(2).with_hard_quota(4),
            ]);
        // Spec 0 inherits: soft quota = global queue_cap, hard = off.
        assert_eq!(c.tenant_soft_quota(0), 6);
        assert_eq!(c.tenant_hard_quota(0), 0);
        // Spec 1 overrides both.
        assert_eq!(c.tenant_soft_quota(1), 2);
        assert_eq!(c.tenant_hard_quota(1), 4);
        // Out-of-roster tenants inherit everything.
        assert_eq!(c.tenant_soft_quota(9), 6);
        assert_eq!(c.tenant_weight(9), 1);
    }

    #[test]
    fn tenant_shares_split_the_pool_by_weight() {
        let c = OffloadConfig::proposed()
            .with_queue_cap(8)
            .with_tenants(vec![
                TenantSpec::inherit().with_weight(3),
                TenantSpec::inherit(),
            ]);
        assert_eq!(c.tenant_share(0), 6);
        assert_eq!(c.tenant_share(1), 2);
        // Even a zero-weight rounding victim keeps one slot.
        let c = OffloadConfig::proposed()
            .with_queue_cap(4)
            .with_tenants(vec![
                TenantSpec::inherit().with_weight(100),
                TenantSpec::inherit(),
            ]);
        assert_eq!(c.tenant_share(1), 1);
        // Single-tenant or uncapped: the whole pool.
        assert_eq!(
            OffloadConfig::proposed().with_queue_cap(4).tenant_share(0),
            4
        );
        assert_eq!(
            OffloadConfig::proposed()
                .with_tenants(vec![TenantSpec::inherit(), TenantSpec::inherit()])
                .tenant_share(1),
            0
        );
    }

    #[test]
    fn with_fault_accepts_both_forms() {
        let legacy = OffloadConfig::proposed().with_fault(FaultInjection::SkipCrossReg);
        assert!(legacy.fault.skip_cross_reg);
        let plan = OffloadConfig::proposed().with_fault(FaultPlan {
            drop_pm: 100,
            ..FaultPlan::none()
        });
        assert!(plan.fault.reliable());
    }
}
