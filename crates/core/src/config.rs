//! Configuration of the offload framework, including the ablation switches
//! called out in DESIGN.md.

/// Which mechanism moves the payload (paper Fig. 6).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DataPath {
    /// Cross-GVMI: the proxy cross-registers host memory and RDMA-writes
    /// it straight to the destination host — no staging hop. The paper's
    /// proposed mechanism.
    Gvmi,
    /// Staging: the host first writes the payload into DPU memory over
    /// PCIe; the proxy then forwards it from its own memory. The
    /// BluesMPI-style mechanism, generalized to any pattern.
    Staging,
}

/// Deliberate protocol faults for checker validation. Each variant makes
/// the engine violate exactly one invariant so the conformance checker
/// and schedule explorer can prove they detect it. `None` in all real
/// runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FaultInjection {
    /// No fault: the engine follows the protocol.
    #[default]
    None,
    /// The proxy drops the first `FinRecv` it would send. The receiving
    /// rank waits forever, which the explorer reports as a deadlock.
    DropFirstFin,
    /// The proxy skips cross-registration and fabricates `mkey2 = mkey`.
    /// The conformance checker reports an `Mkey2Used`-before-`CrossReg`
    /// violation.
    SkipCrossReg,
}

/// Framework configuration. One instance shared by hosts and proxies of a
/// run (like an `MPIRUN` environment).
#[derive(Clone, Debug)]
pub struct OffloadConfig {
    /// Payload mechanism.
    pub data_path: DataPath,
    /// Use the host/DPU GVMI registration caches (paper §VII-B). Off =
    /// register on every transfer (ablation 2).
    pub use_gvmi_cache: bool,
    /// Use the group-request metadata caches (paper §VII-D). Off = full
    /// metadata exchange on every `Group_Offload_call` (ablation 3).
    pub use_group_cache: bool,
    /// Modelled wire size of one control message (RTS/RTR/FIN/EXEC).
    pub ctrl_bytes: u64,
    /// Modelled wire size of one group-packet entry.
    pub entry_bytes: u64,
    /// ARM time the proxy spends interpreting one queue/packet entry.
    pub proxy_entry_overhead: simnet::SimDelta,
    /// Deliberate protocol fault (checker validation only).
    pub fault: FaultInjection,
}

impl Default for OffloadConfig {
    fn default() -> Self {
        OffloadConfig {
            data_path: DataPath::Gvmi,
            use_gvmi_cache: true,
            use_group_cache: true,
            ctrl_bytes: 64,
            entry_bytes: 48,
            proxy_entry_overhead: simnet::SimDelta::from_ns(120),
            fault: FaultInjection::None,
        }
    }
}

impl OffloadConfig {
    /// The paper's proposed configuration (GVMI + both caches).
    pub fn proposed() -> Self {
        Self::default()
    }

    /// Staging-based configuration (generalized BluesMPI mechanism).
    pub fn staging() -> Self {
        OffloadConfig {
            data_path: DataPath::Staging,
            ..Self::default()
        }
    }

    /// Disable the GVMI registration caches (ablation).
    pub fn without_gvmi_cache(mut self) -> Self {
        self.use_gvmi_cache = false;
        self
    }

    /// Disable the group metadata caches (ablation).
    pub fn without_group_cache(mut self) -> Self {
        self.use_group_cache = false;
        self
    }

    /// Inject a deliberate protocol fault (checker validation only).
    pub fn with_fault(mut self, fault: FaultInjection) -> Self {
        self.fault = fault;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposed_uses_gvmi_and_caches() {
        let c = OffloadConfig::proposed();
        assert_eq!(c.data_path, DataPath::Gvmi);
        assert!(c.use_gvmi_cache && c.use_group_cache);
    }

    #[test]
    fn ablation_builders() {
        let c = OffloadConfig::staging()
            .without_gvmi_cache()
            .without_group_cache();
        assert_eq!(c.data_path, DataPath::Staging);
        assert!(!c.use_gvmi_cache && !c.use_group_cache);
    }
}
