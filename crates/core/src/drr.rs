//! Deficit-round-robin scheduling of credit-deferred posts
//! (DESIGN.md §18).
//!
//! PR 5's admission control kept one FIFO of deferred host posts and
//! flushed it head-first as FINs returned credit — correct for one
//! job, but a head-of-line flood from one tenant starves every other
//! tenant behind it. [`DrrScheduler`] replaces the FIFO with one queue
//! per tenant, served deficit-round-robin: each service cycle a tenant
//! earns `weight` credits (capped so a blocked tenant cannot hoard),
//! admits queue-head posts while it has both credit and admissible
//! work, and hands the turn on. A tenant whose head is blocked (its
//! target endpoint is out of credit) yields *without* blocking the
//! others — the isolation property the noisy-neighbor gate asserts.
//!
//! With a single tenant the scheduler degenerates to exactly the PR-5
//! FIFO: one queue, popped head-first until the head blocks or the
//! flush budget runs out, dead entries dropped for free. Single-tenant
//! runs therefore stay byte-identical to the pre-multi-tenant engine.

use std::collections::{BTreeMap, VecDeque};

use crate::config::TenantId;

/// Verdict of the host's admission closure for one deferred post.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Deferred {
    /// The slot already settled (done, failed, cancelled): drop it.
    Dead,
    /// The target endpoint has no credit: leave it queued, serve the
    /// next tenant.
    Blocked,
    /// The post was admitted (the closure performed the admission).
    Admitted,
}

/// Per-tenant deferred-post queues under deficit round-robin.
#[derive(Default)]
pub(crate) struct DrrScheduler {
    queues: BTreeMap<TenantId, VecDeque<usize>>,
    deficit: BTreeMap<TenantId, u64>,
    /// Tenant the next service cycle starts from.
    cursor: TenantId,
}

impl DrrScheduler {
    /// Queue a deferred post for `tenant` (FIFO within the tenant).
    pub(crate) fn push(&mut self, tenant: TenantId, req: usize) {
        self.queues.entry(tenant).or_default().push_back(req);
    }

    /// Total deferred posts across every tenant.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// Whether no posts are deferred.
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.queues.values().all(VecDeque::is_empty)
    }

    /// Deferred posts queued for `tenant`.
    #[cfg(test)]
    pub(crate) fn tenant_len(&self, tenant: TenantId) -> usize {
        self.queues.get(&tenant).map_or(0, VecDeque::len)
    }

    /// Serve the queues: admit up to `limit` posts, weighting tenants
    /// by `weight_of` (≥ 1). `step` is called with each queue head the
    /// scheduler wants admitted and must return what happened —
    /// [`Deferred::Admitted`] means the closure admitted it (costs one
    /// deficit credit), [`Deferred::Dead`] drops it for free,
    /// [`Deferred::Blocked`] leaves it queued and yields the turn.
    /// Returns the number of admitted posts.
    pub(crate) fn flush(
        &mut self,
        limit: usize,
        weight_of: impl Fn(TenantId) -> u64,
        mut step: impl FnMut(usize) -> Deferred,
    ) -> usize {
        let mut admitted = 0usize;
        if limit == 0 {
            return admitted;
        }
        loop {
            let tenants: Vec<TenantId> = self
                .queues
                .iter()
                .filter(|(_, q)| !q.is_empty())
                .map(|(&t, _)| t)
                .collect();
            if tenants.is_empty() {
                return admitted;
            }
            // Rotate so the cycle starts at the cursor: strictly after
            // the tenant served last, for long-run fairness.
            let start = tenants.partition_point(|&t| t < self.cursor);
            let mut progress = false;
            for idx in 0..tenants.len() {
                let t = tenants[(start + idx) % tenants.len()];
                let quantum = weight_of(t).max(1);
                let d = self.deficit.entry(t).or_insert(0);
                // Replenish, capped: a tenant blocked for many cycles
                // must not bank unbounded credit.
                *d = (*d + quantum).min(quantum * 2);
                let q = self.queues.get_mut(&t).expect("tenant has a queue");
                while let Some(&req) = q.front() {
                    if admitted == limit {
                        return admitted;
                    }
                    if self.deficit[&t] == 0 {
                        break;
                    }
                    match step(req) {
                        Deferred::Dead => {
                            q.pop_front();
                            progress = true;
                        }
                        Deferred::Blocked => break,
                        Deferred::Admitted => {
                            q.pop_front();
                            *self.deficit.get_mut(&t).expect("deficit entry") -= 1;
                            admitted += 1;
                            progress = true;
                            self.cursor = t + 1;
                        }
                    }
                }
                if self.queues[&t].is_empty() {
                    self.deficit.insert(t, 0);
                }
            }
            if !progress {
                return admitted;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flush everything admissible with unit weights; `blocked` posts
    /// report [`Deferred::Blocked`], `dead` posts [`Deferred::Dead`].
    fn run(
        s: &mut DrrScheduler,
        limit: usize,
        blocked: &[usize],
        dead: &[usize],
    ) -> (usize, Vec<usize>) {
        let mut order = Vec::new();
        let n = s.flush(
            limit,
            |_| 1,
            |req| {
                if blocked.contains(&req) {
                    Deferred::Blocked
                } else if dead.contains(&req) {
                    Deferred::Dead
                } else {
                    order.push(req);
                    Deferred::Admitted
                }
            },
        );
        (n, order)
    }

    #[test]
    fn single_tenant_is_fifo_with_head_of_line_blocking() {
        let mut s = DrrScheduler::default();
        for req in [10, 11, 12, 13] {
            s.push(0, req);
        }
        // Head blocked: nothing moves — exactly the PR-5 FIFO.
        let (n, _) = run(&mut s, 8, &[10], &[]);
        assert_eq!(n, 0);
        assert_eq!(s.len(), 4);
        // Unblocked: admitted in push order, dead entries free.
        let (n, order) = run(&mut s, 8, &[], &[11]);
        assert_eq!(n, 3);
        assert_eq!(order, vec![10, 12, 13]);
        assert!(s.is_empty());
    }

    #[test]
    fn flush_respects_the_limit() {
        let mut s = DrrScheduler::default();
        for req in 0..6 {
            s.push(0, req);
        }
        let (n, order) = run(&mut s, 2, &[], &[]);
        assert_eq!(n, 2);
        assert_eq!(order, vec![0, 1]);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn equal_weights_interleave_tenants() {
        let mut s = DrrScheduler::default();
        for req in [100, 101, 102] {
            s.push(0, req);
        }
        for req in [200, 201, 202] {
            s.push(1, req);
        }
        let (n, order) = run(&mut s, 6, &[], &[]);
        assert_eq!(n, 6);
        // One credit per tenant per cycle: strict alternation.
        assert_eq!(order, vec![100, 200, 101, 201, 102, 202]);
    }

    #[test]
    fn weights_bias_service_proportionally() {
        let mut s = DrrScheduler::default();
        for req in 0..4 {
            s.push(0, req);
            s.push(1, 100 + req);
        }
        let mut order = Vec::new();
        let n = s.flush(
            6,
            |t| if t == 0 { 2 } else { 1 },
            |req| {
                order.push(req);
                Deferred::Admitted
            },
        );
        assert_eq!(n, 6);
        // Tenant 0 earns two credits per cycle, tenant 1 one.
        assert_eq!(order, vec![0, 1, 100, 2, 3, 101]);
    }

    #[test]
    fn blocked_tenant_never_stalls_the_other() {
        let mut s = DrrScheduler::default();
        for req in [10, 11] {
            s.push(0, req);
        }
        for req in [20, 21] {
            s.push(1, req);
        }
        // Tenant 0's head is blocked (its endpoint is out of credit);
        // tenant 1 must still drain completely.
        let (n, order) = run(&mut s, 8, &[10, 11], &[]);
        assert_eq!(n, 2);
        assert_eq!(order, vec![20, 21]);
        assert_eq!(s.tenant_len(0), 2);
        assert_eq!(s.tenant_len(1), 0);
    }

    #[test]
    fn cursor_rotates_across_flushes() {
        let mut s = DrrScheduler::default();
        s.push(0, 1);
        s.push(1, 2);
        let (_, order) = run(&mut s, 1, &[], &[]);
        assert_eq!(order, vec![1]);
        // The next flush starts past tenant 0, so tenant 1 goes first
        // even though tenant 0 queued again.
        s.push(0, 3);
        let (_, order) = run(&mut s, 2, &[], &[]);
        assert_eq!(order, vec![2, 3]);
    }
}
