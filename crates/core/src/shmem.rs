//! An OpenSHMEM-style one-sided facade over the offload framework.
//!
//! The paper positions its framework as *programming-model agnostic*
//! (§I: it cites OpenSHMEM alongside MPI as a model whose semantics the
//! primitives must cover). This module makes that concrete: a symmetric
//! heap, one-sided `put`/`get` that the DPU proxy executes with zero
//! involvement from the target process, and `quiet` for completion.
//!
//! * `put` rides the Basic-primitive machinery as a *pre-matched pair* —
//!   the destination buffer and rkey are known from the symmetric-heap
//!   exchange, so no RTR is ever needed. Both data paths work.
//! * `get` is the cross-GVMI party trick: the proxy cross-registers the
//!   *origin's* buffer (mkey → mkey2) and RDMA-READs the remote symmetric
//!   memory straight into it (GVMI path only).
//!
//! Startup performs one all-to-all exchange of `(heap base, rkey)` — the
//! same one-time cost class as the paper's GVMI-ID exchange.

use std::cell::RefCell;

use rdma::{Channel, ClusterCtx, EpId, Inbox, MrKey, NetMsg, VAddr};
use simnet::ProcessCtx;

use crate::config::{DataPath, OffloadConfig};
use crate::host::{Offload, OffloadReq};
use crate::messages::CtrlMsg;

/// An offset into the symmetric heap — the same value addresses the
/// corresponding bytes on every rank (like a pointer returned by
/// `shmem_malloc`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SymAddr(pub u64);

struct Peer {
    heap_base: VAddr,
    heap_rkey: MrKey,
}

struct ShmemState {
    peers: Vec<Option<Peer>>,
    next_alloc: u64,
    outstanding: Vec<OffloadReq>,
}

/// One rank's SHMEM-style endpoint. Wraps (and shares) an [`Offload`]
/// engine.
pub struct Shmem {
    off: Offload,
    ep: EpId,
    heap_base: VAddr,
    heap_len: u64,
    heap_mkey: MrKey,
    chan: Channel,
    st: RefCell<ShmemState>,
}

impl Shmem {
    /// Collective constructor: every rank must call it with the same
    /// `heap_len`. Allocates and registers the symmetric heap and
    /// exchanges `(base, rkey)` with every peer. The offload
    /// configuration must use the GVMI data path for `get` support.
    pub fn init(
        rank: usize,
        ctx: ProcessCtx,
        cluster: ClusterCtx,
        inbox: &Inbox,
        cfg: OffloadConfig,
        heap_len: u64,
    ) -> Shmem {
        // Claim the hello messages before Offload's channel is registered,
        // so startup traffic does not race user traffic.
        let chan = inbox.channel(|m| {
            matches!(m, NetMsg::Packet(p) if matches!(p.body.downcast_ref::<CtrlMsg>(), Some(CtrlMsg::ShmemHello { .. })))
        });
        let off = Offload::init(rank, ctx, cluster, inbox, cfg.clone());
        let fab = off.cluster().fabric().clone();
        let ep = off.cluster().host_ep(rank);
        let heap_base = fab.alloc(ep, heap_len);
        let heap_rkey = fab
            .reg_mr(off.ctx(), ep, heap_base, heap_len)
            .expect("symmetric heap registration");
        // Register the whole heap once against our proxy's GVMI so puts
        // and gets can be sliced out of it without further host-side
        // registrations.
        let gvmi = fab
            .gvmi_of(off.cluster().proxy_for_rank(rank))
            .expect("proxy has a GVMI");
        let heap_mkey = fab
            .reg_mr_gvmi(off.ctx(), ep, heap_base, heap_len, gvmi)
            .expect("symmetric heap GVMI registration");
        let p = off.size();
        for peer in 0..p {
            if peer == rank {
                continue;
            }
            fab.send_packet(
                off.ctx(),
                ep,
                off.cluster().host_ep(peer),
                cfg.ctrl_bytes,
                Box::new(CtrlMsg::ShmemHello {
                    rank,
                    heap_base,
                    heap_rkey,
                }),
            )
            .expect("shmem hello");
        }
        let mut peers: Vec<Option<Peer>> = (0..p).map(|_| None).collect();
        peers[rank] = Some(Peer {
            heap_base,
            heap_rkey,
        });
        let mut missing = p - 1;
        while missing > 0 {
            let msg = chan.next_blocking(off.ctx());
            let NetMsg::Packet(pkt) = msg else {
                unreachable!("hello channel only claims packets")
            };
            let Ok(body) = pkt.body.downcast::<CtrlMsg>() else {
                unreachable!("claimed by predicate")
            };
            let CtrlMsg::ShmemHello {
                rank: from,
                heap_base,
                heap_rkey,
            } = *body
            else {
                unreachable!("claimed by predicate")
            };
            peers[from] = Some(Peer {
                heap_base,
                heap_rkey,
            });
            missing -= 1;
        }
        Shmem {
            off,
            ep,
            heap_base,
            heap_len,
            heap_mkey,
            chan,
            st: RefCell::new(ShmemState {
                peers,
                next_alloc: 0,
                outstanding: Vec::new(),
            }),
        }
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.off.rank()
    }

    /// Number of processing elements.
    pub fn n_pes(&self) -> usize {
        self.off.size()
    }

    /// The wrapped offload engine (e.g. for `finalize`).
    pub fn offload(&self) -> &Offload {
        &self.off
    }

    /// Symmetric allocation: returns the same offset on every rank that
    /// performs the same allocation sequence (like `shmem_malloc`).
    pub fn sym_alloc(&self, len: u64) -> SymAddr {
        let mut st = self.st.borrow_mut();
        assert!(
            st.next_alloc + len <= self.heap_len,
            "symmetric heap exhausted ({} + {len} > {})",
            st.next_alloc,
            self.heap_len
        );
        let off = st.next_alloc;
        // Keep 64-byte alignment like real symmetric heaps.
        st.next_alloc += len.div_ceil(64) * 64;
        SymAddr(off)
    }

    /// Local virtual address of a symmetric offset on this rank (for
    /// filling/verifying through the fabric).
    pub fn local_addr(&self, sym: SymAddr) -> VAddr {
        self.heap_base.offset(sym.0)
    }

    /// Non-blocking one-sided put: copy `[src, src+len)` of *this* rank's
    /// heap into `[dst, dst+len)` of `pe`'s heap. The DPU proxy performs
    /// the transfer; `pe`'s CPU is never involved.
    pub fn put(&self, pe: usize, dst: SymAddr, src: SymAddr, len: u64) -> OffloadReq {
        assert!(pe < self.n_pes(), "put: bad PE {pe}");
        assert!(src.0 + len <= self.heap_len && dst.0 + len <= self.heap_len);
        let st = self.st.borrow();
        let peer = st.peers[pe].as_ref().expect("hello exchange completed");
        let (dst_addr, dst_rkey) = (peer.heap_base.offset(dst.0), peer.heap_rkey);
        drop(st);
        let (mkey, src_rkey) = match self.off.config().data_path {
            // When the plan can fail cross-GVMI registration, ship the IB
            // rkey too so the proxy can fall back to the staging path.
            DataPath::Gvmi if self.off.config().fault.fallback_enabled() => {
                (Some(self.heap_mkey), Some(self.heap_rkey()))
            }
            DataPath::Gvmi => (Some(self.heap_mkey), None),
            DataPath::Staging => (None, Some(self.heap_rkey())),
        };
        let req = self.off.one_sided(CtrlMsg::Put {
            src_rank: self.rank(),
            addr: self.heap_base.offset(src.0),
            len,
            mkey,
            src_rkey,
            dst_rank: pe,
            dst_addr,
            dst_rkey,
            src_req: usize::MAX, // patched by one_sided
            src_pid: self.off.ctx().pid(),
            msg_id: 0, // patched by one_sided
        });
        self.st.borrow_mut().outstanding.push(req);
        req
    }

    /// Non-blocking one-sided get: copy `[src, src+len)` of `pe`'s heap
    /// into `[dst, dst+len)` of this rank's heap (GVMI data path only).
    pub fn get(&self, pe: usize, dst: SymAddr, src: SymAddr, len: u64) -> OffloadReq {
        assert!(pe < self.n_pes(), "get: bad PE {pe}");
        assert!(src.0 + len <= self.heap_len && dst.0 + len <= self.heap_len);
        assert_eq!(
            self.off.config().data_path,
            DataPath::Gvmi,
            "one-sided get requires the GVMI data path"
        );
        let st = self.st.borrow();
        let peer = st.peers[pe].as_ref().expect("hello exchange completed");
        let (remote_addr, remote_rkey) = (peer.heap_base.offset(src.0), peer.heap_rkey);
        drop(st);
        let req = self.off.one_sided(CtrlMsg::Get {
            src_rank: self.rank(),
            local_addr: self.heap_base.offset(dst.0),
            len,
            local_mkey: self.heap_mkey,
            remote_rank: pe,
            remote_addr,
            remote_rkey,
            src_req: usize::MAX, // patched by one_sided
            src_pid: self.off.ctx().pid(),
            msg_id: 0, // patched by one_sided
        });
        self.st.borrow_mut().outstanding.push(req);
        req
    }

    /// Wait for one operation.
    pub fn wait(&self, req: OffloadReq) {
        self.off.wait(req);
    }

    /// `shmem_quiet`: block until every outstanding put/get issued by this
    /// rank has completed remotely.
    pub fn quiet(&self) {
        let reqs = std::mem::take(&mut self.st.borrow_mut().outstanding);
        self.off.wait_all(&reqs);
    }

    /// Tear down (all operations must be complete).
    pub fn finalize(&self) {
        self.quiet();
        self.off.finalize();
        // Keep the hello channel alive until the end (unused afterwards).
        let _ = &self.chan;
    }

    fn heap_rkey(&self) -> MrKey {
        self.st.borrow().peers[self.rank()]
            .as_ref()
            .expect("own entry")
            .heap_rkey
    }

    /// Keep the map of peers accessible for diagnostics.
    pub fn peer_heap_base(&self, pe: usize) -> VAddr {
        self.st.borrow().peers[pe]
            .as_ref()
            .expect("peer known")
            .heap_base
    }

    /// Unused-field silencer with documentation value: the endpoint is the
    /// rank's host endpoint.
    pub fn endpoint(&self) -> EpId {
        self.ep
    }
}

/// Data needed by `Shmem` from `Offload` internals.
impl Offload {
    /// Issue a one-sided control message (Put/Get) to the mapped proxy and
    /// return its completion handle. Used by [`Shmem`].
    pub(crate) fn one_sided(&self, mut msg: CtrlMsg) -> OffloadReq {
        let (req, id) = self.new_basic_req();
        let (peer, bytes) = match &mut msg {
            CtrlMsg::Put {
                src_req,
                msg_id,
                dst_rank,
                len,
                ..
            } => {
                *src_req = req.index();
                *msg_id = id;
                (*dst_rank, *len)
            }
            CtrlMsg::Get {
                src_req,
                msg_id,
                remote_rank,
                len,
                ..
            } => {
                *src_req = req.index();
                *msg_id = id;
                (*remote_rank, *len)
            }
            other => panic!("one_sided takes Put/Get, got {other:?}"),
        };
        self.ctx().emit(&crate::events::ProtoEvent::HostReqPosted {
            rank: self.rank(),
            msg_id: id,
            peer,
            tag: 0,
            bytes,
            dir: crate::events::ReqDir::OneSided,
        });
        self.send_ctrl_to_proxy(msg, Some(req.index()));
        req
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma::{ClusterBuilder, ClusterSpec};

    fn run_shmem(nodes: usize, ppn: usize, f: impl Fn(&Shmem) + Send + Sync + 'static) {
        ClusterBuilder::new(ClusterSpec::new(nodes, ppn), 7)
            .run(
                move |rank, ctx, cluster| {
                    let inbox = Inbox::new();
                    let shm = Shmem::init(
                        rank,
                        ctx,
                        cluster,
                        &inbox,
                        OffloadConfig::proposed(),
                        1 << 20,
                    );
                    f(&shm);
                    shm.finalize();
                },
                Some(crate::proxy_fn(OffloadConfig::proposed())),
            )
            .unwrap();
    }

    #[test]
    fn put_delivers_one_sided() {
        run_shmem(2, 1, |shm| {
            let fab = shm.offload().cluster().fabric().clone();
            let a = shm.sym_alloc(4096);
            let b = shm.sym_alloc(4096);
            if shm.rank() == 0 {
                fab.fill_pattern(shm.endpoint(), shm.local_addr(a), 4096, 77)
                    .unwrap();
                shm.put(1, b, a, 4096);
                shm.quiet();
            } else {
                // The target does nothing at all: spin on the payload via
                // simulated time until the proxy wrote it.
                let mut spins = 0;
                while !fab
                    .verify_pattern(shm.endpoint(), shm.local_addr(b), 4096, 77)
                    .unwrap()
                {
                    shm.offload().ctx().compute(simnet::SimDelta::from_us(10));
                    spins += 1;
                    assert!(spins < 10_000, "put never landed");
                }
            }
        });
    }

    #[test]
    fn get_pulls_remote_heap() {
        run_shmem(2, 1, |shm| {
            let fab = shm.offload().cluster().fabric().clone();
            let src = shm.sym_alloc(8192);
            let dst = shm.sym_alloc(8192);
            fab.fill_pattern(
                shm.endpoint(),
                shm.local_addr(src),
                8192,
                100 + shm.rank() as u64,
            )
            .unwrap();
            // Give both sides a moment so the data exists before the get.
            shm.offload().ctx().compute(simnet::SimDelta::from_us(50));
            let peer = 1 - shm.rank();
            let r = shm.get(peer, dst, src, 8192);
            shm.wait(r);
            assert!(fab
                .verify_pattern(shm.endpoint(), shm.local_addr(dst), 8192, 100 + peer as u64)
                .unwrap());
        });
    }

    #[test]
    fn symmetric_alloc_is_consistent() {
        run_shmem(2, 2, |shm| {
            let a = shm.sym_alloc(100);
            let b = shm.sym_alloc(100);
            assert_eq!(a, SymAddr(0));
            assert_eq!(b, SymAddr(128), "64-byte aligned");
            // The same offsets address the same relative bytes everywhere.
            assert_eq!(shm.local_addr(a).0 + 128, shm.local_addr(b).0);
        });
    }

    #[test]
    fn quiet_flushes_many_puts() {
        run_shmem(2, 2, |shm| {
            let fab = shm.offload().cluster().fabric().clone();
            let slots: Vec<_> = (0..8).map(|_| shm.sym_alloc(1024)).collect();
            let me = shm.rank();
            let peer = (me + 1) % shm.n_pes();
            for (i, &s) in slots.iter().enumerate().take(4) {
                fab.fill_pattern(
                    shm.endpoint(),
                    shm.local_addr(s),
                    1024,
                    (me * 10 + i) as u64,
                )
                .unwrap();
                shm.put(peer, slots[4 + i], s, 1024);
            }
            shm.quiet();
            // Let the peer's puts land too before verifying.
            shm.offload().ctx().compute(simnet::SimDelta::from_ms(1));
            let src = (me + shm.n_pes() - 1) % shm.n_pes();
            for i in 0..4usize {
                assert!(fab
                    .verify_pattern(
                        shm.endpoint(),
                        shm.local_addr(slots[4 + i]),
                        1024,
                        (src * 10 + i) as u64
                    )
                    .unwrap());
            }
        });
    }
}
