//! # offload — the paper's DPU communication-offload framework
//!
//! This crate is the reproduction's primary contribution: the framework of
//! *"A Novel Framework for Efficient Offloading of Communication
//! Operations to Bluefield SmartNICs"* (IPDPS 2023), built over the
//! simulated verbs layer in the `rdma` crate.
//!
//! ## The two API families
//!
//! **Basic primitives** (paper Listing 2) offload individual two-sided
//! transfers to a DPU proxy process:
//!
//! ```
//! use offload::{Offload, OffloadConfig};
//! use rdma::{ClusterBuilder, ClusterSpec, Inbox};
//! use simnet::SimDelta;
//!
//! ClusterBuilder::new(ClusterSpec::new(2, 1), 1)
//!     .run(
//!         |rank, ctx, cluster| {
//!             let inbox = Inbox::new();
//!             let off = Offload::init(rank, ctx, cluster, &inbox, OffloadConfig::proposed());
//!             let fab = off.cluster().fabric().clone();
//!             let ep = off.cluster().host_ep(rank);
//!             let buf = fab.alloc(ep, 1024);
//!             let req = if rank == 0 {
//!                 off.send_offload(buf, 1024, 1, 7)
//!             } else {
//!                 off.recv_offload(buf, 1024, 0, 7)
//!             };
//!             off.ctx().compute(SimDelta::from_us(100)); // DPU progresses meanwhile
//!             off.wait(req);
//!             off.finalize();
//!         },
//!         Some(offload::proxy_fn(OffloadConfig::proposed())),
//!     )
//!     .unwrap();
//! ```
//!
//! **Group primitives** (paper Listing 4) record an entire communication
//! graph — including ordering via `group_barrier` — and ship it to the DPU
//! in one packet, giving full overlap with zero CPU intervention even for
//! dependent patterns like a ring broadcast (paper Listing 5):
//!
//! ```text
//! let g = off.group_start();
//! off.group_recv(g, buf, n, left, tag);
//! off.group_barrier(g);
//! off.group_send(g, buf, n, right, tag);
//! off.group_end(g);
//! off.group_call(g);
//! do_compute();
//! off.group_wait(g);
//! ```
//!
//! ## The two mechanisms
//!
//! [`DataPath::Gvmi`] cross-registers host memory on the DPU (mkey →
//! mkey2) so the proxy RDMA-writes host-to-host directly;
//! [`DataPath::Staging`] is the generalized BluesMPI mechanism with a
//! PCIe store-and-forward hop. Registration caches (paper §VII-B) and
//! group metadata caches (§VII-D) amortize the respective overheads and
//! can be disabled for ablations.

#![warn(missing_docs)]

mod config;
mod drr;
mod events;
mod flight;
mod health;
mod host;
mod messages;
mod metrics;
mod patterns;
pub mod profile;
mod proxy;
mod reg_cache;
mod reliable;
mod shmem;

pub use config::{DataPath, FaultInjection, FaultPlan, OffloadConfig, TenantId, TenantSpec};
pub use events::{
    CacheOutcome, CacheSide, CtrlKind, FinKind, HealthPath, HostCacheKind, PathKind, ProtoEvent,
    ReqDir,
};
pub use flight::{parse_flight_dump, replay_into, FlightRecord, FlightRecorder};
pub use health::{BreakerState, HealthConfig};
pub use host::{GroupRequest, Offload, OffloadReq};
pub use metrics::{
    CacheCounters, HealthMetrics, Metrics, MetricsReport, ProxyMetrics, RankMetrics, TenantMetrics,
    WindowMetrics,
};
pub use profile::{ProfileReport, ScopeAgg};
pub use proxy::{proxy_fn, proxy_main};
pub use reg_cache::RankAddrCache;
pub use reliable::OffloadError;
pub use shmem::{Shmem, SymAddr};
