//! Reusable communication-pattern builders over the Group primitives.
//!
//! The paper implements MPI non-blocking collectives with Group primitives
//! (§VIII: *"We used Group Primitives to implement non-blocking
//! collectives"*). These builders record the standard algorithms once per
//! `(buffers, membership)` so repeated calls hit the metadata caches. The
//! `baselines` (BluesMPI) and `workloads` crates build on them.

use rdma::VAddr;

use crate::host::{GroupRequest, Offload};

impl Offload {
    /// Record a scatter-destination personalized all-to-all:
    /// `buf` layouts are `size()` blocks of `block` bytes; block `d` of
    /// `sendbuf` goes to rank `d`, block `s` of `recvbuf` receives from
    /// rank `s`. The caller's own block is *not* copied (offload moves
    /// remote data only; copy it locally if needed).
    pub fn record_alltoall(&self, sendbuf: VAddr, recvbuf: VAddr, block: u64) -> GroupRequest {
        let p = self.size();
        let me = self.rank();
        let g = self.group_start();
        for k in 1..p {
            let dst = (me + k) % p;
            let src = (me + p - k) % p;
            self.group_send(
                g,
                sendbuf.offset(dst as u64 * block),
                block,
                dst,
                dst as u64,
            );
            self.group_recv(g, recvbuf.offset(src as u64 * block), block, src, me as u64);
        }
        self.group_end(g);
        g
    }

    /// Record a binomial-tree broadcast of `[addr, addr+len)` over the
    /// ranks in `members` (all of which must record the matching pattern),
    /// rooted at `members[root_pos]`. Non-roots receive, then forward to
    /// their subtree after a `Local_barrier`.
    pub fn record_bcast_binomial(
        &self,
        members: &[usize],
        root_pos: usize,
        addr: VAddr,
        len: u64,
        tag: u64,
    ) -> GroupRequest {
        let p = members.len();
        let me_pos = members
            .iter()
            .position(|&r| r == self.rank())
            .expect("caller must be a member");
        let vrank = (me_pos + p - root_pos) % p;
        let real = |v: usize| members[(v + root_pos) % p];
        let g = self.group_start();
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                self.group_recv(g, addr, len, real(vrank - mask), tag);
                self.group_barrier(g);
                break;
            }
            mask <<= 1;
        }
        let mut m = if vrank == 0 {
            p.next_power_of_two() >> 1
        } else {
            mask >> 1
        };
        while m > 0 {
            if vrank + m < p {
                self.group_send(g, addr, len, real(vrank + m), tag);
            }
            m >>= 1;
        }
        self.group_end(g);
        g
    }

    /// Record a ring broadcast (paper Listing 5) over `members`, rooted at
    /// `members[root_pos]`: receive from the left, barrier, forward right.
    pub fn record_bcast_ring(
        &self,
        members: &[usize],
        root_pos: usize,
        addr: VAddr,
        len: u64,
        tag: u64,
    ) -> GroupRequest {
        let p = members.len();
        let me_pos = members
            .iter()
            .position(|&r| r == self.rank())
            .expect("caller must be a member");
        let root = members[root_pos];
        let left = members[(me_pos + p - 1) % p];
        let right = members[(me_pos + 1) % p];
        let g = self.group_start();
        if self.rank() == root {
            if p > 1 {
                self.group_send(g, addr, len, right, tag);
            }
        } else {
            self.group_recv(g, addr, len, left, tag);
            self.group_barrier(g);
            if right != root {
                self.group_send(g, addr, len, right, tag);
            }
        }
        self.group_end(g);
        g
    }

    /// Record a ring all-gather: `buf` holds `size()` blocks of `block`
    /// bytes, own block pre-filled at `rank·block`; `size()-1`
    /// barrier-ordered steps circulate the blocks.
    pub fn record_allgather_ring(&self, buf: VAddr, block: u64) -> GroupRequest {
        let p = self.size();
        let me = self.rank();
        let right = (me + 1) % p;
        let left = (me + p - 1) % p;
        let g = self.group_start();
        for k in 0..p.saturating_sub(1) {
            let send_block = (me + p - k) % p;
            let recv_block = (me + p - k - 1) % p;
            self.group_send(
                g,
                buf.offset(send_block as u64 * block),
                block,
                right,
                k as u64,
            );
            self.group_recv(
                g,
                buf.offset(recv_block as u64 * block),
                block,
                left,
                k as u64,
            );
            self.group_barrier(g);
        }
        self.group_end(g);
        g
    }

    /// Record a near-neighbour halo exchange: for each `(peer, sbuf, rbuf,
    /// bytes, tag_pair)` in `faces`, a send of `sbuf` and a receive into
    /// `rbuf`. Used by stencil-style workloads.
    pub fn record_halo_exchange(
        &self,
        faces: &[(usize, VAddr, VAddr, u64, u64, u64)],
    ) -> GroupRequest {
        let g = self.group_start();
        for &(peer, sbuf, rbuf, bytes, stag, rtag) in faces {
            self.group_send(g, sbuf, bytes, peer, stag);
            self.group_recv(g, rbuf, bytes, peer, rtag);
        }
        self.group_end(g);
        g
    }
}

#[cfg(test)]
mod tests {
    // The builders are exercised end-to-end by the crate's integration
    // tests (`tests/group_primitives.rs`) and by the baselines/workloads
    // crates; here we only check recording-side invariants.
    use crate::{Offload, OffloadConfig};
    use rdma::{ClusterBuilder, ClusterSpec, Inbox};

    fn on_pair(f: impl Fn(&Offload) + Send + Sync + 'static) {
        ClusterBuilder::new(ClusterSpec::new(2, 1), 1)
            .run(
                move |rank, ctx, cluster| {
                    let inbox = Inbox::new();
                    let off = Offload::init(rank, ctx, cluster, &inbox, OffloadConfig::proposed());
                    f(&off);
                    off.finalize();
                },
                Some(crate::proxy_fn(OffloadConfig::proposed())),
            )
            .unwrap();
    }

    #[test]
    fn alltoall_pattern_executes_and_caches() {
        on_pair(|off| {
            let fab = off.cluster().fabric().clone();
            let ep = off.cluster().host_ep(off.rank());
            let p = off.size() as u64;
            let sendbuf = fab.alloc(ep, 1024 * p);
            let recvbuf = fab.alloc(ep, 1024 * p);
            let g = off.record_alltoall(sendbuf, recvbuf, 1024);
            for _ in 0..3 {
                off.group_call(g);
                off.group_wait(g).expect("group offload failed");
            }
        });
    }

    #[test]
    fn bcast_builders_deliver() {
        on_pair(|off| {
            let fab = off.cluster().fabric().clone();
            let ep = off.cluster().host_ep(off.rank());
            let buf = fab.alloc(ep, 2048);
            if off.rank() == 0 {
                fab.fill_pattern(ep, buf, 2048, 5).unwrap();
            }
            let members: Vec<usize> = (0..off.size()).collect();
            let g = off.record_bcast_binomial(&members, 0, buf, 2048, 0);
            off.group_call(g);
            off.group_wait(g).expect("group offload failed");
            assert!(fab.verify_pattern(ep, buf, 2048, 5).unwrap());
            // Ring variant with a different buffer region.
            let buf2 = fab.alloc(ep, 512);
            if off.rank() == 0 {
                fab.fill_pattern(ep, buf2, 512, 9).unwrap();
            }
            let g2 = off.record_bcast_ring(&members, 0, buf2, 512, 1);
            off.group_call(g2);
            off.group_wait(g2).expect("group offload failed");
            assert!(fab.verify_pattern(ep, buf2, 512, 9).unwrap());
        });
    }

    #[test]
    fn allgather_ring_circulates_blocks() {
        ClusterBuilder::new(ClusterSpec::new(2, 2), 1)
            .run(
                |rank, ctx, cluster| {
                    let inbox = Inbox::new();
                    let off = Offload::init(
                        rank,
                        ctx,
                        cluster.clone(),
                        &inbox,
                        OffloadConfig::proposed(),
                    );
                    let fab = cluster.fabric().clone();
                    let ep = cluster.host_ep(rank);
                    let p = cluster.world_size() as u64;
                    let buf = fab.alloc(ep, 4096 * p);
                    fab.fill_pattern(ep, buf.offset(rank as u64 * 4096), 4096, rank as u64 + 40)
                        .unwrap();
                    let g = off.record_allgather_ring(buf, 4096);
                    off.group_call(g);
                    off.group_wait(g).expect("group offload failed");
                    for s in 0..p {
                        assert!(fab
                            .verify_pattern(ep, buf.offset(s * 4096), 4096, s + 40)
                            .unwrap());
                    }
                    off.finalize();
                },
                Some(crate::proxy_fn(OffloadConfig::proposed())),
            )
            .unwrap();
    }
}
